//! **cpn** — Communicating Petri nets for the design of concurrent
//! asynchronous modules.
//!
//! A Rust implementation of G. G. de Jong & B. Lin, *"A Communicating
//! Petri Net Model for the Design of Concurrent Asynchronous Modules"*,
//! DAC 1994: the CIP model (interface modules communicating through
//! abstract rendez-vous channels), its automatic expansion to handshake
//! signalling, and the unfolding-free Petri net algebra — including
//! hiding as generalized net contraction — with the circuit algebra,
//! compositional synthesis and receptiveness verification built on top.
//!
//! This crate re-exports the workspace:
//!
//! * [`petri`] — general labeled Petri net kernel (token game,
//!   reachability, coverability, structural analysis, invariants).
//! * [`trace`] — finite-depth trace-language semantics (the oracle the
//!   algebra is property-tested against).
//! * [`core`] — the net algebra (Section 4), circuit algebra
//!   (Section 5.1), compositional synthesis (5.2), receptiveness
//!   verification (5.3 / Theorem 5.7).
//! * [`stg`] — Signal Transition Graphs: consistency, state graphs,
//!   USC/CSC, guards, next-state logic, and the paper's Section 6
//!   protocol-translation models ([`stg::protocol`]).
//! * [`cip`] — Communicating Interface Processes: modules, channels,
//!   data encodings, handshake expansion ([`cip::protocol`] holds the
//!   channel-level Section 6 system).
//! * [`mod@format`] — the `.cpn` text format.
//! * [`sim`] — randomized token-game simulation and runtime
//!   receptiveness monitoring.
//!
//! # Quickstart
//!
//! ```
//! use cpn::core::{hide_label, parallel};
//! use cpn::petri::PetriNet;
//! use cpn::trace::Language;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two modules that rendez-vous on `sync`, then hide the channel.
//! let mut left: PetriNet<&str> = PetriNet::new();
//! let a = left.add_place("a");
//! let b = left.add_place("b");
//! left.add_transition([a], "work", [b])?;
//! left.add_transition([b], "sync", [a])?;
//! left.set_initial(a, 1);
//!
//! let mut right: PetriNet<&str> = PetriNet::new();
//! let c = right.add_place("c");
//! let d = right.add_place("d");
//! right.add_transition([c], "sync", [d])?;
//! right.add_transition([d], "report", [c])?;
//! right.set_initial(c, 1);
//!
//! let system = hide_label(&parallel(&left, &right)?, &"sync", 1_000)?;
//! let lang = Language::from_net(&system, 4, 100_000)?;
//! assert!(lang.contains(&["work", "report", "work"][..]));
//! # Ok(())
//! # }
//! ```

pub use cpn_cip as cip;
pub use cpn_core as core;
pub use cpn_format as format;
pub use cpn_petri as petri;
pub use cpn_sim as sim;
pub use cpn_stg as stg;
pub use cpn_trace as trace;
