//! Property test: random nets and STGs round-trip through the `.cpn`
//! text format with identical structure and traces (`parse ∘ print = id`
//! up to observable behaviour).
//!
//! Driven by the deterministic `cpn-testkit` harness: failures print a
//! case seed, replayable via `CPN_TESTKIT_SEED=<seed>`.

use cpn::format::{parse, write_net, write_stg};
use cpn::petri::PetriNet;
use cpn::stg::{Edge, Guard, Signal, SignalDir, Stg};
use cpn::trace::Language;
use cpn_testkit::{
    check_with, prop_assert, prop_assert_eq, usize_in, vec_of, Config, NetStrategy, RawNet,
};

const LABELS: [&str; 4] = ["alpha", "beta", "gamma", "delta delta \"quoted\""];

/// ≥100 cases per suite, still overridable via `CPN_TESTKIT_CASES`.
fn cases() -> Config {
    let config = Config::from_env();
    if std::env::var("CPN_TESTKIT_CASES").is_ok() {
        config
    } else {
        config.with_cases(128)
    }
}

/// Random nets: 2–5 places, 1–5 transitions, up to two tokens per place.
fn raw_net() -> NetStrategy {
    NetStrategy::new(5, 5, LABELS.len()).max_tokens(2)
}

/// Local builder (not `RawNet::build_with`): allows the all-zero initial
/// marking, which the format must round-trip too.
fn build(raw: &RawNet) -> PetriNet<String> {
    let mut net: PetriNet<String> = PetriNet::new();
    let ps: Vec<_> = (0..raw.places)
        .map(|i| net.add_place(format!("pl{i}")))
        .collect();
    for t in &raw.transitions {
        net.add_transition(
            t.pre.iter().map(|&i| ps[i]),
            LABELS[t.label % LABELS.len()].to_owned(),
            t.post.iter().map(|&i| ps[i]),
        )
        .unwrap();
    }
    for (i, &m) in raw.marking.iter().enumerate() {
        net.set_initial(ps[i], m);
    }
    net
}

#[test]
fn net_roundtrip_preserves_structure_and_traces() {
    check_with(
        "net_roundtrip_preserves_structure_and_traces",
        &cases(),
        &raw_net(),
        |raw| {
            let net = build(raw);
            let text = write_net("rt", &net);
            let doc = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            let (_, parsed) = &doc.nets[0];
            prop_assert_eq!(parsed.place_count(), net.place_count());
            prop_assert_eq!(parsed.transition_count(), net.transition_count());
            prop_assert_eq!(
                parsed.initial_marking().total(),
                net.initial_marking().total()
            );
            // The reparsed net's symbol table must replicate the
            // original exactly: interning order is first-use order, the
            // writer emits transitions in id order, and the parser
            // re-interns in file order.
            prop_assert_eq!(
                net.interner().iter().collect::<Vec<_>>(),
                parsed.interner().iter().collect::<Vec<_>>()
            );
            let l1 = Language::from_net(&net, 3, 100_000);
            let l2 = Language::from_net(parsed, 3, 100_000);
            if let (Ok(l1), Ok(l2)) = (l1, l2) {
                prop_assert!(l1.eq_up_to(&l2, 3), "languages differ:\n{}", text);
            }
            Ok(())
        },
    );
}

fn edge_of(i: usize) -> Edge {
    match i {
        0 => Edge::Rise,
        1 => Edge::Fall,
        2 => Edge::Toggle,
        3 => Edge::Stable,
        4 => Edge::Unstable,
        _ => Edge::DontCare,
    }
}

fn build_stg(raw: &RawNet, edges: &[usize], guard_on: bool) -> Stg {
    let mut stg = Stg::new();
    let data = stg.add_signal("DATA", SignalDir::Input);
    let sigs: Vec<Signal> = (0..3)
        .map(|i| stg.add_signal(format!("s{i}"), SignalDir::Output))
        .collect();
    let ps: Vec<_> = (0..raw.places)
        .map(|i| stg.add_place(format!("pl{i}")))
        .collect();
    for (i, t) in raw.transitions.iter().enumerate() {
        let edge = edge_of(edges[i % edges.len()]);
        let tid = stg
            .add_signal_transition(
                t.pre.iter().map(|&x| ps[x]),
                (sigs[t.label % 3].clone(), edge),
                t.post.iter().map(|&x| ps[x]),
            )
            .unwrap();
        if guard_on && i == 0 {
            stg.set_guard(tid, Guard::new().require(data.clone(), true));
        }
    }
    for (i, &m) in raw.marking.iter().enumerate() {
        stg.set_initial(ps[i], m);
    }
    stg
}

#[test]
fn stg_roundtrip_preserves_guards() {
    let strategy = (
        raw_net(),
        vec_of(usize_in(0..6), 1..=5),
        cpn_testkit::any_bool(),
    );
    check_with(
        "stg_roundtrip_preserves_guards",
        &cases(),
        &strategy,
        |(raw, edges, guard_on)| {
            let stg = build_stg(raw, edges, *guard_on);
            let text = write_stg("rt", &stg);
            let doc = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            let (_, parsed) = &doc.stgs[0];
            prop_assert_eq!(
                parsed.net().transition_count(),
                stg.net().transition_count()
            );
            prop_assert_eq!(parsed.signals(), stg.signals());
            for t in stg.net().transition_ids() {
                prop_assert_eq!(
                    parsed.guard(t).to_string(),
                    stg.guard(t).to_string(),
                    "guard of {} differs",
                    t
                );
            }
            Ok(())
        },
    );
}

/// Satellite regression: the `.cpn` roundtrip preserves nets *and*
/// symbol tables for non-ASCII and collision-prone label names —
/// labels that differ only by escapes, embedded quotes, whitespace, or
/// script must stay distinct symbols, in the same interning order.
#[test]
fn roundtrip_preserves_symbol_table_for_nasty_labels() {
    let labels = [
        "übergang", // non-ASCII latin
        "τ",        // greek
        "сигнал",   // cyrillic
        "信号",     // CJK
        "a b",      // embedded space
        "a\\b",     // backslash (escaped in the format)
        "a\"b",     // quote (escaped in the format)
        "ab",       // collision-prone with the two above
        "a",        // prefix of the others
    ];
    let mut net: PetriNet<String> = PetriNet::new();
    let p = net.add_place("p");
    net.set_initial(p, 1);
    for l in labels {
        net.add_transition([p], l.to_owned(), [p]).unwrap();
    }
    let text = write_net("symtab", &net);
    let doc = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    let reparsed = &doc.nets[0].1;
    assert_eq!(reparsed, &net, "reparsed net differs\n{text}");
    // Identical symbol tables: same labels assigned the same symbols in
    // the same order.
    assert_eq!(
        net.interner().iter().collect::<Vec<_>>(),
        reparsed.interner().iter().collect::<Vec<_>>(),
        "symbol tables diverged\n{text}"
    );
    // And a second writer pass is a fixed point.
    assert_eq!(text, write_net("symtab", reparsed));
}
