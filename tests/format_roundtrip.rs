//! Property test: random nets and STGs round-trip through the `.cpn`
//! text format with identical structure and traces.

use cpn::format::{parse, write_net, write_stg};
use cpn::petri::PetriNet;
use cpn::stg::{Edge, Guard, Signal, SignalDir, Stg};
use cpn::trace::Language;
use proptest::prelude::*;

const LABELS: [&str; 4] = ["alpha", "beta", "gamma", "delta delta \"quoted\""];

#[derive(Clone, Debug)]
struct RawNet {
    places: usize,
    transitions: Vec<(Vec<usize>, usize, Vec<usize>)>,
    marking: Vec<u8>,
}

fn raw_net() -> impl Strategy<Value = RawNet> {
    (2usize..6).prop_flat_map(|places| {
        let t = (
            proptest::collection::vec(0..places, 1..=2),
            0..LABELS.len(),
            proptest::collection::vec(0..places, 1..=2),
        );
        (
            proptest::collection::vec(t, 1..=5),
            proptest::collection::vec(0u8..3, places),
        )
            .prop_map(move |(transitions, marking)| RawNet {
                places,
                transitions,
                marking,
            })
    })
}

fn build(raw: &RawNet) -> PetriNet<String> {
    let mut net: PetriNet<String> = PetriNet::new();
    let ps: Vec<_> = (0..raw.places)
        .map(|i| net.add_place(format!("pl{i}")))
        .collect();
    for (pre, l, post) in &raw.transitions {
        net.add_transition(
            pre.iter().map(|&i| ps[i]),
            LABELS[*l].to_owned(),
            post.iter().map(|&i| ps[i]),
        )
        .unwrap();
    }
    for (i, &m) in raw.marking.iter().enumerate() {
        net.set_initial(ps[i], u32::from(m));
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn net_roundtrip_preserves_structure_and_traces(raw in raw_net()) {
        let net = build(&raw);
        let text = write_net("rt", &net);
        let doc = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        let (_, parsed) = &doc.nets[0];
        prop_assert_eq!(parsed.place_count(), net.place_count());
        prop_assert_eq!(parsed.transition_count(), net.transition_count());
        prop_assert_eq!(
            parsed.initial_marking().total(),
            net.initial_marking().total()
        );
        let l1 = Language::from_net(&net, 3, 100_000);
        let l2 = Language::from_net(parsed, 3, 100_000);
        if let (Ok(l1), Ok(l2)) = (l1, l2) {
            prop_assert!(l1.eq_up_to(&l2, 3), "languages differ:\n{}", text);
        }
    }

    #[test]
    fn stg_roundtrip_preserves_guards(
        raw in raw_net(),
        edges in proptest::collection::vec(0usize..6, 1..=5),
        guard_on in any::<bool>(),
    ) {
        let edge_of = |i: usize| match i {
            0 => Edge::Rise,
            1 => Edge::Fall,
            2 => Edge::Toggle,
            3 => Edge::Stable,
            4 => Edge::Unstable,
            _ => Edge::DontCare,
        };
        let mut stg = Stg::new();
        let data = stg.add_signal("DATA", SignalDir::Input);
        let sigs: Vec<Signal> = (0..3)
            .map(|i| stg.add_signal(format!("s{i}"), SignalDir::Output))
            .collect();
        let ps: Vec<_> = (0..raw.places)
            .map(|i| stg.add_place(format!("pl{i}")))
            .collect();
        for (i, (pre, l, post)) in raw.transitions.iter().enumerate() {
            let edge = edge_of(edges[i % edges.len()]);
            let t = stg
                .add_signal_transition(
                    pre.iter().map(|&i| ps[i]),
                    (sigs[*l % 3].clone(), edge),
                    post.iter().map(|&i| ps[i]),
                )
                .unwrap();
            if guard_on && i == 0 {
                stg.set_guard(t, Guard::new().require(data.clone(), true));
            }
        }
        for (i, &m) in raw.marking.iter().enumerate() {
            stg.set_initial(ps[i], u32::from(m));
        }

        let text = write_stg("rt", &stg);
        let doc = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        let (_, parsed) = &doc.stgs[0];
        prop_assert_eq!(parsed.net().transition_count(), stg.net().transition_count());
        prop_assert_eq!(parsed.signals(), stg.signals());
        for t in stg.net().transition_ids() {
            prop_assert_eq!(
                parsed.guard(t).to_string(),
                stg.guard(t).to_string(),
                "guard of {} differs", t
            );
        }
    }
}
