//! Integration: CIP specification → handshake expansion → composition →
//! verification, across encodings and protocols.

use cpn::cip::protocol::{protocol_cip, protocol_cip_restricted};
use cpn::cip::{ChannelSpec, CipGraph, DataEncoding, HandshakeProtocol, Module};
use cpn::petri::ReachabilityOptions;
use cpn::stg::{Edge, StgLabel};

fn ring_pair(encoding: DataEncoding, values: &[usize]) -> CipGraph {
    let mut tx = Module::new("tx");
    let mut prev = tx.add_place("s0");
    let first = prev;
    tx.set_initial(first, 1);
    for (i, &v) in values.iter().enumerate() {
        let next = if i + 1 == values.len() {
            first
        } else {
            tx.add_place(format!("s{}", i + 1))
        };
        tx.add_send([prev], "ch", Some(v), [next]).unwrap();
        prev = next;
    }
    let mut rx = Module::new("rx");
    let r = rx.add_place("r");
    rx.add_recv([r], "ch", [r]).unwrap();
    rx.set_initial(r, 1);

    let mut g = CipGraph::new();
    let a = g.add_module(tx);
    let b = g.add_module(rx);
    g.add_channel_edge(a, b, ChannelSpec::data("ch", encoding))
        .unwrap();
    g
}

#[test]
fn one_hot_and_dual_rail_and_m_of_n_all_expand_live() {
    let opts = ReachabilityOptions::with_max_states(500_000);
    let cases: Vec<(&str, DataEncoding, Vec<usize>)> = vec![
        ("one-hot", DataEncoding::one_hot("w", 3), vec![0, 2, 1]),
        ("dual-rail", DataEncoding::dual_rail("d", 2), vec![3, 0]),
        ("2-of-4", DataEncoding::m_of_n("m", 2, 4), vec![5, 1, 3]),
    ];
    for (name, enc, values) in cases {
        let sys = ring_pair(enc, &values)
            .expand(HandshakeProtocol::FourPhase)
            .unwrap();
        let composed = sys.compose_all().unwrap().remove_dead(&opts).unwrap();
        let rg = composed.net().reachability(&opts).unwrap();
        let analysis = composed.net().analysis(&rg);
        assert!(analysis.live, "{name}: transaction ring must be live");
        assert!(analysis.safe, "{name}: expansion must be safe");
    }
}

#[test]
fn every_sent_value_reaches_the_receiver() {
    // Selective receivers route values; composing with a sender cycling
    // through all four values exercises each branch.
    let enc = DataEncoding::one_hot("w", 4);
    let mut tx = Module::new("tx");
    let mut prev = tx.add_place("s0");
    let first = prev;
    tx.set_initial(first, 1);
    for v in 0..4usize {
        let next = if v == 3 {
            first
        } else {
            tx.add_place(format!("s{}", v + 1))
        };
        tx.add_send([prev], "ch", Some(v), [next]).unwrap();
        prev = next;
    }
    let mut rx = Module::new("rx");
    let mut rprev = rx.add_place("r0");
    let rfirst = rprev;
    rx.set_initial(rfirst, 1);
    for v in 0..4usize {
        let next = if v == 3 {
            rfirst
        } else {
            rx.add_place(format!("r{}", v + 1))
        };
        rx.add_recv_case([rprev], "ch", v, [next]).unwrap();
        rprev = next;
    }
    let mut g = CipGraph::new();
    let a = g.add_module(tx);
    let b = g.add_module(rx);
    g.add_channel_edge(a, b, ChannelSpec::data("ch", enc))
        .unwrap();

    let opts = ReachabilityOptions::with_max_states(500_000);
    let sys = g.expand(HandshakeProtocol::FourPhase).unwrap();
    let composed = sys.compose_all().unwrap().remove_dead(&opts).unwrap();
    let rg = composed.net().reachability(&opts).unwrap();
    let analysis = composed.net().analysis(&rg);
    assert!(analysis.live, "in-phase selective ring is live");
    // All four wires rise somewhere.
    for v in 0..4 {
        let wire = format!("w{v}");
        assert!(
            composed.net().transitions().any(|(tid, _)| {
                matches!(composed.net().label_of(tid), StgLabel::Signal(s, Edge::Rise) if s.name() == wire)
            }),
            "{wire} is exercised"
        );
    }
}

#[test]
fn two_phase_ring_works_for_control_channels() {
    let mut tx = Module::new("tx");
    let p = tx.add_place("p");
    tx.add_send([p], "go", None, [p]).unwrap();
    tx.set_initial(p, 1);
    let mut rx = Module::new("rx");
    let r = rx.add_place("r");
    rx.add_recv([r], "go", [r]).unwrap();
    rx.set_initial(r, 1);
    let mut g = CipGraph::new();
    let a = g.add_module(tx);
    let b = g.add_module(rx);
    g.add_channel_edge(a, b, ChannelSpec::control("go"))
        .unwrap();

    let sys = g.expand(HandshakeProtocol::TwoPhase).unwrap();
    let composed = sys.compose_all().unwrap();
    let lang = composed.language(4, 100_000).unwrap();
    // Two rounds of toggles.
    assert!(lang.contains(
        &[
            StgLabel::signal("go_req", Edge::Toggle),
            StgLabel::signal("go_ack", Edge::Toggle),
            StgLabel::signal("go_req", Edge::Toggle),
            StgLabel::signal("go_ack", Edge::Toggle),
        ][..]
    ));
}

#[test]
fn cip_protocol_system_matches_signal_level_behaviour() {
    // The CIP-level protocol and the hand-written STGs use the same
    // Table 1 wire names; the expanded sender must raise the same wire
    // pairs per command value.
    let sys = protocol_cip()
        .unwrap()
        .expand(HandshakeProtocol::FourPhase)
        .unwrap();
    let sender = &sys.stgs()[0];
    // Command rec (value 0) raises a0 and b0: both rise transitions
    // exist and share a fork in the expansion.
    for wire in ["a0", "b0", "a1", "b1"] {
        assert!(
            sender.net().transitions().any(|(tid, _)| {
                matches!(sender.net().label_of(tid), StgLabel::Signal(s, Edge::Rise) if s.name() == wire)
            }),
            "sender drives {wire}"
        );
    }
}

#[test]
fn restricted_cip_never_exercises_rec_wires_pair() {
    let opts = ReachabilityOptions::default();
    let sys = protocol_cip_restricted()
        .unwrap()
        .expand(HandshakeProtocol::FourPhase)
        .unwrap();
    let composed = sys.compose_all().unwrap().remove_dead(&opts).unwrap();
    // rec = {a0, b0} rising in the same transaction. After dead removal,
    // no cmd_ack+ completion for value 0 (code a0,b0) survives: check
    // that no transition reads both a0-high and b0-high trackers.
    let offending = composed.net().transitions().any(|(_, t)| {
        let names: Vec<&str> = t
            .preset()
            .iter()
            .map(|p| composed.net().place(*p).name())
            .collect();
        names.iter().any(|n| n.contains("a0.hi")) && names.iter().any(|n| n.contains("b0.hi"))
    });
    assert!(
        !offending,
        "rec completion must be dead with the restricted sender"
    );
}

#[test]
fn four_stage_relay_pipeline_expands_and_verifies() {
    // tx → relay1 → relay2 → rx over three control channels: the
    // ExpandedSystem machinery with more than two modules.
    let mut g = CipGraph::new();
    let mut tx = Module::new("tx");
    let p = tx.add_place("p");
    tx.add_send([p], "c0", None, [p]).unwrap();
    tx.set_initial(p, 1);
    let tx = g.add_module(tx);

    let mut prev = tx;
    for i in 0..2 {
        let mut relay = Module::new(format!("relay{i}"));
        let r0 = relay.add_place("r0");
        let r1 = relay.add_place("r1");
        relay
            .add_recv([r0], format!("c{i}").as_str(), [r1])
            .unwrap();
        relay
            .add_send([r1], format!("c{}", i + 1).as_str(), None, [r0])
            .unwrap();
        relay.set_initial(r0, 1);
        let idx = g.add_module(relay);
        g.add_channel_edge(prev, idx, ChannelSpec::control(format!("c{i}").as_str()))
            .unwrap();
        prev = idx;
    }
    let mut rx = Module::new("rx");
    let q = rx.add_place("q");
    rx.add_recv([q], "c2", [q]).unwrap();
    rx.set_initial(q, 1);
    let rx = g.add_module(rx);
    g.add_channel_edge(prev, rx, ChannelSpec::control("c2"))
        .unwrap();
    g.validate().unwrap();

    let opts = ReachabilityOptions::with_max_states(500_000);
    let sys = g.expand(HandshakeProtocol::FourPhase).unwrap();
    assert_eq!(sys.stgs().len(), 4);
    let composed = sys.compose_all().unwrap().remove_dead(&opts).unwrap();
    let rg = composed.net().reachability(&opts).unwrap();
    let analysis = composed.net().analysis(&rg);
    assert!(analysis.live, "relay pipeline live end to end");
    assert!(analysis.safe);
    for (name, rep) in sys.verify_receptiveness(&opts).unwrap() {
        assert!(rep.is_receptive(), "{name}: {:?}", rep.failures);
    }
}

#[test]
fn expanded_cip_verifies_receptive_end_to_end() {
    let opts = ReachabilityOptions::default();
    let sys = protocol_cip_restricted()
        .unwrap()
        .expand(HandshakeProtocol::FourPhase)
        .unwrap();
    for (name, rep) in sys.verify_receptiveness(&opts).unwrap() {
        assert!(rep.is_receptive(), "{name}: {:?}", rep.failures);
    }
}
