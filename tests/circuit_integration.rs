//! Integration: the circuit algebra of Section 5.1 over the protocol
//! STGs — interface bookkeeping through composition, and interconnect
//! abstraction via `hide'`.

use cpn::core::Circuit;
use cpn::petri::ReachabilityOptions;
use cpn::stg::protocol::{sender, translator};
use cpn::stg::{Signal, StgLabel};
use cpn::trace::Language;
use std::collections::BTreeSet;

fn as_circuit(stg: &cpn::stg::Stg) -> Circuit<StgLabel> {
    let outputs = stg.output_labels();
    let inputs: BTreeSet<StgLabel> = stg
        .net()
        .alphabet()
        .iter()
        .filter(|l| !outputs.contains(l))
        .cloned()
        .collect();
    Circuit::new(inputs, outputs, stg.net().clone()).expect("well-formed interface")
}

fn labels_of_wires(c: &Circuit<StgLabel>, wires: &[&str]) -> BTreeSet<StgLabel> {
    c.net()
        .alphabet()
        .iter()
        .filter(|l| l.signal_name().is_some_and(|s| wires.contains(&s.name())))
        .cloned()
        .collect()
}

#[test]
fn composition_rewires_the_interface() {
    let sc = as_circuit(&sender());
    let tc = as_circuit(&translator());
    let composed = sc.compose(&tc).expect("no shared outputs");
    // The interconnect wires became internal outputs; the environment
    // toggles stay inputs.
    for w in ["a0", "a1", "b0", "b1"] {
        let l = StgLabel::signal(w, cpn::stg::Edge::Rise);
        assert!(composed.outputs().contains(&l), "{w}+ is an output");
    }
    let rec = StgLabel::signal("rec", cpn::stg::Edge::Toggle);
    assert!(composed.inputs().contains(&rec), "rec~ stays an input");
    // n is the translator's output toward the sender: internal now.
    let n_plus = StgLabel::signal("n", cpn::stg::Edge::Rise);
    assert!(composed.outputs().contains(&n_plus));
}

#[test]
fn interconnect_abstraction_via_hide_prime() {
    // The fused interconnect forms shapes outside the contraction class
    // (both-sided consumers appear during iterated contraction), which
    // is precisely the case Section 5.3's hide' refinement covers:
    // relabel to ε, keep the structure.
    let sc = as_circuit(&sender());
    let tc = as_circuit(&translator());
    let composed = sc.compose(&tc).expect("no shared outputs");

    let interconnect = labels_of_wires(&composed, &["a0", "a1", "b0", "b1", "n"]);
    assert_eq!(interconnect.len(), 10, "five wires, rise and fall each");
    let abstracted = composed
        .hide_relabel(&interconnect, StgLabel::Dummy)
        .expect("all interconnect labels are outputs");

    // The abstracted circuit exposes no interconnect wires.
    for l in &interconnect {
        assert!(!abstracted.net().alphabet().contains(l));
        assert!(!abstracted.outputs().contains(l));
    }
    // Its visible language still runs the commands: rec~ then the
    // translator's response activity are reachable through ε steps.
    let lang = Language::from_net(abstracted.net(), 6, 2_000_000).expect("trace budget");
    let rec = StgLabel::signal("rec", cpn::stg::Edge::Toggle);
    assert!(
        lang.iter().any(|t| t.contains(&rec)),
        "commands still flow through the abstracted interconnect"
    );
}

#[test]
fn strict_hide_on_interconnect_is_rejected_not_wrong() {
    // The contraction operator refuses (rather than silently producing a
    // wrong net) when the interconnect's fused shapes exceed the
    // set-arc expressiveness.
    let sc = as_circuit(&sender());
    let tc = as_circuit(&translator());
    let composed = sc.compose(&tc).expect("no shared outputs");
    let interconnect = labels_of_wires(&composed, &["a0", "a1", "b0", "b1", "n"]);
    let result = composed.hide(&interconnect, 100_000);
    assert!(result.is_err(), "contraction must refuse, not corrupt");
}

#[test]
fn abstracted_circuit_stays_analyzable() {
    let sc = as_circuit(&sender());
    let tc = as_circuit(&translator());
    let composed = sc.compose(&tc).expect("no shared outputs");
    let interconnect = labels_of_wires(&composed, &["a0", "a1", "b0", "b1", "n"]);
    let abstracted = composed
        .hide_relabel(&interconnect, StgLabel::Dummy)
        .expect("relabel");
    let rg = abstracted
        .net()
        .reachability(&ReachabilityOptions::default())
        .expect("bounded");
    let analysis = abstracted.net().analysis(&rg);
    assert!(analysis.safe);
    assert!(analysis.deadlock_free);
    // Sanity: the signal type survived the round trip.
    let _ = Signal::new("a0");
}
