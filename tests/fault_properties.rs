//! Property tests for the robustness layer: seeded fault injection on
//! generated models, and the budget-monotonicity oracle for the
//! tri-state verdicts.
//!
//! Driven by the deterministic `cpn-testkit` harness: failures print a
//! case seed, replayable via `CPN_TESTKIT_SEED=<seed>`.

use cpn::petri::{Bounded, Budget, Verdict};
use cpn::sim::fault::{behavior_preserved, judge_mg_net};
use cpn::sim::{Detection, FaultClass, FaultPlan};
use cpn::trace::Language;
use cpn_testkit::{
    check_with, prop_assert, usize_in, Config, FaultStrategy, RingStrategy, StgStrategy,
};
use std::collections::BTreeSet;

fn cases() -> Config {
    let config = Config::from_env();
    if std::env::var("CPN_TESTKIT_CASES").is_ok() {
        config
    } else {
        config.with_cases(96)
    }
}

/// The net-level slice of the taxonomy (what applies to a bare ring).
const NET_CLASSES: [FaultClass; 4] = [
    FaultClass::TokenLoss,
    FaultClass::TokenDup,
    FaultClass::ArcDrop,
    FaultClass::ArcDup,
];

#[test]
fn ring_faults_detected_or_benign() {
    let strategy = (
        RingStrategy::new(2, 7, 1).live_safe(),
        FaultStrategy::new(NET_CLASSES.len(), 8),
    );
    check_with(
        "ring_faults_detected_or_benign",
        &cases(),
        &strategy,
        |(ring, pick)| {
            let net = ring.build();
            let class = NET_CLASSES[pick.class];
            let plan = FaultPlan::new(0xFA01);
            let Some((mutant, fault)) = plan.mutate_net(class, &net, pick.trial) else {
                // Inapplicable (e.g. nothing to mutate on this ring).
                return Ok(());
            };
            let detection = judge_mg_net(&net, &mutant);
            prop_assert!(
                detection.is_accounted(),
                "missed fault on ring n={}: {fault}",
                ring.n
            );
            // A detection must never fire on a provably unchanged net.
            if let Detection::Benign { .. } = detection {
                prop_assert!(
                    behavior_preserved(&net, &mutant).is_some(),
                    "benign verdict without a preservation proof"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn stg_faults_deterministic_per_seed() {
    // The same (seed, class, trial) triple applied twice produces the
    // same mutation — the replayability contract of FaultPlan.
    let strategy = (StgStrategy::new(4, 4), FaultStrategy::new(8, 4));
    check_with(
        "stg_faults_deterministic_per_seed",
        &cases(),
        &strategy,
        |(raw, pick)| {
            let stg = raw.build();
            let class = FaultClass::ALL[pick.class];
            let plan = FaultPlan::new(0xFA02);
            let a = plan.mutate_stg(class, &stg, pick.trial);
            let b = plan.mutate_stg(class, &stg, pick.trial);
            match (a, b) {
                (Some((na, fa)), Some((nb, fb))) => {
                    prop_assert!(fa.description == fb.description, "fault drifted");
                    prop_assert!(
                        na.net().transition_count() == nb.net().transition_count(),
                        "mutant drifted"
                    );
                }
                (None, None) => {}
                _ => prop_assert!(false, "applicability drifted"),
            }
            Ok(())
        },
    );
}

/// A ring pair sharing its labels: producer and consumer synchronize on
/// every transition, so receptiveness of the pair is exactly phase
/// agreement.
fn ring_pair(
    stages: usize,
    offset: usize,
) -> (cpn::petri::PetriNet<String>, cpn::petri::PetriNet<String>) {
    let mk = |start: usize, prefix: &str| {
        let mut net: cpn::petri::PetriNet<String> = cpn::petri::PetriNet::new();
        let ps: Vec<_> = (0..stages)
            .map(|i| net.add_place(format!("{prefix}{i}")))
            .collect();
        for i in 0..stages {
            net.add_transition([ps[i]], format!("x{i}"), [ps[(i + 1) % stages]])
                .unwrap();
        }
        net.set_initial(ps[start % stages], 1);
        net
    };
    (mk(0, "a"), mk(offset, "b"))
}

#[test]
fn tiny_budget_verdicts_never_contradict_large_ones() {
    let strategy = (usize_in(2..8), usize_in(0..8), usize_in(1..12));
    check_with(
        "tiny_budget_verdicts_never_contradict_large_ones",
        &cases(),
        &strategy,
        |&(stages, offset, tiny)| {
            let (p, c) = ring_pair(stages, offset);
            let outputs: BTreeSet<String> = (0..stages).map(|i| format!("x{i}")).collect();
            let small = cpn::core::check_receptiveness_bounded(
                &p,
                &c,
                &outputs,
                &BTreeSet::new(),
                &Budget::states(tiny),
            )
            .unwrap();
            let large = cpn::core::check_receptiveness_bounded(
                &p,
                &c,
                &outputs,
                &BTreeSet::new(),
                &Budget::default(),
            )
            .unwrap();
            prop_assert!(
                small.agrees_with(&large),
                "verdict flipped: tiny budget {tiny} said {small}, full budget said {large}"
            );
            // The large budget is decisive on these small models.
            prop_assert!(!large.is_unknown(), "reference verdict must be definite");
            // And definite small-budget verdicts must match exactly.
            if !small.is_unknown() {
                prop_assert!(small.holds() == large.holds(), "definite verdicts disagree");
            }
            Ok(())
        },
    );
}

#[test]
fn partial_languages_are_prefixes_of_complete_ones() {
    let strategy = (RingStrategy::new(2, 6, 1).live_safe(), usize_in(1..6));
    check_with(
        "partial_languages_are_prefixes_of_complete_ones",
        &cases(),
        &strategy,
        |(ring, tiny)| {
            let net = ring.build();
            let depth = 4;
            let full = Language::from_net_bounded(&net, depth, &Budget::default())
                .complete()
                .expect("rings are tiny");
            match Language::from_net_bounded(&net, depth, &Budget::states(*tiny)) {
                Bounded::Complete(lang) => {
                    prop_assert!(lang.eq_up_to(&full, depth), "complete result must be exact")
                }
                Bounded::Exhausted { partial, info } => {
                    prop_assert!(
                        partial.iter().all(|t| full.contains(&t)),
                        "partial language invented a trace (stopped at {info})"
                    );
                }
            }
            Ok(())
        },
    );
}

/// Structural-and-semantic net equality that does not depend on interner
/// layout: the symbolized rebuild clones the original's interner while
/// the generic reference re-interns from scratch, so raw `Sym` values
/// may differ even when the nets are the same.
fn assert_net_equiv<L: cpn::petri::Label + std::fmt::Debug>(
    a: &cpn::petri::PetriNet<L>,
    b: &cpn::petri::PetriNet<L>,
    what: &str,
) {
    assert_eq!(a.place_count(), b.place_count(), "{what}: place count");
    let (ma, mb) = (a.initial_marking(), b.initial_marking());
    for ((pa, la), (pb, lb)) in a.places().zip(b.places()) {
        assert_eq!(la.name(), lb.name(), "{what}: place name");
        assert_eq!(ma.tokens(pa), mb.tokens(pb), "{what}: initial tokens");
    }
    assert_eq!(
        a.transition_count(),
        b.transition_count(),
        "{what}: transition count"
    );
    for ((ta, tra), (tb, trb)) in a.transitions().zip(b.transitions()) {
        assert_eq!(a.label_of(ta), b.label_of(tb), "{what}: label");
        assert_eq!(tra.preset(), trb.preset(), "{what}: preset");
        assert_eq!(tra.postset(), trb.postset(), "{what}: postset");
    }
    assert_eq!(a.alphabet(), b.alphabet(), "{what}: alphabet");
}

fn assert_stg_equiv(a: &cpn::stg::Stg, b: &cpn::stg::Stg, what: &str) {
    assert_net_equiv(a.net(), b.net(), what);
    assert_eq!(a.signals(), b.signals(), "{what}: signal declarations");
    for (t, _) in a.net().transitions() {
        assert_eq!(a.guard(t), b.guard(t), "{what}: guard of {t:?}");
    }
}

#[test]
fn symbolized_injectors_match_generic_reference() {
    // The symbolized rebuild path (interner-sharing, `Sym`-keyed scans)
    // must be observably identical to the retired generic path for the
    // same (seed, class, trial): same applicability, same mutation site,
    // same mutant. The generic path is kept under `fault::reference`
    // exactly as this differential oracle.
    use cpn::sim::fault::reference;

    let plan = FaultPlan::new(0xFA03);
    let stg_models = [
        ("sender", cpn::stg::protocol::sender()),
        ("translator", cpn::stg::protocol::translator()),
        ("receiver", cpn::stg::protocol::receiver()),
    ];
    for (name, stg) in &stg_models {
        for trial in 0..8u64 {
            for class in [FaultClass::EdgeFlip, FaultClass::StuckWire] {
                let new = plan.mutate_stg(class, stg, trial);
                let mut rng = plan.rng_for(class, trial);
                let old = match class {
                    FaultClass::EdgeFlip => reference::inject_edge_flip(stg, &mut rng),
                    _ => reference::inject_stuck_wire(stg, &mut rng),
                };
                match (new, old) {
                    (Some((sn, fn_)), Some((so, fo))) => {
                        assert_eq!(fn_.description, fo.description, "{name}/{class}/{trial}");
                        assert_stg_equiv(&sn, &so, &format!("{name}/{class}/{trial}"));
                    }
                    (None, None) => {}
                    (n, o) => panic!(
                        "{name}/{class}/{trial}: applicability drifted (new {:?}, old {:?})",
                        n.is_some(),
                        o.is_some()
                    ),
                }
            }
        }
    }

    // Net-level arc classes over live-safe rings of several sizes.
    for n in 2..7usize {
        let ring = cpn_testkit::RawRing {
            n,
            marks: (0..n).map(|i| u32::from(i == 0)).collect(),
        };
        let net = ring.build();
        for trial in 0..8u64 {
            for class in [FaultClass::ArcDrop, FaultClass::ArcDup] {
                let new = plan.mutate_net(class, &net, trial);
                let mut rng = plan.rng_for(class, trial);
                let old = match class {
                    FaultClass::ArcDrop => reference::inject_arc_drop(&net, &mut rng),
                    _ => reference::inject_arc_dup(&net, &mut rng),
                };
                match (new, old) {
                    (Some((nn, fn_)), Some((no, fo))) => {
                        assert_eq!(fn_.description, fo.description, "ring{n}/{class}/{trial}");
                        assert_net_equiv(&nn, &no, &format!("ring{n}/{class}/{trial}"));
                    }
                    (None, None) => {}
                    _ => panic!("ring{n}/{class}/{trial}: applicability drifted"),
                }
            }
        }
    }
}

#[test]
fn unknown_verdict_reports_spent_budget() {
    // Exhaustion statistics are part of the degradation contract: an
    // Unknown must say how much was explored and which cap was hit.
    let (p, c) = ring_pair(6, 0);
    let outputs: BTreeSet<String> = (0..6).map(|i| format!("x{i}")).collect();
    let verdict = cpn::core::check_receptiveness_bounded(
        &p,
        &c,
        &outputs,
        &BTreeSet::new(),
        &Budget::states(2),
    )
    .unwrap();
    let Verdict::Unknown(info) = verdict else {
        panic!("budget of 2 states cannot decide a 6-stage ring: {verdict}");
    };
    assert!(info.states_explored >= 1);
    assert_eq!(info.budget.max_states, 2);
}
