//! Differential property suite for the interned alphabet layer.
//!
//! Every symbolized hot path must agree with a *generic* reference
//! computed at the label level: traces are materialized to `Vec<L>`,
//! filtered/combined with plain `BTreeSet<L>` operations, and only then
//! compared against what the `Sym`-encoded pipeline produced. The suite
//! covers
//!
//! * hiding: the symbolized contraction engine vs the single-step
//!   rebuild reference, across a contraction-budget sweep (exercising
//!   the `Bounded::Exhausted` prefixes) on safe *and* non-safe nets;
//! * projection: `Language::project`/`project_syms` vs label-level
//!   trace filtering, and net-level [`project`] vs language projection;
//! * parallel composition: `L(N1‖N2)` vs the Theorem 4.5 set
//!   `{t over A1∪A2 : t|A1 ∈ L(N1), t|A2 ∈ L(N2)}` enumerated
//!   generically;
//! * `Language` set ops (`union`, `intersection`) vs label-level set
//!   algebra, across interners that number the same labels differently.
//!
//! All randomized cases replay under `CPN_TESTKIT_SEED`.

use cpn_core::{
    common_alphabet, hide_labels_bounded, hide_labels_bounded_legacy, parallel, project,
    rename_injective,
};
use cpn_petri::{Budget, PetriNet};
use cpn_testkit::{check, prop_assert, prop_assume, NetStrategy, PropFail, PropResult, RawNet};
use cpn_trace::Language;
use std::collections::{BTreeMap, BTreeSet};

const LABELS: [&str; 4] = ["a", "b", "c", "tau"];
const DEPTH: usize = 3;
const TRACE_BUDGET: usize = 200_000;

fn strategy(max_places: usize, max_transitions: usize) -> NetStrategy {
    NetStrategy::new(max_places, max_transitions, LABELS.len())
}

fn build(raw: &RawNet) -> PetriNet<&'static str> {
    raw.build_labels(&LABELS)
}

fn lang(net: &PetriNet<&'static str>, depth: usize) -> Option<Language<&'static str>> {
    Language::from_net(net, depth, TRACE_BUDGET).ok()
}

/// The label-level view of a language: owned traces, no symbols.
fn label_traces(l: &Language<&'static str>) -> BTreeSet<Vec<&'static str>> {
    l.iter().collect()
}

/// Rebuilds a net with its transitions added in **reverse** order, so
/// the rebuilt net's interner numbers the labels differently whenever
/// the original used two or more. The language is unchanged.
fn rebuilt_reversed(net: &PetriNet<&'static str>) -> PetriNet<&'static str> {
    let mut out: PetriNet<&'static str> = PetriNet::new();
    let m0 = net.initial_marking();
    for (old, place) in net.places() {
        let p = out.add_place(place.name().to_owned());
        out.set_initial(p, m0.tokens(old));
    }
    let recs: Vec<_> = net.transitions().collect();
    for (tid, t) in recs.into_iter().rev() {
        out.add_transition(
            t.preset().iter().copied(),
            *net.label_of(tid),
            t.postset().iter().copied(),
        )
        .expect("same arcs, same places");
    }
    for l in net.alphabet() {
        let s = out.intern_label(&l);
        out.declare_sym(s);
    }
    out
}

// ---------------------------------------------------------------------
// Hiding: symbolized engine vs generic reference, budget sweep.
// ---------------------------------------------------------------------

fn law_hide_sweep_matches_reference(raw: &RawNet) -> PropResult {
    let net = build(raw);
    for labels in [BTreeSet::from(["tau"]), BTreeSet::from(["c", "tau"])] {
        for cap in [0usize, 1, 2, 3, 200] {
            let budget = Budget::new(usize::MAX, cap);
            let symbolized = hide_labels_bounded(&net, &labels, &budget);
            let reference = hide_labels_bounded_legacy(&net, &labels, &budget);
            match (symbolized, reference) {
                (Ok(s), Ok(r)) => prop_assert!(
                    s == r,
                    "symbolized hide diverged on\n{net}\nhide {labels:?} cap {cap}\nsym: {s:?}\nref: {r:?}"
                ),
                (Err(_), Err(_)) => {}
                (s, r) => {
                    return Err(PropFail::Fail(format!(
                        "one hide path failed where the other succeeded on\n{net}\nsym: {s:?}\nref: {r:?}"
                    )))
                }
            }
        }
    }
    Ok(())
}

#[test]
fn hide_sweep_matches_reference_on_safe_nets() {
    check(
        "hide_sweep_matches_reference_on_safe_nets",
        &strategy(4, 4),
        law_hide_sweep_matches_reference,
    );
}

#[test]
fn hide_sweep_matches_reference_on_nonsafe_nets() {
    check(
        "hide_sweep_matches_reference_on_nonsafe_nets",
        &strategy(4, 4).max_tokens(3),
        law_hide_sweep_matches_reference,
    );
}

// ---------------------------------------------------------------------
// Projection: bitset path vs label-level filtering.
// ---------------------------------------------------------------------

fn law_language_project_matches_label_filter(raw: &RawNet) -> PropResult {
    let net = build(raw);
    let Some(l) = lang(&net, DEPTH) else {
        return Err(PropFail::Discard);
    };
    for keep in [
        BTreeSet::from(["a"]),
        BTreeSet::from(["a", "b"]),
        BTreeSet::from(["a", "b", "c"]),
        BTreeSet::new(),
    ] {
        let projected = l.project(&keep);
        // Generic reference: filter the label traces directly.
        let reference: BTreeSet<Vec<&'static str>> = label_traces(&l)
            .into_iter()
            .map(|t| t.into_iter().filter(|x| keep.contains(x)).collect())
            .collect();
        prop_assert!(
            label_traces(&projected) == reference,
            "project({keep:?}) diverged from label-level filtering on\n{net}"
        );
        let expected_alphabet: BTreeSet<&'static str> =
            net.alphabet().intersection(&keep).copied().collect();
        prop_assert!(
            projected.alphabet() == expected_alphabet,
            "projected alphabet wrong for keep {keep:?} on\n{net}"
        );
        // project_syms is the same operation, symbol-encoded end to end.
        let keep_syms = keep.iter().filter_map(|x| l.interner().get(x)).collect();
        prop_assert!(
            projected == l.project_syms(&keep_syms),
            "project and project_syms disagree for {keep:?} on\n{net}"
        );
    }
    Ok(())
}

#[test]
fn language_projection_matches_label_filtering() {
    check(
        "language_projection_matches_label_filtering",
        &strategy(4, 4),
        law_language_project_matches_label_filter,
    );
}

#[test]
fn language_projection_matches_label_filtering_nonsafe() {
    check(
        "language_projection_matches_label_filtering_nonsafe",
        &strategy(4, 4).max_tokens(3),
        law_language_project_matches_label_filter,
    );
}

/// Net-level projection (contraction of everything outside `keep`) must
/// agree with language-level projection when the hide succeeds — the
/// paper's `L(hide(N, A)) = hide(L(N), A)`.
fn law_net_project_matches_language_project(raw: &RawNet) -> PropResult {
    let net = build(raw);
    let keep = BTreeSet::from(["a", "b"]);
    let Ok(projected_net) = project(&net, &keep, 200) else {
        return Err(PropFail::Discard);
    };
    let (Some(l_proj), Some(l_full)) = (lang(&projected_net, DEPTH), lang(&net, DEPTH)) else {
        return Err(PropFail::Discard);
    };
    // Sound at equal depth: projecting a depth-D trace yields a trace of
    // length ≤ D, which the projected net must accept.
    prop_assert!(
        l_full.project(&keep).subset_up_to(&l_proj, DEPTH),
        "projection of L(N) escapes L(project(N)) on\n{net}\nprojected\n{projected_net}"
    );
    // The converse needs deeper exploration of the original: a length-3
    // projected trace may stem from a longer original trace whose extra
    // events are all hidden. 3 hidden events per visible one covers the
    // generated nets (≤ 4 transitions, no hidden cycles — those error).
    let deep = DEPTH + 3 * net.transition_count();
    let Some(l_deep) = lang(&net, deep) else {
        return Err(PropFail::Discard);
    };
    prop_assert!(
        l_proj.eq_up_to(&l_deep.project(&keep), DEPTH),
        "net projection diverged from language projection on\n{net}\nprojected\n{projected_net}"
    );
    Ok(())
}

#[test]
fn net_projection_matches_language_projection() {
    check(
        "net_projection_matches_language_projection",
        &strategy(4, 4),
        law_net_project_matches_language_project,
    );
}

// ---------------------------------------------------------------------
// Parallel composition: Theorem 4.5 enumerated generically.
// ---------------------------------------------------------------------

/// All traces over `alphabet` of length ≤ depth, by plain enumeration.
fn all_traces(alphabet: &BTreeSet<&'static str>, depth: usize) -> Vec<Vec<&'static str>> {
    let mut out: Vec<Vec<&'static str>> = vec![Vec::new()];
    let mut frontier = out.clone();
    for _ in 0..depth {
        let mut next = Vec::new();
        for t in &frontier {
            for l in alphabet {
                let mut ext = t.clone();
                ext.push(l);
                next.push(ext);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

fn law_parallel_matches_theorem_4_5(raw: &RawNet) -> PropResult {
    // The same structure under two label sets: the alphabets overlap on
    // {c, tau} (synchronized) and differ elsewhere (interleaved), and
    // the two interners number the shared labels differently.
    let n1 = build(raw);
    let n2 = raw.build_labels(&["c", "tau", "d", "e"]);
    let Ok(composed) = parallel(&n1, &n2) else {
        return Err(PropFail::Discard);
    };
    let (Some(lc), Some(l1), Some(l2)) =
        (lang(&composed, DEPTH), lang(&n1, DEPTH), lang(&n2, DEPTH))
    else {
        return Err(PropFail::Discard);
    };
    let a1 = n1.alphabet();
    let a2 = n2.alphabet();
    let union: BTreeSet<&'static str> = a1.union(&a2).copied().collect();
    prop_assume!(!union.is_empty());
    // Generic membership test: project at the label level and ask the
    // component languages.
    let t1 = label_traces(&l1);
    let t2 = label_traces(&l2);
    let reference: BTreeSet<Vec<&'static str>> = all_traces(&union, DEPTH)
        .into_iter()
        .filter(|t| {
            let p1: Vec<&'static str> = t.iter().copied().filter(|x| a1.contains(x)).collect();
            let p2: Vec<&'static str> = t.iter().copied().filter(|x| a2.contains(x)).collect();
            p1.len() <= DEPTH && p2.len() <= DEPTH && t1.contains(&p1) && t2.contains(&p2)
        })
        .collect();
    prop_assert!(
        label_traces(&lc) == reference,
        "Theorem 4.5 failed on\n{n1}\n‖\n{n2}\ncommon {:?}",
        common_alphabet(&n1, &n2)
    );
    // The symbolized language-level composition agrees too.
    prop_assert!(
        lc.eq_up_to(&l1.parallel(&l2), DEPTH),
        "L(N1‖N2) != L(N1)‖L(N2) on\n{n1}\n‖\n{n2}"
    );
    Ok(())
}

#[test]
fn parallel_matches_theorem_4_5() {
    let s = strategy(3, 3);
    check("parallel_matches_theorem_4_5", &s, |raw| {
        law_parallel_matches_theorem_4_5(raw)
    });
}

#[test]
fn parallel_matches_theorem_4_5_nonsafe() {
    let s = strategy(3, 3).max_tokens(2);
    check("parallel_matches_theorem_4_5_nonsafe", &s, |raw| {
        law_parallel_matches_theorem_4_5(raw)
    });
}

// ---------------------------------------------------------------------
// Language set ops across differently-numbered interners.
// ---------------------------------------------------------------------

fn law_set_ops_are_interner_independent(raw: &RawNet) -> PropResult {
    let net = build(raw);
    let rev = rebuilt_reversed(&net);
    let (Some(l), Some(lr)) = (lang(&net, DEPTH), lang(&rev, DEPTH)) else {
        return Err(PropFail::Discard);
    };
    // Same language, different symbol numbering.
    prop_assert!(l == lr, "reversed rebuild changed the language on\n{net}");
    // Union/intersection with a differently-interned operand must equal
    // the label-level set algebra.
    let tl = label_traces(&l);
    let tr = label_traces(&lr);
    let u = l.union(&lr);
    let i = l.intersection(&lr);
    let ref_union: BTreeSet<Vec<&'static str>> = tl.union(&tr).cloned().collect();
    let ref_inter: BTreeSet<Vec<&'static str>> = tl.intersection(&tr).cloned().collect();
    prop_assert!(
        label_traces(&u) == ref_union,
        "union diverged from label-level reference on\n{net}"
    );
    prop_assert!(
        label_traces(&i) == ref_inter,
        "intersection diverged from label-level reference on\n{net}"
    );
    // Hide is projection's complement; check it against project.
    let hidden = BTreeSet::from(["tau"]);
    let keep: BTreeSet<&'static str> = net
        .alphabet()
        .into_iter()
        .filter(|x| !hidden.contains(x))
        .collect();
    prop_assert!(
        l.hide(&hidden) == l.project(&keep),
        "hide({hidden:?}) != project(complement) on\n{net}"
    );
    Ok(())
}

#[test]
fn set_ops_are_interner_independent() {
    check(
        "set_ops_are_interner_independent",
        &strategy(4, 4),
        law_set_ops_are_interner_independent,
    );
}

#[test]
fn set_ops_are_interner_independent_nonsafe() {
    check(
        "set_ops_are_interner_independent_nonsafe",
        &strategy(4, 4).max_tokens(3),
        law_set_ops_are_interner_independent,
    );
}

// ---------------------------------------------------------------------
// Named regression: common_alphabet across disjoint interners.
// ---------------------------------------------------------------------

#[test]
fn common_alphabet_resolves_across_interners() {
    // n1 interns b then a; n2 interns a then c. The common alphabet is
    // {a} even though "a" is Sym(1) on the left and Sym(0) on the right.
    let mut n1: PetriNet<&str> = PetriNet::new();
    let p = n1.add_place("p");
    n1.add_transition([p], "b", [p]).unwrap();
    n1.add_transition([p], "a", [p]).unwrap();
    n1.set_initial(p, 1);
    let mut n2: PetriNet<&str> = PetriNet::new();
    let q = n2.add_place("q");
    n2.add_transition([q], "a", [q]).unwrap();
    n2.add_transition([q], "c", [q]).unwrap();
    n2.set_initial(q, 1);
    assert_eq!(common_alphabet(&n1, &n2), BTreeSet::from(["a"]));
    assert_eq!(common_alphabet(&n2, &n1), BTreeSet::from(["a"]));
}

// ---------------------------------------------------------------------
// Named regressions: injective renaming and cross-interner equality
// edge cases — colliding labels, empty alphabets, non-ASCII labels.
// ---------------------------------------------------------------------

fn ab_cycle() -> PetriNet<&'static str> {
    let mut net: PetriNet<&str> = PetriNet::new();
    let p = net.add_place("p");
    let q = net.add_place("q");
    net.add_transition([p], "a", [q]).unwrap();
    net.add_transition([q], "b", [p]).unwrap();
    net.set_initial(p, 1);
    net
}

#[test]
fn rename_injective_rejects_collapsing_maps() {
    let net = ab_cycle();

    // Two alphabet keys funnelled onto one value collapse {a, b}.
    let err = rename_injective(&net, &BTreeMap::from([("a", "x"), ("b", "x")]))
        .expect_err("a and b both map to x");
    assert!(
        matches!(&err, cpn_petri::PetriError::Precondition(m) if m.contains('x')),
        "wrong error: {err}"
    );

    // A value colliding with an alphabet label the map leaves fixed is
    // the sneaky collapse: {a → b} merges a into the existing b.
    let err = rename_injective(&net, &BTreeMap::from([("a", "b")]))
        .expect_err("a maps onto the unrenamed b");
    assert!(
        matches!(&err, cpn_petri::PetriError::Precondition(m) if m.contains('b')),
        "wrong error: {err}"
    );

    // A swap is injective: both labels move, nothing merges. The traces
    // are exactly the originals with the two labels exchanged.
    let swapped = rename_injective(&net, &BTreeMap::from([("a", "b"), ("b", "a")])).unwrap();
    let l = lang(&net, DEPTH).unwrap();
    let ls = lang(&swapped, DEPTH).unwrap();
    let reference: BTreeSet<Vec<&'static str>> = label_traces(&l)
        .into_iter()
        .map(|t| {
            t.into_iter()
                .map(|x| match x {
                    "a" => "b",
                    "b" => "a",
                    other => other,
                })
                .collect()
        })
        .collect();
    assert_eq!(label_traces(&ls), reference, "swap is not a pure relabel");

    // Keys outside the alphabet rename nothing and never collide — even
    // when their value is an existing label.
    let noop = rename_injective(&net, &BTreeMap::from([("z", "b")])).unwrap();
    assert_eq!(lang(&noop, DEPTH).unwrap(), l, "out-of-alphabet key acted");

    // Renaming onto a fresh label is always fine and keeps the traces.
    let fresh = rename_injective(&net, &BTreeMap::from([("a", "z")])).unwrap();
    assert!(fresh.alphabet().contains(&"z") && !fresh.alphabet().contains(&"a"));
}

#[test]
fn rename_injective_round_trips_non_ascii_labels() {
    // Nothing in the interner or the rename path may assume ASCII or
    // single-byte labels.
    let mut net: PetriNet<String> = PetriNet::new();
    let p = net.add_place("π");
    let q = net.add_place("ρ");
    net.add_transition([p], "σ↑".to_owned(), [q]).unwrap();
    net.add_transition([q], "τ₀".to_owned(), [p]).unwrap();
    net.set_initial(p, 1);

    // Collision detection sees multi-byte labels like any other.
    let err = rename_injective(&net, &BTreeMap::from([("σ↑".to_owned(), "τ₀".to_owned())]))
        .expect_err("σ↑ maps onto the unrenamed τ₀");
    assert!(
        matches!(&err, cpn_petri::PetriError::Precondition(m) if m.contains("τ₀")),
        "wrong error: {err}"
    );

    // There and back again: the round trip restores the exact language
    // even though the final interner numbered the labels afresh.
    let there =
        rename_injective(&net, &BTreeMap::from([("σ↑".to_owned(), "σ↓".to_owned())])).unwrap();
    assert!(there.alphabet().contains("σ↓"));
    let back = rename_injective(
        &there,
        &BTreeMap::from([("σ↓".to_owned(), "σ↑".to_owned())]),
    )
    .unwrap();
    let l0 = Language::from_net(&net, DEPTH, TRACE_BUDGET).unwrap();
    let l2 = Language::from_net(&back, DEPTH, TRACE_BUDGET).unwrap();
    assert_eq!(l0, l2, "rename round trip changed the language");
}

#[test]
fn language_equality_tracks_alphabets_not_numbering() {
    // Numbering alone never distinguishes: the reversed rebuild interns
    // the same labels in the opposite order.
    let net = ab_cycle();
    let l = lang(&net, DEPTH).unwrap();
    let lr = lang(&rebuilt_reversed(&net), DEPTH).unwrap();
    assert_eq!(l, lr, "symbol numbering leaked into equality");
    // But the interners themselves are order-sensitive by design.
    assert!(
        net.interner().get(&"a") != rebuilt_reversed(&net).interner().get(&"a"),
        "reversed rebuild failed to renumber"
    );

    // Alphabets do distinguish, even with identical trace sets: a dead
    // transition contributes its label to the alphabet and nothing else.
    let mut with_dead = ab_cycle();
    let dead = with_dead.add_place("dead");
    with_dead.add_transition([dead], "c", [dead]).unwrap();
    let ld = lang(&with_dead, DEPTH).unwrap();
    assert_eq!(
        label_traces(&ld),
        label_traces(&l),
        "dead transition fired somehow"
    );
    assert!(l != ld, "alphabet difference {{c}} must break equality");
}

#[test]
fn empty_alphabet_languages_compare_equal() {
    // Transition-free nets have the one-trace language {ε} over an empty
    // alphabet — regardless of place structure or interner contents.
    let mut n1: PetriNet<&str> = PetriNet::new();
    let p = n1.add_place("p");
    n1.set_initial(p, 1);
    let mut n2: PetriNet<&str> = PetriNet::new();
    n2.add_place("x");
    n2.add_place("y");
    // Interned but never declared: the interner is non-empty while the
    // alphabet stays empty. Equality must look at the alphabet.
    n2.intern_label(&"ghost");

    let l1 = lang(&n1, DEPTH).unwrap();
    let l2 = lang(&n2, DEPTH).unwrap();
    assert_eq!(label_traces(&l1), BTreeSet::from([Vec::new()]));
    assert_eq!(l1, l2, "empty-alphabet languages diverged");
    assert!(l1.alphabet().is_empty() && l2.alphabet().is_empty());

    // Hiding or projecting nothing on an empty language is the identity.
    assert_eq!(l1.hide(&BTreeSet::new()), l1);
    assert_eq!(l1.project(&BTreeSet::new()), l1);
}

#[test]
fn alpha_set_equality_ignores_capacity() {
    use cpn_petri::{AlphaSet, Sym};
    // Two sets holding {0, 3}, one built after touching symbol 131 (three
    // words of backing storage), one never grown past a single word.
    let mut small = AlphaSet::new();
    small.insert(Sym::from_index(0));
    small.insert(Sym::from_index(3));
    let mut big = AlphaSet::new();
    big.insert(Sym::from_index(131));
    big.insert(Sym::from_index(0));
    big.insert(Sym::from_index(3));
    assert!(small != big);
    assert!(big.remove(Sym::from_index(131)), "131 was inserted");
    assert_eq!(small, big, "trailing zero words leaked into equality");
    assert_eq!(small.len(), 2);
}
