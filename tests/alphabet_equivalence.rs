//! Differential property suite for the interned alphabet layer.
//!
//! Every symbolized hot path must agree with a *generic* reference
//! computed at the label level: traces are materialized to `Vec<L>`,
//! filtered/combined with plain `BTreeSet<L>` operations, and only then
//! compared against what the `Sym`-encoded pipeline produced. The suite
//! covers
//!
//! * hiding: the symbolized contraction engine vs the single-step
//!   rebuild reference, across a contraction-budget sweep (exercising
//!   the `Bounded::Exhausted` prefixes) on safe *and* non-safe nets;
//! * projection: `Language::project`/`project_syms` vs label-level
//!   trace filtering, and net-level [`project`] vs language projection;
//! * parallel composition: `L(N1‖N2)` vs the Theorem 4.5 set
//!   `{t over A1∪A2 : t|A1 ∈ L(N1), t|A2 ∈ L(N2)}` enumerated
//!   generically;
//! * `Language` set ops (`union`, `intersection`) vs label-level set
//!   algebra, across interners that number the same labels differently.
//!
//! All randomized cases replay under `CPN_TESTKIT_SEED`.

use cpn_core::{
    common_alphabet, hide_labels_bounded, hide_labels_bounded_legacy, parallel, project,
};
use cpn_petri::{Budget, PetriNet};
use cpn_testkit::{check, prop_assert, prop_assume, NetStrategy, PropFail, PropResult, RawNet};
use cpn_trace::Language;
use std::collections::BTreeSet;

const LABELS: [&str; 4] = ["a", "b", "c", "tau"];
const DEPTH: usize = 3;
const TRACE_BUDGET: usize = 200_000;

fn strategy(max_places: usize, max_transitions: usize) -> NetStrategy {
    NetStrategy::new(max_places, max_transitions, LABELS.len())
}

fn build(raw: &RawNet) -> PetriNet<&'static str> {
    raw.build_labels(&LABELS)
}

fn lang(net: &PetriNet<&'static str>, depth: usize) -> Option<Language<&'static str>> {
    Language::from_net(net, depth, TRACE_BUDGET).ok()
}

/// The label-level view of a language: owned traces, no symbols.
fn label_traces(l: &Language<&'static str>) -> BTreeSet<Vec<&'static str>> {
    l.iter().collect()
}

/// Rebuilds a net with its transitions added in **reverse** order, so
/// the rebuilt net's interner numbers the labels differently whenever
/// the original used two or more. The language is unchanged.
fn rebuilt_reversed(net: &PetriNet<&'static str>) -> PetriNet<&'static str> {
    let mut out: PetriNet<&'static str> = PetriNet::new();
    let m0 = net.initial_marking();
    for (old, place) in net.places() {
        let p = out.add_place(place.name().to_owned());
        out.set_initial(p, m0.tokens(old));
    }
    let recs: Vec<_> = net.transitions().collect();
    for (tid, t) in recs.into_iter().rev() {
        out.add_transition(
            t.preset().iter().copied(),
            *net.label_of(tid),
            t.postset().iter().copied(),
        )
        .expect("same arcs, same places");
    }
    for l in net.alphabet() {
        let s = out.intern_label(&l);
        out.declare_sym(s);
    }
    out
}

// ---------------------------------------------------------------------
// Hiding: symbolized engine vs generic reference, budget sweep.
// ---------------------------------------------------------------------

fn law_hide_sweep_matches_reference(raw: &RawNet) -> PropResult {
    let net = build(raw);
    for labels in [BTreeSet::from(["tau"]), BTreeSet::from(["c", "tau"])] {
        for cap in [0usize, 1, 2, 3, 200] {
            let budget = Budget::new(usize::MAX, cap);
            let symbolized = hide_labels_bounded(&net, &labels, &budget);
            let reference = hide_labels_bounded_legacy(&net, &labels, &budget);
            match (symbolized, reference) {
                (Ok(s), Ok(r)) => prop_assert!(
                    s == r,
                    "symbolized hide diverged on\n{net}\nhide {labels:?} cap {cap}\nsym: {s:?}\nref: {r:?}"
                ),
                (Err(_), Err(_)) => {}
                (s, r) => {
                    return Err(PropFail::Fail(format!(
                        "one hide path failed where the other succeeded on\n{net}\nsym: {s:?}\nref: {r:?}"
                    )))
                }
            }
        }
    }
    Ok(())
}

#[test]
fn hide_sweep_matches_reference_on_safe_nets() {
    check(
        "hide_sweep_matches_reference_on_safe_nets",
        &strategy(4, 4),
        law_hide_sweep_matches_reference,
    );
}

#[test]
fn hide_sweep_matches_reference_on_nonsafe_nets() {
    check(
        "hide_sweep_matches_reference_on_nonsafe_nets",
        &strategy(4, 4).max_tokens(3),
        law_hide_sweep_matches_reference,
    );
}

// ---------------------------------------------------------------------
// Projection: bitset path vs label-level filtering.
// ---------------------------------------------------------------------

fn law_language_project_matches_label_filter(raw: &RawNet) -> PropResult {
    let net = build(raw);
    let Some(l) = lang(&net, DEPTH) else {
        return Err(PropFail::Discard);
    };
    for keep in [
        BTreeSet::from(["a"]),
        BTreeSet::from(["a", "b"]),
        BTreeSet::from(["a", "b", "c"]),
        BTreeSet::new(),
    ] {
        let projected = l.project(&keep);
        // Generic reference: filter the label traces directly.
        let reference: BTreeSet<Vec<&'static str>> = label_traces(&l)
            .into_iter()
            .map(|t| t.into_iter().filter(|x| keep.contains(x)).collect())
            .collect();
        prop_assert!(
            label_traces(&projected) == reference,
            "project({keep:?}) diverged from label-level filtering on\n{net}"
        );
        let expected_alphabet: BTreeSet<&'static str> =
            net.alphabet().intersection(&keep).copied().collect();
        prop_assert!(
            projected.alphabet() == expected_alphabet,
            "projected alphabet wrong for keep {keep:?} on\n{net}"
        );
        // project_syms is the same operation, symbol-encoded end to end.
        let keep_syms = keep.iter().filter_map(|x| l.interner().get(x)).collect();
        prop_assert!(
            projected == l.project_syms(&keep_syms),
            "project and project_syms disagree for {keep:?} on\n{net}"
        );
    }
    Ok(())
}

#[test]
fn language_projection_matches_label_filtering() {
    check(
        "language_projection_matches_label_filtering",
        &strategy(4, 4),
        law_language_project_matches_label_filter,
    );
}

#[test]
fn language_projection_matches_label_filtering_nonsafe() {
    check(
        "language_projection_matches_label_filtering_nonsafe",
        &strategy(4, 4).max_tokens(3),
        law_language_project_matches_label_filter,
    );
}

/// Net-level projection (contraction of everything outside `keep`) must
/// agree with language-level projection when the hide succeeds — the
/// paper's `L(hide(N, A)) = hide(L(N), A)`.
fn law_net_project_matches_language_project(raw: &RawNet) -> PropResult {
    let net = build(raw);
    let keep = BTreeSet::from(["a", "b"]);
    let Ok(projected_net) = project(&net, &keep, 200) else {
        return Err(PropFail::Discard);
    };
    let (Some(l_proj), Some(l_full)) = (lang(&projected_net, DEPTH), lang(&net, DEPTH)) else {
        return Err(PropFail::Discard);
    };
    // Sound at equal depth: projecting a depth-D trace yields a trace of
    // length ≤ D, which the projected net must accept.
    prop_assert!(
        l_full.project(&keep).subset_up_to(&l_proj, DEPTH),
        "projection of L(N) escapes L(project(N)) on\n{net}\nprojected\n{projected_net}"
    );
    // The converse needs deeper exploration of the original: a length-3
    // projected trace may stem from a longer original trace whose extra
    // events are all hidden. 3 hidden events per visible one covers the
    // generated nets (≤ 4 transitions, no hidden cycles — those error).
    let deep = DEPTH + 3 * net.transition_count();
    let Some(l_deep) = lang(&net, deep) else {
        return Err(PropFail::Discard);
    };
    prop_assert!(
        l_proj.eq_up_to(&l_deep.project(&keep), DEPTH),
        "net projection diverged from language projection on\n{net}\nprojected\n{projected_net}"
    );
    Ok(())
}

#[test]
fn net_projection_matches_language_projection() {
    check(
        "net_projection_matches_language_projection",
        &strategy(4, 4),
        law_net_project_matches_language_project,
    );
}

// ---------------------------------------------------------------------
// Parallel composition: Theorem 4.5 enumerated generically.
// ---------------------------------------------------------------------

/// All traces over `alphabet` of length ≤ depth, by plain enumeration.
fn all_traces(alphabet: &BTreeSet<&'static str>, depth: usize) -> Vec<Vec<&'static str>> {
    let mut out: Vec<Vec<&'static str>> = vec![Vec::new()];
    let mut frontier = out.clone();
    for _ in 0..depth {
        let mut next = Vec::new();
        for t in &frontier {
            for l in alphabet {
                let mut ext = t.clone();
                ext.push(l);
                next.push(ext);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

fn law_parallel_matches_theorem_4_5(raw: &RawNet) -> PropResult {
    // The same structure under two label sets: the alphabets overlap on
    // {c, tau} (synchronized) and differ elsewhere (interleaved), and
    // the two interners number the shared labels differently.
    let n1 = build(raw);
    let n2 = raw.build_labels(&["c", "tau", "d", "e"]);
    let Ok(composed) = parallel(&n1, &n2) else {
        return Err(PropFail::Discard);
    };
    let (Some(lc), Some(l1), Some(l2)) =
        (lang(&composed, DEPTH), lang(&n1, DEPTH), lang(&n2, DEPTH))
    else {
        return Err(PropFail::Discard);
    };
    let a1 = n1.alphabet();
    let a2 = n2.alphabet();
    let union: BTreeSet<&'static str> = a1.union(&a2).copied().collect();
    prop_assume!(!union.is_empty());
    // Generic membership test: project at the label level and ask the
    // component languages.
    let t1 = label_traces(&l1);
    let t2 = label_traces(&l2);
    let reference: BTreeSet<Vec<&'static str>> = all_traces(&union, DEPTH)
        .into_iter()
        .filter(|t| {
            let p1: Vec<&'static str> = t.iter().copied().filter(|x| a1.contains(x)).collect();
            let p2: Vec<&'static str> = t.iter().copied().filter(|x| a2.contains(x)).collect();
            p1.len() <= DEPTH && p2.len() <= DEPTH && t1.contains(&p1) && t2.contains(&p2)
        })
        .collect();
    prop_assert!(
        label_traces(&lc) == reference,
        "Theorem 4.5 failed on\n{n1}\n‖\n{n2}\ncommon {:?}",
        common_alphabet(&n1, &n2)
    );
    // The symbolized language-level composition agrees too.
    prop_assert!(
        lc.eq_up_to(&l1.parallel(&l2), DEPTH),
        "L(N1‖N2) != L(N1)‖L(N2) on\n{n1}\n‖\n{n2}"
    );
    Ok(())
}

#[test]
fn parallel_matches_theorem_4_5() {
    let s = strategy(3, 3);
    check("parallel_matches_theorem_4_5", &s, |raw| {
        law_parallel_matches_theorem_4_5(raw)
    });
}

#[test]
fn parallel_matches_theorem_4_5_nonsafe() {
    let s = strategy(3, 3).max_tokens(2);
    check("parallel_matches_theorem_4_5_nonsafe", &s, |raw| {
        law_parallel_matches_theorem_4_5(raw)
    });
}

// ---------------------------------------------------------------------
// Language set ops across differently-numbered interners.
// ---------------------------------------------------------------------

fn law_set_ops_are_interner_independent(raw: &RawNet) -> PropResult {
    let net = build(raw);
    let rev = rebuilt_reversed(&net);
    let (Some(l), Some(lr)) = (lang(&net, DEPTH), lang(&rev, DEPTH)) else {
        return Err(PropFail::Discard);
    };
    // Same language, different symbol numbering.
    prop_assert!(l == lr, "reversed rebuild changed the language on\n{net}");
    // Union/intersection with a differently-interned operand must equal
    // the label-level set algebra.
    let tl = label_traces(&l);
    let tr = label_traces(&lr);
    let u = l.union(&lr);
    let i = l.intersection(&lr);
    let ref_union: BTreeSet<Vec<&'static str>> = tl.union(&tr).cloned().collect();
    let ref_inter: BTreeSet<Vec<&'static str>> = tl.intersection(&tr).cloned().collect();
    prop_assert!(
        label_traces(&u) == ref_union,
        "union diverged from label-level reference on\n{net}"
    );
    prop_assert!(
        label_traces(&i) == ref_inter,
        "intersection diverged from label-level reference on\n{net}"
    );
    // Hide is projection's complement; check it against project.
    let hidden = BTreeSet::from(["tau"]);
    let keep: BTreeSet<&'static str> = net
        .alphabet()
        .into_iter()
        .filter(|x| !hidden.contains(x))
        .collect();
    prop_assert!(
        l.hide(&hidden) == l.project(&keep),
        "hide({hidden:?}) != project(complement) on\n{net}"
    );
    Ok(())
}

#[test]
fn set_ops_are_interner_independent() {
    check(
        "set_ops_are_interner_independent",
        &strategy(4, 4),
        law_set_ops_are_interner_independent,
    );
}

#[test]
fn set_ops_are_interner_independent_nonsafe() {
    check(
        "set_ops_are_interner_independent_nonsafe",
        &strategy(4, 4).max_tokens(3),
        law_set_ops_are_interner_independent,
    );
}

// ---------------------------------------------------------------------
// Named regression: common_alphabet across disjoint interners.
// ---------------------------------------------------------------------

#[test]
fn common_alphabet_resolves_across_interners() {
    // n1 interns b then a; n2 interns a then c. The common alphabet is
    // {a} even though "a" is Sym(1) on the left and Sym(0) on the right.
    let mut n1: PetriNet<&str> = PetriNet::new();
    let p = n1.add_place("p");
    n1.add_transition([p], "b", [p]).unwrap();
    n1.add_transition([p], "a", [p]).unwrap();
    n1.set_initial(p, 1);
    let mut n2: PetriNet<&str> = PetriNet::new();
    let q = n2.add_place("q");
    n2.add_transition([q], "a", [q]).unwrap();
    n2.add_transition([q], "c", [q]).unwrap();
    n2.set_initial(q, 1);
    assert_eq!(common_alphabet(&n1, &n2), BTreeSet::from(["a"]));
    assert_eq!(common_alphabet(&n2, &n1), BTreeSet::from(["a"]));
}
