//! Integration: the three receptiveness detectors (exhaustive,
//! structural marked-graph, dynamic monitor) agree on randomized
//! handshake pipelines, and the coverability/invariant analyses agree on
//! boundedness.
//!
//! Driven by the deterministic `cpn-testkit` harness: failures print a
//! case seed, replayable via `CPN_TESTKIT_SEED=<seed>`.

use cpn::core::{check_receptiveness, check_receptiveness_structural_mg};
use cpn::petri::{
    semiflows_p, CoverabilityOutcome, CoverabilityTree, PetriNet, ReachabilityOptions,
};
use cpn::sim::monitor_composition;
use cpn_testkit::{check_with, prop_assert, prop_assert_eq, u32_in, usize_in, Config};
use std::collections::BTreeSet;

/// ≥100 cases per suite, still overridable via `CPN_TESTKIT_CASES`.
fn cases() -> Config {
    let config = Config::from_env();
    if std::env::var("CPN_TESTKIT_CASES").is_ok() {
        config
    } else {
        config.with_cases(128)
    }
}

/// A ring of alternating req/ack stages with a start offset — a family
/// of marked-graph protocols, half of them phase-mismatched.
fn ring(stages: usize, start: usize, prefix: &str) -> PetriNet<String> {
    let mut net: PetriNet<String> = PetriNet::new();
    let ps: Vec<_> = (0..2 * stages)
        .map(|i| net.add_place(format!("{prefix}{i}")))
        .collect();
    for i in 0..2 * stages {
        let label = if i % 2 == 0 {
            format!("req{}", i / 2)
        } else {
            format!("ack{}", i / 2)
        };
        net.add_transition([ps[i]], label, [ps[(i + 1) % (2 * stages)]])
            .unwrap();
    }
    net.set_initial(ps[start % (2 * stages)], 1);
    net
}

fn outputs(stages: usize, kind: &str) -> BTreeSet<String> {
    (0..stages).map(|i| format!("{kind}{i}")).collect()
}

#[test]
fn detectors_agree_on_handshake_rings() {
    let strategy = (usize_in(1..4), usize_in(0..8));
    check_with(
        "detectors_agree_on_handshake_rings",
        &cases(),
        &strategy,
        |&(stages, offset)| {
            let producer = ring(stages, 0, "a");
            let consumer = ring(stages, offset, "b");
            let louts = outputs(stages, "req");
            let routs = outputs(stages, "ack");
            let opts = ReachabilityOptions::with_max_states(200_000);

            let exhaustive =
                check_receptiveness(&producer, &consumer, &louts, &routs, &opts).unwrap();
            let structural =
                check_receptiveness_structural_mg(&producer, &consumer, &louts, &routs).unwrap();
            prop_assert_eq!(
                exhaustive.is_receptive(),
                structural.is_receptive(),
                "exhaustive {:?} vs structural {:?} at stages={} offset={}",
                exhaustive.failures,
                structural.failures,
                stages,
                offset
            );

            // The dynamic monitor never false-positives: any observation
            // it makes must correspond to a statically confirmed failure.
            let obs = monitor_composition(&producer, &consumer, &louts, &routs, 7, 2_000);
            if obs.is_some() {
                prop_assert!(!exhaustive.is_receptive());
            }
            // On failing compositions where the initial state is already
            // broken, the monitor must see it.
            if !exhaustive.is_receptive() && offset % (2 * stages) != 0 {
                // (offset 0 is the aligned, receptive case)
                prop_assert!(
                    obs.is_some() || exhaustive.failures.iter().all(|f| f.witness.is_some())
                );
            }
            Ok(())
        },
    );
}

#[test]
fn coverability_agrees_with_semiflow_certificates() {
    let strategy = (usize_in(1..4), u32_in(1..3));
    check_with(
        "coverability_agrees_with_semiflow_certificates",
        &cases(),
        &strategy,
        |&(stages, tokens)| {
            // Rings are covered by a P-semiflow ⇒ structurally bounded;
            // the Karp–Miller construction must agree and report the
            // right bound.
            let mut net = ring(stages, 0, "x");
            net.set_initial(cpn::petri::PlaceId::from_index(0), tokens);
            let covered = cpn::petri::invariant::covered_by_p_semiflows(&net, 10_000).unwrap();
            prop_assert!(covered);
            let tree = CoverabilityTree::build_bounded(&net, &cpn::petri::Budget::states(100_000))
                .into_value();
            prop_assert_eq!(
                tree.outcome(),
                &CoverabilityOutcome::Bounded { bound: tokens }
            );
            let flows = semiflows_p(&net, 10_000).unwrap();
            prop_assert!(!flows.is_empty());
            Ok(())
        },
    );
}

#[test]
fn hide_prime_abstraction_preserves_the_receptiveness_verdict() {
    // Section 5.3: the check "may not be done" on fully contracted nets
    // — the information whether a synchronization is reached via
    // internal transitions is lost — but it *may* be done after the
    // hide' refinement, which relabels internals to ε and keeps the net
    // structure. Abstract the translator's receiver-side interface away
    // and verify the verdict against the sender is unchanged.
    use cpn::stg::protocol::{sender, sender_inconsistent, translator};
    use cpn::stg::Signal;

    let opts = ReachabilityOptions::default();
    let tr = translator();
    let mut abstracted = tr.clone();
    for s in ["p0", "p1", "q0", "q1", "r", "DATA", "STROBE"] {
        abstracted = abstracted
            .hide_signal_relabel(&Signal::new(s))
            .expect("declared signal");
    }
    assert!(
        abstracted.net().alphabet().iter().any(|l| l.is_dummy()),
        "ε transitions remain (one dummy per hidden transition)"
    );

    for (name, s, expect_receptive) in [
        ("consistent", sender(), true),
        ("inconsistent", sender_inconsistent(), false),
    ] {
        let full = s.check_receptiveness(&tr, &opts).unwrap();
        let abst = s.check_receptiveness(&abstracted, &opts).unwrap();
        assert_eq!(full.is_receptive(), expect_receptive, "{name} vs full");
        assert_eq!(
            abst.is_receptive(),
            expect_receptive,
            "{name} vs hide'-abstracted: {:?}",
            abst.failures
        );
    }
}

#[test]
fn aligned_ring_is_receptive_all_ways() {
    let producer = ring(2, 0, "a");
    let consumer = ring(2, 0, "b");
    let louts = outputs(2, "req");
    let routs = outputs(2, "ack");
    let opts = ReachabilityOptions::default();
    assert!(
        check_receptiveness(&producer, &consumer, &louts, &routs, &opts)
            .unwrap()
            .is_receptive()
    );
    assert!(
        check_receptiveness_structural_mg(&producer, &consumer, &louts, &routs)
            .unwrap()
            .is_receptive()
    );
    assert!(monitor_composition(&producer, &consumer, &louts, &routs, 3, 20_000).is_none());
}
