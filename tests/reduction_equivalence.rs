//! Differential battery for the safe-net reduction suite
//! ([`cpn::core::reduce_for_analysis`]) and the stubborn-set exploration
//! filter ([`reachability_stubborn_bounded`]).
//!
//! The reduction rules (series place fusion, series transition fusion,
//! self-loop place elimination, plus the trace-exact dedup/redundancy
//! rules) claim to preserve *verdicts* — projected language, safety,
//! deadlock-freedom, liveness modulo the stranded-transition rule — not
//! traces. The stubborn filter claims to preserve every deadlock
//! marking, and (with watched-place seeding) receptiveness verdicts.
//! Each claim is checked differentially: the reduced/filtered run
//! against the unreduced/full run, over `cpn-testkit`-generated safe
//! and non-safe nets plus the paper's Figure 5/7 protocol models and a
//! composed CIP-chain corpus.
//!
//! All randomized cases replay under `CPN_TESTKIT_SEED`.

use cpn::core::reduce_for_analysis;
use cpn::petri::{Bounded, Budget, PetriNet, ReachabilityGraph, Verdict};
use cpn::trace::Language;
use cpn_testkit::{check_with, prop_assert, prop_assume, Config, NetStrategy, PropResult, RawNet};
use std::collections::BTreeSet;

const LABELS: [&str; 4] = ["a", "b", "t0", "t1"];
/// Raw exploration depth for both sides of the language comparison.
const RAW_DEPTH: usize = 5;
/// Deeper original-side depth for the "invents nothing" direction: a
/// reduced trace of `RAW_DEPTH` steps lifts to at most `2 * RAW_DEPTH`
/// original steps (one elided internal firing per fused firing).
const DEEP_DEPTH: usize = 2 * RAW_DEPTH;
/// Visible depth at which the projected languages must agree.
const VISIBLE_DEPTH: usize = 3;
const TRACE_BUDGET: usize = 200_000;
const STATE_BUDGET: usize = 50_000;

fn cases() -> Config {
    let config = Config::from_env();
    if std::env::var("CPN_TESTKIT_CASES").is_ok() {
        config
    } else {
        config.with_cases(96)
    }
}

fn strategy(max_places: usize, max_transitions: usize) -> NetStrategy {
    NetStrategy::new(max_places, max_transitions, LABELS.len())
}

fn build(raw: &RawNet) -> PetriNet<&'static str> {
    raw.build_labels(&LABELS)
}

fn internal() -> BTreeSet<&'static str> {
    BTreeSet::from(["t0", "t1"])
}

fn lang(net: &PetriNet<&'static str>, depth: usize) -> Option<Language<&'static str>> {
    Language::from_net(net, depth, TRACE_BUDGET).ok()
}

fn deadlock_markings(rg: &ReachabilityGraph) -> BTreeSet<Vec<u32>> {
    rg.deadlock_states()
        .iter()
        .map(|&s| rg.marking_slice(s).to_vec())
        .collect()
}

// ---------------------------------------------------------------------
// Reduction: projected language
// ---------------------------------------------------------------------

/// The reduced net's projected (internal-hidden) language equals the
/// original's, checked in both inclusion directions with the depth
/// slack each direction needs.
fn law_reduction_preserves_projected_language(raw: &RawNet) -> PropResult {
    let net = build(raw);
    let hidden = internal();
    let Ok((reduced, stats)) = reduce_for_analysis(&net, &hidden) else {
        return Err(cpn_testkit::PropFail::Fail("reduce failed".into()));
    };
    prop_assume!(stats.total() > 0); // only score cases the suite touched
    let (Some(lo), Some(lo_deep), Some(lr)) = (
        lang(&net, RAW_DEPTH),
        lang(&net, DEEP_DEPTH),
        lang(&reduced, RAW_DEPTH),
    ) else {
        return Err(cpn_testkit::PropFail::Discard);
    };
    let ho = lo.hide(&hidden);
    let ho_deep = lo_deep.hide(&hidden);
    let hr = lr.hide(&hidden);
    // Reduction loses nothing: fusing internal transitions never
    // lengthens a firing sequence, so equal raw depth suffices here.
    for t in ho.iter().filter(|t| t.len() <= VISIBLE_DEPTH) {
        prop_assert!(
            hr.contains(&t),
            "reduction lost visible trace {t:?} ({stats:?}) on\n{net}\nreduced\n{reduced}"
        );
    }
    // Reduction invents nothing: lift against the deeper original.
    for t in hr.iter().filter(|t| t.len() <= VISIBLE_DEPTH) {
        prop_assert!(
            ho_deep.contains(&t),
            "reduction invented visible trace {t:?} ({stats:?}) on\n{net}\nreduced\n{reduced}"
        );
    }
    Ok(())
}

#[test]
fn reduction_preserves_projected_language_safe() {
    check_with(
        "reduction_preserves_projected_language_safe",
        &cases(),
        &strategy(5, 5),
        law_reduction_preserves_projected_language,
    );
}

#[test]
fn reduction_preserves_projected_language_nonsafe() {
    check_with(
        "reduction_preserves_projected_language_nonsafe",
        &cases(),
        &strategy(5, 5).max_tokens(3),
        law_reduction_preserves_projected_language,
    );
}

// ---------------------------------------------------------------------
// Reduction: safety / deadlock / liveness verdicts
// ---------------------------------------------------------------------

fn law_reduction_preserves_verdicts(raw: &RawNet) -> PropResult {
    let net = build(raw);
    let Ok((reduced, stats)) = reduce_for_analysis(&net, &internal()) else {
        return Err(cpn_testkit::PropFail::Fail("reduce failed".into()));
    };
    let budget = Budget::states(STATE_BUDGET);
    let Bounded::Complete(rg_o) = net.reachability_bounded(&budget) else {
        return Err(cpn_testkit::PropFail::Discard);
    };
    let Bounded::Complete(rg_r) = reduced.reachability_bounded(&budget) else {
        return Err(cpn_testkit::PropFail::Discard);
    };
    let ao = net.analysis(&rg_o);
    let ar = reduced.analysis(&rg_r);
    prop_assert!(
        ao.safe == ar.safe,
        "safety flipped ({} -> {}, {stats:?}) on\n{net}\nreduced\n{reduced}",
        ao.safe,
        ar.safe
    );
    prop_assert!(
        ao.deadlock_free == ar.deadlock_free,
        "deadlock verdict flipped ({stats:?}) on\n{net}\nreduced\n{reduced}"
    );
    if stats.stranded_transitions == 0 {
        prop_assert!(
            ao.live == ar.live,
            "liveness flipped ({} -> {}, {stats:?}) on\n{net}\nreduced\n{reduced}",
            ao.live,
            ar.live
        );
    } else {
        // Pruning a stranded (structurally dead) transition is the one
        // rule that can raise the all-transitions-live verdict — it
        // only fires when the original was provably non-live.
        prop_assert!(
            !ao.live,
            "stranded transitions pruned from a live net on\n{net}"
        );
    }
    Ok(())
}

#[test]
fn reduction_preserves_verdicts_safe() {
    check_with(
        "reduction_preserves_verdicts_safe",
        &cases(),
        &strategy(5, 5),
        law_reduction_preserves_verdicts,
    );
}

#[test]
fn reduction_preserves_verdicts_nonsafe() {
    check_with(
        "reduction_preserves_verdicts_nonsafe",
        &cases(),
        &strategy(5, 5).max_tokens(3),
        law_reduction_preserves_verdicts,
    );
}

// ---------------------------------------------------------------------
// Stubborn sets: deadlock-marking preservation
// ---------------------------------------------------------------------

fn law_stubborn_preserves_deadlocks(raw: &RawNet) -> PropResult {
    let net = build(raw);
    let budget = Budget::states(STATE_BUDGET);
    let Bounded::Complete(full) = net.reachability_bounded(&budget) else {
        return Err(cpn_testkit::PropFail::Discard);
    };
    let Bounded::Complete(stub) = net.reachability_stubborn_bounded(&budget, &[]) else {
        return Err(cpn_testkit::PropFail::Discard);
    };
    prop_assert!(
        stub.state_count() <= full.state_count(),
        "stubborn explored more states ({} > {}) on\n{net}",
        stub.state_count(),
        full.state_count()
    );
    prop_assert!(
        deadlock_markings(&stub) == deadlock_markings(&full),
        "deadlock marking sets diverged on\n{net}\nfull: {:?}\nstubborn: {:?}",
        deadlock_markings(&full),
        deadlock_markings(&stub)
    );
    Ok(())
}

#[test]
fn stubborn_preserves_deadlocks_safe() {
    check_with(
        "stubborn_preserves_deadlocks_safe",
        &cases(),
        &strategy(5, 5),
        law_stubborn_preserves_deadlocks,
    );
}

#[test]
fn stubborn_preserves_deadlocks_nonsafe() {
    check_with(
        "stubborn_preserves_deadlocks_nonsafe",
        &cases(),
        &strategy(5, 5).max_tokens(3),
        law_stubborn_preserves_deadlocks,
    );
}

/// Reduction and the stubborn filter compose: the reduced net's
/// stubborn deadlock set equals its full deadlock set too.
#[test]
fn stubborn_agrees_on_reduced_nets() {
    check_with(
        "stubborn_agrees_on_reduced_nets",
        &cases(),
        &strategy(5, 5),
        |raw| {
            let net = build(raw);
            let Ok((reduced, _)) = reduce_for_analysis(&net, &internal()) else {
                return Err(cpn_testkit::PropFail::Fail("reduce failed".into()));
            };
            law_stubborn_preserves_deadlocks_on(&reduced)
        },
    );
}

fn law_stubborn_preserves_deadlocks_on(net: &PetriNet<&'static str>) -> PropResult {
    let budget = Budget::states(STATE_BUDGET);
    let (Bounded::Complete(full), Bounded::Complete(stub)) = (
        net.reachability_bounded(&budget),
        net.reachability_stubborn_bounded(&budget, &[]),
    ) else {
        return Err(cpn_testkit::PropFail::Discard);
    };
    prop_assert!(
        deadlock_markings(&stub) == deadlock_markings(&full),
        "deadlock marking sets diverged on reduced\n{net}"
    );
    Ok(())
}

// ---------------------------------------------------------------------
// Stubborn sets: budget sweeps (Bounded::Exhausted contract)
// ---------------------------------------------------------------------

#[test]
fn stubborn_budget_sweep_degrades_gracefully() {
    // A 6-stage ring pairin' a 4-phase shape: big enough that tiny
    // budgets exhaust, small enough that the full run completes.
    let (p, c) = ring_pair(6, 0);
    let composed = cpn::core::parallel(&p, &c).expect("composition");
    let full = match composed.reachability_stubborn_bounded(&Budget::default(), &[]) {
        Bounded::Complete(rg) => rg,
        Bounded::Exhausted { .. } => panic!("default budget must complete"),
    };
    let mut last = 0usize;
    for cap in [1usize, 2, 4, 8, 16, 64, 4096] {
        match composed.reachability_stubborn_bounded(&Budget::states(cap), &[]) {
            Bounded::Complete(rg) => {
                assert_eq!(
                    rg.state_count(),
                    full.state_count(),
                    "complete result must be exact at cap {cap}"
                );
                last = rg.state_count();
            }
            Bounded::Exhausted { partial, info } => {
                assert!(
                    partial.state_count() <= cap,
                    "exhausted prefix overran its cap {cap}"
                );
                assert!(info.states_explored >= 1, "empty exhaustion stats");
                assert!(
                    partial.state_count() >= last,
                    "prefix shrank as the budget grew"
                );
                last = partial.state_count();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Stubborn sets: receptiveness agreement
// ---------------------------------------------------------------------

/// A ring pair sharing its labels (as in `fault_properties.rs`):
/// receptiveness of the pair is exactly phase agreement, so sweeping
/// the offset covers both verdicts.
fn ring_pair(stages: usize, offset: usize) -> (PetriNet<String>, PetriNet<String>) {
    let mk = |start: usize, prefix: &str| {
        let mut net: PetriNet<String> = PetriNet::new();
        let ps: Vec<_> = (0..stages)
            .map(|i| net.add_place(format!("{prefix}{i}")))
            .collect();
        for i in 0..stages {
            net.add_transition([ps[i]], format!("x{i}"), [ps[(i + 1) % stages]])
                .expect("ring transition");
        }
        net.set_initial(ps[start % stages], 1);
        net
    };
    (mk(0, "a"), mk(offset, "b"))
}

fn failing_labels(v: &Verdict<cpn::core::ReceptivenessReport<String>>) -> BTreeSet<String> {
    match v {
        Verdict::Fails(report) => report.failures.iter().map(|f| f.label.clone()).collect(),
        _ => BTreeSet::new(),
    }
}

#[test]
fn stubborn_receptiveness_matches_full_exploration() {
    for stages in 2..7usize {
        for offset in 0..stages {
            let (p, c) = ring_pair(stages, offset);
            let outputs: BTreeSet<String> = (0..stages).map(|i| format!("x{i}")).collect();
            let full = cpn::core::check_receptiveness_bounded(
                &p,
                &c,
                &outputs,
                &BTreeSet::new(),
                &Budget::default(),
            )
            .expect("full check");
            let stub = cpn::core::check_receptiveness_stubborn_bounded(
                &p,
                &c,
                &outputs,
                &BTreeSet::new(),
                &Budget::default(),
            )
            .expect("stubborn check");
            assert!(
                !full.is_unknown() && !stub.is_unknown(),
                "default budget must decide a {stages}-stage ring pair"
            );
            assert_eq!(
                full.holds(),
                stub.holds(),
                "verdicts diverged at stages={stages} offset={offset}"
            );
            assert_eq!(
                failing_labels(&full),
                failing_labels(&stub),
                "failing label sets diverged at stages={stages} offset={offset}"
            );

            // Budget sweep: a definite tiny-budget stubborn verdict may
            // never contradict the full-exploration reference.
            for tiny in [1usize, 2, 5, 17] {
                let small = cpn::core::check_receptiveness_stubborn_bounded(
                    &p,
                    &c,
                    &outputs,
                    &BTreeSet::new(),
                    &Budget::states(tiny),
                )
                .expect("tiny stubborn check");
                assert!(
                    small.agrees_with(&full),
                    "stubborn verdict flipped under budget {tiny} at stages={stages} offset={offset}: {small} vs {full}"
                );
            }
        }
    }
}

/// `Verdict::agrees_with` monotonicity along the **deadline** axis: the
/// budget lattice gained wall-clock deadlines, and the same law must
/// hold as for state caps — an `Unknown` from a short deadline is
/// consistent with any definite verdict from a longer (or absent) one,
/// and no pair of deadlines may yield contradictory definite verdicts.
#[test]
fn verdicts_agree_along_the_deadline_axis() {
    use std::time::Duration;

    let (p, c) = ring_pair(5, 0);
    let outputs: BTreeSet<String> = (0..5).map(|i| format!("x{i}")).collect();
    let deadlines = [
        Some(Duration::ZERO),
        Some(Duration::from_micros(50)),
        Some(Duration::from_millis(5)),
        None, // unconstrained reference
    ];
    let verdicts: Vec<_> = deadlines
        .iter()
        .map(|d| {
            let mut budget = Budget::default();
            if let Some(d) = d {
                budget = budget.with_deadline(*d);
            }
            cpn::core::check_receptiveness_bounded(&p, &c, &outputs, &BTreeSet::new(), &budget)
                .expect("receptiveness check")
        })
        .collect();

    // A zero deadline stops at the very first poll: Unknown, with the
    // deadline recorded as the exhausted resource.
    let zero = &verdicts[0];
    assert!(zero.is_unknown(), "zero deadline cannot decide: {zero}");
    assert_eq!(
        zero.exhausted().map(|e| e.resource),
        Some(cpn::petri::Resource::Deadline)
    );
    // The unconstrained run decides this small instance definitively.
    let reference = &verdicts[3];
    assert!(reference.is_definite(), "reference run must decide");

    for (i, a) in verdicts.iter().enumerate() {
        for (j, b) in verdicts.iter().enumerate() {
            assert!(
                a.agrees_with(b),
                "verdicts contradict across deadlines {:?} vs {:?}: {a} vs {b}",
                deadlines[i],
                deadlines[j]
            );
        }
    }
}

// ---------------------------------------------------------------------
// Paper corpora: Figure 5/7 protocol models and a composed CIP chain
// ---------------------------------------------------------------------

/// A CIP pipeline chain of `modules` modules on control channels,
/// two-phase-expanded and composed (the Section 6 derivation shape);
/// the interior request wires are the internal alphabet.
fn cip_chain(modules: usize) -> (PetriNet<cpn::stg::StgLabel>, BTreeSet<cpn::stg::StgLabel>) {
    use cpn::cip::{ChannelSpec, CipGraph, HandshakeProtocol, Module};
    let mut graph = CipGraph::new();
    let mut ids = Vec::new();
    for i in 0..modules {
        let mut m = Module::new(format!("m{i}"));
        let p = m.add_place("idle");
        m.set_initial(p, 1);
        if i == 0 {
            m.add_send([p], "c0", None, [p]).expect("send");
        } else if i == modules - 1 {
            m.add_recv([p], format!("c{}", i - 1).as_str(), [p])
                .expect("recv");
        } else {
            let q = m.add_place("got");
            m.add_recv([p], format!("c{}", i - 1).as_str(), [q])
                .expect("recv");
            m.add_send([q], format!("c{i}").as_str(), None, [p])
                .expect("send");
        }
        ids.push(graph.add_module(m));
    }
    for i in 0..modules - 1 {
        graph
            .add_channel_edge(
                ids[i],
                ids[i + 1],
                ChannelSpec::control(format!("c{i}").as_str()),
            )
            .expect("channel");
    }
    let composed = graph
        .expand(HandshakeProtocol::TwoPhase)
        .expect("expansion")
        .compose_all()
        .expect("composition");
    let hidden = composed
        .net()
        .alphabet()
        .iter()
        .filter(|l| l.signal_name().is_some_and(|s| s.name().ends_with("_req")))
        .cloned()
        .collect();
    (composed.net().clone(), hidden)
}

/// Verdict + deadlock differential on one corpus net with a given
/// internal alphabet.
fn check_corpus<L: cpn::petri::Label + std::fmt::Debug>(
    name: &str,
    net: &PetriNet<L>,
    hidden: &BTreeSet<L>,
) {
    let (reduced, stats) = reduce_for_analysis(net, hidden).expect("reduction");
    let budget = Budget::states(STATE_BUDGET);
    let (Bounded::Complete(rg_o), Bounded::Complete(rg_r)) = (
        net.reachability_bounded(&budget),
        reduced.reachability_bounded(&budget),
    ) else {
        panic!("{name}: corpus net must complete within {STATE_BUDGET} states");
    };
    let (ao, ar) = (net.analysis(&rg_o), reduced.analysis(&rg_r));
    assert_eq!(ao.safe, ar.safe, "{name}: safety flipped ({stats:?})");
    assert_eq!(
        ao.deadlock_free, ar.deadlock_free,
        "{name}: deadlock verdict flipped ({stats:?})"
    );
    if stats.stranded_transitions == 0 {
        assert_eq!(ao.live, ar.live, "{name}: liveness flipped ({stats:?})");
    }

    // Stubborn vs full, on both the original and the reduced net.
    for (side, n) in [("original", net), ("reduced", &reduced)] {
        let (Bounded::Complete(full), Bounded::Complete(stub)) = (
            n.reachability_bounded(&budget),
            n.reachability_stubborn_bounded(&budget, &[]),
        ) else {
            panic!("{name}/{side}: exploration must complete");
        };
        assert_eq!(
            deadlock_markings(&full),
            deadlock_markings(&stub),
            "{name}/{side}: deadlock sets diverged"
        );
        assert!(stub.state_count() <= full.state_count());
    }
}

#[test]
fn corpora_fig5_fig7_and_cip_chain() {
    let fig5 = cpn::stg::protocol::sender();
    let fig7 = cpn::stg::protocol::receiver();
    // The protocol STGs have no internal alphabet at this level; the
    // trace-exact rules still run and the verdicts must hold.
    check_corpus("fig5-sender", fig5.net(), &BTreeSet::new());
    check_corpus("fig7-receiver", fig7.net(), &BTreeSet::new());

    for modules in [2usize, 3] {
        let (net, hidden) = cip_chain(modules);
        check_corpus(&format!("cip-chain-{modules}"), &net, &hidden);
    }
}

/// The headline claim behind `BENCH_reduce.json`: on the composed CIP
/// chain, reduction of the internal request wires plus the stubborn
/// filter shrinks the explored state count substantially.
#[test]
fn cip_chain_reduction_plus_stubborn_shrinks_exploration() {
    let (net, hidden) = cip_chain(4);
    let (reduced, stats) = reduce_for_analysis(&net, &hidden).expect("reduction");
    assert!(stats.total() > 0, "the chain must actually reduce");
    let budget = Budget::states(1_000_000);
    let Bounded::Complete(full) = net.reachability_bounded(&budget) else {
        panic!("full exploration must complete");
    };
    let Bounded::Complete(both) = reduced.reachability_stubborn_bounded(&budget, &[]) else {
        panic!("reduced+stubborn exploration must complete");
    };
    assert!(
        both.state_count() < full.state_count(),
        "reduced+stubborn must explore fewer states ({} vs {})",
        both.state_count(),
        full.state_count()
    );
    // Deadlock verdict carried across the combined pipeline.
    assert_eq!(
        full.deadlock_states().is_empty(),
        both.deadlock_states().is_empty(),
        "deadlock-freedom flipped across reduce+stubborn"
    );
}
