//! Integration: the full Section 6 pipeline across all crates —
//! modeling, composition, verification, reduction, logic, and
//! serialization of the protocol-translation system.

use cpn::petri::ReachabilityOptions;
use cpn::stg::protocol::{
    receiver, sender, sender_inconsistent, sender_restricted, translator, RECEIVER_COMMANDS,
    SENDER_COMMANDS,
};
use cpn::stg::{derive_logic, Signal, StateGraph};
use std::collections::BTreeMap;

#[test]
fn command_tables_are_consistent() {
    // Table 1: each command uses one wire from each group; all four
    // combinations appear exactly once.
    let mut seen = std::collections::BTreeSet::new();
    for (_, wa, wb) in SENDER_COMMANDS {
        assert!(wa.starts_with('a') && wb.starts_with('b'));
        assert!(seen.insert((wa, wb)));
    }
    assert_eq!(seen.len(), 4);
    let mut seen = std::collections::BTreeSet::new();
    for (_, wp, wq) in RECEIVER_COMMANDS {
        assert!(wp.starts_with('p') && wq.starts_with('q'));
        assert!(seen.insert((wp, wq)));
    }
    assert_eq!(seen.len(), 4);
}

#[test]
fn all_blocks_have_consistent_state_assignments() {
    for (name, stg) in [
        ("sender", sender()),
        ("translator", translator()),
        ("receiver", receiver()),
    ] {
        let sg = StateGraph::build(&stg, &BTreeMap::new(), 1_000_000).unwrap();
        assert!(
            sg.is_consistent(),
            "{name}: {:?}",
            sg.consistency_violations()
        );
    }
}

#[test]
fn receiver_logic_blocked_by_genuine_csc_conflict() {
    // The receiver's toggle outputs make equal codes with different
    // excitations — a real CSC violation that Chu-style synthesis would
    // resolve with state signals (out of the paper's scope). The logic
    // derivation must refuse, and the state-graph diagnostic must point
    // at the same conflict.
    let rx = receiver();
    let sg = StateGraph::build(&rx, &BTreeMap::new(), 1_000_000).unwrap();
    let err = derive_logic(&rx, &sg).unwrap_err();
    let violations = sg.csc_violations(&rx);
    assert!(!violations.is_empty(), "diagnostics agree with {err}");
}

#[test]
fn four_phase_fragment_logic_derivable() {
    // A CSC-clean fragment of the same protocol synthesizes fine: the
    // sender-facing 4-phase handshake viewed from the translator.
    use cpn::stg::{Edge, SignalDir, Stg};
    let mut stg = Stg::new();
    let a0 = stg.add_signal("a0", SignalDir::Input);
    let b0 = stg.add_signal("b0", SignalDir::Input);
    let n = stg.add_signal("n", SignalDir::Output);
    let w0 = stg.add_place("w0");
    let w1 = stg.add_place("w1");
    let w2 = stg.add_place("w2");
    let w3 = stg.add_place("w3");
    let w4 = stg.add_place("w4");
    let w5 = stg.add_place("w5");
    stg.add_signal_transition([w0], (a0.clone(), Edge::Rise), [w1])
        .unwrap();
    stg.add_signal_transition([w1], (b0.clone(), Edge::Rise), [w2])
        .unwrap();
    stg.add_signal_transition([w2], (n.clone(), Edge::Rise), [w3])
        .unwrap();
    stg.add_signal_transition([w3], (a0, Edge::Fall), [w4])
        .unwrap();
    stg.add_signal_transition([w4], (b0, Edge::Fall), [w5])
        .unwrap();
    stg.add_signal_transition([w5], (n, Edge::Fall), [w0])
        .unwrap();
    stg.set_initial(w0, 1);
    let sg = StateGraph::build(&stg, &BTreeMap::new(), 10_000).unwrap();
    let fns = derive_logic(&stg, &sg).unwrap();
    assert_eq!(fns.len(), 1);
    assert_eq!(fns[0].signal.name(), "n");
    assert!(fns[0].literal_cost() >= 2, "n = a0·b0-ish");
}

#[test]
fn full_system_runs_the_whole_command_set() {
    let opts = ReachabilityOptions::default();
    let system = sender()
        .compose(&translator())
        .unwrap()
        .compose(&receiver())
        .unwrap()
        .remove_dead(&opts)
        .unwrap();
    let rg = system.net().reachability(&opts).unwrap();
    let analysis = system.net().analysis(&rg);
    assert!(analysis.safe);
    assert!(analysis.deadlock_free);
    // Every sender command toggle fires somewhere in the state space.
    for (cmd, _, _) in SENDER_COMMANDS {
        let found = system.net().transitions().any(|(tid, _)| {
            system.net().label_of(tid).signal_name().map(Signal::name) == Some(cmd)
        });
        assert!(found, "{cmd}~ survives in the composition");
    }
}

#[test]
fn fig8_detected_fig5_clean_with_full_system() {
    let opts = ReachabilityOptions::default();
    // Checking against translator ‖ receiver (the module's real
    // environment) rather than the translator alone.
    let env = translator().compose(&receiver()).unwrap();
    let clean = sender().check_receptiveness(&env, &opts).unwrap();
    assert!(clean.is_receptive(), "{:?}", clean.failures);
    let broken = sender_inconsistent()
        .check_receptiveness(&env, &opts)
        .unwrap();
    assert!(!broken.is_receptive());
}

#[test]
fn fig9_reduction_chain_shrinks_state_spaces() {
    let opts = ReachabilityOptions::default();
    let tr = translator();
    let tr_red = tr
        .reduce_against(&sender_restricted(), &opts, 10_000)
        .unwrap();
    let rx = receiver();
    let rx_red = rx
        .prune_against(&tr_red, &ReachabilityOptions::default())
        .unwrap();

    let states = |s: &cpn::stg::Stg| s.net().reachability(&opts).unwrap().state_count();
    assert!(
        states(&tr_red) < states(&tr),
        "translator state space shrinks"
    );
    assert!(
        states(&rx_red) < states(&rx),
        "receiver state space shrinks"
    );

    // The reduced receiver still implements start/zero/one.
    for cmd in ["start", "zero", "one"] {
        assert!(
            rx_red.net().transitions().any(|(tid, _)| rx_red
                .net()
                .label_of(tid)
                .signal_name()
                .map(Signal::name)
                == Some(cmd)),
            "{cmd} kept"
        );
    }
}

#[test]
fn serialized_models_reanalyze_identically() {
    let opts = ReachabilityOptions::default();
    for (name, stg) in [("sender", sender()), ("receiver", receiver())] {
        let text = cpn::format::write_stg(name, &stg);
        let doc = cpn::format::parse(&text).unwrap();
        let (_, parsed) = &doc.stgs[0];
        let a1 = stg.net().analysis(&stg.net().reachability(&opts).unwrap());
        let a2 = parsed
            .net()
            .analysis(&parsed.net().reachability(&opts).unwrap());
        assert_eq!(a1.safe, a2.safe, "{name}");
        assert_eq!(a1.live, a2.live, "{name}");
        assert_eq!(a1.bound, a2.bound, "{name}");
    }
}

#[test]
fn reduced_translator_still_serves_the_sender_up_to_traces() {
    // Theorem 5.1 promises *trace* containment — implementation freedom
    // for synthesis — not direct re-composability: the reduced net
    // embeds one copy of the environment's free choice, so re-composing
    // it with the live environment can deadlock when the two copies
    // resolve a choice differently. The meaningful checks are at the
    // trace level.
    let opts = ReachabilityOptions::default();
    let tr = translator();
    let tr_red = tr
        .reduce_against(&sender_restricted(), &opts, 10_000)
        .unwrap();

    // Alone, the derived block is safe and deadlock-free.
    let rg = tr_red.net().reachability(&opts).unwrap();
    let analysis = tr_red.net().analysis(&rg);
    assert!(analysis.safe);
    assert!(
        analysis.deadlock_free,
        "the reduced translator has no stuck state"
    );

    // Its language still contains a complete reset round: a0+ b1+ n+
    // a0- b1- n- is drivable (interleaved with the start transmission).
    let lang = tr_red.language(7, 2_000_000).unwrap();
    let a0_rise = cpn::stg::StgLabel::signal("a0", cpn::stg::Edge::Rise);
    assert!(
        lang.iter().any(|t| t.contains(&a0_rise)),
        "reset command still serviceable"
    );

    // And the directions of the derived interface match the original's.
    for (s, dir) in tr_red.signals() {
        assert_eq!(Some(dir), tr.signals().get(s), "{s}");
    }
}
