//! The paper's Section 6 design example: a simplified I²C-style protocol
//! translation system (Figures 4–9, Table 1).
//!
//! Three modules:
//!
//! * **sender** (Figure 5) — converts environment *transition-signalling*
//!   commands (`rec~`, `reset~`, `send0~`, `send1~`) into a 4-phase
//!   two-wire code toward the translator (Table 1a): two of
//!   `a0/a1/b0/b1` rise, the translator acknowledges on `n`, the wires
//!   return to zero, `n` falls.
//! * **protocol translator** (Figure 7) — initially sends `start` to the
//!   receiver; then serves sender commands: `reset`/`send0`/`send1` map
//!   to `start`/`zero`/`one`; `rec` samples the `DATA`/`STROBE` lines
//!   once they stabilize (boolean guards — the Section 2.2 extension)
//!   and sends `start`/`mute`/`zero`/`one` accordingly, after which the
//!   lines may go unstable again.
//! * **receiver** (Figure 6) — converts the translator's 4-phase code on
//!   `p0/p1/q0/q1` (Table 1b, acknowledge `r`) back into transition
//!   signalling (`start~`, `mute~`, `zero~`, `one~`).
//!
//! Also provided: the **inconsistent** sender of Figure 8 (drops its
//! wires without waiting for `n+` — detected by the receptiveness check)
//! and the **restricted** sender of Figure 9(a) (never issues `rec`),
//! from which the simplified translator and receiver of Figures 9(b,c)
//! are *derived* by compositional synthesis.
//!
//! The level mapping for the `rec` response is fixed as
//! `(STROBE, DATA) = (0,0)→start, (0,1)→mute, (1,0)→zero, (1,1)→one`
//! (the paper does not pin the table; any bijection exercises the same
//! machinery).

use crate::signal::{Edge, Signal, SignalDir};
use crate::stg::{Guard, Stg, StgError};
use cpn_petri::PlaceId;

/// Table 1(a): sender command → the two wires that rise.
pub const SENDER_COMMANDS: [(&str, &str, &str); 4] = [
    ("rec", "a0", "b0"),
    ("reset", "a0", "b1"),
    ("send0", "a1", "b0"),
    ("send1", "a1", "b1"),
];

/// Table 1(b): receiver command → the two wires that rise.
pub const RECEIVER_COMMANDS: [(&str, &str, &str); 4] = [
    ("start", "p0", "q0"),
    ("mute", "p0", "q1"),
    ("zero", "p1", "q0"),
    ("one", "p1", "q1"),
];

/// The `(STROBE, DATA) → receiver command` sampling table used by the
/// translator's `rec` branch.
pub const LINE_TABLE: [((bool, bool), &str); 4] = [
    ((false, false), "start"),
    ((false, true), "mute"),
    ((true, false), "zero"),
    ((true, true), "one"),
];

fn declare_wires(stg: &mut Stg, names: &[&str], dir: SignalDir) -> Vec<Signal> {
    names.iter().map(|n| stg.add_signal(*n, dir)).collect()
}

/// One sender command branch (Figure 5b/c): toggle, both wires rise,
/// `n+`, both wires fall, `n-`, back to idle.
fn sender_branch(
    stg: &mut Stg,
    idle: PlaceId,
    cmd: &str,
    wa: &str,
    wb: &str,
) -> Result<(), StgError> {
    let cmd_sig = Signal::new(cmd);
    let wa = Signal::new(wa);
    let wb = Signal::new(wb);
    let n = Signal::new("n");
    let ua = stg.add_place(format!("{cmd}.ua"));
    let ub = stg.add_place(format!("{cmd}.ub"));
    let ha = stg.add_place(format!("{cmd}.ha"));
    let hb = stg.add_place(format!("{cmd}.hb"));
    let da = stg.add_place(format!("{cmd}.da"));
    let db = stg.add_place(format!("{cmd}.db"));
    let la = stg.add_place(format!("{cmd}.la"));
    let lb = stg.add_place(format!("{cmd}.lb"));
    stg.add_signal_transition([idle], (cmd_sig, Edge::Toggle), [ua, ub])?;
    stg.add_signal_transition([ua], (wa.clone(), Edge::Rise), [ha])?;
    stg.add_signal_transition([ub], (wb.clone(), Edge::Rise), [hb])?;
    stg.add_signal_transition([ha, hb], (n.clone(), Edge::Rise), [da, db])?;
    stg.add_signal_transition([da], (wa, Edge::Fall), [la])?;
    stg.add_signal_transition([db], (wb, Edge::Fall), [lb])?;
    stg.add_signal_transition([la, lb], (n, Edge::Fall), [idle])?;
    Ok(())
}

fn sender_shell() -> (Stg, PlaceId) {
    let mut stg = Stg::new();
    for (cmd, _, _) in SENDER_COMMANDS {
        stg.add_signal(cmd, SignalDir::Input);
    }
    declare_wires(&mut stg, &["a0", "a1", "b0", "b1"], SignalDir::Output);
    stg.add_signal("n", SignalDir::Input);
    let idle = stg.add_place("idle");
    stg.set_initial(idle, 1);
    (stg, idle)
}

/// The sender of Figure 5: all four commands, correct 4-phase protocol.
///
/// # Panics
///
/// Panics on a model-construction bug (cannot occur).
pub fn sender() -> Stg {
    match try_sender() {
        Ok(stg) => stg,
        Err(e) => panic!("sender model construction: {e}"),
    }
}

fn try_sender() -> Result<Stg, StgError> {
    let (mut stg, idle) = sender_shell();
    for (cmd, wa, wb) in SENDER_COMMANDS {
        sender_branch(&mut stg, idle, cmd, wa, wb)?;
    }
    Ok(stg)
}

/// The **restricted** sender of Figure 9(a): `rec` is never issued. The
/// wires and the `rec` toggle stay in the interface (the alphabet keeps
/// them), which is what lets compositional synthesis prove the
/// translator's `rec` handling dead.
pub fn sender_restricted() -> Stg {
    match try_sender_restricted() {
        Ok(stg) => stg,
        Err(e) => panic!("restricted sender model construction: {e}"),
    }
}

fn try_sender_restricted() -> Result<Stg, StgError> {
    let (mut stg, idle) = sender_shell();
    for (cmd, wa, wb) in SENDER_COMMANDS.iter().skip(1) {
        sender_branch(&mut stg, idle, cmd, wa, wb)?;
    }
    Ok(stg)
}

/// The **inconsistent** sender of Figure 8: the wires rise and fall
/// without waiting for the `n+` acknowledge, violating the 4-phase
/// protocol the translator assumes.
pub fn sender_inconsistent() -> Stg {
    match try_sender_inconsistent() {
        Ok(stg) => stg,
        Err(e) => panic!("inconsistent sender model construction: {e}"),
    }
}

fn try_sender_inconsistent() -> Result<Stg, StgError> {
    let (mut stg, idle) = sender_shell();
    let n = Signal::new("n");
    for (cmd, wa, wb) in SENDER_COMMANDS {
        let cmd_sig = Signal::new(cmd);
        let wa = Signal::new(wa);
        let wb = Signal::new(wb);
        let ua = stg.add_place(format!("{cmd}.ua"));
        let ub = stg.add_place(format!("{cmd}.ub"));
        let ma = stg.add_place(format!("{cmd}.ma"));
        let mb = stg.add_place(format!("{cmd}.mb"));
        let la = stg.add_place(format!("{cmd}.la"));
        let lb = stg.add_place(format!("{cmd}.lb"));
        let w = stg.add_place(format!("{cmd}.w"));
        stg.add_signal_transition([idle], (cmd_sig, Edge::Toggle), [ua, ub])?;
        stg.add_signal_transition([ua], (wa.clone(), Edge::Rise), [ma])?;
        stg.add_signal_transition([ma], (wa, Edge::Fall), [la])?;
        stg.add_signal_transition([ub], (wb.clone(), Edge::Rise), [mb])?;
        stg.add_signal_transition([mb], (wb, Edge::Fall), [lb])?;
        stg.add_signal_transition([la, lb], (n.clone(), Edge::Rise), [w])?;
        stg.add_signal_transition([w], (n.clone(), Edge::Fall), [idle])?;
    }
    Ok(stg)
}

/// A 4-phase two-wire transmission toward the receiver (used by the
/// translator): take the link mutex, fork, raise `wp`/`wq`, wait `r+`,
/// lower them, wait `r-` (which releases the mutex). Ends by marking
/// `exit`.
///
/// The mutex serializes transmissions so that the translator may keep
/// listening to the sender while a transmission is in flight (the
/// environment is free to issue the next command at any time — without
/// the overlap the composition would have a spurious receptiveness
/// race on the command wires).
fn xmit(
    stg: &mut Stg,
    tag: &str,
    link: PlaceId,
    entry: PlaceId,
    exit: &[PlaceId],
    wp: &str,
    wq: &str,
) -> Result<(), StgError> {
    let wp = Signal::new(wp);
    let wq = Signal::new(wq);
    let r = Signal::new("r");
    let up = stg.add_place(format!("{tag}.up"));
    let uq = stg.add_place(format!("{tag}.uq"));
    let hp = stg.add_place(format!("{tag}.hp"));
    let hq = stg.add_place(format!("{tag}.hq"));
    let dp = stg.add_place(format!("{tag}.dp"));
    let dq = stg.add_place(format!("{tag}.dq"));
    let lp = stg.add_place(format!("{tag}.lp"));
    let lq = stg.add_place(format!("{tag}.lq"));
    stg.add_dummy([entry, link], [up, uq])?;
    stg.add_signal_transition([up], (wp.clone(), Edge::Rise), [hp])?;
    stg.add_signal_transition([uq], (wq.clone(), Edge::Rise), [hq])?;
    stg.add_signal_transition([hp, hq], (r.clone(), Edge::Rise), [dp, dq])?;
    stg.add_signal_transition([dp], (wp, Edge::Fall), [lp])?;
    stg.add_signal_transition([dq], (wq, Edge::Fall), [lq])?;
    let mut full_exit: Vec<PlaceId> = exit.to_vec();
    full_exit.push(link);
    stg.add_signal_transition([lp, lq], (r, Edge::Fall), full_exit)?;
    Ok(())
}

/// The protocol translator of Figure 7.
///
/// Listening is re-armed by each transaction's final transition (no ε
/// between "ready" and the input wires), so the consistent system has no
/// spurious receptiveness race.
pub fn translator() -> Stg {
    match try_translator() {
        Ok(stg) => stg,
        Err(e) => panic!("translator model construction: {e}"),
    }
}

fn try_translator() -> Result<Stg, StgError> {
    let mut stg = Stg::new();
    declare_wires(&mut stg, &["a0", "a1", "b0", "b1"], SignalDir::Input);
    let data = stg.add_signal("DATA", SignalDir::Input);
    let strobe = stg.add_signal("STROBE", SignalDir::Input);
    stg.add_signal("r", SignalDir::Input);
    stg.add_signal("n", SignalDir::Output);
    declare_wires(&mut stg, &["p0", "p1", "q0", "q1"], SignalDir::Output);

    // Listening posts for the two wire groups — armed from the start, so
    // a command arriving during the initial transmission is accepted.
    let wa = stg.add_place("wA");
    let wb = stg.add_place("wB");
    stg.set_initial(wa, 1);
    stg.set_initial(wb, 1);

    // The receiver-link mutex: one transmission in flight at a time.
    let link = stg.add_place("link");
    stg.set_initial(link, 1);

    // Initial start transmission.
    let init = stg.add_place("init");
    stg.set_initial(init, 1);
    let init_done = stg.add_place("init.done");
    xmit(&mut stg, "init.start", link, init, &[init_done], "p0", "q0")?;

    // Detection: which wire of each group rises.
    let ga0 = stg.add_place("gA0");
    let ga1 = stg.add_place("gA1");
    let gb0 = stg.add_place("gB0");
    let gb1 = stg.add_place("gB1");
    stg.add_signal_transition([wa], (Signal::new("a0"), Edge::Rise), [ga0])?;
    stg.add_signal_transition([wa], (Signal::new("a1"), Edge::Rise), [ga1])?;
    stg.add_signal_transition([wb], (Signal::new("b0"), Edge::Rise), [gb0])?;
    stg.add_signal_transition([wb], (Signal::new("b1"), Edge::Rise), [gb1])?;

    // Command joins. The response is transmitted *before* the `n+`
    // acknowledge: delaying one's own output is always receptive, so the
    // link mutex exerts back-pressure on the sender without ever leaving
    // it committed to an output the translator cannot accept. `n-`
    // re-arms the listening posts atomically with the sender's return to
    // idle (the transitions are fused in the composition), closing the
    // race window on the command wires.
    let finish = |stg: &mut Stg,
                  cmd: &str,
                  cwa: &str,
                  cwb: &str,
                  pre_ack: PlaceId|
     -> Result<(), StgError> {
        let fa = stg.add_place(format!("tr.{cmd}.fa"));
        let fb = stg.add_place(format!("tr.{cmd}.fb"));
        let la = stg.add_place(format!("tr.{cmd}.la"));
        let lb = stg.add_place(format!("tr.{cmd}.lb"));
        stg.add_signal_transition([pre_ack], (Signal::new("n"), Edge::Rise), [fa, fb])?;
        stg.add_signal_transition([fa], (Signal::new(cwa), Edge::Fall), [la])?;
        stg.add_signal_transition([fb], (Signal::new(cwb), Edge::Fall), [lb])?;
        stg.add_signal_transition([la, lb], (Signal::new("n"), Edge::Fall), [wa, wb])?;
        Ok(())
    };

    for (cmd, cwa, cwb) in SENDER_COMMANDS {
        let (g1, g2) = match (cwa, cwb) {
            ("a0", "b0") => (ga0, gb0),
            ("a0", "b1") => (ga0, gb1),
            ("a1", "b0") => (ga1, gb0),
            ("a1", "b1") => (ga1, gb1),
            _ => unreachable!("table is total"),
        };
        let c0 = stg.add_place(format!("tr.{cmd}.c0"));
        stg.add_dummy([g1, g2], [c0])?;

        if cmd == "rec" {
            // Sample DATA/STROBE once stable, transmit the mapped
            // command, let the lines go unstable, then acknowledge.
            let s1 = stg.add_place("tr.rec.s1");
            let s2 = stg.add_place("tr.rec.s2");
            stg.add_signal_transition([c0], (strobe.clone(), Edge::Stable), [s1])?;
            stg.add_signal_transition([s1], (data.clone(), Edge::Stable), [s2])?;
            for ((sv, dv), out_cmd) in LINE_TABLE {
                // LINE_TABLE values are RECEIVER_COMMANDS keys by
                // construction.
                let Some((_, wp, wq)) = RECEIVER_COMMANDS.iter().find(|(c, _, _)| *c == out_cmd)
                else {
                    continue;
                };
                let k0 = stg.add_place(format!("tr.rec.{out_cmd}.k0"));
                let sel = stg.add_dummy([s2], [k0])?;
                stg.set_guard(
                    sel,
                    Guard::new()
                        .require(strobe.clone(), sv)
                        .require(data.clone(), dv),
                );
                let end = stg.add_place(format!("tr.rec.{out_cmd}.end"));
                xmit(
                    &mut stg,
                    &format!("tr.rec.{out_cmd}"),
                    link,
                    k0,
                    &[end],
                    wp,
                    wq,
                )?;
                let u1 = stg.add_place(format!("tr.rec.{out_cmd}.u1"));
                let pre_ack = stg.add_place(format!("tr.rec.{out_cmd}.pre_ack"));
                stg.add_signal_transition([end], (strobe.clone(), Edge::Unstable), [u1])?;
                stg.add_signal_transition([u1], (data.clone(), Edge::Unstable), [pre_ack])?;
                finish(&mut stg, &format!("rec.{out_cmd}"), cwa, cwb, pre_ack)?;
            }
        } else {
            // reset → start, send0 → zero, send1 → one.
            let out_cmd = match cmd {
                "reset" => "start",
                "send0" => "zero",
                "send1" => "one",
                _ => unreachable!("rec handled above"),
            };
            let Some((_, wp, wq)) = RECEIVER_COMMANDS.iter().find(|(c, _, _)| *c == out_cmd) else {
                continue;
            };
            let pre_ack = stg.add_place(format!("tr.{cmd}.pre_ack"));
            xmit(
                &mut stg,
                &format!("tr.{cmd}.{out_cmd}"),
                link,
                c0,
                &[pre_ack],
                wp,
                wq,
            )?;
            finish(&mut stg, cmd, cwa, cwb, pre_ack)?;
        }
    }

    Ok(stg)
}

/// The receiver of Figure 6: detects the translator's two-wire code,
/// emits the transition-signalling command toward the environment, and
/// completes the 4-phase handshake on `r`.
pub fn receiver() -> Stg {
    match try_receiver() {
        Ok(stg) => stg,
        Err(e) => panic!("receiver model construction: {e}"),
    }
}

fn try_receiver() -> Result<Stg, StgError> {
    let mut stg = Stg::new();
    declare_wires(&mut stg, &["p0", "p1", "q0", "q1"], SignalDir::Input);
    stg.add_signal("r", SignalDir::Output);
    for (cmd, _, _) in RECEIVER_COMMANDS {
        stg.add_signal(cmd, SignalDir::Output);
    }
    let r = Signal::new("r");

    let wp = stg.add_place("wP");
    let wq = stg.add_place("wQ");
    stg.set_initial(wp, 1);
    stg.set_initial(wq, 1);

    let gp0 = stg.add_place("gP0");
    let gp1 = stg.add_place("gP1");
    let gq0 = stg.add_place("gQ0");
    let gq1 = stg.add_place("gQ1");
    stg.add_signal_transition([wp], (Signal::new("p0"), Edge::Rise), [gp0])?;
    stg.add_signal_transition([wp], (Signal::new("p1"), Edge::Rise), [gp1])?;
    stg.add_signal_transition([wq], (Signal::new("q0"), Edge::Rise), [gq0])?;
    stg.add_signal_transition([wq], (Signal::new("q1"), Edge::Rise), [gq1])?;

    for (cmd, cwp, cwq) in RECEIVER_COMMANDS {
        let (g1, g2) = match (cwp, cwq) {
            ("p0", "q0") => (gp0, gq0),
            ("p0", "q1") => (gp0, gq1),
            ("p1", "q0") => (gp1, gq0),
            ("p1", "q1") => (gp1, gq1),
            _ => unreachable!("table is total"),
        };
        let c = stg.add_place(format!("rx.{cmd}.c"));
        let fp = stg.add_place(format!("rx.{cmd}.fp"));
        let fq = stg.add_place(format!("rx.{cmd}.fq"));
        let lp = stg.add_place(format!("rx.{cmd}.lp"));
        let lq = stg.add_place(format!("rx.{cmd}.lq"));
        stg.add_signal_transition([g1, g2], (Signal::new(cmd), Edge::Toggle), [c])?;
        stg.add_signal_transition([c], (r.clone(), Edge::Rise), [fp, fq])?;
        stg.add_signal_transition([fp], (Signal::new(cwp), Edge::Fall), [lp])?;
        stg.add_signal_transition([fq], (Signal::new(cwq), Edge::Fall), [lq])?;
        stg.add_signal_transition([lp, lq], (r.clone(), Edge::Fall), [wp, wq])?;
    }

    Ok(stg)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::signal::StgLabel;
    use cpn_petri::ReachabilityOptions;

    #[test]
    fn sender_is_classical() {
        let s = sender();
        let rep = s.classical_report(&ReachabilityOptions::default()).unwrap();
        assert!(rep.live, "sender live");
        assert!(rep.safe, "sender safe");
        assert!(rep.strongly_connected, "sender strongly connected");
    }

    #[test]
    fn receiver_is_classical() {
        let r = receiver();
        let rep = r.classical_report(&ReachabilityOptions::default()).unwrap();
        assert!(rep.live && rep.safe && rep.strongly_connected);
    }

    /// The translator sends `start` once at startup (Figure 7:
    /// "initially, it sends a start command"), so its init chain is a
    /// one-shot transient — quasi-live, not L4-live. The meaningful
    /// checks are: safe, deadlock-free, nothing dead, and everything
    /// outside the init transient live.
    #[test]
    fn translator_is_safe_deadlock_free_and_live_after_init() {
        let t = translator();
        let rg = t
            .net()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        let an = t.net().analysis(&rg);
        assert!(an.safe, "translator safe");
        assert!(an.deadlock_free, "translator deadlock-free");
        assert!(an.dead_transitions().is_empty(), "nothing dead");
        // Only the 7 init.start transitions (ε fork, two rises, r+, two
        // falls, r−) are transient.
        assert_eq!(an.non_live_transitions().len(), 7);
    }

    #[test]
    fn sender_sizes_match_structure() {
        let s = sender();
        // 4 branches × 7 transitions.
        assert_eq!(s.net().transition_count(), 28);
        assert_eq!(s.net().place_count(), 1 + 4 * 8);
        // Restricted: one branch fewer.
        assert_eq!(sender_restricted().net().transition_count(), 21);
    }

    #[test]
    fn consistent_composition_works() {
        let system = sender()
            .compose(&translator())
            .unwrap()
            .compose(&receiver())
            .unwrap()
            .remove_dead(&ReachabilityOptions::default())
            .unwrap();
        let rg = system
            .net()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        let an = system.net().analysis(&rg);
        // Section 6 claim: the composition of the consistent STGs works —
        // safe, deadlock-free, nothing dead; the only non-live
        // transitions are the one-shot initial `start` transmission.
        assert!(an.safe, "composition safe");
        assert!(an.deadlock_free, "composition deadlock-free");
        assert!(an.dead_transitions().is_empty(), "dead removal complete");
        for t in an.non_live_transitions() {
            let has_init_place = system
                .net()
                .transition(t)
                .preset()
                .iter()
                .any(|p| system.net().place(*p).name().contains("init"));
            assert!(
                has_init_place || {
                    // fused init transitions carry receiver-side places
                    // too; identify by the init.start tag instead.
                    system
                        .net()
                        .transition(t)
                        .preset()
                        .iter()
                        .any(|p| system.net().place(*p).name().contains("init.start"))
                },
                "unexpected non-live transition {t}: {}",
                system.net().label_of(t)
            );
        }
    }

    #[test]
    fn inconsistent_sender_builds() {
        let s = sender_inconsistent();
        let rep = s.classical_report(&ReachabilityOptions::default()).unwrap();
        assert!(
            rep.live && rep.safe,
            "the inconsistent sender is fine alone"
        );
    }

    /// Figure 8 / Propositions 5.5–5.6: the consistent sender composes
    /// receptively with the translator; the inconsistent one is caught.
    #[test]
    fn receptiveness_separates_fig5_from_fig8() {
        let tr = translator();
        let good = sender()
            .check_receptiveness(&tr, &ReachabilityOptions::default())
            .unwrap();
        assert!(good.is_receptive(), "consistent spec: {:?}", good.failures);

        let bad = sender_inconsistent()
            .check_receptiveness(&tr, &ReachabilityOptions::default())
            .unwrap();
        assert!(!bad.is_receptive(), "Figure 8 must be detected");
        // The failing outputs are the premature wire falls of the sender.
        assert!(bad.failures.iter().any(|f| {
            f.producer == cpn_core::Side::Left
                && matches!(&f.label, StgLabel::Signal(_, Edge::Fall))
        }));
    }

    /// Figure 9(b): reducing the translator against the restricted
    /// sender removes the whole `rec`/DATA/STROBE handling.
    #[test]
    fn fig9_simplified_translator() {
        let tr = translator();
        let reduced = tr
            .reduce_against(
                &sender_restricted(),
                &ReachabilityOptions::default(),
                10_000,
            )
            .unwrap();
        assert!(
            reduced.net().transition_count() < tr.net().transition_count(),
            "reduced {} vs original {}",
            reduced.net().transition_count(),
            tr.net().transition_count()
        );
        // No DATA/STROBE behaviour survives.
        assert!(reduced
            .net()
            .alphabet()
            .iter()
            .all(|l| l.signal_name().map(Signal::name) != Some("DATA")
                && l.signal_name().map(Signal::name) != Some("STROBE")));
        // Theorem 5.1: the reduced traces are contained in the original's
        // (over the surviving alphabet, up to a depth).
        let reduced_lang = reduced.language(5, 1_000_000).unwrap();
        let orig_lang = tr.language(7, 1_000_000).unwrap();
        let keep = reduced.net().alphabet().clone();
        let orig_proj = orig_lang.project(&keep);
        assert!(
            reduced_lang.subset_up_to(&orig_proj, 5),
            "project(L(M1‖M2), A_tr) ⊆ L(M_tr)"
        );
    }

    /// Figure 9(c): the receiver simplified against the reduced
    /// translator loses the `mute` command. The derivation uses
    /// environment-driven pruning (the translator's hidden internals form
    /// cycles the contraction operator rejects — see
    /// [`Stg::prune_against`]).
    #[test]
    fn fig9_simplified_receiver() {
        let tr_reduced = translator()
            .reduce_against(
                &sender_restricted(),
                &ReachabilityOptions::default(),
                10_000,
            )
            .unwrap();
        let rx = receiver();
        let rx_reduced = rx
            .prune_against(&tr_reduced, &ReachabilityOptions::default())
            .unwrap();
        assert!(
            rx_reduced.net().transition_count() < rx.net().transition_count(),
            "reduced {} vs original {}",
            rx_reduced.net().transition_count(),
            rx.net().transition_count()
        );
        // mute~ can never be produced.
        assert!(!rx_reduced.net().transitions().any(|(tid, _)| rx_reduced
            .net()
            .label_of(tid)
            .signal_name()
            .map(Signal::name)
            == Some("mute")));
        assert!(!rx_reduced.signals().contains_key(&Signal::new("mute")));
    }
}
