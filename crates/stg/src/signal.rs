//! Signals, directions, edges and the [`StgLabel`] action type.

use std::fmt;
use std::sync::Arc;

/// A named wire. Cheap to clone (shared string).
///
/// # Example
///
/// ```
/// use cpn_stg::Signal;
/// let s = Signal::new("req");
/// assert_eq!(s.name(), "req");
/// assert_eq!(s.to_string(), "req");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signal(Arc<str>);

impl Signal {
    /// Creates a signal with the given wire name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Signal(Arc::from(name.as_ref()))
    }

    /// The wire name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signal({})", self.0)
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Signal {
    fn from(s: &str) -> Self {
        Signal::new(s)
    }
}

/// Signal direction: who drives the wire (Section 5.1's semantic
/// distinction between inputs and outputs; internal wires are outputs
/// that may be hidden).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SignalDir {
    /// Driven by the environment.
    Input,
    /// Driven by the module.
    Output,
    /// Driven by the module, not part of the interface.
    Internal,
}

impl fmt::Display for SignalDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SignalDir::Input => "input",
            SignalDir::Output => "output",
            SignalDir::Internal => "internal",
        })
    }
}

/// A signal transition type: the classical `+`/`-` edges plus the
/// extensions of \[9\] the paper lists in Section 2.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Edge {
    /// `s+`: 0 → 1.
    Rise,
    /// `s-`: 1 → 0.
    Fall,
    /// `s~`: toggle (whichever way).
    Toggle,
    /// `s=`: the signal is (and stays) stable at its current value.
    Stable,
    /// `s#`: the signal becomes unstable (its value is unreliable).
    Unstable,
    /// `s?`: don't care.
    DontCare,
}

impl Edge {
    /// The printable suffix: `+ - ~ = # ?`.
    pub fn suffix(self) -> char {
        match self {
            Edge::Rise => '+',
            Edge::Fall => '-',
            Edge::Toggle => '~',
            Edge::Stable => '=',
            Edge::Unstable => '#',
            Edge::DontCare => '?',
        }
    }

    /// Parses a suffix character.
    pub fn from_suffix(c: char) -> Option<Edge> {
        Some(match c {
            '+' => Edge::Rise,
            '-' => Edge::Fall,
            '~' => Edge::Toggle,
            '=' => Edge::Stable,
            '#' => Edge::Unstable,
            '?' => Edge::DontCare,
            _ => return None,
        })
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

/// The STG action alphabet: `A = S × {+,-,…} ∪ {ε}` (Definition 2.3,
/// with the extended edge set).
///
/// Implements everything [`cpn_petri::Label`] needs, so the whole generic
/// algebra of `cpn-core` applies to STGs directly — the point Section 5.1
/// makes when lifting the net algebra to a circuit algebra.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StgLabel {
    /// A signal transition `s+`, `s-`, `s~`, ….
    Signal(Signal, Edge),
    /// The dummy transition ε.
    Dummy,
}

impl StgLabel {
    /// Convenience constructor for `(signal, edge)`.
    pub fn signal(s: impl Into<Signal>, e: Edge) -> Self {
        StgLabel::Signal(s.into(), e)
    }

    /// The signal, if this is not a dummy.
    pub fn signal_name(&self) -> Option<&Signal> {
        match self {
            StgLabel::Signal(s, _) => Some(s),
            StgLabel::Dummy => None,
        }
    }

    /// The edge, if this is not a dummy.
    pub fn edge(&self) -> Option<Edge> {
        match self {
            StgLabel::Signal(_, e) => Some(*e),
            StgLabel::Dummy => None,
        }
    }

    /// Whether this is the dummy label ε.
    pub fn is_dummy(&self) -> bool {
        matches!(self, StgLabel::Dummy)
    }
}

impl From<(Signal, Edge)> for StgLabel {
    fn from((s, e): (Signal, Edge)) -> Self {
        StgLabel::Signal(s, e)
    }
}

impl fmt::Debug for StgLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for StgLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgLabel::Signal(s, e) => write!(f, "{s}{e}"),
            StgLabel::Dummy => f.write_str("ε"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn signal_is_cheap_and_ordered() {
        let a = Signal::new("a");
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Signal::new("a") < Signal::new("b"));
    }

    #[test]
    fn edge_suffix_roundtrip() {
        for e in [
            Edge::Rise,
            Edge::Fall,
            Edge::Toggle,
            Edge::Stable,
            Edge::Unstable,
            Edge::DontCare,
        ] {
            assert_eq!(Edge::from_suffix(e.suffix()), Some(e));
        }
        assert_eq!(Edge::from_suffix('!'), None);
    }

    #[test]
    fn label_display() {
        assert_eq!(StgLabel::signal("req", Edge::Rise).to_string(), "req+");
        assert_eq!(StgLabel::signal("rec", Edge::Toggle).to_string(), "rec~");
        assert_eq!(StgLabel::Dummy.to_string(), "ε");
    }

    #[test]
    fn label_accessors() {
        let l = StgLabel::signal("x", Edge::Fall);
        assert_eq!(l.signal_name().unwrap().name(), "x");
        assert_eq!(l.edge(), Some(Edge::Fall));
        assert!(!l.is_dummy());
        assert!(StgLabel::Dummy.is_dummy());
        assert_eq!(StgLabel::Dummy.edge(), None);
    }

    #[test]
    fn label_satisfies_label_trait() {
        fn takes<L: cpn_petri::Label>(_: L) {}
        takes(StgLabel::Dummy);
    }
}
