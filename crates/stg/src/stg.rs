//! The [`Stg`] wrapper: declaration-checked signal transition graphs with
//! boolean guards, classical well-formedness, and the STG-level
//! composition/hiding operations of Section 5.1.

use crate::signal::{Edge, Signal, SignalDir, StgLabel};
use cpn_core::{hide_labels, parallel_with_sync, NetEditor};
use cpn_petri::{
    AlphaSet, Budget, Meter, PetriError, PetriNet, PlaceId, ReachabilityOptions, TransitionId,
};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Errors specific to the STG layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StgError {
    /// A transition referenced a signal that was not declared.
    UndeclaredSignal(String),
    /// A signal was declared twice with conflicting directions.
    RedeclaredSignal(String),
    /// Two composed STGs both drive the same signal.
    OutputCollision(String),
    /// An underlying Petri net error.
    Net(PetriError),
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::UndeclaredSignal(s) => write!(f, "signal {s} is not declared"),
            StgError::RedeclaredSignal(s) => {
                write!(f, "signal {s} redeclared with a different direction")
            }
            StgError::OutputCollision(s) => {
                write!(f, "both modules drive output signal {s}")
            }
            StgError::Net(e) => write!(f, "{e}"),
        }
    }
}

impl Error for StgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StgError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PetriError> for StgError {
    fn from(e: PetriError) -> Self {
        StgError::Net(e)
    }
}

/// A boolean guard: a conjunction of signal-level literals, attached to a
/// transition (Section 2.2's "predicates on signal levels attached to
/// outgoing arcs of places" — arc guards of a transition's input arcs
/// conjoin, so the transition is the natural carrier).
///
/// # Example
///
/// ```
/// use cpn_stg::{Guard, Signal};
/// let g = Guard::new().require(Signal::new("DATA"), true);
/// assert!(g.eval(|s| s.name() == "DATA"));
/// assert!(!g.eval(|_| false));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Guard {
    literals: BTreeMap<Signal, bool>,
    /// Set when a conjunction required `s=0 & s=1`: the guard is
    /// unsatisfiable (the fused transition can never fire).
    contradiction: bool,
}

impl Guard {
    /// The trivially true guard.
    pub fn new() -> Self {
        Guard::default()
    }

    /// The unsatisfiable guard.
    pub fn never() -> Self {
        Guard {
            literals: BTreeMap::new(),
            contradiction: true,
        }
    }

    /// Adds a literal `signal = value` (builder style). Conflicting
    /// literals make the guard contradictory.
    pub fn require(mut self, signal: Signal, value: bool) -> Self {
        match self.literals.get(&signal) {
            Some(&v) if v != value => self.contradiction = true,
            _ => {
                self.literals.insert(signal, value);
            }
        }
        self
    }

    /// Whether the guard has no literals (always true).
    pub fn is_true(&self) -> bool {
        self.literals.is_empty() && !self.contradiction
    }

    /// Whether the guard can never be satisfied.
    pub fn is_contradiction(&self) -> bool {
        self.contradiction
    }

    /// The literals of the conjunction.
    pub fn literals(&self) -> impl Iterator<Item = (&Signal, bool)> {
        self.literals.iter().map(|(s, &v)| (s, v))
    }

    /// Evaluates the guard against a signal-level valuation.
    pub fn eval(&self, mut level: impl FnMut(&Signal) -> bool) -> bool {
        !self.contradiction && self.literals.iter().all(|(s, &v)| level(s) == v)
    }

    /// Conjunction of two guards (used when composition or hiding merges
    /// transitions; Section 5.1 notes guards propagate to the
    /// corresponding arcs).
    pub fn and(&self, other: &Guard) -> Guard {
        let mut out = self.clone();
        out.contradiction |= other.contradiction;
        for (s, &v) in &other.literals {
            out = out.require(s.clone(), v);
        }
        out
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.contradiction {
            return f.write_str("false");
        }
        if self.is_true() {
            return f.write_str("true");
        }
        let parts: Vec<String> = self
            .literals
            .iter()
            .map(|(s, &v)| format!("{s}={}", u8::from(v)))
            .collect();
        f.write_str(&parts.join(" & "))
    }
}

/// Report of the classical STG requirements of Definition 2.3:
/// strongly-connected, live and safe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassicalReport {
    /// The place/transition graph is strongly connected.
    pub strongly_connected: bool,
    /// Every transition is live.
    pub live: bool,
    /// Every reachable marking is safe.
    pub safe: bool,
    /// Consistent state assignment exists (filled by the state-graph
    /// check; `None` when not computed).
    pub consistent: Option<bool>,
}

impl ClassicalReport {
    /// Whether the structural/behavioural requirements of the classical
    /// STG definition all hold.
    pub fn is_classical(&self) -> bool {
        self.strongly_connected && self.live && self.safe
    }
}

/// A signal transition graph: a labeled Petri net over [`StgLabel`] plus
/// signal declarations and per-transition guards.
#[derive(Clone, Debug)]
pub struct Stg {
    net: PetriNet<StgLabel>,
    signals: BTreeMap<Signal, SignalDir>,
    guards: BTreeMap<TransitionId, Guard>,
}

impl Default for Stg {
    fn default() -> Self {
        Self::new()
    }
}

impl Stg {
    /// Creates an empty STG.
    pub fn new() -> Self {
        Stg {
            net: PetriNet::new(),
            signals: BTreeMap::new(),
            guards: BTreeMap::new(),
        }
    }

    /// Declares a signal with its direction and returns it.
    ///
    /// Redeclaring with the same direction is idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the signal was declared with a different direction (a
    /// construction bug; use [`Stg::try_add_signal`] for fallible
    /// declaration).
    pub fn add_signal(&mut self, name: impl AsRef<str>, dir: SignalDir) -> Signal {
        match self.try_add_signal(name, dir) {
            Ok(sig) => sig,
            Err(e) => panic!("conflicting signal declaration: {e}"),
        }
    }

    /// Fallible signal declaration.
    ///
    /// # Errors
    ///
    /// [`StgError::RedeclaredSignal`] on a conflicting direction.
    pub fn try_add_signal(
        &mut self,
        name: impl AsRef<str>,
        dir: SignalDir,
    ) -> Result<Signal, StgError> {
        let sig = Signal::new(name);
        match self.signals.get(&sig) {
            Some(&existing) if existing != dir => {
                Err(StgError::RedeclaredSignal(sig.name().to_owned()))
            }
            _ => {
                self.signals.insert(sig.clone(), dir);
                Ok(sig)
            }
        }
    }

    /// Adds a place (delegates to the underlying net).
    pub fn add_place(&mut self, name: impl Into<String>) -> PlaceId {
        self.net.add_place(name)
    }

    /// Adds a signal transition `(preset, s·e, postset)`.
    ///
    /// # Errors
    ///
    /// [`StgError::UndeclaredSignal`] if the signal was not declared;
    /// net-level errors otherwise.
    pub fn add_signal_transition(
        &mut self,
        preset: impl IntoIterator<Item = PlaceId>,
        label: (Signal, Edge),
        postset: impl IntoIterator<Item = PlaceId>,
    ) -> Result<TransitionId, StgError> {
        let (sig, edge) = label;
        if !self.signals.contains_key(&sig) {
            return Err(StgError::UndeclaredSignal(sig.name().to_owned()));
        }
        Ok(self
            .net
            .add_transition(preset, StgLabel::Signal(sig, edge), postset)?)
    }

    /// Adds a dummy (ε) transition.
    ///
    /// # Errors
    ///
    /// Net-level errors (unknown place, degenerate transition).
    pub fn add_dummy(
        &mut self,
        preset: impl IntoIterator<Item = PlaceId>,
        postset: impl IntoIterator<Item = PlaceId>,
    ) -> Result<TransitionId, StgError> {
        Ok(self.net.add_transition(preset, StgLabel::Dummy, postset)?)
    }

    /// Attaches a guard to a transition (replacing any previous guard).
    pub fn set_guard(&mut self, t: TransitionId, guard: Guard) {
        if guard.is_true() {
            self.guards.remove(&t);
        } else {
            self.guards.insert(t, guard);
        }
    }

    /// The guard of a transition (true when none was attached).
    pub fn guard(&self, t: TransitionId) -> Guard {
        self.guards.get(&t).cloned().unwrap_or_default()
    }

    /// Sets the initial marking of a place.
    pub fn set_initial(&mut self, place: PlaceId, tokens: u32) {
        self.net.set_initial(place, tokens);
    }

    /// The underlying labeled Petri net.
    pub fn net(&self) -> &PetriNet<StgLabel> {
        &self.net
    }

    /// The declared signals and their directions.
    pub fn signals(&self) -> &BTreeMap<Signal, SignalDir> {
        &self.signals
    }

    /// Signals with the given direction.
    pub fn signals_with_dir(&self, dir: SignalDir) -> BTreeSet<Signal> {
        self.signals
            .iter()
            .filter(|(_, &d)| d == dir)
            .map(|(s, _)| s.clone())
            .collect()
    }

    /// All labels of a signal present in the net's alphabet.
    pub fn labels_of(&self, signal: &Signal) -> BTreeSet<StgLabel> {
        self.net
            .alphabet()
            .into_iter()
            .filter(|l| l.signal_name() == Some(signal))
            .collect()
    }

    /// Wraps an existing net and declarations (used by the composition
    /// operations and the text format).
    ///
    /// # Errors
    ///
    /// [`StgError::UndeclaredSignal`] if the net mentions an undeclared
    /// signal.
    pub fn from_parts(
        net: PetriNet<StgLabel>,
        signals: BTreeMap<Signal, SignalDir>,
        guards: BTreeMap<TransitionId, Guard>,
    ) -> Result<Self, StgError> {
        for l in net.alphabet() {
            if let Some(s) = l.signal_name() {
                if !signals.contains_key(s) {
                    return Err(StgError::UndeclaredSignal(s.name().to_owned()));
                }
            }
        }
        Ok(Stg {
            net,
            signals,
            guards,
        })
    }

    // ------------------------------------------------------------------
    // Definition 2.3 checks
    // ------------------------------------------------------------------

    /// Checks the classical STG requirements (Definition 2.3):
    /// strongly-connected, live, safe. The consistency slot is left
    /// `None`; fill it via [`crate::StateGraph`].
    ///
    /// # Errors
    ///
    /// Propagates reachability budget errors.
    pub fn classical_report(
        &self,
        options: &ReachabilityOptions,
    ) -> Result<ClassicalReport, StgError> {
        let rg = self.net.reachability(options)?;
        let analysis = self.net.analysis(&rg);
        Ok(ClassicalReport {
            strongly_connected: self.net.structural().strongly_connected,
            live: analysis.live,
            safe: analysis.safe,
            consistent: None,
        })
    }

    // ------------------------------------------------------------------
    // Section 5.1: STG-level circuit algebra
    // ------------------------------------------------------------------

    /// Parallel composition of two STGs: synchronizes on the labels of
    /// **shared signals** (never on ε), merges signal declarations
    /// (input + output → output, the driven side wins), and conjoins
    /// guards of fused transitions.
    ///
    /// # Errors
    ///
    /// [`StgError::OutputCollision`] if both STGs drive a shared signal.
    pub fn compose(&self, other: &Stg) -> Result<Stg, StgError> {
        let mut signals = self.signals.clone();
        for (s, &dir) in &other.signals {
            match signals.get(s) {
                None => {
                    signals.insert(s.clone(), dir);
                }
                Some(&mine) => {
                    let drives = |d: SignalDir| d != SignalDir::Input;
                    if drives(mine) && drives(dir) {
                        return Err(StgError::OutputCollision(s.name().to_owned()));
                    }
                    if drives(dir) {
                        signals.insert(s.clone(), dir);
                    }
                }
            }
        }

        // Synchronize on every label of every shared signal; ε stays
        // private to each side. The common alphabet is computed on the
        // nets' symbol bitsets.
        let shared: BTreeSet<StgLabel> = cpn_core::common_alphabet(&self.net, &other.net)
            .into_iter()
            .filter(|l| !l.is_dummy())
            .collect();
        let comp = cpn_core::parallel_tracked(&self.net, &other.net, &shared)?;

        // Guards: private transitions keep theirs; fused transitions get
        // the conjunction.
        let mut guards: BTreeMap<TransitionId, Guard> = BTreeMap::new();
        // Private transitions were added in operand order: left private,
        // right private, then fused. Recover by matching labels/presets
        // via the tracked maps.
        let shared_left: AlphaSet = shared.iter().filter_map(|l| self.net.sym_of(l)).collect();
        let shared_right: AlphaSet = shared.iter().filter_map(|l| other.net.sym_of(l)).collect();
        let mut next = 0usize;
        for (tid, t) in self.net.transitions() {
            if !shared_left.contains(t.sym()) {
                let g = self.guard(tid);
                if !g.is_true() {
                    guards.insert(TransitionId::from_index(next), g);
                }
                next += 1;
            }
        }
        for (tid, t) in other.net.transitions() {
            if !shared_right.contains(t.sym()) {
                let g = other.guard(tid);
                if !g.is_true() {
                    guards.insert(TransitionId::from_index(next), g);
                }
                next += 1;
            }
        }
        for sync in &comp.sync_transitions {
            let g = self
                .guard(sync.left_transition)
                .and(&other.guard(sync.right_transition));
            if !g.is_true() {
                guards.insert(sync.transition, g);
            }
        }

        Ok(Stg {
            net: comp.net,
            signals,
            guards,
        })
    }

    /// Hides a signal: contracts all its transitions (Section 5.1: "to
    /// hide a signal s means to hide all signal transitions for this
    /// signal") and removes the declaration.
    ///
    /// Guards referring to the hidden signal cannot be propagated through
    /// a contraction (the level information disappears with the wire);
    /// such guards are rejected.
    ///
    /// # Errors
    ///
    /// * [`StgError::UndeclaredSignal`] for unknown signals.
    /// * Contraction errors (divergence, both-sided consumers).
    /// * [`PetriError::Precondition`] via [`StgError::Net`] when a guard
    ///   mentions the signal or a guarded transition would be contracted.
    pub fn hide_signal(&self, signal: &Signal, budget: usize) -> Result<Stg, StgError> {
        if !self.signals.contains_key(signal) {
            return Err(StgError::UndeclaredSignal(signal.name().to_owned()));
        }
        for (t, g) in &self.guards {
            if g.literals().any(|(s, _)| s == signal) {
                return Err(StgError::Net(PetriError::Precondition(format!(
                    "guard of {t} mentions hidden signal {signal}"
                ))));
            }
            if self.net.label_of(*t).signal_name() == Some(signal) {
                return Err(StgError::Net(PetriError::Precondition(format!(
                    "guarded transition {t} would be contracted"
                ))));
            }
        }
        let labels = self.labels_of(signal);
        let net = hide_labels(&self.net, &labels, budget)?;
        let mut signals = self.signals.clone();
        signals.remove(signal);
        // Guards cannot be carried across contraction by transition id;
        // the operation above rejected guard-relevant cases, and the
        // remaining guards are conservative to drop only if absent.
        // Re-attach nothing: contraction rebuilt all ids.
        if !self.guards.is_empty() {
            return Err(StgError::Net(PetriError::Precondition(
                "hiding on guarded STGs is limited to guard-free nets; relabel instead".to_owned(),
            )));
        }
        Ok(Stg {
            net,
            signals,
            guards: BTreeMap::new(),
        })
    }

    /// The `hide'` variant: relabels the signal's transitions to ε,
    /// keeping net structure and guards (usable on guarded STGs and by
    /// the receptiveness check of Section 5.3).
    ///
    /// # Errors
    ///
    /// [`StgError::UndeclaredSignal`] for unknown signals.
    pub fn hide_signal_relabel(&self, signal: &Signal) -> Result<Stg, StgError> {
        if !self.signals.contains_key(signal) {
            return Err(StgError::UndeclaredSignal(signal.name().to_owned()));
        }
        let labels = self.labels_of(signal);
        let net = cpn_core::hide_relabel(&self.net, &labels, StgLabel::Dummy);
        let mut signals = self.signals.clone();
        signals.remove(signal);
        Ok(Stg {
            net,
            signals,
            guards: self.guards.clone(),
        })
    }

    /// Projects the STG onto a set of signals: hides all others
    /// (contraction). The paper's
    /// `N̄_tr = project(N_send ‖ N_tr, A_tr)` (Section 6).
    ///
    /// Runs as a single pass over one [`NetEditor`]: signals are hidden
    /// in declaration order on the same editor instead of materializing
    /// one intermediate STG per signal, producing a net bit-identical to
    /// the chained [`Stg::hide_signal`] calls (each label still gets its
    /// own `budget` of contractions).
    ///
    /// # Errors
    ///
    /// Propagates [`Stg::hide_signal`] errors.
    pub fn project_signals(&self, keep: &BTreeSet<Signal>, budget: usize) -> Result<Stg, StgError> {
        let to_hide: Vec<Signal> = self
            .signals
            .keys()
            .filter(|s| !keep.contains(*s))
            .cloned()
            .collect();
        if to_hide.is_empty() {
            return Ok(self.clone());
        }
        let mut editor = NetEditor::from_net(&self.net);
        let per_label = Budget::new(usize::MAX, budget);
        let mut signals = self.signals.clone();
        for s in &to_hide {
            // Same per-signal guard validation as `hide_signal`; past the
            // first hidden signal the guard map is known to be empty.
            for (t, g) in &self.guards {
                if g.literals().any(|(sig, _)| sig == s) {
                    return Err(StgError::Net(PetriError::Precondition(format!(
                        "guard of {t} mentions hidden signal {s}"
                    ))));
                }
                if self.net.label_of(*t).signal_name() == Some(s) {
                    return Err(StgError::Net(PetriError::Precondition(format!(
                        "guarded transition {t} would be contracted"
                    ))));
                }
            }
            for l in self.labels_of(s) {
                let mut meter = Meter::new(&per_label);
                if !editor.hide_label(&l, &mut meter).map_err(StgError::Net)? {
                    return Err(StgError::Net(PetriError::Precondition(format!(
                        "hiding of {l} did not converge within {budget} contractions"
                    ))));
                }
            }
            signals.remove(s);
            if !self.guards.is_empty() {
                return Err(StgError::Net(PetriError::Precondition(
                    "hiding on guarded STGs is limited to guard-free nets; relabel instead"
                        .to_owned(),
                )));
            }
        }
        Ok(Stg {
            net: editor.finish().map_err(StgError::Net)?,
            signals,
            guards: BTreeMap::new(),
        })
    }

    /// Removes dead transitions (found on the reachability graph) and
    /// isolated places — the cleanup step of compositional synthesis
    /// (Section 5.2).
    ///
    /// Guards of surviving transitions are dropped only when no guards
    /// exist; guarded STGs must prune manually (ids shift).
    ///
    /// # Errors
    ///
    /// Propagates reachability budget errors.
    pub fn remove_dead(&self, options: &ReachabilityOptions) -> Result<Stg, StgError> {
        let rg = self.net.reachability(options)?;
        let dead = cpn_petri::dead_transitions_rg(&self.net, &rg);
        if dead.is_empty() {
            return Ok(self.clone());
        }
        // Remap guards across the compaction.
        let mut guards = BTreeMap::new();
        let mut next = 0usize;
        for (tid, _) in self.net.transitions() {
            if !dead.contains(&tid) {
                if let Some(g) = self.guards.get(&tid) {
                    guards.insert(TransitionId::from_index(next), g.clone());
                }
                next += 1;
            }
        }
        let pruned = self.net.without_transitions(&dead);
        // Dropping isolated places invalidates nothing for guards (they
        // reference signals, not places).
        let (net, _) = pruned.without_isolated_places();
        Ok(Stg {
            net,
            signals: self.signals.clone(),
            guards,
        })
    }

    /// Labels of all signals this STG drives (outputs and internals) —
    /// the producer set for receptiveness checking.
    pub fn output_labels(&self) -> BTreeSet<StgLabel> {
        self.net
            .alphabet()
            .into_iter()
            .filter(|l| {
                l.signal_name()
                    .is_some_and(|s| self.signals.get(s).is_some_and(|&d| d != SignalDir::Input))
            })
            .collect()
    }

    /// Receptiveness check against a peer STG (Propositions 5.5/5.6):
    /// composes the two nets on their shared signal labels and searches
    /// the reachability graph for a state in which one side can commit
    /// to an output no peer alternative is ready to accept.
    ///
    /// # Errors
    ///
    /// Reachability budget errors.
    pub fn check_receptiveness(
        &self,
        other: &Stg,
        options: &ReachabilityOptions,
    ) -> Result<cpn_core::ReceptivenessReport<StgLabel>, StgError> {
        Ok(cpn_core::check_receptiveness(
            &self.net,
            &other.net,
            &self.output_labels(),
            &other.output_labels(),
            options,
        )?)
    }

    /// Compositional synthesis against a known environment (Section 5.2
    /// and the Figure 9 derivation): compose, remove the dead
    /// synchronization duplicates, project onto this STG's own signals,
    /// and clean up again. By Theorem 5.1 the result's traces are
    /// contained in this STG's.
    ///
    /// Guards on transitions that survive dead-removal block the
    /// projection (contraction cannot carry guards); in the paper's
    /// example the guarded `rec` branch dies with the restricted sender,
    /// which is exactly why the reduction is performed in this order.
    ///
    /// # Errors
    ///
    /// Reachability budget and hiding (divergence) errors.
    pub fn reduce_against(
        &self,
        env: &Stg,
        options: &ReachabilityOptions,
        hide_budget: usize,
    ) -> Result<Stg, StgError> {
        let composed = self.compose(env)?;
        let pruned = composed.remove_dead(options)?;
        let keep: BTreeSet<Signal> = self.signals.keys().cloned().collect();
        let projected = pruned.project_signals(&keep, hide_budget)?;
        // When projection was structurally a no-op the pruned net's
        // reachability graph is still valid and held no dead transitions;
        // skip the second exploration outright.
        let mut reduced = if projected.net.same_structure(&pruned.net) {
            projected
        } else {
            projected.remove_dead(options)?
        };
        // Composition merged signal directions toward the driving side
        // (the environment drives this module's inputs); the derived
        // module keeps its own interface directions.
        for (s, dir) in reduced.signals.iter_mut() {
            if let Some(&mine) = self.signals.get(s) {
                *dir = mine;
            }
        }
        reduced.drop_unused_signals();
        Ok(reduced)
    }

    /// Environment-driven dead-transition removal (Section 5.2 applied in
    /// place): composes this STG with `env`, finds which of **this**
    /// STG's transitions can never fire in the composition, and removes
    /// them. The result keeps this STG's structure — no contraction —
    /// which is the robust way to derive a simplified module when the
    /// environment's internals form hidden cycles the contraction
    /// operator must reject (the Figure 9(c) receiver derivation).
    ///
    /// By Theorem 5.1 the pruned module's traces still contain every
    /// behaviour the environment can drive.
    ///
    /// # Errors
    ///
    /// Reachability budget errors on the composition.
    pub fn prune_against(&self, env: &Stg, options: &ReachabilityOptions) -> Result<Stg, StgError> {
        let shared: BTreeSet<StgLabel> = cpn_core::common_alphabet(&self.net, &env.net)
            .into_iter()
            .filter(|l| !l.is_dummy())
            .collect();
        let comp = cpn_core::parallel_tracked(&self.net, &env.net, &shared)?;
        let rg = comp.net.reachability(options)?;
        let mut fired = vec![false; comp.net.transition_count()];
        for (_, t, _) in rg.all_edges() {
            fired[t.index()] = true;
        }

        // Liveness of this STG's transitions: private ones map in order;
        // shared ones are alive iff any of their fused instances fired.
        let shared_syms: AlphaSet = shared.iter().filter_map(|l| self.net.sym_of(l)).collect();
        let mut alive = vec![false; self.net.transition_count()];
        let mut composed_idx = 0usize;
        for (tid, t) in self.net.transitions() {
            if !shared_syms.contains(t.sym()) {
                alive[tid.index()] = fired[composed_idx];
                composed_idx += 1;
            }
        }
        for sync in &comp.sync_transitions {
            if fired[sync.transition.index()] {
                alive[sync.left_transition.index()] = true;
            }
        }

        let dead: BTreeSet<TransitionId> = self
            .net
            .transition_ids()
            .filter(|t| !alive[t.index()])
            .collect();
        // Remap guards across the compaction, then drop isolated places.
        let mut guards = BTreeMap::new();
        let mut next = 0usize;
        for (tid, _) in self.net.transitions() {
            if !dead.contains(&tid) {
                if let Some(g) = self.guards.get(&tid) {
                    guards.insert(TransitionId::from_index(next), g.clone());
                }
                next += 1;
            }
        }
        let (net, _) = self
            .net
            .without_transitions(&dead)
            .without_isolated_places();
        let mut out = Stg {
            net,
            signals: self.signals.clone(),
            guards,
        };
        out.drop_unused_signals();
        Ok(out)
    }

    /// Removes declarations (and alphabet labels) of signals that no
    /// longer label any transition. Used after compositional reduction:
    /// an interface wire the environment can never exercise is not part
    /// of the simplified module (Figure 9(b) drops `DATA`/`STROBE`).
    ///
    /// Note that dropping a label changes blocking behaviour in later
    /// compositions (a declared-but-unused label blocks the peer, per
    /// Definition 4.7) — which is exactly the intent for a synthesized
    /// module's final interface.
    pub fn drop_unused_signals(&mut self) {
        let used: BTreeSet<Signal> = self
            .net
            .transitions()
            .filter_map(|(tid, _)| self.net.label_of(tid).signal_name().cloned())
            .collect();
        let unused: Vec<Signal> = self
            .signals
            .keys()
            .filter(|s| !used.contains(*s))
            .cloned()
            .collect();
        for s in unused {
            for l in self.labels_of(&s) {
                self.net.undeclare_label(&l);
            }
            self.signals.remove(&s);
        }
    }

    /// Language of the STG up to a depth (convenience for tests and the
    /// experiments harness).
    ///
    /// # Errors
    ///
    /// Propagates the trace budget error.
    pub fn language(
        &self,
        depth: usize,
        budget: usize,
    ) -> Result<cpn_trace::Language<StgLabel>, cpn_trace::TraceError> {
        cpn_trace::Language::from_net(&self.net, depth, budget)
    }
}

/// Re-exported composition on bare nets for callers that manage signal
/// bookkeeping themselves (the CIP layer).
///
/// # Errors
///
/// Propagates [`PetriError`] from transition construction (impossible
/// for well-formed operands).
pub fn compose_nets(
    n1: &PetriNet<StgLabel>,
    n2: &PetriNet<StgLabel>,
) -> Result<PetriNet<StgLabel>, PetriError> {
    let shared: BTreeSet<StgLabel> = cpn_core::common_alphabet(n1, n2)
        .into_iter()
        .filter(|l| !l.is_dummy())
        .collect();
    parallel_with_sync(n1, n2, &shared)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn handshake(req_dir: SignalDir, ack_dir: SignalDir) -> Stg {
        let mut stg = Stg::new();
        let req = stg.add_signal("req", req_dir);
        let ack = stg.add_signal("ack", ack_dir);
        let p: Vec<_> = (0..4).map(|i| stg.add_place(format!("p{i}"))).collect();
        stg.add_signal_transition([p[0]], (req.clone(), Edge::Rise), [p[1]])
            .unwrap();
        stg.add_signal_transition([p[1]], (ack.clone(), Edge::Rise), [p[2]])
            .unwrap();
        stg.add_signal_transition([p[2]], (req, Edge::Fall), [p[3]])
            .unwrap();
        stg.add_signal_transition([p[3]], (ack, Edge::Fall), [p[0]])
            .unwrap();
        stg.set_initial(p[0], 1);
        stg
    }

    #[test]
    fn classical_handshake() {
        let stg = handshake(SignalDir::Input, SignalDir::Output);
        let rep = stg.classical_report(&Default::default()).unwrap();
        assert!(rep.is_classical());
    }

    #[test]
    fn undeclared_signal_rejected() {
        let mut stg = Stg::new();
        let p = stg.add_place("p");
        let err = stg
            .add_signal_transition([p], (Signal::new("ghost"), Edge::Rise), [p])
            .unwrap_err();
        assert_eq!(err, StgError::UndeclaredSignal("ghost".into()));
    }

    #[test]
    fn conflicting_redeclaration_rejected() {
        let mut stg = Stg::new();
        stg.add_signal("x", SignalDir::Input);
        assert!(stg.try_add_signal("x", SignalDir::Input).is_ok());
        assert_eq!(
            stg.try_add_signal("x", SignalDir::Output),
            Err(StgError::RedeclaredSignal("x".into()))
        );
    }

    #[test]
    fn compose_synchronizes_on_shared_signals() {
        // Module drives ack, environment drives req: directions merge.
        let module = handshake(SignalDir::Input, SignalDir::Output);
        let env = handshake(SignalDir::Output, SignalDir::Input);
        let sys = module.compose(&env).unwrap();
        assert_eq!(sys.signals()[&Signal::new("req")], SignalDir::Output);
        assert_eq!(sys.signals()[&Signal::new("ack")], SignalDir::Output);
        // Each label fused pairwise: still 4 transitions.
        assert_eq!(sys.net().transition_count(), 4);
        let rep = sys.classical_report(&Default::default()).unwrap();
        assert!(rep.live && rep.safe);
    }

    #[test]
    fn compose_rejects_double_drivers() {
        let a = handshake(SignalDir::Input, SignalDir::Output);
        let b = handshake(SignalDir::Input, SignalDir::Output);
        assert_eq!(
            a.compose(&b).unwrap_err(),
            StgError::OutputCollision("ack".into())
        );
    }

    #[test]
    fn dummies_do_not_synchronize() {
        let mut a = Stg::new();
        let p = a.add_place("p");
        let q = a.add_place("q");
        a.add_dummy([p], [q]).unwrap();
        a.set_initial(p, 1);
        let b = a.clone();
        let c = a.compose(&b).unwrap();
        assert_eq!(c.net().transition_count(), 2, "ε transitions stay private");
    }

    #[test]
    fn hide_signal_contracts() {
        let stg = handshake(SignalDir::Input, SignalDir::Internal);
        let hidden = stg.hide_signal(&Signal::new("ack"), 1000).unwrap();
        assert!(!hidden.signals().contains_key(&Signal::new("ack")));
        assert!(hidden
            .net()
            .alphabet()
            .iter()
            .all(|l| l.signal_name().map(Signal::name) != Some("ack")));
    }

    #[test]
    fn hide_signal_relabel_keeps_structure() {
        let stg = handshake(SignalDir::Input, SignalDir::Internal);
        let hidden = stg.hide_signal_relabel(&Signal::new("ack")).unwrap();
        assert_eq!(hidden.net().transition_count(), 4);
        assert_eq!(
            hidden
                .net()
                .transitions()
                .filter(|(tid, _)| hidden.net().label_of(*tid).is_dummy())
                .count(),
            2
        );
    }

    #[test]
    fn project_keeps_requested_signals() {
        let stg = handshake(SignalDir::Input, SignalDir::Internal);
        let projected = stg
            .project_signals(&BTreeSet::from([Signal::new("req")]), 1000)
            .unwrap();
        assert_eq!(projected.signals().len(), 1);
    }

    #[test]
    fn guards_conjoin_on_composition() {
        let mk = |gv: bool| -> Stg {
            let mut stg = Stg::new();
            let d = stg.add_signal("DATA", SignalDir::Input);
            let x = stg.add_signal(
                "x",
                if gv {
                    SignalDir::Output
                } else {
                    SignalDir::Input
                },
            );
            let p = stg.add_place("p");
            let q = stg.add_place("q");
            let t = stg
                .add_signal_transition([p], (x, Edge::Rise), [q])
                .unwrap();
            stg.set_guard(t, Guard::new().require(d, gv));
            stg.set_initial(p, 1);
            stg
        };
        let a = mk(true);
        let b = mk(false);
        let c = a.compose(&b).unwrap();
        // x+ fused; its guard must be DATA=1 & DATA=0 — the and() keeps
        // last writer per literal, i.e. DATA appears once.
        let fused = c
            .net()
            .transitions()
            .find(|&(tid, _)| !c.net().label_of(tid).is_dummy())
            .map(|(tid, _)| tid)
            .unwrap();
        assert!(!c.guard(fused).is_true());
    }

    #[test]
    fn guard_display_and_eval() {
        let g = Guard::new()
            .require(Signal::new("DATA"), true)
            .require(Signal::new("STROBE"), false);
        assert_eq!(g.to_string(), "DATA=1 & STROBE=0");
        assert!(g.eval(|s| s.name() == "DATA"));
        assert!(!g.eval(|s| s.name() == "STROBE"));
    }

    #[test]
    fn remove_dead_prunes() {
        let mut stg = handshake(SignalDir::Input, SignalDir::Output);
        let orphan1 = stg.add_place("o1");
        let orphan2 = stg.add_place("o2");
        let x = stg.add_signal("x", SignalDir::Output);
        stg.add_signal_transition([orphan1], (x, Edge::Rise), [orphan2])
            .unwrap();
        let pruned = stg.remove_dead(&Default::default()).unwrap();
        assert_eq!(pruned.net().transition_count(), 4);
        assert_eq!(pruned.net().place_count(), 4);
    }
}
