//! The encoded state graph of an STG (Section 2.2 of the paper).
//!
//! Nodes are pairs `(marking, encoding)` where the encoding is a binary
//! valuation of all signals; an edge labeled `s+` requires `s = 0` before
//! and yields `s = 1` after (*consistent state assignment*), and the
//! toggle/stable/unstable/don't-care extensions behave per their
//! shorthand meaning. Boolean guards restrict firing to states whose
//! encoding satisfies them — this is how the protocol translator's
//! DATA/STROBE-dependent behaviour (Figure 7) is executed.
//!
//! On top of the graph: USC (unique state coding) and CSC (complete state
//! coding) diagnostics, the classical prerequisites for logic synthesis.

use crate::signal::{Edge, Signal, SignalDir, StgLabel};
use crate::stg::Stg;
use cpn_petri::{
    Bounded, Budget, CandidateScratch, Marking, MarkingStore, Meter, StubbornScratch, TransitionId,
};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// A binary signal valuation (encoding), ordered like the STG's signal
/// declaration order.
pub type Encoding = Vec<bool>;

/// A consistency violation: a signal transition fired from a state whose
/// encoding contradicts it (e.g. `s+` with `s` already 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsistencyViolation {
    /// The offending transition.
    pub transition: TransitionId,
    /// The label of the offending transition.
    pub label: StgLabel,
    /// The marking in which it fired.
    pub marking: Marking,
    /// The value the signal had (needed the opposite).
    pub value: bool,
}

/// A CSC (or USC) violation: two distinct states share an encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CscViolation {
    /// The shared encoding.
    pub encoding: Encoding,
    /// First state's marking.
    pub first: Marking,
    /// Second state's marking.
    pub second: Marking,
    /// Output signals whose excitation differs (empty for a pure USC
    /// conflict that does not violate CSC).
    pub conflicting_outputs: BTreeSet<Signal>,
}

/// Errors from state graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StateGraphError {
    /// More states than the budget allows.
    BudgetExceeded {
        /// The exceeded budget.
        budget: usize,
    },
}

impl fmt::Display for StateGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateGraphError::BudgetExceeded { budget } => {
                write!(f, "state graph budget of {budget} states exceeded")
            }
        }
    }
}

impl Error for StateGraphError {}

/// The encoded state graph.
///
/// States are packed rows of an interned [`MarkingStore`] arena: the
/// marking's `u32` counts followed by `⌈|signals| / 32⌉` bit-words of
/// the encoding. Accessors materialize [`Marking`]/[`Encoding`] values
/// on demand.
#[derive(Clone, Debug)]
pub struct StateGraph {
    signals: Vec<Signal>,
    dirs: Vec<SignalDir>,
    /// Place count: the marking prefix length of each packed row.
    places: usize,
    store: MarkingStore,
    edges: Vec<Vec<(TransitionId, usize)>>,
    violations: Vec<ConsistencyViolation>,
}

/// Appends the encoding's bit-words to a packed state row.
fn push_bits(bits: &[bool], out: &mut Vec<u32>) {
    for chunk in bits.chunks(32) {
        let mut word = 0u32;
        for (b, &v) in chunk.iter().enumerate() {
            if v {
                word |= 1 << b;
            }
        }
        out.push(word);
    }
}

/// Decodes `n` signals from the bit-words of a packed state row.
fn decode_bits(words: &[u32], n: usize) -> Encoding {
    (0..n)
        .map(|i| words[i / 32] & (1 << (i % 32)) != 0)
        .collect()
}

impl StateGraph {
    /// Builds the state graph from the STG's initial marking and the
    /// given initial signal values (unlisted signals start at 0).
    ///
    /// Guarded transitions fire only in states satisfying their guard.
    /// Consistency violations do not abort construction — the offending
    /// firing is *recorded* and skipped, so the report lists every
    /// violation reachable through consistent prefixes.
    ///
    /// # Errors
    ///
    /// [`StateGraphError::BudgetExceeded`] when more than `budget` states
    /// appear.
    pub fn build(
        stg: &Stg,
        initial_values: &BTreeMap<Signal, bool>,
        budget: usize,
    ) -> Result<StateGraph, StateGraphError> {
        match Self::build_bounded(stg, initial_values, &Budget::states(budget)) {
            Bounded::Complete(sg) => Ok(sg),
            Bounded::Exhausted { .. } => Err(StateGraphError::BudgetExceeded { budget }),
        }
    }

    /// Budgeted state-graph construction, degrading gracefully.
    ///
    /// Where [`StateGraph::build`] hard-errors when the budget runs out,
    /// this variant returns the *explored prefix* together with the
    /// exhaustion statistics ([`Bounded::Exhausted`]). Consistency
    /// violations recorded on the prefix are definite; their absence is
    /// only conclusive when construction completed.
    pub fn build_bounded(
        stg: &Stg,
        initial_values: &BTreeMap<Signal, bool>,
        budget: &Budget,
    ) -> Bounded<StateGraph> {
        Self::build_inner(stg, initial_values, budget, false)
    }

    /// Stubborn-set state-graph construction for **deadlock-style**
    /// queries, degrading gracefully like [`StateGraph::build_bounded`].
    ///
    /// Every signal-labeled or guarded transition is treated as visible
    /// and seeds the stubborn set, so only the interleavings of
    /// *unguarded dummy* transitions are reduced. The explored prefix is
    /// deadlock-preserving at the net level; consistency/USC/CSC
    /// violations found on it are definite, but their **absence is not
    /// conclusive** — a state reachable only through a pruned dummy
    /// interleaving may be missing. Use the full build for conclusive
    /// negative answers.
    pub fn build_stubborn_bounded(
        stg: &Stg,
        initial_values: &BTreeMap<Signal, bool>,
        budget: &Budget,
    ) -> Bounded<StateGraph> {
        Self::build_inner(stg, initial_values, budget, true)
    }

    fn build_inner(
        stg: &Stg,
        initial_values: &BTreeMap<Signal, bool>,
        budget: &Budget,
        stubborn: bool,
    ) -> Bounded<StateGraph> {
        let signals: Vec<Signal> = stg.signals().keys().cloned().collect();
        let dirs: Vec<SignalDir> = stg.signals().values().copied().collect();
        let index: BTreeMap<&Signal, usize> =
            signals.iter().enumerate().map(|(i, s)| (s, i)).collect();

        let enc0: Encoding = signals
            .iter()
            .map(|s| initial_values.get(s).copied().unwrap_or(false))
            .collect();

        let compiled = stg.net().compile();
        let places = compiled.place_count();

        let mut meter = Meter::new(budget);
        // The initial state is always retained, budget permitting or not.
        meter.take_state();
        let mut store = MarkingStore::new(places + signals.len().div_ceil(32));
        let mut row: Vec<u32> = Vec::with_capacity(store.stride());
        row.extend_from_slice(stg.net().initial_marking().as_slice());
        push_bits(&enc0, &mut row);
        store.intern(&row);
        let mut edges: Vec<Vec<(TransitionId, usize)>> = vec![Vec::new()];
        let mut violations = Vec::new();

        let mut scratch = CandidateScratch::new(compiled.transition_count());
        // Stubborn mode: every signal-labeled or guarded transition is
        // visible — encoding changes and guard reads must not be pruned.
        let mut stub = stubborn.then(|| {
            let seeds: Vec<u32> = (0..compiled.transition_count() as u32)
                .filter(|&tu| {
                    let t = TransitionId::from_index(tu as usize);
                    !stg.net().label_of(t).is_dummy() || !stg.guard(t).is_true()
                })
                .collect();
            (StubbornScratch::new(compiled.transition_count()), seeds)
        });
        let mut cands: Vec<u32> = Vec::new();
        let mut cur: Vec<u32> = Vec::new();
        let mut next_m: Vec<u32> = Vec::new();

        let mut frontier = 0usize;
        'explore: while frontier < store.len() {
            // Per-state deadline/cancel poll (coarse-ticked in the meter).
            if meter.should_stop() {
                break 'explore;
            }
            cur.clear();
            cur.extend_from_slice(store.get(frontier));
            let encoding = decode_bits(&cur[places..], signals.len());
            match stub.as_mut() {
                Some((stub_scratch, seeds)) => {
                    compiled.stubborn_enabled(&cur[..places], seeds, stub_scratch, &mut cands);
                }
                None => compiled.enabled_candidates(&cur[..places], &mut scratch, &mut cands),
            }
            for &tu in &cands {
                if !compiled.is_enabled(&cur[..places], tu) {
                    continue;
                }
                let t = TransitionId::from_index(tu as usize);
                let label = stg.net().label_of(t).clone();
                // Guard check against current levels.
                let guard = stg.guard(t);
                if !guard.eval(|s| index.get(s).map(|&i| encoding[i]).unwrap_or(false)) {
                    continue;
                }
                if !meter.take_transition() {
                    break 'explore;
                }
                // Encoding update + consistency.
                let mut next_enc: Vec<u32> = cur[places..].to_vec();
                if let StgLabel::Signal(s, e) = &label {
                    let i = index[s];
                    let (w, b) = (i / 32, 1u32 << (i % 32));
                    match e {
                        Edge::Rise => {
                            if encoding[i] {
                                violations.push(ConsistencyViolation {
                                    transition: t,
                                    label: label.clone(),
                                    marking: Marking::from_counts(cur[..places].to_vec()),
                                    value: true,
                                });
                                continue;
                            }
                            next_enc[w] |= b;
                        }
                        Edge::Fall => {
                            if !encoding[i] {
                                violations.push(ConsistencyViolation {
                                    transition: t,
                                    label: label.clone(),
                                    marking: Marking::from_counts(cur[..places].to_vec()),
                                    value: false,
                                });
                                continue;
                            }
                            next_enc[w] &= !b;
                        }
                        Edge::Toggle => next_enc[w] ^= b,
                        Edge::Stable | Edge::Unstable | Edge::DontCare => {}
                    }
                }
                // `t` is enabled, so firing cannot fail.
                compiled.fire_into(&cur[..places], tu, &mut next_m);
                row.clear();
                row.extend_from_slice(&next_m);
                row.extend_from_slice(&next_enc);
                let hash = MarkingStore::hash_slice(&row);
                let to = match store.find_hashed(&row, hash) {
                    Some(i) => i as usize,
                    None => {
                        if !meter.take_state() {
                            break 'explore;
                        }
                        let Ok(i) = store.insert_new_hashed(&row, hash) else {
                            break 'explore;
                        };
                        edges.push(Vec::new());
                        i as usize
                    }
                };
                edges[frontier].push((t, to));
            }
            frontier += 1;
        }

        meter.finish(StateGraph {
            signals,
            dirs,
            places,
            store,
            edges,
            violations,
        })
    }

    /// The signals, in encoding order.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.store.len()
    }

    /// The `(marking, encoding)` of a state, unpacked from the arena.
    pub fn state(&self, i: usize) -> (Marking, Encoding) {
        (self.marking_of(i), self.encoding_of(i))
    }

    fn marking_of(&self, i: usize) -> Marking {
        Marking::from_counts(self.store.get(i)[..self.places].to_vec())
    }

    fn encoding_of(&self, i: usize) -> Encoding {
        decode_bits(&self.store.get(i)[self.places..], self.signals.len())
    }

    /// Outgoing edges of a state: `(transition, target state)`.
    pub fn edges(&self, i: usize) -> &[(TransitionId, usize)] {
        &self.edges[i]
    }

    /// All consistency violations recorded during construction; empty iff
    /// the STG has a consistent state assignment along every reachable
    /// path from the given initial values.
    pub fn consistency_violations(&self) -> &[ConsistencyViolation] {
        &self.violations
    }

    /// Whether the state assignment is consistent.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// Signals excited in a state (enabled to change value), restricted
    /// to non-input signals — the excitation CSC compares.
    fn output_excitation(&self, stg: &Stg, i: usize) -> BTreeSet<Signal> {
        let mut excited = BTreeSet::new();
        for &(t, _) in &self.edges[i] {
            if let StgLabel::Signal(s, e) = stg.net().label_of(t) {
                // Every labeled signal is declared (enforced at insertion).
                let Some(idx) = self.signals.iter().position(|x| x == s) else {
                    continue;
                };
                if self.dirs[idx] != SignalDir::Input
                    && matches!(e, Edge::Rise | Edge::Fall | Edge::Toggle)
                {
                    excited.insert(s.clone());
                }
            }
        }
        excited
    }

    /// Groups state ids by their encodings.
    fn states_by_code(&self) -> BTreeMap<Encoding, Vec<usize>> {
        let mut by_code: BTreeMap<Encoding, Vec<usize>> = BTreeMap::new();
        for i in 0..self.state_count() {
            by_code.entry(self.encoding_of(i)).or_default().push(i);
        }
        by_code
    }

    /// USC check: every pair of distinct states with identical encodings.
    pub fn usc_violations(&self) -> Vec<CscViolation> {
        let mut out = Vec::new();
        for (code, group) in self.states_by_code() {
            for w in group.windows(2) {
                out.push(CscViolation {
                    encoding: code.clone(),
                    first: self.marking_of(w[0]),
                    second: self.marking_of(w[1]),
                    conflicting_outputs: BTreeSet::new(),
                });
            }
        }
        out
    }

    /// CSC check: pairs of equal-encoding states whose **output
    /// excitation** differs — the property logic derivation needs.
    pub fn csc_violations(&self, stg: &Stg) -> Vec<CscViolation> {
        let mut out = Vec::new();
        for (code, group) in self.states_by_code() {
            for a in 0..group.len() {
                for b in (a + 1)..group.len() {
                    let ea = self.output_excitation(stg, group[a]);
                    let eb = self.output_excitation(stg, group[b]);
                    if ea != eb {
                        let conflicting: BTreeSet<Signal> =
                            ea.symmetric_difference(&eb).cloned().collect();
                        out.push(CscViolation {
                            encoding: code.clone(),
                            first: self.marking_of(group[a]),
                            second: self.marking_of(group[b]),
                            conflicting_outputs: conflicting,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::stg::Guard;

    fn four_phase() -> Stg {
        let mut stg = Stg::new();
        let req = stg.add_signal("req", SignalDir::Input);
        let ack = stg.add_signal("ack", SignalDir::Output);
        let p: Vec<_> = (0..4).map(|i| stg.add_place(format!("p{i}"))).collect();
        stg.add_signal_transition([p[0]], (req.clone(), Edge::Rise), [p[1]])
            .unwrap();
        stg.add_signal_transition([p[1]], (ack.clone(), Edge::Rise), [p[2]])
            .unwrap();
        stg.add_signal_transition([p[2]], (req, Edge::Fall), [p[3]])
            .unwrap();
        stg.add_signal_transition([p[3]], (ack, Edge::Fall), [p[0]])
            .unwrap();
        stg.set_initial(p[0], 1);
        stg
    }

    #[test]
    fn four_phase_state_graph() {
        let stg = four_phase();
        let sg = StateGraph::build(&stg, &BTreeMap::new(), 1000).unwrap();
        assert_eq!(sg.state_count(), 4);
        assert!(sg.is_consistent());
        // Encodings cycle 00 → 10(req) → 11 → 01 → 00.
        let codes: BTreeSet<Encoding> = (0..4).map(|i| sg.state(i).1.clone()).collect();
        assert_eq!(codes.len(), 4, "all four codes distinct");
        assert!(sg.usc_violations().is_empty());
        assert!(sg.csc_violations(&stg).is_empty());
    }

    #[test]
    fn inconsistent_double_rise_detected() {
        let mut stg = Stg::new();
        let x = stg.add_signal("x", SignalDir::Output);
        let p0 = stg.add_place("p0");
        let p1 = stg.add_place("p1");
        let p2 = stg.add_place("p2");
        stg.add_signal_transition([p0], (x.clone(), Edge::Rise), [p1])
            .unwrap();
        stg.add_signal_transition([p1], (x, Edge::Rise), [p2])
            .unwrap();
        stg.set_initial(p0, 1);
        let sg = StateGraph::build(&stg, &BTreeMap::new(), 1000).unwrap();
        assert!(!sg.is_consistent());
        assert_eq!(sg.consistency_violations().len(), 1);
        assert!(sg.consistency_violations()[0].value);
    }

    #[test]
    fn toggle_alternates_encoding() {
        let mut stg = Stg::new();
        let x = stg.add_signal("x", SignalDir::Output);
        let p = stg.add_place("p");
        stg.add_signal_transition([p], (x, Edge::Toggle), [p])
            .unwrap();
        stg.set_initial(p, 1);
        let sg = StateGraph::build(&stg, &BTreeMap::new(), 1000).unwrap();
        // Same marking, two encodings.
        assert_eq!(sg.state_count(), 2);
        assert!(sg.is_consistent());
    }

    #[test]
    fn guard_restricts_firing() {
        // Choice between two x+ paths guarded by DATA level.
        let mut stg = Stg::new();
        let data = stg.add_signal("DATA", SignalDir::Input);
        let hi = stg.add_signal("hi", SignalDir::Output);
        let lo = stg.add_signal("lo", SignalDir::Output);
        let p = stg.add_place("p");
        let q = stg.add_place("q");
        let t_hi = stg
            .add_signal_transition([p], (hi, Edge::Toggle), [q])
            .unwrap();
        let t_lo = stg
            .add_signal_transition([p], (lo, Edge::Toggle), [q])
            .unwrap();
        stg.set_guard(t_hi, Guard::new().require(data.clone(), true));
        stg.set_guard(t_lo, Guard::new().require(data.clone(), false));
        stg.set_initial(p, 1);

        // DATA starts low: only `lo` fires.
        let sg = StateGraph::build(&stg, &BTreeMap::new(), 1000).unwrap();
        assert_eq!(sg.edges(0).len(), 1);
        // DATA starts high: only `hi` fires.
        let sg = StateGraph::build(&stg, &BTreeMap::from([(data, true)]), 1000).unwrap();
        assert_eq!(sg.edges(0).len(), 1);
    }

    #[test]
    fn usc_violation_from_dummy_loop() {
        // Two markings, same encoding (ε transition changes no signal).
        let mut stg = Stg::new();
        let x = stg.add_signal("x", SignalDir::Output);
        let p0 = stg.add_place("p0");
        let p1 = stg.add_place("p1");
        let p2 = stg.add_place("p2");
        stg.add_dummy([p0], [p1]).unwrap();
        stg.add_signal_transition([p1], (x.clone(), Edge::Rise), [p2])
            .unwrap();
        stg.set_initial(p0, 1);
        let sg = StateGraph::build(&stg, &BTreeMap::new(), 1000).unwrap();
        let usc = sg.usc_violations();
        assert_eq!(usc.len(), 1, "p0 and p1 share encoding 0");
        // CSC: p0 has no output excitation, p1 excites x: violation.
        let csc = sg.csc_violations(&stg);
        assert_eq!(csc.len(), 1);
        assert!(csc[0].conflicting_outputs.contains(&x));
    }

    #[test]
    fn stubborn_build_matches_full_on_signal_only_nets() {
        // Every transition is signal-labeled, so every transition seeds
        // the stubborn set and the builds coincide exactly.
        let stg = four_phase();
        let full = StateGraph::build(&stg, &BTreeMap::new(), 1000).unwrap();
        let Bounded::Complete(stub) =
            StateGraph::build_stubborn_bounded(&stg, &BTreeMap::new(), &Budget::states(1000))
        else {
            panic!("budget not exhausted");
        };
        assert_eq!(stub.state_count(), full.state_count());
        assert!(stub.is_consistent());
        assert!(stub.usc_violations().is_empty());
    }

    #[test]
    fn stubborn_build_prunes_independent_dummy_interleavings() {
        // Two disjoint unguarded dummy cycles: the full graph is their
        // 4-state product; the stubborn build explores one component.
        let mut stg = Stg::new();
        let a0 = stg.add_place("a0");
        let a1 = stg.add_place("a1");
        let b0 = stg.add_place("b0");
        let b1 = stg.add_place("b1");
        stg.add_dummy([a0], [a1]).unwrap();
        stg.add_dummy([a1], [a0]).unwrap();
        stg.add_dummy([b0], [b1]).unwrap();
        stg.add_dummy([b1], [b0]).unwrap();
        stg.set_initial(a0, 1);
        stg.set_initial(b0, 1);

        let full = StateGraph::build(&stg, &BTreeMap::new(), 1000).unwrap();
        assert_eq!(full.state_count(), 4);
        let Bounded::Complete(stub) =
            StateGraph::build_stubborn_bounded(&stg, &BTreeMap::new(), &Budget::states(1000))
        else {
            panic!("budget not exhausted");
        };
        assert!(
            stub.state_count() < full.state_count(),
            "stubborn {} !< full {}",
            stub.state_count(),
            full.state_count()
        );
    }

    #[test]
    fn stubborn_build_still_finds_consistency_violation() {
        // Violations reachable in the reduced graph are definite.
        let mut stg = Stg::new();
        let x = stg.add_signal("x", SignalDir::Output);
        let p0 = stg.add_place("p0");
        let p1 = stg.add_place("p1");
        let p2 = stg.add_place("p2");
        stg.add_signal_transition([p0], (x.clone(), Edge::Rise), [p1])
            .unwrap();
        stg.add_signal_transition([p1], (x, Edge::Rise), [p2])
            .unwrap();
        stg.set_initial(p0, 1);
        let Bounded::Complete(sg) =
            StateGraph::build_stubborn_bounded(&stg, &BTreeMap::new(), &Budget::states(1000))
        else {
            panic!("budget not exhausted");
        };
        assert_eq!(sg.consistency_violations().len(), 1);
    }

    #[test]
    fn budget_enforced() {
        let stg = four_phase();
        let err = StateGraph::build(&stg, &BTreeMap::new(), 2).unwrap_err();
        assert_eq!(err, StateGraphError::BudgetExceeded { budget: 2 });
    }
}
