//! A two-user mutual-exclusion arbiter — the paper's example of why the
//! algebra must handle **general** Petri nets (Section 5.1):
//!
//! > "important systems like arbiters cannot be modeled in these
//! > subclasses of marked graphs and free-choice nets. For this, general
//! > Petri nets should be allowed for an STG."
//!
//! The arbiter grants at most one of two clients at a time through a
//! shared mutex place consumed by both grant transitions — a non-free-
//! choice conflict by construction. Mutual exclusion is certified three
//! ways in the tests: by reachability, by a P-semiflow covering the
//! critical section, and by composition with client models.

use crate::signal::{Edge, SignalDir};
use crate::stg::{Stg, StgError};
use cpn_petri::PlaceId;

/// Builds the two-user arbiter STG.
///
/// Interface per client `i ∈ {1, 2}`: input `r{i}` (request), output
/// `g{i}` (grant), 4-phase: `r+ g+ r- g-`.
pub fn arbiter() -> Stg {
    arbiter_n(2)
}

/// Builds an `n`-user arbiter: `n` request/grant client ports competing
/// for one shared mutex place.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn arbiter_n(n: usize) -> Stg {
    assert!(n > 0, "an arbiter needs at least one client");
    match try_arbiter_n(n) {
        Ok(stg) => stg,
        Err(e) => panic!("arbiter model construction: {e}"),
    }
}

fn try_arbiter_n(n: usize) -> Result<Stg, StgError> {
    let mut stg = Stg::new();
    let mutex = stg.add_place("mutex");
    stg.set_initial(mutex, 1);
    for i in 1..=n {
        let r = stg.add_signal(format!("r{i}"), SignalDir::Input);
        let g = stg.add_signal(format!("g{i}"), SignalDir::Output);
        let idle = stg.add_place(format!("idle{i}"));
        let req = stg.add_place(format!("req{i}"));
        let granted = stg.add_place(format!("granted{i}"));
        let done = stg.add_place(format!("done{i}"));
        stg.set_initial(idle, 1);
        stg.add_signal_transition([idle], (r.clone(), Edge::Rise), [req])?;
        // The grant consumes the shared mutex: the non-free-choice core.
        stg.add_signal_transition([req, mutex], (g.clone(), Edge::Rise), [granted])?;
        stg.add_signal_transition([granted], (r, Edge::Fall), [done])?;
        stg.add_signal_transition([done], (g, Edge::Fall), [idle, mutex])?;
    }
    Ok(stg)
}

/// A client of the arbiter: raises its request, waits for the grant,
/// uses the resource (`use{i}~` toward its own environment), releases.
///
/// # Panics
///
/// Panics on a model-construction bug (cannot occur).
pub fn client(i: usize) -> Stg {
    match try_client(i) {
        Ok(stg) => stg,
        Err(e) => panic!("client model construction: {e}"),
    }
}

fn try_client(i: usize) -> Result<Stg, StgError> {
    let mut stg = Stg::new();
    let r = stg.add_signal(format!("r{i}"), SignalDir::Output);
    let g = stg.add_signal(format!("g{i}"), SignalDir::Input);
    let use_sig = stg.add_signal(format!("use{i}"), SignalDir::Output);
    let p0 = stg.add_place("p0");
    let p1 = stg.add_place("p1");
    let p2 = stg.add_place("p2");
    let p3 = stg.add_place("p3");
    let p4 = stg.add_place("p4");
    stg.set_initial(p0, 1);
    stg.add_signal_transition([p0], (r.clone(), Edge::Rise), [p1])?;
    stg.add_signal_transition([p1], (g.clone(), Edge::Rise), [p2])?;
    stg.add_signal_transition([p2], (use_sig, Edge::Toggle), [p3])?;
    stg.add_signal_transition([p3], (r, Edge::Fall), [p4])?;
    stg.add_signal_transition([p4], (g, Edge::Fall), [p0])?;
    Ok(stg)
}

/// The critical-section place set of the arbiter: `granted{i}`,
/// `done{i}` and the mutex — the support of the mutual-exclusion
/// invariant.
pub fn critical_section_places(stg: &Stg) -> Vec<PlaceId> {
    stg.net()
        .places()
        .filter(|(_, p)| {
            p.name() == "mutex" || p.name().starts_with("granted") || p.name().starts_with("done")
        })
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cpn_petri::{semiflows_p, NetClass, ReachabilityOptions};

    #[test]
    fn arbiter_is_a_general_net() {
        let a = arbiter();
        let rep = a.net().structural();
        assert_eq!(rep.class, NetClass::General, "the paper's point");
        assert!(!rep.is_free_choice);
        assert!(!rep.is_marked_graph);
        assert!(rep.strongly_connected);
    }

    #[test]
    fn arbiter_is_live_and_safe() {
        let a = arbiter();
        let rep = a.classical_report(&ReachabilityOptions::default()).unwrap();
        assert!(rep.live && rep.safe);
    }

    #[test]
    fn mutual_exclusion_holds_in_every_reachable_marking() {
        let a = arbiter();
        let rg = a
            .net()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        let granted: Vec<_> = a
            .net()
            .places()
            .filter(|(_, p)| p.name().starts_with("granted") || p.name().starts_with("done"))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(granted.len(), 4);
        for s in rg.state_ids() {
            let m = rg.marking(s);
            let in_cs: u32 = granted.iter().map(|&p| m.tokens(p)).sum();
            assert!(in_cs <= 1, "two clients in the critical section: {m}");
        }
    }

    #[test]
    fn mutual_exclusion_certified_by_semiflow() {
        // The invariant mutex + granted1 + done1 + granted2 + done2 = 1
        // is a P-semiflow: a *structural* certificate, no state space.
        let a = arbiter();
        let cs = critical_section_places(&a);
        let flows = semiflows_p(a.net(), 100_000).unwrap();
        let found = flows.iter().any(|f| {
            let support = f.support();
            cs.iter().all(|p| support.contains(&p.index())) && support.len() == cs.len()
        });
        assert!(found, "critical-section semiflow exists: {flows:?}");
    }

    #[test]
    fn free_choice_analysis_rightly_refuses() {
        // Commoner's condition is exact for free-choice nets only; the
        // arbiter is the counterexample class the paper warns about.
        let a = arbiter();
        assert!(cpn_petri::commoner_live(a.net(), 100_000).is_err());
    }

    #[test]
    fn arbiter_with_two_clients_is_receptive_and_exclusive() {
        let opts = ReachabilityOptions::default();
        let a = arbiter();
        let system_env = client(1).compose(&client(2)).unwrap();
        let report = a.check_receptiveness(&system_env, &opts).unwrap();
        assert!(report.is_receptive(), "{:?}", report.failures);

        let system = a.compose(&system_env).unwrap();
        let rg = system.net().reachability(&opts).unwrap();
        let analysis = system.net().analysis(&rg);
        assert!(analysis.live && analysis.safe);
        // use1~ and use2~ never concurrent: no marking enables both.
        let use_enabled = |m: &cpn_petri::Marking, i: usize| {
            system.net().transitions().any(|(tid, _)| {
                system
                    .net()
                    .label_of(tid)
                    .signal_name()
                    .is_some_and(|s| s.name() == format!("use{i}"))
                    && system.net().is_enabled(m, tid)
            })
        };
        for s in rg.state_ids() {
            let m = rg.marking(s);
            assert!(
                !(use_enabled(&m, 1) && use_enabled(&m, 2)),
                "both clients using the resource at {m}"
            );
        }
    }

    #[test]
    fn n_user_arbiter_scales_and_stays_exclusive() {
        for n in [1usize, 3, 4] {
            let a = arbiter_n(n);
            let rep = a.classical_report(&ReachabilityOptions::default()).unwrap();
            assert!(rep.live && rep.safe, "n = {n}");
            let rg = a
                .net()
                .reachability(&ReachabilityOptions::default())
                .unwrap();
            let cs: Vec<_> = a
                .net()
                .places()
                .filter(|(_, p)| p.name().starts_with("granted") || p.name().starts_with("done"))
                .map(|(id, _)| id)
                .collect();
            for s in rg.state_ids() {
                let m = rg.marking(s);
                let in_cs: u32 = cs.iter().map(|&p| m.tokens(p)).sum();
                assert!(in_cs <= 1, "n = {n}: exclusion violated at {m}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_user_arbiter_panics() {
        arbiter_n(0);
    }

    #[test]
    fn client_alone_is_classical() {
        let c = client(1);
        let rep = c.classical_report(&ReachabilityOptions::default()).unwrap();
        assert!(rep.is_classical());
    }
}
