//! Next-state function derivation: the logic-synthesis step downstream of
//! the state graph.
//!
//! The paper (Sections 1, 5.2, 6) assumes each consistent STG is then
//! "synthesized correctly" by STG synthesis à la Chu. This module
//! provides that substrate: for every non-input signal `s` the classical
//! next-state function
//!
//! `F_s(code) = 1  iff  s is excited to rise, or s = 1 and not excited
//! to fall`
//!
//! is extracted from the state graph and covered by a two-level
//! sum-of-products (iterative cube merging with an off-set containment
//! check). CSC violations surface here as on/off-set conflicts — the
//! reason the reduced STGs of Figure 9 are easier to implement is that
//! their smaller state graphs impose fewer constraints on these covers.

use crate::signal::{Edge, Signal, SignalDir, StgLabel};
use crate::state_graph::StateGraph;
use crate::stg::Stg;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// A cube over the signal encoding: a partial assignment; missing
/// signals are don't-cares.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Cube {
    /// Literal per signal index: `Some(v)` = signal must equal `v`.
    pub literals: Vec<Option<bool>>,
}

impl Cube {
    /// The cube fixing exactly the given minterm.
    pub fn from_minterm(code: &[bool]) -> Self {
        Cube {
            literals: code.iter().map(|&b| Some(b)).collect(),
        }
    }

    /// Whether the cube contains (covers) a code.
    pub fn covers(&self, code: &[bool]) -> bool {
        self.literals
            .iter()
            .zip(code)
            .all(|(l, &b)| l.is_none_or(|v| v == b))
    }

    /// Merge two cubes differing in exactly one bound literal into one
    /// with that literal freed (the Quine–McCluskey combining step).
    pub fn merge(&self, other: &Cube) -> Option<Cube> {
        let mut diff = None;
        for (i, (a, b)) in self.literals.iter().zip(&other.literals).enumerate() {
            if a != b {
                match (a, b, diff) {
                    (Some(_), Some(_), None) => diff = Some(i),
                    _ => return None,
                }
            }
        }
        let i = diff?;
        let mut literals = self.literals.clone();
        literals[i] = None;
        Some(Cube { literals })
    }

    /// Number of bound literals.
    pub fn literal_count(&self) -> usize {
        self.literals.iter().filter(|l| l.is_some()).count()
    }

    /// Renders the cube over the given signal names (e.g. `a·b'`).
    pub fn render(&self, signals: &[Signal]) -> String {
        let parts: Vec<String> = self
            .literals
            .iter()
            .enumerate()
            .filter_map(|(i, l)| {
                l.map(|v| {
                    if v {
                        signals[i].name().to_owned()
                    } else {
                        format!("{}'", signals[i].name())
                    }
                })
            })
            .collect();
        if parts.is_empty() {
            "1".to_owned()
        } else {
            parts.join("·")
        }
    }
}

/// The derived next-state function of one signal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NextStateFunction {
    /// The implemented signal.
    pub signal: Signal,
    /// Sum-of-products cover of the on-set.
    pub cover: Vec<Cube>,
    /// Number of on-set minterms before covering (for reporting).
    pub on_set_size: usize,
    /// Number of off-set minterms (for reporting).
    pub off_set_size: usize,
}

impl NextStateFunction {
    /// Total literal count of the cover — the paper-era proxy for
    /// implementation cost.
    pub fn literal_cost(&self) -> usize {
        self.cover.iter().map(Cube::literal_count).sum()
    }
}

/// Errors from logic derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// The same encoding requires both `F_s = 1` and `F_s = 0`: a CSC
    /// violation for this signal.
    CscConflict {
        /// The signal whose function is ill-defined.
        signal: Signal,
        /// The conflicting encoding.
        code: Vec<bool>,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::CscConflict { signal, code } => {
                let bits: String = code.iter().map(|&b| if b { '1' } else { '0' }).collect();
                write!(f, "csc conflict for signal {signal} at code {bits}")
            }
        }
    }
}

impl Error for LogicError {}

/// Derives next-state functions for every non-input signal of the STG
/// from its state graph.
///
/// # Errors
///
/// [`LogicError::CscConflict`] when an encoding demands both values of
/// some `F_s` — run [`StateGraph::csc_violations`] for the detailed
/// state pair.
pub fn derive_logic(stg: &Stg, sg: &StateGraph) -> Result<Vec<NextStateFunction>, LogicError> {
    let signals = sg.signals();
    let mut out = Vec::new();

    for (idx, signal) in signals.iter().enumerate() {
        let dir = stg.signals()[signal];
        if dir == SignalDir::Input {
            continue;
        }
        // Partition reachable codes into on/off sets of F_s.
        let mut on: BTreeSet<Vec<bool>> = BTreeSet::new();
        let mut off: BTreeSet<Vec<bool>> = BTreeSet::new();
        for i in 0..sg.state_count() {
            let (_, code) = sg.state(i);
            let excited_up = sg.edges(i).iter().any(|&(t, _)| {
                matches!(
                    stg.net().label_of(t),
                    StgLabel::Signal(s, e)
                        if s == signal
                        && (matches!(e, Edge::Rise)
                            || (matches!(e, Edge::Toggle) && !code[idx]))
                )
            });
            let excited_down = sg.edges(i).iter().any(|&(t, _)| {
                matches!(
                    stg.net().label_of(t),
                    StgLabel::Signal(s, e)
                        if s == signal
                        && (matches!(e, Edge::Fall)
                            || (matches!(e, Edge::Toggle) && code[idx]))
                )
            });
            let value = code[idx];
            let f = excited_up || (value && !excited_down);
            if f {
                on.insert(code.clone());
            } else {
                off.insert(code.clone());
            }
        }
        if let Some(code) = on.intersection(&off).next() {
            return Err(LogicError::CscConflict {
                signal: signal.clone(),
                code: code.clone(),
            });
        }

        let cover = cover_on_set(&on, &off);
        out.push(NextStateFunction {
            signal: signal.clone(),
            cover,
            on_set_size: on.len(),
            off_set_size: off.len(),
        });
    }
    Ok(out)
}

/// Greedy two-level cover: merge cubes while no off-set minterm gets
/// covered, then drop redundant cubes.
fn cover_on_set(on: &BTreeSet<Vec<bool>>, off: &BTreeSet<Vec<bool>>) -> Vec<Cube> {
    let mut cubes: Vec<Cube> = on.iter().map(|m| Cube::from_minterm(m)).collect();

    // Iterative pairwise merging (bounded: each round shrinks literal
    // counts, at most `width` rounds).
    loop {
        let mut merged: BTreeSet<Cube> = BTreeSet::new();
        let mut used = vec![false; cubes.len()];
        let mut progress = false;
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if let Some(m) = cubes[i].merge(&cubes[j]) {
                    if !off.iter().any(|o| m.covers(o)) {
                        merged.insert(m);
                        used[i] = true;
                        used[j] = true;
                        progress = true;
                    }
                }
            }
        }
        if !progress {
            break;
        }
        for (i, c) in cubes.iter().enumerate() {
            if !used[i] {
                merged.insert(c.clone());
            }
        }
        cubes = merged.into_iter().collect();
    }

    // Redundancy removal: drop cubes whose on-set minterms are covered by
    // the rest.
    let mut keep: Vec<bool> = vec![true; cubes.len()];
    for i in 0..cubes.len() {
        keep[i] = false;
        let all_covered = on.iter().all(|m| {
            cubes
                .iter()
                .enumerate()
                .any(|(j, c)| keep[j] && j != i && c.covers(m))
                || !cubes[i].covers(m)
        });
        // A cube is redundant only if every minterm it covers is covered
        // by the others.
        let redundant = on.iter().filter(|m| cubes[i].covers(m)).all(|m| {
            cubes
                .iter()
                .enumerate()
                .any(|(j, c)| keep[j] && j != i && c.covers(m))
        }) && all_covered;
        keep[i] = !redundant;
    }
    cubes
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(c, _)| c)
        .collect()
}

/// Convenience: derive the functions and render them as equations.
pub fn render_equations(functions: &[NextStateFunction], signals: &[Signal]) -> String {
    let mut lines = Vec::new();
    for f in functions {
        let terms: Vec<String> = f.cover.iter().map(|c| c.render(signals)).collect();
        let rhs = if terms.is_empty() {
            "0".to_owned()
        } else {
            terms.join(" + ")
        };
        lines.push(format!("{} = {rhs}", f.signal));
    }
    lines.join("\n")
}

/// Derives logic for every non-input signal using a map of initial
/// values, building the state graph internally (one-stop helper).
///
/// # Errors
///
/// State-graph budget errors are mapped to `None` cover (reported as an
/// error string) — callers wanting detail should build the graph
/// themselves.
pub fn derive_logic_from_stg(
    stg: &Stg,
    initial_values: &BTreeMap<Signal, bool>,
    budget: usize,
) -> Result<Vec<NextStateFunction>, Box<dyn Error>> {
    let sg = StateGraph::build(stg, initial_values, budget)?;
    Ok(derive_logic(stg, &sg)?)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn four_phase() -> Stg {
        let mut stg = Stg::new();
        let req = stg.add_signal("req", SignalDir::Input);
        let ack = stg.add_signal("ack", SignalDir::Output);
        let p: Vec<_> = (0..4).map(|i| stg.add_place(format!("p{i}"))).collect();
        stg.add_signal_transition([p[0]], (req.clone(), Edge::Rise), [p[1]])
            .unwrap();
        stg.add_signal_transition([p[1]], (ack.clone(), Edge::Rise), [p[2]])
            .unwrap();
        stg.add_signal_transition([p[2]], (req, Edge::Fall), [p[3]])
            .unwrap();
        stg.add_signal_transition([p[3]], (ack, Edge::Fall), [p[0]])
            .unwrap();
        stg.set_initial(p[0], 1);
        stg
    }

    #[test]
    fn ack_follows_req_in_four_phase() {
        let stg = four_phase();
        let sg = StateGraph::build(&stg, &BTreeMap::new(), 1000).unwrap();
        let fns = derive_logic(&stg, &sg).unwrap();
        assert_eq!(fns.len(), 1);
        let f = &fns[0];
        assert_eq!(f.signal.name(), "ack");
        // ack = req: single cube, single literal, positive.
        assert_eq!(f.cover.len(), 1);
        assert_eq!(f.cover[0].render(sg.signals()), "req");
        assert_eq!(f.literal_cost(), 1);
    }

    #[test]
    fn csc_conflict_detected() {
        // ε-separated states share a code but differ in x excitation.
        let mut stg = Stg::new();
        let x = stg.add_signal("x", SignalDir::Output);
        let p0 = stg.add_place("p0");
        let p1 = stg.add_place("p1");
        let p2 = stg.add_place("p2");
        stg.add_dummy([p0], [p1]).unwrap();
        stg.add_signal_transition([p1], (x.clone(), Edge::Rise), [p2])
            .unwrap();
        stg.set_initial(p0, 1);
        let sg = StateGraph::build(&stg, &BTreeMap::new(), 1000).unwrap();
        let err = derive_logic(&stg, &sg).unwrap_err();
        assert!(matches!(err, LogicError::CscConflict { signal, .. } if signal == x));
    }

    #[test]
    fn cube_merge_rules() {
        let a = Cube::from_minterm(&[true, true]);
        let b = Cube::from_minterm(&[true, false]);
        let m = a.merge(&b).unwrap();
        assert_eq!(m.literals, vec![Some(true), None]);
        // Two differing positions: no merge.
        let c = Cube::from_minterm(&[false, false]);
        assert!(a.merge(&c).is_none());
        assert!(m.covers(&[true, true]));
        assert!(m.covers(&[true, false]));
        assert!(!m.covers(&[false, false]));
    }

    #[test]
    fn constant_function_renders_as_one() {
        // x rises and stays: after covering, F_x covers both codes → "1".
        let mut stg = Stg::new();
        let x = stg.add_signal("x", SignalDir::Output);
        let p0 = stg.add_place("p0");
        let p1 = stg.add_place("p1");
        stg.add_signal_transition([p0], (x, Edge::Rise), [p1])
            .unwrap();
        stg.set_initial(p0, 1);
        let sg = StateGraph::build(&stg, &BTreeMap::new(), 1000).unwrap();
        let fns = derive_logic(&stg, &sg).unwrap();
        assert_eq!(fns[0].cover.len(), 1);
        assert_eq!(fns[0].cover[0].render(sg.signals()), "1");
    }

    #[test]
    fn render_equations_format() {
        let stg = four_phase();
        let sg = StateGraph::build(&stg, &BTreeMap::new(), 1000).unwrap();
        let fns = derive_logic(&stg, &sg).unwrap();
        let eq = render_equations(&fns, sg.signals());
        assert_eq!(eq, "ack = req");
    }

    #[test]
    fn toggle_output_contributes_excitation() {
        let mut stg = Stg::new();
        let x = stg.add_signal("x", SignalDir::Output);
        let p = stg.add_place("p");
        stg.add_signal_transition([p], (x, Edge::Toggle), [p])
            .unwrap();
        stg.set_initial(p, 1);
        let sg = StateGraph::build(&stg, &BTreeMap::new(), 1000).unwrap();
        // F_x: at x=0 excited up → on; at x=1 excited down → off.
        let fns = derive_logic(&stg, &sg).unwrap();
        assert_eq!(fns[0].on_set_size, 1);
        assert_eq!(fns[0].off_set_size, 1);
    }
}
