//! Signal Transition Graphs (STGs): the signal-interpreted Petri nets of
//! Section 2.2 of de Jong & Lin (DAC 1994).
//!
//! An STG is a labeled Petri net whose actions are **signal transitions**:
//! `s+` (rise), `s-` (fall), and the shorthand extensions of \[9\] —
//! `s~` (toggle), stable, unstable and don't-care — plus dummy ε
//! transitions. Signals carry an input/output direction, giving the
//! circuit-algebra interface of Section 5.1.
//!
//! Provided here:
//!
//! * [`signal`] — signals, directions, edges and the [`StgLabel`] label
//!   type plugged into the generic net algebra.
//! * [`stg`] — the [`Stg`] wrapper: declaration-checked construction,
//!   classical well-formedness (strongly-connected + live + safe,
//!   Definition 2.3), boolean **guards** on transitions (the Section 2.2
//!   extension used by the paper's protocol translator), and the
//!   STG-level composition/hiding wrappers.
//! * [`state_graph`] — the encoded state graph, consistent-state-
//!   assignment checking, and USC/CSC diagnostics.
//! * [`logic`] — next-state function derivation (two-level covers) for
//!   output signals, the downstream synthesis step the paper delegates
//!   to Chu's work.
//!
//! # Example
//!
//! ```
//! use cpn_stg::{Edge, SignalDir, Stg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 2-phase handshake: req+ ack+ req- ack-.
//! let mut stg = Stg::new();
//! let req = stg.add_signal("req", SignalDir::Input);
//! let ack = stg.add_signal("ack", SignalDir::Output);
//! let p0 = stg.add_place("p0");
//! let p1 = stg.add_place("p1");
//! let p2 = stg.add_place("p2");
//! let p3 = stg.add_place("p3");
//! stg.add_signal_transition([p0], (req.clone(), Edge::Rise), [p1])?;
//! stg.add_signal_transition([p1], (ack.clone(), Edge::Rise), [p2])?;
//! stg.add_signal_transition([p2], (req, Edge::Fall), [p3])?;
//! stg.add_signal_transition([p3], (ack, Edge::Fall), [p0])?;
//! stg.set_initial(p0, 1);
//!
//! let report = stg.classical_report(&Default::default())?;
//! assert!(report.is_classical()); // strongly connected, live, safe
//! # Ok(())
//! # }
//! ```

// The STG layer sits on user-facing verification paths: its public API
// must degrade via typed errors, never panic (tests are exempt).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod arbiter;
pub mod logic;
pub mod protocol;
pub mod signal;
pub mod state_graph;
pub mod stg;

pub use logic::{derive_logic, Cube, LogicError, NextStateFunction};
pub use signal::{Edge, Signal, SignalDir, StgLabel};
pub use state_graph::{ConsistencyViolation, CscViolation, StateGraph, StateGraphError};
pub use stg::{ClassicalReport, Guard, Stg, StgError};
