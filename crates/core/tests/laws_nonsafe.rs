//! Trace-preservation laws in the **non-safe** regime: multiset initial
//! markings (up to three tokens per place), where the paper's safe-net
//! shortcuts don't apply and the general constructions must still agree
//! with the `cpn-trace` bounded language enumeration.
//!
//! Driven by the deterministic `cpn-testkit` harness: failures print a
//! case seed, replayable via `CPN_TESTKIT_SEED=<seed>`.

use cpn_core::{choice_general, hide_label, hide_relabel, parallel};
use cpn_petri::PetriNet;
use cpn_testkit::{check, prop_assert, prop_assume, NetStrategy, RawNet, Strategy, TestRng};
use cpn_trace::Language;
use std::collections::BTreeSet;

const LABELS: [&str; 4] = ["a", "b", "c", "tau"];
const DEPTH: usize = 4;
const TRACE_BUDGET: usize = 200_000;

/// Nets with up to three tokens per place — deliberately outside the
/// safe regime the operators' `Result`-free fast paths assume.
fn nonsafe() -> NetStrategy {
    NetStrategy::new(3, 3, LABELS.len()).max_tokens(3)
}

fn build(raw: &RawNet) -> PetriNet<&'static str> {
    raw.build_labels(&LABELS)
}

fn lang(net: &PetriNet<&'static str>, depth: usize) -> Option<Language<&'static str>> {
    Language::from_net(net, depth, TRACE_BUDGET).ok()
}

/// The generator really does leave the safe regime: multiset initial
/// markings must show up.
#[test]
fn nonsafe_strategy_generates_multiset_markings() {
    let s = nonsafe();
    let mut rng = TestRng::seed_from_u64(23);
    let saw_multi = (0..100)
        .map(|_| s.generate(&mut rng))
        .any(|raw| raw.marking.iter().any(|&m| m > 1));
    assert!(saw_multi, "max_tokens(3) never produced a multiset marking");
}

#[test]
fn parallel_law_holds_on_nonsafe_nets() {
    check(
        "parallel_law_holds_on_nonsafe_nets",
        &(nonsafe(), nonsafe()),
        |(raw1, raw2)| {
            let n1 = build(raw1);
            let n2 = build(raw2);
            let composed = parallel(&n1, &n2).unwrap();
            let lhs = lang(&composed, DEPTH);
            let (l1, l2) = (lang(&n1, DEPTH), lang(&n2, DEPTH));
            prop_assume!(lhs.is_some() && l1.is_some() && l2.is_some());
            prop_assert!(
                lhs.unwrap()
                    .eq_up_to(&l1.unwrap().parallel(&l2.unwrap()), DEPTH),
                "L(N1‖N2) = L(N1)‖L(N2) beyond safe markings"
            );
            Ok(())
        },
    );
}

#[test]
fn choice_general_law_holds_on_nonsafe_nets() {
    check(
        "choice_general_law_holds_on_nonsafe_nets",
        &(nonsafe(), nonsafe()),
        |(raw1, raw2)| {
            let n1 = build(raw1);
            let n2 = build(raw2);
            let both = choice_general(&n1, &n2).unwrap();
            let lhs = lang(&both, DEPTH);
            let (l1, l2) = (lang(&n1, DEPTH), lang(&n2, DEPTH));
            prop_assume!(lhs.is_some() && l1.is_some() && l2.is_some());
            prop_assert!(
                lhs.unwrap()
                    .eq_up_to(&l1.unwrap().union(&l2.unwrap()), DEPTH),
                "L(N1+N2) = L(N1) ∪ L(N2) beyond safe markings"
            );
            Ok(())
        },
    );
}

#[test]
fn hide_law_holds_on_nonsafe_nets() {
    check("hide_law_holds_on_nonsafe_nets", &nonsafe(), |raw| {
        let n = build(raw);
        let depth = 3usize;
        let Ok(hidden) = hide_label(&n, &"tau", 200) else {
            return Ok(()); // divergent: the operator rightfully refuses
        };
        let lhs = lang(&hidden, depth);
        let slack = depth * (1 + n.transition_count()) + 2;
        let rhs = Language::from_net(&n, slack, TRACE_BUDGET)
            .ok()
            .map(|l| l.hide(&BTreeSet::from(["tau"])));
        prop_assume!(lhs.is_some() && rhs.is_some());
        prop_assert!(
            lhs.unwrap().eq_up_to(&rhs.unwrap().truncate(depth), depth),
            "L(hide(N,tau)) = hide(L(N),tau) beyond safe markings"
        );
        Ok(())
    });
}

#[test]
fn hide_prime_agrees_with_language_hiding() {
    // hide′ (relabel-to-ε) keeps the net structure, so its language with
    // the silent label erased must equal hiding at the language level —
    // on any marking, safe or not, with no divergence caveat.
    check(
        "hide_prime_agrees_with_language_hiding",
        &nonsafe(),
        |raw| {
            let n = build(raw);
            let relabeled = hide_relabel(&n, &BTreeSet::from(["tau"]), "eps");
            let lhs = lang(&relabeled, DEPTH).map(|l| l.hide(&BTreeSet::from(["eps"])));
            let rhs = lang(&n, DEPTH).map(|l| l.hide(&BTreeSet::from(["tau"])));
            prop_assume!(lhs.is_some() && rhs.is_some());
            prop_assert!(
                lhs.unwrap().eq_up_to(&rhs.unwrap(), DEPTH),
                "hide′ then erase ε = hide at the language level"
            );
            Ok(())
        },
    );
}
