//! Differential tests: the hash-consed [`DerivationStore`] must be a
//! *transparent* cache — every memoized derivation is byte-identical
//! (canonical form, not just `NetId`) to the same operator applied
//! directly to the same nets, with no store in the loop. Budget sweeps
//! cover the `Exhausted` regime: cap-only partial results are
//! memoized per-cap and must replay the identical partial net *and*
//! the identical exhaustion statistics.
//!
//! Driven by the deterministic `cpn-testkit` harness: failures print a
//! case seed, replayable via `CPN_TESTKIT_SEED=<seed>`.

use cpn_core::{
    hide_labels_bounded, parallel, reduce_for_analysis, rename_injective, DerivationStore,
};
use cpn_petri::{canonical_form, Bounded, Budget, PetriNet};
use cpn_testkit::{check, prop_assert, prop_assert_eq, NetStrategy, Strategy, TestRng};
use std::collections::{BTreeMap, BTreeSet};

/// Shared three-letter alphabet so parallel composition synchronizes
/// on common labels; up to two tokens per place (non-safe markings).
const LABELS: [&str; 3] = ["a", "b", "c"];

fn raw_net() -> NetStrategy {
    NetStrategy::new(4, 4, LABELS.len()).max_tokens(2)
}

/// A pair of raw nets over the shared alphabet.
#[derive(Clone, Debug)]
struct PairStrategy;

impl Strategy for PairStrategy {
    type Value = (cpn_testkit::RawNet, cpn_testkit::RawNet);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (raw_net().generate(rng), raw_net().generate(rng))
    }

    fn shrink(&self, (a, b): &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = raw_net()
            .shrink(a)
            .into_iter()
            .map(|s| (s, b.clone()))
            .collect();
        out.extend(raw_net().shrink(b).into_iter().map(|s| (a.clone(), s)));
        out
    }
}

fn build(raw: &cpn_testkit::RawNet) -> PetriNet<&'static str> {
    raw.build_labels(&LABELS)
}

/// The canonical bytes of the net behind `id` in `store`.
fn form_of(store: &DerivationStore<&'static str>, id: cpn_petri::NetId) -> Vec<u8> {
    let net = store.net(id).expect("derived id is interned");
    canonical_form(&net)
}

/// Cap sweep: tight enough that small random compositions exhaust on
/// the low caps and complete on the high ones, so both `Bounded` arms
/// get real coverage in one run.
const CAPS: [usize; 5] = [1, 3, 8, 64, 100_000];

#[test]
fn memoized_parallel_matches_uncached() {
    check(
        "memoized_parallel_matches_uncached",
        &PairStrategy,
        |(ra, rb)| {
            let (na, nb) = (build(ra), build(rb));
            let direct = parallel(&na, &nb).expect("parallel of generated nets");

            let mut store: DerivationStore<&'static str> = DerivationStore::new();
            let (ia, _) = store.intern(na);
            let (ib, _) = store.intern(nb);
            let first = store.parallel(ia, ib).expect("memoized parallel");
            let second = store.parallel(ia, ib).expect("replayed parallel");

            prop_assert_eq!(first, second, "replay returned a different id");
            prop_assert_eq!(
                form_of(&store, first),
                canonical_form(&direct),
                "memoized parallel is not byte-identical to the direct operator"
            );
            let stats = store.stats();
            prop_assert_eq!(stats.hits, 1, "second call must be a memo hit");
            Ok(())
        },
    );
}

#[test]
fn memoized_hide_sweep_matches_uncached() {
    check(
        "memoized_hide_sweep_matches_uncached",
        &PairStrategy,
        |(ra, rb)| {
            let (na, nb) = (build(ra), build(rb));
            let composed = parallel(&na, &nb).expect("parallel of generated nets");
            let hidden: BTreeSet<&'static str> = [LABELS[2]].into();

            let mut store: DerivationStore<&'static str> = DerivationStore::new();
            let (ia, _) = store.intern(na);
            let (ib, _) = store.intern(nb);
            let par = store.parallel(ia, ib).expect("memoized parallel");

            let mut expected_hits = 0u64;
            for cap in CAPS {
                let budget = Budget::new(cap, cap.saturating_mul(4));
                let direct = hide_labels_bounded(&composed, &hidden, &budget);
                let via_store = store.hide_labels(par, &hidden, &budget);
                let replay = store.hide_labels(par, &hidden, &budget);

                // A contraction that hits an unsupported shape errors at
                // caps large enough to reach it; the store must agree
                // (errors are never cached, so the replay re-errors too).
                let (direct, via_store, replay) = match (direct, via_store, replay) {
                    (Err(_), Err(_), Err(_)) => continue,
                    (Ok(d), Ok(v), Ok(r)) => {
                        expected_hits += 1;
                        (d, v, r)
                    }
                    _ => {
                        prop_assert!(
                            false,
                            "cap {}: direct and memoized hides disagree on erroring",
                            cap
                        );
                        continue;
                    }
                };

                match (&direct, &via_store, &replay) {
                    (
                        Bounded::Complete(direct_net),
                        Bounded::Complete(id),
                        Bounded::Complete(id2),
                    ) => {
                        prop_assert_eq!(id, id2, "cap {}: replay changed the id", cap);
                        prop_assert_eq!(
                            form_of(&store, *id),
                            canonical_form(direct_net),
                            "cap {}: complete hide differs from uncached",
                            cap
                        );
                    }
                    (
                        Bounded::Exhausted { partial, info },
                        Bounded::Exhausted {
                            partial: id,
                            info: store_info,
                        },
                        Bounded::Exhausted {
                            partial: id2,
                            info: replay_info,
                        },
                    ) => {
                        prop_assert_eq!(id, id2, "cap {}: replay changed the partial id", cap);
                        prop_assert_eq!(
                            info,
                            store_info,
                            "cap {}: exhaustion stats differ from uncached",
                            cap
                        );
                        prop_assert_eq!(
                            store_info,
                            replay_info,
                            "cap {}: exhaustion stats changed on replay",
                            cap
                        );
                        prop_assert_eq!(
                            form_of(&store, *id),
                            canonical_form(partial),
                            "cap {}: exhausted prefix differs from uncached",
                            cap
                        );
                    }
                    _ => {
                        prop_assert!(
                            false,
                            "cap {}: memoized and direct hides disagree on completion",
                            cap
                        );
                    }
                }
            }
            // Every successful cap was looked up twice; the second lookup
            // of each must have hit (cap-only budgets are deterministic,
            // so Exhausted prefixes memoize too).
            let stats = store.stats();
            prop_assert_eq!(
                stats.hits,
                expected_hits,
                "one memo hit per successfully swept cap expected"
            );
            Ok(())
        },
    );
}

#[test]
fn memoized_compose_matches_uncached_pipeline() {
    check(
        "memoized_compose_matches_uncached_pipeline",
        &PairStrategy,
        |(ra, rb)| {
            let (na, nb) = (build(ra), build(rb));
            let internal: BTreeSet<&'static str> = [LABELS[2]].into();

            for cap in CAPS {
                let budget = Budget::new(cap, cap.saturating_mul(4));

                // Uncached pipeline, exactly as compose() documents it:
                // parallel → hide(internal) → reduce on completion.
                let composed = parallel(&na, &nb).expect("parallel");
                let direct_hide = hide_labels_bounded(&composed, &internal, &budget);
                let Ok(direct_hide) = direct_hide else {
                    // Unsupported contraction shape: compose must
                    // surface the same error.
                    let mut store: DerivationStore<&'static str> = DerivationStore::new();
                    let (ia, _) = store.intern(na.clone());
                    let (ib, _) = store.intern(nb.clone());
                    prop_assert!(
                        store.compose(ia, ib, &internal, &budget).is_err(),
                        "cap {}: direct hide errored but compose succeeded",
                        cap
                    );
                    continue;
                };
                let direct = match direct_hide {
                    Bounded::Complete(hidden) => {
                        let (reduced, _) =
                            reduce_for_analysis(&hidden, &BTreeSet::new()).expect("direct reduce");
                        Bounded::Complete(canonical_form(&reduced))
                    }
                    Bounded::Exhausted { partial, info } => Bounded::Exhausted {
                        partial: canonical_form(&partial),
                        info,
                    },
                };

                let mut store: DerivationStore<&'static str> = DerivationStore::new();
                let (ia, _) = store.intern(na.clone());
                let (ib, _) = store.intern(nb.clone());
                let via_store = store
                    .compose(ia, ib, &internal, &budget)
                    .expect("memoized compose");

                match (direct, via_store) {
                    (Bounded::Complete(direct_form), Bounded::Complete(id)) => {
                        prop_assert_eq!(
                            form_of(&store, id),
                            direct_form,
                            "cap {}: composed module differs from uncached pipeline",
                            cap
                        );
                    }
                    (
                        Bounded::Exhausted {
                            partial: direct_form,
                            info: direct_info,
                        },
                        Bounded::Exhausted {
                            partial: id,
                            info: store_info,
                        },
                    ) => {
                        prop_assert_eq!(direct_info, store_info, "cap {}: stats differ", cap);
                        prop_assert_eq!(
                            form_of(&store, id),
                            direct_form,
                            "cap {}: exhausted compose prefix differs",
                            cap
                        );
                    }
                    _ => {
                        prop_assert!(
                            false,
                            "cap {}: compose and pipeline disagree on completion",
                            cap
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn memoized_rename_matches_uncached() {
    check("memoized_rename_matches_uncached", &raw_net(), |raw| {
        let net = build(raw);
        let map: BTreeMap<&'static str, &'static str> = [("a", "x"), ("b", "y"), ("c", "z")].into();
        let direct = rename_injective(&net, &map).expect("direct rename");

        let mut store: DerivationStore<&'static str> = DerivationStore::new();
        let (id, _) = store.intern(net);
        let renamed = store.rename(id, &map).expect("memoized rename");
        let replay = store.rename(id, &map).expect("replayed rename");
        prop_assert_eq!(renamed, replay);
        prop_assert_eq!(
            form_of(&store, renamed),
            canonical_form(&direct),
            "memoized rename differs from the direct operator"
        );
        Ok(())
    });
}

#[test]
fn store_replay_is_deterministic_across_fresh_stores() {
    // The same derivation script on two fresh stores must produce the
    // same ids in the same order — the store adds no hidden state to
    // the algebra.
    check(
        "store_replay_is_deterministic_across_fresh_stores",
        &PairStrategy,
        |(ra, rb)| {
            let script = |store: &mut DerivationStore<&'static str>| {
                let (ia, _) = store.intern(build(ra));
                let (ib, _) = store.intern(build(rb));
                let par = store.parallel(ia, ib)?;
                let hidden: BTreeSet<&'static str> = [LABELS[2]].into();
                let mut ids = vec![par];
                for cap in CAPS {
                    let budget = Budget::new(cap, cap.saturating_mul(4));
                    match store.hide_labels(par, &hidden, &budget)? {
                        Bounded::Complete(id) => ids.push(id),
                        Bounded::Exhausted { partial, .. } => ids.push(partial),
                    }
                }
                Ok::<_, cpn_core::CoreError>(ids)
            };
            let mut s1 = DerivationStore::new();
            let mut s2 = DerivationStore::new();
            match (script(&mut s1), script(&mut s2)) {
                (Ok(ids1), Ok(ids2)) => {
                    prop_assert_eq!(ids1, ids2, "fresh-store replay diverged");
                }
                (Err(_), Err(_)) => {} // deterministic error, both agree
                _ => prop_assert!(false, "one store errored where the other succeeded"),
            }
            Ok(())
        },
    );
}
