//! Differential property suite for the contraction engine: the
//! [`NetEditor`]-backed hiding pipeline must be **bit-identical** to the
//! reference chain of single-step `hide_transition` rebuilds
//! ([`hide_labels_bounded_legacy`]) — same places in the same order,
//! same transitions in the same order, same marking, same alphabet, and
//! the same [`Bounded::Exhausted`] prefix (net *and* statistics) when a
//! budget runs out mid-label. Full `PetriNet` equality is strictly
//! stronger than the trace-language equality the paper's theorems
//! require, so the suite checks language equality for free.
//!
//! On top of the differential contract:
//!
//! * Proposition 4.6 order independence re-checked on **non-safe** nets
//!   (multiset initial markings), which the engine must handle the same
//!   as the reference;
//! * the structural reduction rules ([`NetEditor::reduce`]) are checked
//!   trace-preserving against the `cpn-trace` oracle on generated nets.
//!
//! All randomized cases replay under `CPN_TESTKIT_SEED`.

use cpn_core::{
    hide_label, hide_labels_bounded, hide_labels_bounded_legacy, hide_transition, CoreError,
    NetEditor,
};
use cpn_petri::{Budget, PetriNet, TransitionId};
use cpn_testkit::{check, prop_assert, prop_assume, NetStrategy, PropFail, PropResult, RawNet};
use cpn_trace::Language;
use std::collections::BTreeSet;

const LABELS: [&str; 4] = ["a", "b", "c", "tau"];
const DEPTH: usize = 4;
const TRACE_BUDGET: usize = 200_000;

fn strategy(max_places: usize, max_transitions: usize) -> NetStrategy {
    NetStrategy::new(max_places, max_transitions, LABELS.len())
}

fn build(raw: &RawNet) -> PetriNet<&'static str> {
    raw.build_labels(&LABELS)
}

fn lang(net: &PetriNet<&'static str>, depth: usize) -> Option<Language<&'static str>> {
    Language::from_net(net, depth, TRACE_BUDGET).ok()
}

fn assert_law(name: &str, result: PropResult) {
    match result {
        Ok(()) | Err(PropFail::Discard) => {}
        Err(PropFail::Fail(msg)) => panic!("law {name} violated: {msg}"),
    }
}

/// Error *variants* must agree; the attached ids may differ (the legacy
/// path reports post-rebuild transition numbers, the engine reports
/// arena slots).
fn error_variant(e: &CoreError) -> String {
    match e {
        CoreError::Net(pe) => format!("Net({:?})", std::mem::discriminant(pe)),
        other => format!("{:?}", std::mem::discriminant(other)),
    }
}

/// The differential contract: engine vs reference, for one hide set and
/// one budget. On success both sides must produce the *same* value
/// (complete or exhausted, net and statistics); on failure the same
/// error variant at the same point.
fn engines_agree(
    net: &PetriNet<&'static str>,
    labels: &BTreeSet<&'static str>,
    contraction_cap: usize,
) -> PropResult {
    let budget = Budget::new(usize::MAX, contraction_cap);
    let v2 = hide_labels_bounded(net, labels, &budget);
    let legacy = hide_labels_bounded_legacy(net, labels, &budget);
    match (v2, legacy) {
        (Ok(v2), Ok(legacy)) => {
            prop_assert!(
                v2 == legacy,
                "engine diverged from reference on\n{net}\nhide {labels:?} cap {contraction_cap}\nv2: {v2:?}\nlegacy: {legacy:?}"
            );
        }
        (Err(v2), Err(legacy)) => {
            prop_assert!(
                error_variant(&v2) == error_variant(&legacy),
                "error variants diverged: v2 {v2:?} vs legacy {legacy:?}"
            );
        }
        (v2, legacy) => {
            return Err(PropFail::Fail(format!(
                "one engine failed where the other succeeded on\n{net}\nv2: {v2:?}\nlegacy: {legacy:?}"
            )));
        }
    }
    Ok(())
}

/// Engine ≡ reference across a budget sweep: caps 0..4 exercise the
/// `Bounded::Exhausted` prefixes (including exhaustion mid-label on
/// multi-label sets), the large cap the complete results.
fn law_engine_matches_legacy(raw: &RawNet) -> PropResult {
    let net = build(raw);
    let single = BTreeSet::from(["tau"]);
    let multi = BTreeSet::from(["c", "tau"]);
    for cap in [0usize, 1, 2, 3, 200] {
        engines_agree(&net, &single, cap)?;
        engines_agree(&net, &multi, cap)?;
    }
    Ok(())
}

/// Proposition 4.6 on non-safe nets: contract two *different* `tau`
/// transitions first, finish hiding with the engine, and demand equal
/// trace languages.
fn law_order_independence_nonsafe(raw: &RawNet) -> PropResult {
    let net = build(raw);
    let taus: Vec<TransitionId> = net.transitions_with_label(&"tau").collect();
    prop_assume!(taus.len() >= 2);
    let Ok(first) = hide_transition(&net, taus[0]) else {
        return Ok(());
    };
    let Ok(second) = hide_transition(&net, taus[1]) else {
        return Ok(());
    };
    let (Ok(via0), Ok(via1)) = (
        hide_label(&first, &"tau", 200),
        hide_label(&second, &"tau", 200),
    ) else {
        return Ok(());
    };
    let (l0, l1) = (lang(&via0, 3), lang(&via1, 3));
    prop_assume!(l0.is_some() && l1.is_some());
    prop_assert!(
        l0.unwrap().eq_up_to(&l1.unwrap(), 3),
        "Proposition 4.6 (non-safe) on\n{net}"
    );
    Ok(())
}

/// The structural reduction rules preserve the trace language exactly.
fn law_reduce_preserves_language(raw: &RawNet) -> PropResult {
    let net = build(raw);
    let mut editor = NetEditor::from_net(&net);
    let stats = editor.reduce();
    let reduced = match editor.finish() {
        Ok(n) => n,
        Err(e) => return Err(PropFail::Fail(format!("finish failed: {e}"))),
    };
    prop_assert!(
        reduced.place_count() <= net.place_count()
            && reduced.transition_count() <= net.transition_count(),
        "reduction may only shrink"
    );
    let (l0, l1) = (lang(&net, DEPTH), lang(&reduced, DEPTH));
    prop_assume!(l0.is_some() && l1.is_some());
    prop_assert!(
        l0.unwrap().eq_up_to(&l1.unwrap(), DEPTH),
        "reduction changed the language ({stats:?}) on\n{net}\nreduced\n{reduced}"
    );
    Ok(())
}

#[test]
fn engine_matches_legacy_on_safe_nets() {
    check(
        "engine_matches_legacy_on_safe_nets",
        &strategy(4, 4),
        law_engine_matches_legacy,
    );
}

#[test]
fn engine_matches_legacy_on_nonsafe_nets() {
    check(
        "engine_matches_legacy_on_nonsafe_nets",
        &strategy(4, 4).max_tokens(3),
        law_engine_matches_legacy,
    );
}

#[test]
fn prop_4_6_order_independence_nonsafe() {
    check(
        "prop_4_6_order_independence_nonsafe",
        &strategy(4, 4).max_tokens(3),
        law_order_independence_nonsafe,
    );
}

#[test]
fn reduction_rules_preserve_language() {
    check(
        "reduction_rules_preserve_language",
        &strategy(4, 4),
        law_reduce_preserves_language,
    );
}

#[test]
fn reduction_rules_preserve_language_nonsafe() {
    check(
        "reduction_rules_preserve_language_nonsafe",
        &strategy(4, 4).max_tokens(3),
        law_reduce_preserves_language,
    );
}

// ---------------------------------------------------------------------
// Named regressions: nets whose hiding paths exercise specific engine
// behaviours deterministically.
// ---------------------------------------------------------------------

/// tau-chain: exhaustion lands mid-label at every cap, so the
/// `Bounded::Exhausted` parity (net + statistics) is exercised on a
/// known multi-round contraction.
#[test]
fn regression_tau_chain_budget_prefixes() {
    let mut net: PetriNet<&str> = PetriNet::new();
    let mut prev = net.add_place("p0");
    net.set_initial(prev, 1);
    for i in 0..4 {
        let next = net.add_place(Box::leak(format!("p{}", i + 1).into_boxed_str()));
        let label = if i == 0 { "a" } else { "tau" };
        net.add_transition([prev], label, [next]).unwrap();
        prev = next;
    }
    for (labels, cap) in [
        (BTreeSet::from(["tau"]), 1usize),
        (BTreeSet::from(["tau"]), 2),
        (BTreeSet::from(["tau"]), 3),
        (BTreeSet::from(["a", "tau"]), 2),
    ] {
        assert_law("tau chain budget sweep", engines_agree(&net, &labels, cap));
    }
}

/// A contraction that duplicates a transition carrying the hidden label
/// itself: the worklist must re-enqueue the duplicate (legacy re-scans).
#[test]
fn regression_duplicate_of_hidden_label_reenqueues() {
    // tau1: s -> m; tau2: m -> e, and a second consumer of m so tau2 is
    // duplicated when tau1 is contracted.
    let mut net: PetriNet<&str> = PetriNet::new();
    let s = net.add_place("s");
    let m = net.add_place("m");
    let e = net.add_place("e");
    let o = net.add_place("o");
    net.add_transition([s], "tau", [m]).unwrap();
    net.add_transition([m], "tau", [e]).unwrap();
    net.add_transition([e], "a", [s]).unwrap();
    net.add_transition([m], "b", [o]).unwrap();
    net.set_initial(s, 1);
    for cap in [0usize, 1, 2, 3, 4, 200] {
        assert_law(
            "duplicate re-enqueue",
            engines_agree(&net, &BTreeSet::from(["tau"]), cap),
        );
    }
}

/// Divergence (hidden self-loop after one contraction) must surface as
/// the same error variant from both engines.
#[test]
fn regression_divergence_error_parity() {
    let mut net: PetriNet<&str> = PetriNet::new();
    let p = net.add_place("p");
    let q = net.add_place("q");
    net.add_transition([p], "tau", [q]).unwrap();
    net.add_transition([q], "tau", [p]).unwrap();
    net.set_initial(p, 1);
    assert_law(
        "divergence parity",
        engines_agree(&net, &BTreeSet::from(["tau"]), 200),
    );
    let budget = Budget::new(usize::MAX, 200);
    assert!(hide_labels_bounded(&net, &BTreeSet::from(["tau"]), &budget).is_err());
}
