//! Differential oracle: the polynomial structural receptiveness check
//! (Theorem 5.7, difference constraints over marked-graph flows) against
//! the exhaustive state-graph verification (Proposition 5.5/5.6) on
//! generated live-safe marked-graph compositions.
//!
//! Driven by the deterministic `cpn-testkit` harness at ≥100 cases:
//! failures print a case seed, replayable via `CPN_TESTKIT_SEED=<seed>`.

use cpn_core::{check_receptiveness, check_receptiveness_structural_mg};
use cpn_petri::{PetriNet, ReachabilityOptions};
use cpn_testkit::{any_bool, check_with, prop_assert, prop_assert_eq, usize_in, Config};
use std::collections::BTreeSet;

/// ≥100 cases per suite, still overridable via `CPN_TESTKIT_CASES`.
fn cases() -> Config {
    let config = Config::from_env();
    if std::env::var("CPN_TESTKIT_CASES").is_ok() {
        config
    } else {
        config.with_cases(128)
    }
}

/// A live-safe marked-graph ring of `stages` alternating req/ack
/// handshakes with the single token at `start`.
fn ring(stages: usize, start: usize, prefix: &str) -> PetriNet<String> {
    let mut net: PetriNet<String> = PetriNet::new();
    let ps: Vec<_> = (0..2 * stages)
        .map(|i| net.add_place(format!("{prefix}{i}")))
        .collect();
    for i in 0..2 * stages {
        let label = if i % 2 == 0 {
            format!("req{}", i / 2)
        } else {
            format!("ack{}", i / 2)
        };
        net.add_transition([ps[i]], label, [ps[(i + 1) % (2 * stages)]])
            .unwrap();
    }
    net.set_initial(ps[start % (2 * stages)], 1);
    net
}

fn outputs(stages: usize, kind: &str) -> BTreeSet<String> {
    (0..stages).map(|i| format!("{kind}{i}")).collect()
}

/// Both operands start at a random phase and the operand order is
/// itself randomized, so the oracle sees producer-side and
/// consumer-side mismatches in either argument position.
#[test]
fn structural_check_agrees_with_state_graph_on_live_safe_mgs() {
    let strategy = (usize_in(1..5), usize_in(0..10), usize_in(0..10), any_bool());
    check_with(
        "structural_check_agrees_with_state_graph_on_live_safe_mgs",
        &cases(),
        &strategy,
        |&(stages, left_start, right_start, swap)| {
            let req_side = ring(stages, left_start, "a");
            let ack_side = ring(stages, right_start, "b");
            let reqs = outputs(stages, "req");
            let acks = outputs(stages, "ack");
            // Each operand is live and safe in isolation (one token on a
            // strongly connected ring); the differential question is
            // whether their composition can mis-fire an output.
            let (n1, n2, louts, routs) = if swap {
                (&ack_side, &req_side, &acks, &reqs)
            } else {
                (&req_side, &ack_side, &reqs, &acks)
            };
            let opts = ReachabilityOptions::with_max_states(200_000);
            let exhaustive = check_receptiveness(n1, n2, louts, routs, &opts).unwrap();
            let structural = check_receptiveness_structural_mg(n1, n2, louts, routs).unwrap();
            prop_assert_eq!(
                exhaustive.is_receptive(),
                structural.is_receptive(),
                "stages={} starts=({},{}) swap={}: exhaustive {:?} vs structural {:?}",
                stages,
                left_start,
                right_start,
                swap,
                exhaustive.failures,
                structural.failures
            );
            // When both find failures, they must blame a common action:
            // the structural certificate names a label whose mis-firing
            // the state graph also witnesses.
            if !exhaustive.is_receptive() {
                let ex_labels: BTreeSet<&String> =
                    exhaustive.failures.iter().map(|f| &f.label).collect();
                let st_labels: BTreeSet<&String> =
                    structural.failures.iter().map(|f| &f.label).collect();
                prop_assert!(
                    ex_labels.intersection(&st_labels).next().is_some(),
                    "disjoint blame: exhaustive {:?} vs structural {:?}",
                    ex_labels,
                    st_labels
                );
            }
            Ok(())
        },
    );
}

/// Aligned phases are receptive by both checks for every ring size —
/// the positive diagonal of the differential family.
#[test]
fn aligned_phases_receptive_for_all_sizes() {
    for stages in 1..6 {
        for shift in 0..stages {
            // Shifting both rings by a whole handshake keeps them aligned.
            let p = ring(stages, 2 * shift, "a");
            let c = ring(stages, 2 * shift, "b");
            let louts = outputs(stages, "req");
            let routs = outputs(stages, "ack");
            let opts = ReachabilityOptions::default();
            assert!(
                check_receptiveness(&p, &c, &louts, &routs, &opts)
                    .unwrap()
                    .is_receptive(),
                "stages={stages} shift={shift} exhaustive"
            );
            assert!(
                check_receptiveness_structural_mg(&p, &c, &louts, &routs)
                    .unwrap()
                    .is_receptive(),
                "stages={stages} shift={shift} structural"
            );
        }
    }
}
