//! Property tests: the paper's trace-preservation theorems checked on
//! randomly generated nets against the `cpn-trace` oracle.
//!
//! * Proposition 4.2 — `L(a.N) = {ε,a} ∪ {a}·L(N)`
//! * Proposition 4.3 — `L(rename(N, b→c)) = rename(L(N), b→c)`
//! * Proposition 4.4 — `L(N1 + N2) = L(N1) ∪ L(N2)`
//! * Theorem 4.5     — `L(N1 ‖ N2) = L(N1) ‖ L(N2)`
//! * Theorem 4.7     — `L(hide(N, a)) = hide(L(N), a)`
//! * Proposition 4.6 — hiding order independence (up to traces)
//! * Proposition 5.2 — safety closed under the operators
//! * Theorem 5.1     — `project(L(M1‖M2), A_i) ⊆ L(M_i)`
//!
//! Each law body is a plain function over `cpn-testkit` raw nets, so the
//! randomized suites and the named regression cases (formerly
//! `laws.proptest-regressions`) exercise the identical code path.

use cpn_core::{choice, choice_general, hide_label, hide_transition, parallel, prefix, rename};
use cpn_petri::{PetriNet, ReachabilityOptions, TransitionId};
use cpn_testkit::{
    check, prop_assert, prop_assume, u32_in, vec_of, NetStrategy, PropFail, PropResult, RawNet,
    RawTransition,
};
use cpn_trace::Language;
use std::collections::{BTreeMap, BTreeSet};

const LABELS: [&str; 4] = ["a", "b", "c", "tau"];
const DEPTH: usize = 4;
const TRACE_BUDGET: usize = 200_000;

fn strategy(max_places: usize, max_transitions: usize) -> NetStrategy {
    NetStrategy::new(max_places, max_transitions, LABELS.len())
}

fn build(raw: &RawNet) -> PetriNet<&'static str> {
    raw.build_labels(&LABELS)
}

fn lang(net: &PetriNet<&'static str>, depth: usize) -> Option<Language<&'static str>> {
    Language::from_net(net, depth, TRACE_BUDGET).ok()
}

/// Runs a law body directly (for the named regression cases): a
/// discarded precondition is vacuous, a failure panics.
fn assert_law(name: &str, result: PropResult) {
    match result {
        Ok(()) | Err(PropFail::Discard) => {}
        Err(PropFail::Fail(msg)) => panic!("law {name} violated: {msg}"),
    }
}

fn law_4_2_prefix(raw: &RawNet) -> PropResult {
    let n = build(raw);
    let prefixed = prefix("x", &n).expect("safe marking by construction");
    let lhs = lang(&prefixed, DEPTH);
    let rhs = lang(&n, DEPTH - 1).map(|l| l.prefix_action("x"));
    prop_assume!(lhs.is_some() && rhs.is_some());
    prop_assert!(lhs.unwrap().eq_up_to(&rhs.unwrap(), DEPTH));
    Ok(())
}

fn law_4_3_rename(raw: &RawNet) -> PropResult {
    let n = build(raw);
    let renamed = rename(&n, &BTreeMap::from([("a", "z")]));
    let lhs = lang(&renamed, DEPTH);
    let rhs = lang(&n, DEPTH).map(|l| l.rename(|x| if *x == "a" { "z" } else { *x }));
    prop_assume!(lhs.is_some() && rhs.is_some());
    prop_assert!(lhs.unwrap().eq_up_to(&rhs.unwrap(), DEPTH));
    Ok(())
}

fn law_4_4_choice(raw1: &RawNet, raw2: &RawNet) -> PropResult {
    let n1 = build(raw1);
    let n2 = build(raw2);
    let both = choice(&n1, &n2).expect("safe markings by construction");
    let lhs = lang(&both, DEPTH);
    let (l1, l2) = (lang(&n1, DEPTH), lang(&n2, DEPTH));
    prop_assume!(lhs.is_some() && l1.is_some() && l2.is_some());
    prop_assert!(
        lhs.unwrap()
            .eq_up_to(&l1.unwrap().union(&l2.unwrap()), DEPTH),
        "L(N1+N2) = L(N1) ∪ L(N2)"
    );
    Ok(())
}

fn law_4_4_choice_general_multiset(raw1: &RawNet, raw2: &RawNet, boosts: &[u32]) -> PropResult {
    // The general construction must satisfy the union law even with
    // multiset initial markings (which Def 4.6 proper rejects).
    let mut n1 = build(raw1);
    for (i, &b) in boosts.iter().enumerate() {
        if i < n1.place_count() && b > 0 {
            let p = cpn_petri::PlaceId::from_index(i);
            n1.set_initial(p, n1.initial_marking().tokens(p) + b);
        }
    }
    let n2 = build(raw2);
    let both = choice_general(&n1, &n2).unwrap();
    let lhs = lang(&both, DEPTH);
    let (l1, l2) = (lang(&n1, DEPTH), lang(&n2, DEPTH));
    prop_assume!(lhs.is_some() && l1.is_some() && l2.is_some());
    prop_assert!(
        lhs.unwrap()
            .eq_up_to(&l1.unwrap().union(&l2.unwrap()), DEPTH),
        "general choice union law"
    );
    Ok(())
}

fn law_4_5_parallel(raw1: &RawNet, raw2: &RawNet) -> PropResult {
    let n1 = build(raw1);
    let n2 = build(raw2);
    let composed = parallel(&n1, &n2).unwrap();
    let lhs = lang(&composed, DEPTH);
    let (l1, l2) = (lang(&n1, DEPTH), lang(&n2, DEPTH));
    prop_assume!(lhs.is_some() && l1.is_some() && l2.is_some());
    prop_assert!(
        lhs.unwrap()
            .eq_up_to(&l1.unwrap().parallel(&l2.unwrap()), DEPTH),
        "L(N1‖N2) = L(N1)‖L(N2)"
    );
    Ok(())
}

fn law_4_7_hide(raw: &RawNet) -> PropResult {
    let n = build(raw);
    let depth = 3usize;
    // Divergent nets (hidden cycles / self-loops) are rightfully
    // rejected by the operator; skip those inputs.
    let Ok(hidden) = hide_label(&n, &"tau", 200) else {
        return Ok(());
    };
    let lhs = lang(&hidden, depth);
    // Hiding shortens traces: extract the source language deep enough
    // that every surviving trace of length ≤ depth has its witness.
    let slack = depth * (1 + n.transition_count()) + 2;
    let rhs = Language::from_net(&n, slack, TRACE_BUDGET)
        .ok()
        .map(|l| l.hide(&BTreeSet::from(["tau"])));
    prop_assume!(lhs.is_some() && rhs.is_some());
    prop_assert!(
        lhs.as_ref()
            .unwrap()
            .eq_up_to(&rhs.as_ref().unwrap().truncate(depth), depth),
        "Theorem 4.7 on\n{n}\nlhs {}\nrhs {}",
        lhs.unwrap(),
        rhs.unwrap()
    );
    Ok(())
}

fn law_4_6_hide_order_independence(raw: &RawNet) -> PropResult {
    let n = build(raw);
    let taus: Vec<TransitionId> = n.transitions_with_label(&"tau").collect();
    prop_assume!(taus.len() >= 2);
    let Ok(first) = hide_transition(&n, taus[0]) else {
        return Ok(());
    };
    let Ok(second) = hide_transition(&n, taus[1]) else {
        return Ok(());
    };
    let (Ok(via0), Ok(via1)) = (
        hide_label(&first, &"tau", 200),
        hide_label(&second, &"tau", 200),
    ) else {
        return Ok(());
    };
    let (l0, l1) = (lang(&via0, 3), lang(&via1, 3));
    prop_assume!(l0.is_some() && l1.is_some());
    prop_assert!(l0.unwrap().eq_up_to(&l1.unwrap(), 3), "Proposition 4.6");
    Ok(())
}

fn law_5_2_safety_closure(raw1: &RawNet, raw2: &RawNet) -> PropResult {
    let n1 = build(raw1);
    let n2 = build(raw2);
    let opts = ReachabilityOptions::with_max_states(20_000);
    let safe = |n: &PetriNet<&'static str>| -> Option<bool> {
        n.reachability(&opts).ok().map(|rg| n.analysis(&rg).safe)
    };
    prop_assume!(safe(&n1) == Some(true) && safe(&n2) == Some(true));

    let composed = parallel(&n1, &n2).unwrap();
    if let Some(s) = safe(&composed) {
        prop_assert!(s, "safety closed under parallel composition");
    }
    let both = choice(&n1, &n2).expect("safe markings");
    if let Some(s) = safe(&both) {
        prop_assert!(s, "safety closed under choice");
    }
    if let Ok(hidden) = hide_label(&n1, &"tau", 200) {
        if let Some(s) = safe(&hidden) {
            prop_assert!(s, "safety closed under hiding:\n{n1}\n{hidden}");
        }
    }
    Ok(())
}

fn law_5_4_marked_graphs_closed(raw1: &RawNet, raw2: &RawNet) -> PropResult {
    // Marked graphs are closed under action prefix, renaming and
    // parallel composition (Prop 5.4). Parallel composition needs the
    // synchronization to be conflict-free, which holds when each
    // common label has at most one transition per operand — filter
    // the generated nets accordingly.
    let n1 = build(raw1);
    let n2 = build(raw2);
    prop_assume!(n1.structural().is_marked_graph);
    prop_assume!(n2.structural().is_marked_graph);

    let renamed = rename(&n1, &BTreeMap::from([("a", "z")]));
    prop_assert!(renamed.structural().is_marked_graph, "renaming");

    // Prefix closure holds on term-built nets whose initial places
    // are roots (no producers yet) — the prefix transition becomes
    // their unique producer. On a cyclic MG the initial place would
    // gain a second producer, so the claim is read on the term
    // algebra, as the paper builds its nets.
    let roots_unproduced = n1
        .initial_places()
        .iter()
        .all(|&p| n1.producers(p).is_empty());
    if roots_unproduced {
        let prefixed = prefix("fresh", &n1).expect("safe marking");
        prop_assert!(prefixed.structural().is_marked_graph, "prefix");
    }

    let common: Vec<&str> = cpn_core::common_alphabet(&n1, &n2).into_iter().collect();
    let unique_sync = common.iter().all(|l| {
        n1.transitions_with_label(l).count() <= 1 && n2.transitions_with_label(l).count() <= 1
    });
    prop_assume!(unique_sync);
    let composed = parallel(&n1, &n2).unwrap();
    prop_assert!(
        composed.structural().is_marked_graph,
        "parallel composition of MGs with conflict-free sync"
    );
    Ok(())
}

fn law_5_1_projection_containment(raw1: &RawNet, raw2: &RawNet) -> PropResult {
    let n1 = build(raw1);
    let n2 = build(raw2);
    let composed = parallel(&n1, &n2).unwrap();
    let lc = lang(&composed, DEPTH);
    let l1 = lang(&n1, DEPTH);
    prop_assume!(lc.is_some() && l1.is_some());
    let projected = lc.unwrap().project(&n1.alphabet());
    prop_assert!(
        projected.subset_up_to(&l1.unwrap(), DEPTH),
        "project(L(M1‖M2), A1) ⊆ L(M1)"
    );
    Ok(())
}

#[test]
fn prop_4_2_prefix() {
    check("prop_4_2_prefix", &strategy(4, 4), law_4_2_prefix);
}

#[test]
fn prop_4_3_rename() {
    check("prop_4_3_rename", &strategy(4, 4), law_4_3_rename);
}

#[test]
fn prop_4_4_choice() {
    check(
        "prop_4_4_choice",
        &(strategy(3, 3), strategy(3, 3)),
        |(raw1, raw2)| law_4_4_choice(raw1, raw2),
    );
}

#[test]
fn prop_4_4_choice_general_multiset() {
    let s = (strategy(3, 3), strategy(3, 3), vec_of(u32_in(0..3), 3..=3));
    check(
        "prop_4_4_choice_general_multiset",
        &s,
        |(raw1, raw2, boosts)| law_4_4_choice_general_multiset(raw1, raw2, boosts),
    );
}

#[test]
fn thm_4_5_parallel() {
    check(
        "thm_4_5_parallel",
        &(strategy(3, 3), strategy(3, 3)),
        |(raw1, raw2)| law_4_5_parallel(raw1, raw2),
    );
}

#[test]
fn thm_4_7_hide() {
    check("thm_4_7_hide", &strategy(4, 4), law_4_7_hide);
}

#[test]
fn prop_4_6_hide_order_independence() {
    check(
        "prop_4_6_hide_order_independence",
        &strategy(4, 4),
        law_4_6_hide_order_independence,
    );
}

#[test]
fn prop_5_2_safety_closure() {
    check(
        "prop_5_2_safety_closure",
        &(strategy(3, 3), strategy(3, 3)),
        |(raw1, raw2)| law_5_2_safety_closure(raw1, raw2),
    );
}

#[test]
fn prop_5_4_marked_graphs_closed() {
    check(
        "prop_5_4_marked_graphs_closed",
        &(strategy(3, 3), strategy(3, 3)),
        |(raw1, raw2)| law_5_4_marked_graphs_closed(raw1, raw2),
    );
}

#[test]
fn thm_5_1_projection_containment() {
    check(
        "thm_5_1_projection_containment",
        &(strategy(3, 3), strategy(3, 3)),
        |(raw1, raw2)| law_5_1_projection_containment(raw1, raw2),
    );
}

// ---------------------------------------------------------------------
// Named regression cases, converted from `laws.proptest-regressions`.
// Each historical shrunk counterexample runs through every law of the
// matching arity so a regression in any of them resurfaces here.
// ---------------------------------------------------------------------

fn t(pre: &[usize], label: usize, post: &[usize]) -> RawTransition {
    RawTransition {
        pre: pre.to_vec(),
        label,
        post: post.to_vec(),
    }
}

fn check_all_one_net_laws(raw: &RawNet) {
    assert_law("4.2 prefix", law_4_2_prefix(raw));
    assert_law("4.3 rename", law_4_3_rename(raw));
    assert_law("4.7 hide", law_4_7_hide(raw));
    assert_law("4.6 hide order", law_4_6_hide_order_independence(raw));
}

fn check_all_two_net_laws(raw1: &RawNet, raw2: &RawNet) {
    assert_law("4.4 choice", law_4_4_choice(raw1, raw2));
    assert_law(
        "4.4 choice general",
        law_4_4_choice_general_multiset(raw1, raw2, &[0, 0, 0]),
    );
    assert_law("4.5 parallel", law_4_5_parallel(raw1, raw2));
    assert_law("5.2 safety", law_5_2_safety_closure(raw1, raw2));
    assert_law(
        "5.4 marked graphs",
        law_5_4_marked_graphs_closed(raw1, raw2),
    );
    assert_law("5.1 projection", law_5_1_projection_containment(raw1, raw2));
}

/// Formerly proptest seed `6099808f…`: a two-place net whose `c`-labeled
/// join consumes both tokens, paired with a bare `a` self-loop net.
#[test]
fn regression_join_consumes_both_tokens() {
    let raw1 = RawNet {
        places: 2,
        transitions: vec![t(&[1, 0], 2, &[0]), t(&[0], 0, &[0])],
        marking: vec![1, 1],
    };
    let raw2 = RawNet {
        places: 2,
        transitions: vec![t(&[0], 0, &[0])],
        marking: vec![0, 0],
    };
    check_all_two_net_laws(&raw1, &raw2);
}

/// Formerly proptest seed `6b25a8a8…`: two `tau` transitions sharing the
/// marked source place, one forking into both places of an `a`-join —
/// the shape that once broke hiding.
#[test]
fn regression_tau_fork_into_join() {
    let raw = RawNet {
        places: 4,
        transitions: vec![t(&[3], 3, &[0]), t(&[1, 0], 0, &[1]), t(&[3], 3, &[1, 0])],
        marking: vec![0, 0, 0, 1],
    };
    check_all_one_net_laws(&raw);
}

/// Formerly proptest seed `714e9a47…`: two unmarked two-place nets with
/// the same `a` alphabet but different cycle structure (synchronization
/// on an initially dead label).
#[test]
fn regression_sync_on_dead_label() {
    let raw1 = RawNet {
        places: 2,
        transitions: vec![t(&[0], 0, &[1]), t(&[1], 0, &[0])],
        marking: vec![0, 0],
    };
    let raw2 = RawNet {
        places: 2,
        transitions: vec![t(&[0], 0, &[0]), t(&[1], 0, &[1])],
        marking: vec![0, 0],
    };
    check_all_two_net_laws(&raw1, &raw2);
}
