//! Property tests: the paper's trace-preservation theorems checked on
//! randomly generated nets against the `cpn-trace` oracle.
//!
//! * Proposition 4.2 — `L(a.N) = {ε,a} ∪ {a}·L(N)`
//! * Proposition 4.3 — `L(rename(N, b→c)) = rename(L(N), b→c)`
//! * Proposition 4.4 — `L(N1 + N2) = L(N1) ∪ L(N2)`
//! * Theorem 4.5     — `L(N1 ‖ N2) = L(N1) ‖ L(N2)`
//! * Theorem 4.7     — `L(hide(N, a)) = hide(L(N), a)`
//! * Proposition 4.6 — hiding order independence (up to traces)
//! * Proposition 5.2 — safety closed under the operators
//! * Theorem 5.1     — `project(L(M1‖M2), A_i) ⊆ L(M_i)`

use cpn_core::{choice, choice_general, hide_label, hide_transition, parallel, prefix, rename};
use cpn_petri::{PetriNet, ReachabilityOptions, TransitionId};
use cpn_trace::Language;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const LABELS: [&str; 4] = ["a", "b", "c", "tau"];
const DEPTH: usize = 4;
const TRACE_BUDGET: usize = 200_000;

/// A raw net description proptest can shrink.
#[derive(Clone, Debug)]
struct RawNet {
    places: usize,
    transitions: Vec<(Vec<usize>, usize, Vec<usize>)>,
    marking: Vec<bool>,
}

fn raw_net(max_places: usize, max_transitions: usize) -> impl Strategy<Value = RawNet> {
    (2..=max_places).prop_flat_map(move |places| {
        let transition = (
            proptest::collection::vec(0..places, 1..=2),
            0..LABELS.len(),
            proptest::collection::vec(0..places, 1..=2),
        );
        (
            proptest::collection::vec(transition, 1..=max_transitions),
            proptest::collection::vec(any::<bool>(), places),
        )
            .prop_map(move |(transitions, marking)| RawNet {
                places,
                transitions,
                marking,
            })
    })
}

fn build(raw: &RawNet) -> PetriNet<&'static str> {
    let mut net: PetriNet<&'static str> = PetriNet::new();
    let ps: Vec<_> = (0..raw.places)
        .map(|i| net.add_place(format!("p{i}")))
        .collect();
    for (pre, label, post) in &raw.transitions {
        let pre: BTreeSet<_> = pre.iter().map(|&i| ps[i]).collect();
        let post: BTreeSet<_> = post.iter().map(|&i| ps[i]).collect();
        net.add_transition(pre, LABELS[*label], post)
            .expect("generated transition is valid");
    }
    let mut any_marked = false;
    for (i, &m) in raw.marking.iter().enumerate() {
        if m {
            net.set_initial(ps[i], 1);
            any_marked = true;
        }
    }
    if !any_marked {
        net.set_initial(ps[0], 1);
    }
    net
}

fn lang(net: &PetriNet<&'static str>, depth: usize) -> Option<Language<&'static str>> {
    Language::from_net(net, depth, TRACE_BUDGET).ok()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn prop_4_2_prefix(raw in raw_net(4, 4)) {
        let n = build(&raw);
        let prefixed = prefix("x", &n).expect("safe marking by construction");
        let lhs = lang(&prefixed, DEPTH);
        let rhs = lang(&n, DEPTH - 1).map(|l| l.prefix_action("x"));
        prop_assume!(lhs.is_some() && rhs.is_some());
        prop_assert!(lhs.unwrap().eq_up_to(&rhs.unwrap(), DEPTH));
    }

    #[test]
    fn prop_4_3_rename(raw in raw_net(4, 4)) {
        let n = build(&raw);
        let renamed = rename(&n, &BTreeMap::from([("a", "z")]));
        let lhs = lang(&renamed, DEPTH);
        let rhs = lang(&n, DEPTH)
            .map(|l| l.rename(|x| if *x == "a" { "z" } else { *x }));
        prop_assume!(lhs.is_some() && rhs.is_some());
        prop_assert!(lhs.unwrap().eq_up_to(&rhs.unwrap(), DEPTH));
    }

    #[test]
    fn prop_4_4_choice(raw1 in raw_net(3, 3), raw2 in raw_net(3, 3)) {
        let n1 = build(&raw1);
        let n2 = build(&raw2);
        let both = choice(&n1, &n2).expect("safe markings by construction");
        let lhs = lang(&both, DEPTH);
        let (l1, l2) = (lang(&n1, DEPTH), lang(&n2, DEPTH));
        prop_assume!(lhs.is_some() && l1.is_some() && l2.is_some());
        prop_assert!(
            lhs.unwrap().eq_up_to(&l1.unwrap().union(&l2.unwrap()), DEPTH),
            "L(N1+N2) = L(N1) ∪ L(N2)"
        );
    }

    #[test]
    fn prop_4_4_choice_general_multiset(
        raw1 in raw_net(3, 3),
        raw2 in raw_net(3, 3),
        boosts in proptest::collection::vec(0u32..3, 3),
    ) {
        // The general construction must satisfy the union law even with
        // multiset initial markings (which Def 4.6 proper rejects).
        let mut n1 = build(&raw1);
        for (i, &b) in boosts.iter().enumerate() {
            if i < n1.place_count() && b > 0 {
                let p = cpn_petri::PlaceId::from_index(i);
                n1.set_initial(p, n1.initial_marking().tokens(p) + b);
            }
        }
        let n2 = build(&raw2);
        let both = choice_general(&n1, &n2);
        let lhs = lang(&both, DEPTH);
        let (l1, l2) = (lang(&n1, DEPTH), lang(&n2, DEPTH));
        prop_assume!(lhs.is_some() && l1.is_some() && l2.is_some());
        prop_assert!(
            lhs.unwrap().eq_up_to(&l1.unwrap().union(&l2.unwrap()), DEPTH),
            "general choice union law"
        );
    }

    #[test]
    fn thm_4_5_parallel(raw1 in raw_net(3, 3), raw2 in raw_net(3, 3)) {
        let n1 = build(&raw1);
        let n2 = build(&raw2);
        let composed = parallel(&n1, &n2);
        let lhs = lang(&composed, DEPTH);
        let (l1, l2) = (lang(&n1, DEPTH), lang(&n2, DEPTH));
        prop_assume!(lhs.is_some() && l1.is_some() && l2.is_some());
        prop_assert!(
            lhs.unwrap().eq_up_to(&l1.unwrap().parallel(&l2.unwrap()), DEPTH),
            "L(N1‖N2) = L(N1)‖L(N2)"
        );
    }

    #[test]
    fn thm_4_7_hide(raw in raw_net(4, 4)) {
        let n = build(&raw);
        let depth = 3usize;
        // Divergent nets (hidden cycles / self-loops) are rightfully
        // rejected by the operator; skip those inputs.
        let Ok(hidden) = hide_label(&n, &"tau", 200) else {
            return Ok(());
        };
        let lhs = lang(&hidden, depth);
        // Hiding shortens traces: extract the source language deep enough
        // that every surviving trace of length ≤ depth has its witness.
        let slack = depth * (1 + n.transition_count()) + 2;
        let rhs = Language::from_net(&n, slack, TRACE_BUDGET)
            .ok()
            .map(|l| l.hide(&BTreeSet::from(["tau"])));
        prop_assume!(lhs.is_some() && rhs.is_some());
        prop_assert!(
            lhs.as_ref().unwrap().eq_up_to(&rhs.as_ref().unwrap().truncate(depth), depth),
            "Theorem 4.7 on\n{n}\nlhs {}\nrhs {}",
            lhs.unwrap(),
            rhs.unwrap()
        );
    }

    #[test]
    fn prop_4_6_hide_order_independence(raw in raw_net(4, 4)) {
        let n = build(&raw);
        let taus: Vec<TransitionId> = n.transitions_with_label(&"tau").collect();
        prop_assume!(taus.len() >= 2);
        let Ok(first) = hide_transition(&n, taus[0]) else { return Ok(()); };
        let Ok(second) = hide_transition(&n, taus[1]) else { return Ok(()); };
        let (Ok(via0), Ok(via1)) = (
            hide_label(&first, &"tau", 200),
            hide_label(&second, &"tau", 200),
        ) else {
            return Ok(());
        };
        let (l0, l1) = (lang(&via0, 3), lang(&via1, 3));
        prop_assume!(l0.is_some() && l1.is_some());
        prop_assert!(l0.unwrap().eq_up_to(&l1.unwrap(), 3), "Proposition 4.6");
    }

    #[test]
    fn prop_5_2_safety_closure(raw1 in raw_net(3, 3), raw2 in raw_net(3, 3)) {
        let n1 = build(&raw1);
        let n2 = build(&raw2);
        let opts = ReachabilityOptions::with_max_states(20_000);
        let safe = |n: &PetriNet<&'static str>| -> Option<bool> {
            n.reachability(&opts).ok().map(|rg| n.analysis(&rg).safe)
        };
        prop_assume!(safe(&n1) == Some(true) && safe(&n2) == Some(true));

        let composed = parallel(&n1, &n2);
        if let Some(s) = safe(&composed) {
            prop_assert!(s, "safety closed under parallel composition");
        }
        let both = choice(&n1, &n2).expect("safe markings");
        if let Some(s) = safe(&both) {
            prop_assert!(s, "safety closed under choice");
        }
        if let Ok(hidden) = hide_label(&n1, &"tau", 200) {
            if let Some(s) = safe(&hidden) {
                prop_assert!(s, "safety closed under hiding:\n{n1}\n{hidden}");
            }
        }
    }

    #[test]
    fn prop_5_4_marked_graphs_closed(raw1 in raw_net(3, 3), raw2 in raw_net(3, 3)) {
        // Marked graphs are closed under action prefix, renaming and
        // parallel composition (Prop 5.4). Parallel composition needs the
        // synchronization to be conflict-free, which holds when each
        // common label has at most one transition per operand — filter
        // the generated nets accordingly.
        let n1 = build(&raw1);
        let n2 = build(&raw2);
        prop_assume!(n1.structural().is_marked_graph);
        prop_assume!(n2.structural().is_marked_graph);

        let renamed = rename(&n1, &BTreeMap::from([("a", "z")]));
        prop_assert!(renamed.structural().is_marked_graph, "renaming");

        // Prefix closure holds on term-built nets whose initial places
        // are roots (no producers yet) — the prefix transition becomes
        // their unique producer. On a cyclic MG the initial place would
        // gain a second producer, so the claim is read on the term
        // algebra, as the paper builds its nets.
        let roots_unproduced = n1
            .initial_places()
            .iter()
            .all(|&p| n1.producers(p).is_empty());
        if roots_unproduced {
            let prefixed = prefix("fresh", &n1).expect("safe marking");
            prop_assert!(prefixed.structural().is_marked_graph, "prefix");
        }

        let common: Vec<&str> = n1
            .alphabet()
            .intersection(n2.alphabet())
            .copied()
            .collect();
        let unique_sync = common.iter().all(|l| {
            n1.transitions_with_label(l).count() <= 1
                && n2.transitions_with_label(l).count() <= 1
        });
        prop_assume!(unique_sync);
        let composed = parallel(&n1, &n2);
        prop_assert!(
            composed.structural().is_marked_graph,
            "parallel composition of MGs with conflict-free sync"
        );
    }

    #[test]
    fn thm_5_1_projection_containment(raw1 in raw_net(3, 3), raw2 in raw_net(3, 3)) {
        let n1 = build(&raw1);
        let n2 = build(&raw2);
        let composed = parallel(&n1, &n2);
        let lc = lang(&composed, DEPTH);
        let l1 = lang(&n1, DEPTH);
        prop_assume!(lc.is_some() && l1.is_some());
        let projected = lc.unwrap().project(n1.alphabet());
        prop_assert!(
            projected.subset_up_to(&l1.unwrap(), DEPTH),
            "project(L(M1‖M2), A1) ⊆ L(M1)"
        );
    }
}
