//! Module library and hash-consed derivation store.
//!
//! The paper's whole method is compositional: modules are designed as
//! nets, instantiated by renaming onto concrete channel names, composed
//! in parallel, and reduced against their environment. This module makes
//! that workflow *incremental* by treating every net as a value addressed
//! by its [`NetId`] (canonical-form hash) and memoizing each algebra
//! operation on `(op, child ids, params)`:
//!
//! * [`DerivationStore`] — a hash-consed arena of nets plus the memo
//!   table. Re-deriving `parallel(a, b)` with the same children is a
//!   table lookup; recomposing a 1000-module stack after a single-leaf
//!   edit re-derives only the spine above the changed leaf.
//! * [`ModuleLib`] — named, reusable circuits with typed interface
//!   alphabets (inputs/outputs), instantiated by injective renaming.
//!
//! Invalidation is automatic and exact: a derivation is keyed by the
//! canonical identity of its operands, so any structural change to a
//! child produces a different key, and unchanged subtrees keep hitting
//! the memo. Operations under a wall-clock [`Budget`] deadline or a
//! cancellation token are computed but **never memoized** — their
//! `Exhausted` prefixes depend on timing, and the store must stay
//! deterministic (state/transition caps alone are deterministic and are
//! part of the key, so `Exhausted` prefixes from cap-only budgets *are*
//! memoized, caps included).

use crate::contract::reduce_for_analysis;
use crate::error::CoreError;
use crate::hide::hide_labels_bounded;
use crate::ops::rename_injective;
use crate::parallel::parallel;
use cpn_petri::hash::Fnv128;
use cpn_petri::{Bounded, Budget, Exhausted, Label, NetId, PetriError, PetriNet};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// The memoized algebra operations (the `op` component of a derivation
/// key).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Op {
    Parallel,
    HideLabels,
    Reduce,
    Rename,
    Compose,
}

/// A derivation key: `(op, child ids, parameter hash)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct DerivKey {
    op: Op,
    left: NetId,
    right: Option<NetId>,
    params: u128,
}

/// A memoized result: the derived net's id, plus the exhaustion record
/// when the (deterministic, cap-only) budget ran out mid-operation.
#[derive(Clone, Copy, Debug)]
enum MemoVal {
    Complete(NetId),
    Exhausted(NetId, Exhausted),
}

/// Hit/miss/size counters of a [`DerivationStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DerivationStats {
    /// Memoized operations answered from the table.
    pub hits: u64,
    /// Operations that had to run the underlying algebra.
    pub misses: u64,
    /// Distinct nets interned (hash-consed) in the store.
    pub nets: usize,
    /// Derivation entries in the memo table.
    pub memo_entries: u64,
}

/// A hash-consed arena of nets with memoized algebra operations.
///
/// Every net handled by the store is interned under its [`NetId`]:
/// structurally equal nets share one `Arc`. Each operation first checks
/// the memo table; on a miss it runs the real operator from
/// `cpn-core` and interns the result. The `hits`/`misses` counters are
/// the observable that the incremental-recompile smoke test asserts on:
/// after a single-leaf edit of a module stack, recomposing must miss
/// only on the spine above the edited leaf.
pub struct DerivationStore<L: Label> {
    nets: HashMap<NetId, Arc<PetriNet<L>>>,
    memo: HashMap<DerivKey, MemoVal>,
    hits: u64,
    misses: u64,
}

impl<L: Label> Default for DerivationStore<L> {
    fn default() -> Self {
        Self::new()
    }
}

fn unknown_id(id: NetId) -> CoreError {
    CoreError::Net(PetriError::Precondition(format!(
        "net {id} is not interned in this derivation store"
    )))
}

/// Hashes a label set into derivation-key parameter space: count, then
/// each label's `Display` bytes length-prefixed, in `Ord` order.
fn hash_labels<L: Label>(h: &mut Fnv128, labels: &BTreeSet<L>) {
    h.write_u64(labels.len() as u64);
    for l in labels {
        h.write_len_prefixed(l.to_string().as_bytes());
    }
}

/// Hashes the deterministic caps of a budget. Callers must have
/// excluded deadline/cancel budgets from memoization already.
fn hash_budget(h: &mut Fnv128, budget: &Budget) {
    h.write_u64(budget.max_states as u64);
    h.write_u64(budget.max_transitions as u64);
}

/// Whether a budget's outcome is a pure function of the net (caps
/// only). Deadlines and cancellation tokens make results depend on
/// wall-clock timing, so they are computed but never memoized.
fn is_deterministic(budget: &Budget) -> bool {
    budget.deadline.is_none() && budget.cancel.is_none()
}

impl<L: Label> DerivationStore<L> {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        DerivationStore {
            nets: HashMap::new(),
            memo: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Interns a net, returning its canonical id and the shared value.
    /// A structurally equal net already in the store wins: the argument
    /// is dropped and the existing `Arc` is returned.
    pub fn intern(&mut self, net: PetriNet<L>) -> (NetId, Arc<PetriNet<L>>) {
        let id = net.net_id();
        let arc = Arc::clone(self.nets.entry(id).or_insert_with(|| Arc::new(net)));
        (id, arc)
    }

    /// The net behind an id, if interned.
    #[must_use]
    pub fn net(&self, id: NetId) -> Option<Arc<PetriNet<L>>> {
        self.nets.get(&id).map(Arc::clone)
    }

    fn resolve(&self, id: NetId) -> Result<Arc<PetriNet<L>>, CoreError> {
        self.net(id).ok_or_else(|| unknown_id(id))
    }

    /// Current counters and sizes.
    #[must_use]
    pub fn stats(&self) -> DerivationStats {
        DerivationStats {
            hits: self.hits,
            misses: self.misses,
            nets: self.nets.len(),
            memo_entries: self.memo.len() as u64,
        }
    }

    /// Resets the hit/miss counters (the interned nets and memo table
    /// are kept). The bench harness brackets phases with this.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    fn lookup(&mut self, key: &DerivKey) -> Option<MemoVal> {
        match self.memo.get(key) {
            Some(v) => {
                self.hits += 1;
                Some(*v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoized parallel composition (Definition 4.7).
    ///
    /// # Errors
    ///
    /// Unknown ids, or any error of [`parallel`].
    pub fn parallel(&mut self, a: NetId, b: NetId) -> Result<NetId, CoreError> {
        let key = DerivKey {
            op: Op::Parallel,
            left: a,
            right: Some(b),
            params: 0,
        };
        if let Some(MemoVal::Complete(id) | MemoVal::Exhausted(id, _)) = self.lookup(&key) {
            return Ok(id);
        }
        let (na, nb) = (self.resolve(a)?, self.resolve(b)?);
        let composed = parallel(&na, &nb).map_err(CoreError::Net)?;
        let (id, _) = self.intern(composed);
        self.memo.insert(key, MemoVal::Complete(id));
        Ok(id)
    }

    /// Memoized label hiding (Definition 4.10) under a budget. The
    /// budget caps are part of the derivation key, so a sweep over
    /// budgets memoizes each cap separately — including the `Exhausted`
    /// prefixes, which are deterministic for cap-only budgets.
    ///
    /// # Errors
    ///
    /// Unknown ids, or any error of [`hide_labels_bounded`].
    pub fn hide_labels(
        &mut self,
        id: NetId,
        labels: &BTreeSet<L>,
        budget: &Budget,
    ) -> Result<Bounded<NetId>, CoreError> {
        let mut h = Fnv128::new();
        hash_labels(&mut h, labels);
        hash_budget(&mut h, budget);
        let key = DerivKey {
            op: Op::HideLabels,
            left: id,
            right: None,
            params: h.finish(),
        };
        let memoizable = is_deterministic(budget);
        if memoizable {
            match self.lookup(&key) {
                Some(MemoVal::Complete(out)) => return Ok(Bounded::Complete(out)),
                Some(MemoVal::Exhausted(out, info)) => {
                    return Ok(Bounded::Exhausted { partial: out, info })
                }
                None => {}
            }
        }
        let net = self.resolve(id)?;
        let bounded = hide_labels_bounded(&net, labels, budget)?;
        Ok(match bounded {
            Bounded::Complete(out) => {
                let (out_id, _) = self.intern(out);
                if memoizable {
                    self.memo.insert(key, MemoVal::Complete(out_id));
                }
                Bounded::Complete(out_id)
            }
            Bounded::Exhausted { partial, info } => {
                let (out_id, _) = self.intern(partial);
                if memoizable {
                    self.memo.insert(key, MemoVal::Exhausted(out_id, info));
                }
                Bounded::Exhausted {
                    partial: out_id,
                    info,
                }
            }
        })
    }

    /// Memoized safe-net reduction ([`reduce_for_analysis`]), keyed on
    /// the internal-label set.
    ///
    /// # Errors
    ///
    /// Unknown ids, or any error of [`reduce_for_analysis`].
    pub fn reduce(&mut self, id: NetId, internal: &BTreeSet<L>) -> Result<NetId, CoreError> {
        let mut h = Fnv128::new();
        hash_labels(&mut h, internal);
        let key = DerivKey {
            op: Op::Reduce,
            left: id,
            right: None,
            params: h.finish(),
        };
        if let Some(MemoVal::Complete(out) | MemoVal::Exhausted(out, _)) = self.lookup(&key) {
            return Ok(out);
        }
        let net = self.resolve(id)?;
        let (reduced, _stats) = reduce_for_analysis(&net, internal).map_err(CoreError::Net)?;
        let (out_id, _) = self.intern(reduced);
        self.memo.insert(key, MemoVal::Complete(out_id));
        Ok(out_id)
    }

    /// Memoized injective renaming (Definition 4.4 restricted to
    /// injective maps), keyed on the `(from, to)` pairs.
    ///
    /// # Errors
    ///
    /// Unknown ids, or any error of [`rename_injective`].
    pub fn rename(&mut self, id: NetId, map: &BTreeMap<L, L>) -> Result<NetId, CoreError> {
        let mut h = Fnv128::new();
        h.write_u64(map.len() as u64);
        for (k, v) in map {
            h.write_len_prefixed(k.to_string().as_bytes());
            h.write_len_prefixed(v.to_string().as_bytes());
        }
        let key = DerivKey {
            op: Op::Rename,
            left: id,
            right: None,
            params: h.finish(),
        };
        if let Some(MemoVal::Complete(out) | MemoVal::Exhausted(out, _)) = self.lookup(&key) {
            return Ok(out);
        }
        let net = self.resolve(id)?;
        let renamed = rename_injective(&net, map).map_err(CoreError::Net)?;
        let (out_id, _) = self.intern(renamed);
        self.memo.insert(key, MemoVal::Complete(out_id));
        Ok(out_id)
    }

    /// Memoized synthesis-style composition: `parallel(a, b)`, then the
    /// `internal` labels hidden, then safe-net reduction (the per-node
    /// operation of a balanced module-stack build; keeping intermediate
    /// nets reduced is what makes a 1000-module compose tractable).
    ///
    /// On budget exhaustion mid-hide, the partial hidden net is
    /// returned *without* reduction (a sound prefix; reduction only
    /// runs on complete results).
    ///
    /// # Errors
    ///
    /// Unknown ids, or any error of the three underlying operators.
    pub fn compose(
        &mut self,
        a: NetId,
        b: NetId,
        internal: &BTreeSet<L>,
        budget: &Budget,
    ) -> Result<Bounded<NetId>, CoreError> {
        let mut h = Fnv128::new();
        hash_labels(&mut h, internal);
        hash_budget(&mut h, budget);
        let key = DerivKey {
            op: Op::Compose,
            left: a,
            right: Some(b),
            params: h.finish(),
        };
        let memoizable = is_deterministic(budget);
        if memoizable {
            match self.lookup(&key) {
                Some(MemoVal::Complete(out)) => return Ok(Bounded::Complete(out)),
                Some(MemoVal::Exhausted(out, info)) => {
                    return Ok(Bounded::Exhausted { partial: out, info })
                }
                None => {}
            }
        }
        let par = self.parallel(a, b)?;
        let result = match self.hide_labels(par, internal, budget)? {
            Bounded::Complete(hidden) => {
                let reduced = self.reduce(hidden, &BTreeSet::new())?;
                if memoizable {
                    self.memo.insert(key, MemoVal::Complete(reduced));
                }
                Bounded::Complete(reduced)
            }
            Bounded::Exhausted { partial, info } => {
                if memoizable {
                    self.memo.insert(key, MemoVal::Exhausted(partial, info));
                }
                Bounded::Exhausted { partial, info }
            }
        };
        Ok(result)
    }
}

/// A named module: a behaviour net with a typed interface alphabet.
///
/// Interface discipline mirrors the paper's circuit `C = (I, O, N)`:
/// inputs and outputs are disjoint and both drawn from the net's
/// alphabet; alphabet labels outside `I ∪ O` are internal.
#[derive(Clone, Debug)]
pub struct ModuleDef<L: Label> {
    name: String,
    inputs: BTreeSet<L>,
    outputs: BTreeSet<L>,
    id: NetId,
}

impl<L: Label> ModuleDef<L> {
    /// The module's library name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input actions `I`.
    #[must_use]
    pub fn inputs(&self) -> &BTreeSet<L> {
        &self.inputs
    }

    /// The output actions `O`.
    #[must_use]
    pub fn outputs(&self) -> &BTreeSet<L> {
        &self.outputs
    }

    /// The behaviour net's canonical id.
    #[must_use]
    pub fn id(&self) -> NetId {
        self.id
    }
}

/// One instantiation of a library module: the renamed net plus its
/// renamed interface.
#[derive(Clone, Debug)]
pub struct ModuleInstance<L: Label> {
    /// The instantiated net's canonical id (in the library's store).
    pub id: NetId,
    /// The instance's input actions (renamed through the map).
    pub inputs: BTreeSet<L>,
    /// The instance's output actions (renamed through the map).
    pub outputs: BTreeSet<L>,
}

/// A library of named, reusable modules over one [`DerivationStore`].
///
/// Registration hash-conses the definition net; instantiation applies
/// an injective renaming through the store, so stamping out the same
/// instance twice is a memo hit, and two *different* modules with
/// structurally equal nets share storage.
pub struct ModuleLib<L: Label> {
    modules: BTreeMap<String, ModuleDef<L>>,
    store: DerivationStore<L>,
}

impl<L: Label> Default for ModuleLib<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: Label> ModuleLib<L> {
    /// An empty library with a fresh store.
    #[must_use]
    pub fn new() -> Self {
        ModuleLib {
            modules: BTreeMap::new(),
            store: DerivationStore::new(),
        }
    }

    /// Registers a named module, validating its interface: `I ∩ O = ∅`
    /// and `I ∪ O ⊆ A`. Returns the definition net's canonical id.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] on a duplicate name or an
    /// interface violation.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        inputs: BTreeSet<L>,
        outputs: BTreeSet<L>,
        net: PetriNet<L>,
    ) -> Result<NetId, CoreError> {
        let name = name.into();
        if self.modules.contains_key(&name) {
            return Err(CoreError::UnsupportedShape(format!(
                "module {name:?} is already registered"
            )));
        }
        if let Some(l) = inputs.intersection(&outputs).next() {
            return Err(CoreError::UnsupportedShape(format!(
                "module {name:?}: label {l} is both input and output"
            )));
        }
        for l in inputs.iter().chain(outputs.iter()) {
            if !net.alphabet_contains(l) {
                return Err(CoreError::UnsupportedShape(format!(
                    "module {name:?}: interface label {l} is not in the net's alphabet"
                )));
            }
        }
        let (id, _) = self.store.intern(net);
        self.modules.insert(
            name.clone(),
            ModuleDef {
                name,
                inputs,
                outputs,
                id,
            },
        );
        Ok(id)
    }

    /// The definition of a registered module.
    #[must_use]
    pub fn module(&self, name: &str) -> Option<&ModuleDef<L>> {
        self.modules.get(name)
    }

    /// Iterates over registered modules in name order.
    pub fn modules(&self) -> impl Iterator<Item = &ModuleDef<L>> {
        self.modules.values()
    }

    /// Number of registered modules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether no modules are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Instantiates a module by injective renaming of its interface
    /// (and any other alphabet labels named in the map). Labels absent
    /// from the map keep their names.
    ///
    /// # Errors
    ///
    /// Unknown module name, or any error of
    /// [`rename_injective`] (non-injective maps on the alphabet are
    /// rejected).
    pub fn instantiate(
        &mut self,
        name: &str,
        renaming: &BTreeMap<L, L>,
    ) -> Result<ModuleInstance<L>, CoreError> {
        let def = self
            .modules
            .get(name)
            .ok_or_else(|| CoreError::UnsupportedShape(format!("unknown module {name:?}")))?
            .clone();
        let id = if renaming.is_empty() {
            def.id
        } else {
            self.store.rename(def.id, renaming)?
        };
        let apply = |set: &BTreeSet<L>| {
            set.iter()
                .map(|l| renaming.get(l).cloned().unwrap_or_else(|| l.clone()))
                .collect()
        };
        Ok(ModuleInstance {
            id,
            inputs: apply(&def.inputs),
            outputs: apply(&def.outputs),
        })
    }

    /// The library's derivation store.
    #[must_use]
    pub fn store(&self) -> &DerivationStore<L> {
        &self.store
    }

    /// Mutable access to the derivation store (for running compose
    /// plans over instantiated modules).
    pub fn store_mut(&mut self) -> &mut DerivationStore<L> {
        &mut self.store
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn cycle(a: &str, b: &str) -> PetriNet<String> {
        let mut net: PetriNet<String> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], a.to_owned(), [q]).unwrap();
        net.add_transition([q], b.to_owned(), [p]).unwrap();
        net.set_initial(p, 1);
        net
    }

    fn labels(ls: &[&str]) -> BTreeSet<String> {
        ls.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn intern_hash_conses_equal_nets() {
        let mut store: DerivationStore<String> = DerivationStore::new();
        let (id1, n1) = store.intern(cycle("a", "b"));
        let (id2, n2) = store.intern(cycle("a", "b"));
        assert_eq!(id1, id2);
        assert!(Arc::ptr_eq(&n1, &n2));
        assert_eq!(store.stats().nets, 1);
    }

    #[test]
    fn parallel_memoizes_on_child_ids() {
        let mut store: DerivationStore<String> = DerivationStore::new();
        let (a, _) = store.intern(cycle("x", "c"));
        let (b, _) = store.intern(cycle("c", "y"));
        let first = store.parallel(a, b).unwrap();
        let again = store.parallel(a, b).unwrap();
        assert_eq!(first, again);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // The memoized result equals an uncached recomputation.
        let fresh = parallel(&store.net(a).unwrap(), &store.net(b).unwrap()).unwrap();
        assert_eq!(fresh.net_id(), first);
    }

    #[test]
    fn hide_budget_is_part_of_the_key() {
        let mut store: DerivationStore<String> = DerivationStore::new();
        let (a, _) = store.intern(cycle("x", "c"));
        let (b, _) = store.intern(cycle("c", "y"));
        let par = store.parallel(a, b).unwrap();
        let big = Budget::new(usize::MAX, 10_000);
        let r1 = store.hide_labels(par, &labels(&["c"]), &big).unwrap();
        let r2 = store.hide_labels(par, &labels(&["c"]), &big).unwrap();
        assert!(matches!(r1, Bounded::Complete(_)));
        match (&r1, &r2) {
            (Bounded::Complete(x), Bounded::Complete(y)) => assert_eq!(x, y),
            other => panic!("expected two complete results, got {other:?}"),
        }
        // A different cap is a different derivation — no false hit.
        let small = Budget::new(usize::MAX, 1);
        let before = store.stats().hits;
        let _ = store.hide_labels(par, &labels(&["c"]), &small);
        assert_eq!(store.stats().hits, before, "different budget must miss");
    }

    #[test]
    fn deadline_budgets_are_never_memoized() {
        let mut store: DerivationStore<String> = DerivationStore::new();
        let (a, _) = store.intern(cycle("x", "c"));
        let par = store.parallel(a, a).unwrap();
        let mut budget = Budget::new(usize::MAX, 10_000);
        budget.deadline = Some(cpn_petri::Deadline::after(std::time::Duration::from_secs(
            3600,
        )));
        let entries_before = store.stats().memo_entries;
        let _ = store.hide_labels(par, &labels(&["c"]), &budget).unwrap();
        assert_eq!(store.stats().memo_entries, entries_before);
    }

    #[test]
    fn compose_hits_as_one_unit() {
        let mut store: DerivationStore<String> = DerivationStore::new();
        let (a, _) = store.intern(cycle("x", "c"));
        let (b, _) = store.intern(cycle("c", "y"));
        let budget = Budget::new(usize::MAX, 100_000);
        let r1 = store.compose(a, b, &labels(&["c"]), &budget).unwrap();
        store.reset_counters();
        let r2 = store.compose(a, b, &labels(&["c"]), &budget).unwrap();
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "one top-level hit");
        match (r1, r2) {
            (Bounded::Complete(x), Bounded::Complete(y)) => assert_eq!(x, y),
            other => panic!("expected complete compositions, got {other:?}"),
        }
    }

    #[test]
    fn library_registers_validates_and_instantiates() {
        let mut lib: ModuleLib<String> = ModuleLib::new();
        lib.register(
            "buf",
            labels(&["req"]),
            labels(&["ack"]),
            cycle("req", "ack"),
        )
        .unwrap();
        // Duplicate name rejected.
        assert!(lib
            .register(
                "buf",
                labels(&["req"]),
                labels(&["ack"]),
                cycle("req", "ack")
            )
            .is_err());
        // Overlapping interface rejected.
        assert!(lib
            .register(
                "bad",
                labels(&["req"]),
                labels(&["req"]),
                cycle("req", "ack")
            )
            .is_err());
        // Interface label not in alphabet rejected.
        assert!(lib
            .register(
                "bad2",
                labels(&["zz"]),
                labels(&["ack"]),
                cycle("req", "ack")
            )
            .is_err());

        let map: BTreeMap<String, String> = [("req", "r0"), ("ack", "a0")]
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        let inst = lib.instantiate("buf", &map).unwrap();
        assert_eq!(inst.inputs, labels(&["r0"]));
        assert_eq!(inst.outputs, labels(&["a0"]));
        let net = lib.store().net(inst.id).unwrap();
        assert!(net.alphabet_contains(&"r0".to_owned()));
        assert!(!net.alphabet_contains(&"req".to_owned()));

        // Stamping out the same instance again is a memo hit.
        let before = lib.store().stats().hits;
        let inst2 = lib.instantiate("buf", &map).unwrap();
        assert_eq!(inst2.id, inst.id);
        assert_eq!(lib.store().stats().hits, before + 1);
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let mut store: DerivationStore<String> = DerivationStore::new();
        let bogus = NetId::from_u128(42);
        assert!(store.parallel(bogus, bogus).is_err());
        assert!(store.reduce(bogus, &BTreeSet::new()).is_err());
    }
}
