//! The communicating Petri net **algebra** of de Jong & Lin (DAC 1994).
//!
//! This crate is the paper's primary contribution: a process algebra whose
//! carriers are *general* labeled Petri nets (not unfoldings, not safe-net
//! restrictions), with
//!
//! * the **action operators** `nil`, action prefix and renaming
//!   (Definitions 4.2–4.4) — see [`ops`];
//! * **non-deterministic choice** via root-unwinding
//!   (Definitions 4.5/4.6, Figure 1) — see [`mod@choice`];
//! * **parallel composition** with rendez-vous synchronization on the
//!   common alphabet (Definition 4.7, Theorem 4.5, Figure 2) — see
//!   [`mod@parallel`];
//! * **hiding as generalized net contraction** (Definition 4.10,
//!   Theorem 4.7, Figure 3), the paper's novel operator — see [`hide`];
//! * the **circuit algebra** `C = (I, O, N)` layered on top
//!   (Section 5.1) — see [`circuit`];
//! * **compositional synthesis** (`hide(M1‖M2, A2\A1)`, Theorem 5.1,
//!   closure Propositions 5.2–5.4) — see [`synthesis`];
//! * **receptiveness verification** (Propositions 5.5/5.6 and the
//!   polynomial structural check of Theorem 5.7) — see [`verify`].
//!
//! Every operator is validated against the trace-language oracle in
//! `cpn-trace`: the property-test suite checks the paper's equations
//! (`L(N1‖N2) = L(N1)‖L(N2)`, `L(hide(N,a)) = hide(L(N),a)`, …) on
//! randomly generated nets up to a trace depth.
//!
//! # Example: composing and hiding
//!
//! ```
//! use cpn_core::{hide_label, parallel};
//! use cpn_petri::PetriNet;
//! use cpn_trace::Language;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // N1 = (a.c)*    N2 = (c.b)*   synchronize on c, then hide it.
//! let mut n1: PetriNet<&str> = PetriNet::new();
//! let p = n1.add_place("p");
//! let q = n1.add_place("q");
//! n1.add_transition([p], "a", [q])?;
//! n1.add_transition([q], "c", [p])?;
//! n1.set_initial(p, 1);
//!
//! let mut n2: PetriNet<&str> = PetriNet::new();
//! let r = n2.add_place("r");
//! let s = n2.add_place("s");
//! n2.add_transition([r], "c", [s])?;
//! n2.add_transition([s], "b", [r])?;
//! n2.set_initial(r, 1);
//!
//! let composed = parallel(&n1, &n2)?;
//! let hidden = hide_label(&composed, &"c", 1_000)?;
//! let lang = Language::from_net(&hidden, 3, 10_000)?;
//! assert!(lang.contains(&["a", "b", "a"][..])); // c happens silently
//! # Ok(())
//! # }
//! ```

// The algebra is a library layer: its public API must degrade via typed
// errors, never panic (tests are exempt).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod choice;
pub mod circuit;
pub mod contract;
pub mod error;
pub mod hide;
pub mod library;
pub mod ops;
pub mod parallel;
pub mod synthesis;
pub mod verify;

pub use choice::{choice, choice_general, root_unwinding, RootUnwinding};
pub use circuit::Circuit;
pub use contract::{reduce_for_analysis, NetEditor, ReductionStats};
pub use error::CoreError;
pub use library::{DerivationStats, DerivationStore, ModuleDef, ModuleInstance, ModuleLib};

pub use hide::{
    hide_label, hide_label_bounded, hide_labels, hide_labels_bounded, hide_labels_bounded_legacy,
    hide_relabel, hide_transition, project, project_bounded,
};
pub use ops::{nil, prefix, prefix_general, rename, rename_injective};
pub use parallel::{
    common_alphabet, parallel, parallel_tracked, parallel_tracked_common, parallel_with_sync,
    Composition, SyncTransition,
};
pub use synthesis::{
    closure_report, reduce_against_environment, reduce_against_environment_fused,
    reduce_against_environment_fused_bounded, ClosureReport, Reduction,
};
pub use verify::{
    check_receptiveness, check_receptiveness_bounded, check_receptiveness_composed,
    check_receptiveness_composed_bounded, check_receptiveness_composed_stubborn_bounded,
    check_receptiveness_structural_mg, check_receptiveness_structural_mg_bounded,
    check_receptiveness_structural_mg_composed, check_receptiveness_structural_mg_composed_bounded,
    check_receptiveness_stubborn_bounded, ReceptivenessFailure, ReceptivenessReport, Side,
};
