//! The contraction **engine**: in-place net editing for hiding and
//! structural reduction.
//!
//! [`hide_transition`](crate::hide_transition) is the paper's
//! Definition 4.10 in its purest form — and it rebuilds a fresh
//! [`PetriNet`] per contraction, re-scanning all transitions for the
//! preset/postset precondition. That is fine for one contraction and
//! quadratic for a hiding pass. This module provides the production
//! path: a [`NetEditor`] holding the net in tombstoned arenas with three
//! persistent indexes —
//!
//! * label → transitions (the hiding worklist),
//! * place → consumers (transitions reading it),
//! * place → producers (transitions feeding it),
//!
//! so that each contraction is an **in-place splice** (delete `t`, mint
//! the product places, rewrite the adjacent transitions, append the
//! virtual duplicates), the both-sides precondition is an index
//! intersection, and multi-label hiding drains a correctly-maintained
//! worklist: a duplicate that carries a hidden label is re-enqueued by
//! the same index update that registers it.
//!
//! # Order replication
//!
//! The reference implementation
//! ([`hide_labels_bounded_legacy`](crate::hide_labels_bounded_legacy))
//! always contracts the *first* transition carrying the label, and its
//! rebuild inserts every virtual duplicate immediately after the real
//! variant it was copied from. The editor replicates that order exactly
//! with a **path key** per transition: original transition `i` carries
//! key `[i]`; a duplicate of `u` carries `key(u) ++ [c]` with a globally
//! decreasing counter `c`. Lexicographic order on keys then equals the
//! legacy net order at every step (a duplicate sorts right behind its
//! parent, and a later-round duplicate of the same parent sorts before
//! an earlier one, exactly as repeated rebuilds interleave them), so the
//! engine selects the same contraction at every step, produces
//! bit-identical results, and reports bit-identical
//! [`Bounded::Exhausted`](cpn_petri::Bounded) prefixes — the contract
//! the differential property suite in `tests/contract_equivalence.rs`
//! enforces.
//!
//! # Reduction rules
//!
//! On top of contraction the editor offers three structural reduction
//! rules, each preserving the trace language *exactly* (not merely up to
//! a depth):
//!
//! * [`dedup_transitions`](NetEditor::dedup_transitions) — duplicate
//!   transitions (same label, preset and postset) collapse to one;
//! * [`remove_redundant_places`](NetEditor::remove_redundant_places) —
//!   places with identical producers, consumers and initial marking hold
//!   identical token counts in every reachable marking, so all but one
//!   are implied constraints;
//! * [`prune_stranded`](NetEditor::prune_stranded) — a transition whose
//!   preset contains an unmarked place with no producers can never fire;
//!   removing it (to a fixpoint) and dropping the unmarked places left
//!   isolated is what completes the marked-graph collapse of Figure
//!   3(c): the two places straddling a contracted silent transition fuse
//!   into their product place.
//!
//! [`reduce`](NetEditor::reduce) runs the three to a joint fixpoint —
//! the between-contraction cleanup that stops product-place accretion in
//! long hiding chains.
//!
//! # Safe-net reduction
//!
//! [`reduce_with`](NetEditor::reduce_with) layers the safe-net rules on
//! top: self-loop place elimination and the two series fusions (FSP and
//! FST, after Khomenko's safe-net reduction catalogue), which erase
//! *internal* transitions outright. The result is no longer trace-exact
//! on the full alphabet — it preserves safety, deadlock-freedom, the
//! observable-projected language, and liveness modulo dead-transition
//! pruning (the precise contract is on `reduce_with` itself, and the
//! differential battery in `tests/reduction_equivalence.rs` enforces
//! it). [`reduce_for_analysis`] is the net-level wrapper.

use cpn_petri::{
    AlphaSet, Budget, Interner, Label, Meter, PetriError, PetriNet, PlaceId, Sym, TransitionId,
};
use std::collections::{BTreeMap, BTreeSet};

/// A place record in the editor arena.
#[derive(Clone, Debug)]
struct PlaceRec {
    name: String,
    tokens: u32,
}

/// A transition record in the editor arena. The label is an interned
/// [`Sym`] in the editor's symbol space; `key` is the path key that
/// replicates the legacy rebuild order (see the module docs).
#[derive(Clone, Debug)]
struct TransRec {
    preset: BTreeSet<u32>,
    sym: Sym,
    postset: BTreeSet<u32>,
    key: Vec<u32>,
}

/// Counts of what [`NetEditor::reduce`] removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Duplicate transitions collapsed (same label/preset/postset).
    pub duplicate_transitions: usize,
    /// Redundant places removed (identical producers/consumers/marking).
    pub redundant_places: usize,
    /// Structurally dead transitions pruned (unmarked producer-less
    /// preset place).
    pub stranded_transitions: usize,
    /// Unmarked places left with no adjacent transitions.
    pub isolated_places: usize,
    /// Series place fusions (an internal transition erased, its two
    /// surrounding places merged). Only [`NetEditor::reduce_with`].
    pub series_places: usize,
    /// Series transition fusions (an internal follower folded into its
    /// sole feeder). Only [`NetEditor::reduce_with`].
    pub series_transitions: usize,
    /// Constant self-loop places dropped. Only
    /// [`NetEditor::reduce_with`].
    pub self_loop_places: usize,
}

impl ReductionStats {
    /// Total number of elements removed.
    pub fn total(&self) -> usize {
        self.duplicate_transitions
            + self.redundant_places
            + self.stranded_transitions
            + self.isolated_places
            + self.series_places
            + self.series_transitions
            + self.self_loop_places
    }
}

/// A mutable, indexed view of a [`PetriNet`] supporting in-place
/// contraction (Definition 4.10) and structural reduction.
///
/// Build one with [`NetEditor::from_net`], edit, then materialize the
/// result with [`NetEditor::finish`]. See the module docs for the
/// invariants (tombstoned arenas, persistent indexes, path-key order).
#[derive(Clone, Debug)]
pub struct NetEditor<L: Label> {
    places: Vec<Option<PlaceRec>>,
    transitions: Vec<Option<TransRec>>,
    /// The symbol space, snapshotted from the source net (append-only).
    interner: Interner<L>,
    alphabet: AlphaSet,
    /// symbol → live transitions carrying it (the hiding worklist),
    /// dense by symbol index.
    label_index: Vec<BTreeSet<u32>>,
    /// place → live transitions with the place in their preset.
    consumers: Vec<BTreeSet<u32>>,
    /// place → live transitions with the place in their postset.
    producers: Vec<BTreeSet<u32>>,
    /// Globally decreasing duplicate counter (see module docs).
    dup_counter: u32,
    live_places: usize,
    live_transitions: usize,
    contractions: usize,
    edits: usize,
}

impl<L: Label> NetEditor<L> {
    /// Builds an editor over a copy of `net`. Place and transition arena
    /// slots initially coincide with the net's ids, so original
    /// [`TransitionId`]s remain valid selectors until the first edit.
    pub fn from_net(net: &PetriNet<L>) -> Self {
        let m0 = net.initial_marking();
        let places: Vec<Option<PlaceRec>> = net
            .places()
            .map(|(id, p)| {
                Some(PlaceRec {
                    name: p.name().to_owned(),
                    tokens: m0.tokens(id),
                })
            })
            .collect();
        let mut consumers = vec![BTreeSet::new(); places.len()];
        let mut producers = vec![BTreeSet::new(); places.len()];
        let interner = net.interner().clone();
        let mut label_index: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); interner.len()];
        let mut transitions = Vec::with_capacity(net.transition_count());
        for (id, t) in net.transitions() {
            let i = id.index() as u32;
            for &p in t.preset() {
                consumers[p.index()].insert(i);
            }
            for &p in t.postset() {
                producers[p.index()].insert(i);
            }
            label_index[t.sym().index()].insert(i);
            transitions.push(Some(TransRec {
                preset: t.preset().iter().map(|p| p.index() as u32).collect(),
                sym: t.sym(),
                postset: t.postset().iter().map(|p| p.index() as u32).collect(),
                key: vec![i],
            }));
        }
        NetEditor {
            live_places: places.len(),
            live_transitions: transitions.len(),
            places,
            transitions,
            interner,
            alphabet: net.alphabet_syms().clone(),
            label_index,
            consumers,
            producers,
            dup_counter: u32::MAX,
            contractions: 0,
            edits: 0,
        }
    }

    /// Number of live (non-tombstoned) places.
    pub fn place_count(&self) -> usize {
        self.live_places
    }

    /// Number of live (non-tombstoned) transitions.
    pub fn transition_count(&self) -> usize {
        self.live_transitions
    }

    /// Contractions performed so far.
    pub fn contractions(&self) -> usize {
        self.contractions
    }

    /// Monotone edit counter: increments on every structural change
    /// (contraction, rule removal, transition removal). Snapshot it to
    /// detect whether a phase changed anything.
    pub fn edits(&self) -> usize {
        self.edits
    }

    // ------------------------------------------------------------------
    // Internal arena/index plumbing
    // ------------------------------------------------------------------

    fn add_place_rec(&mut self, name: String, tokens: u32) -> u32 {
        let id = self.places.len() as u32;
        self.places.push(Some(PlaceRec { name, tokens }));
        self.consumers.push(BTreeSet::new());
        self.producers.push(BTreeSet::new());
        self.live_places += 1;
        id
    }

    fn add_transition_rec(
        &mut self,
        preset: BTreeSet<u32>,
        sym: Sym,
        postset: BTreeSet<u32>,
        key: Vec<u32>,
    ) -> u32 {
        let id = self.transitions.len() as u32;
        for &p in &preset {
            self.consumers[p as usize].insert(id);
        }
        for &p in &postset {
            self.producers[p as usize].insert(id);
        }
        if self.label_index.len() <= sym.index() {
            self.label_index.resize(sym.index() + 1, BTreeSet::new());
        }
        self.label_index[sym.index()].insert(id);
        self.transitions.push(Some(TransRec {
            preset,
            sym,
            postset,
            key,
        }));
        self.live_transitions += 1;
        id
    }

    /// Unlinks a transition from every index and tombstones it,
    /// returning its record. `None` if the slot was already dead.
    fn detach(&mut self, t: usize) -> Option<TransRec> {
        let rec = self.transitions.get_mut(t)?.take()?;
        let tid = t as u32;
        for &p in &rec.preset {
            self.consumers[p as usize].remove(&tid);
        }
        for &p in &rec.postset {
            self.producers[p as usize].remove(&tid);
        }
        self.label_index[rec.sym.index()].remove(&tid);
        self.live_transitions -= 1;
        self.edits += 1;
        Some(rec)
    }

    fn tombstone_place(&mut self, p: usize) {
        if self.places[p].take().is_some() {
            self.live_places -= 1;
            self.edits += 1;
        }
        self.consumers[p].clear();
        self.producers[p].clear();
    }

    /// The live transition carrying `sym` that is first in legacy net
    /// order (minimal path key).
    fn first_with_sym(&self, sym: Sym) -> Option<usize> {
        let set = self.label_index.get(sym.index())?;
        let mut best: Option<(&[u32], u32)> = None;
        for &tid in set {
            let key = self.transitions[tid as usize].as_ref()?.key.as_slice();
            if best.is_none_or(|(bk, _)| key < bk) {
                best = Some((key, tid));
            }
        }
        best.map(|(_, tid)| tid as usize)
    }

    // ------------------------------------------------------------------
    // Contraction (Definition 4.10, in place)
    // ------------------------------------------------------------------

    /// Contracts transition `t` out of the net in place — the splice
    /// form of [`hide_transition`](crate::hide_transition): delete `t`,
    /// mint the product places `p × q`, rewrite the `p`-adjacent
    /// transitions onto the product rows, and append one virtual
    /// duplicate per successor.
    ///
    /// # Errors
    ///
    /// The same structural failures as
    /// [`hide_transition`](crate::hide_transition):
    /// [`PetriError::UnknownTransition`] for a dead or out-of-range
    /// slot, [`PetriError::HideSelfLoop`] for a self-loop (divergence),
    /// and [`PetriError::Precondition`] for an empty preset/postset or a
    /// transition consuming from both sides of `t`.
    pub fn contract(&mut self, t: usize) -> Result<(), PetriError> {
        let (p, q) = {
            let Some(rec) = self.transitions.get(t).and_then(|r| r.as_ref()) else {
                return Err(PetriError::UnknownTransition(t as u32));
            };
            if rec.preset.intersection(&rec.postset).next().is_some() {
                return Err(PetriError::HideSelfLoop(t as u32));
            }
            if rec.preset.is_empty() || rec.postset.is_empty() {
                return Err(PetriError::Precondition(
                    "contraction needs a non-empty preset and postset".to_owned(),
                ));
            }
            (rec.preset.clone(), rec.postset.clone())
        };

        // Both-sides precondition as an index intersection: a transition
        // consuming from p *and* q would need two tokens from one
        // product place — inexpressible with set-valued arcs.
        let mut p_consumers: BTreeSet<u32> = BTreeSet::new();
        for &x in &p {
            p_consumers.extend(self.consumers[x as usize].iter().copied());
        }
        p_consumers.remove(&(t as u32));
        for &y in &q {
            if let Some(&uid) = self.consumers[y as usize]
                .iter()
                .find(|&&u| u != t as u32 && p_consumers.contains(&u))
            {
                return Err(PetriError::Precondition(format!(
                    "transition t{uid} consumes from both the preset and the postset of the hidden transition"
                )));
            }
        }

        self.detach(t);

        // Successors (consumers of q) snapshot — rewriting below only
        // touches p-membership, so q-membership stays as captured.
        let successors: BTreeSet<u32> = q
            .iter()
            .flat_map(|&y| self.consumers[y as usize].iter().copied())
            .collect();

        // Mint the product places (p_i, q_j), marked with M0(p_i).
        let mut row: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut all_products: BTreeSet<u32> = BTreeSet::new();
        for &pi in &p {
            let (name_pi, tokens_pi) = match self.places[pi as usize].as_ref() {
                Some(rec) => (rec.name.clone(), rec.tokens),
                None => return Err(PetriError::UnknownPlace(pi)),
            };
            let mut r = Vec::with_capacity(q.len());
            for &qj in &q {
                let name_qj = match self.places[qj as usize].as_ref() {
                    Some(rec) => rec.name.clone(),
                    None => return Err(PetriError::UnknownPlace(qj)),
                };
                let id = self.add_place_rec(format!("({name_pi},{name_qj})"), tokens_pi);
                r.push(id);
                all_products.insert(id);
            }
            row.insert(pi, r);
        }

        // Rewrite every p-adjacent transition onto the product rows.
        for &pi in &p {
            let r = row[&pi].clone();
            for uid in std::mem::take(&mut self.consumers[pi as usize]) {
                if let Some(rec) = self.transitions[uid as usize].as_mut() {
                    rec.preset.remove(&pi);
                    rec.preset.extend(r.iter().copied());
                }
                for &np in &r {
                    self.consumers[np as usize].insert(uid);
                }
            }
            for uid in std::mem::take(&mut self.producers[pi as usize]) {
                if let Some(rec) = self.transitions[uid as usize].as_mut() {
                    rec.postset.remove(&pi);
                    rec.postset.extend(r.iter().copied());
                }
                for &np in &r {
                    self.producers[np as usize].insert(uid);
                }
            }
        }

        // One virtual duplicate per successor: consume the complete
        // pending firing of t plus the non-q preset, re-emit the q
        // places the successor does not consume itself.
        for &uid in &successors {
            let Some(rec) = self.transitions[uid as usize].as_ref() else {
                continue;
            };
            let mut vpre = all_products.clone();
            for &x in &rec.preset {
                if !q.contains(&x) {
                    vpre.insert(x);
                }
            }
            if vpre == rec.preset {
                // Degenerate duplicate identical to the real variant
                // (the pure marked-graph collapse case).
                continue;
            }
            let mut vpost = rec.postset.clone();
            for &qj in &q {
                if !rec.preset.contains(&qj) {
                    vpost.insert(qj);
                }
            }
            let sym = rec.sym;
            let mut key = rec.key.clone();
            key.push(self.dup_counter);
            self.dup_counter -= 1;
            self.add_transition_rec(vpre, sym, vpost, key);
        }

        for &pi in &p {
            self.tombstone_place(pi as usize);
        }
        self.contractions += 1;
        Ok(())
    }

    /// Drains the worklist for one label: repeatedly contracts the
    /// first (legacy-order) transition carrying `label`, charging one
    /// transition per contraction against `meter`.
    ///
    /// Worklist invariant: the label index *is* the worklist. A
    /// contraction that duplicates a transition carrying `label`
    /// re-enqueues the duplicate through the same index update that
    /// registers it, so no separate rescan is needed; path-key selection
    /// keeps the order identical to the legacy rescan.
    ///
    /// Returns `true` when the label is fully hidden (and undeclared),
    /// `false` when the meter ran out first (the label stays declared,
    /// matching the legacy partial result).
    ///
    /// # Errors
    ///
    /// Propagates [`NetEditor::contract`] failures.
    pub fn hide_label(&mut self, label: &L, meter: &mut Meter) -> Result<bool, PetriError> {
        let Some(sym) = self.interner.get(label) else {
            return Ok(true); // never interned — nothing to hide
        };
        self.hide_sym(sym, meter)
    }

    /// Symbol-space twin of [`hide_label`](Self::hide_label).
    ///
    /// # Errors
    ///
    /// Propagates [`NetEditor::contract`] failures.
    pub fn hide_sym(&mut self, sym: Sym, meter: &mut Meter) -> Result<bool, PetriError> {
        loop {
            let Some(t) = self.first_with_sym(sym) else {
                self.alphabet.remove(sym);
                return Ok(true);
            };
            if !meter.take_transition() {
                return Ok(false);
            }
            self.contract(t)?;
        }
    }

    /// Hides a set of labels under one shared meter (the engine behind
    /// [`hide_labels_bounded`](crate::hide_labels_bounded)). Returns
    /// `true` when every label was fully hidden.
    ///
    /// # Errors
    ///
    /// Propagates [`NetEditor::contract`] failures.
    pub fn hide_labels(
        &mut self,
        labels: &BTreeSet<L>,
        meter: &mut Meter,
    ) -> Result<bool, PetriError> {
        for l in labels {
            if !self.hide_label(l, meter)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Removes a batch of transitions by their **original** net ids.
    ///
    /// Valid only while original ids still coincide with arena slots —
    /// i.e. before any contraction (duplicates shift nothing, but
    /// contraction tombstones and appends). The fused synthesis pipeline
    /// calls this with the dead-transition set right after
    /// [`NetEditor::from_net`].
    pub fn remove_transitions(&mut self, remove: &BTreeSet<TransitionId>) {
        for &t in remove {
            self.detach(t.index());
        }
    }

    // ------------------------------------------------------------------
    // Structural reduction rules (each exactly trace-preserving)
    // ------------------------------------------------------------------

    /// Collapses duplicate transitions (same label, preset and postset)
    /// to the one earliest in legacy order. Returns the number removed.
    pub fn dedup_transitions(&mut self) -> usize {
        let mut order: Vec<(&[u32], usize)> = self
            .transitions
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (t.key.as_slice(), i)))
            .collect();
        order.sort_unstable_by(|a, b| a.0.cmp(b.0));
        let mut seen: BTreeSet<(Sym, Vec<u32>, Vec<u32>)> = BTreeSet::new();
        let mut kill: Vec<usize> = Vec::new();
        for (_, i) in order {
            if let Some(rec) = self.transitions[i].as_ref() {
                let sig = (
                    rec.sym,
                    rec.preset.iter().copied().collect(),
                    rec.postset.iter().copied().collect(),
                );
                if !seen.insert(sig) {
                    kill.push(i);
                }
            }
        }
        for t in &kill {
            self.detach(*t);
        }
        kill.len()
    }

    /// Removes places that duplicate another place's constraint: same
    /// producers, same consumers, same initial marking — their token
    /// counts stay in lockstep in every reachable marking, so all but
    /// the first are implied. Returns the number removed.
    pub fn remove_redundant_places(&mut self) -> usize {
        let mut seen: BTreeSet<(Vec<u32>, Vec<u32>, u32)> = BTreeSet::new();
        let mut removed = 0usize;
        for i in 0..self.places.len() {
            let Some(rec) = self.places[i].as_ref() else {
                continue;
            };
            if self.consumers[i].is_empty() && self.producers[i].is_empty() {
                continue; // disconnected; prune_stranded's concern
            }
            let sig = (
                self.producers[i].iter().copied().collect(),
                self.consumers[i].iter().copied().collect(),
                rec.tokens,
            );
            if seen.insert(sig) {
                continue;
            }
            // Duplicate of an earlier place: every adjacent transition
            // also carries the representative, so membership removal
            // never empties a set.
            let pid = i as u32;
            for uid in self.consumers[i].clone() {
                if let Some(t) = self.transitions[uid as usize].as_mut() {
                    t.preset.remove(&pid);
                }
            }
            for uid in self.producers[i].clone() {
                if let Some(t) = self.transitions[uid as usize].as_mut() {
                    t.postset.remove(&pid);
                }
            }
            self.tombstone_place(i);
            removed += 1;
        }
        removed
    }

    /// Prunes structurally dead transitions — any whose preset contains
    /// an unmarked place with no producers can never fire — to a
    /// fixpoint, then drops the unmarked places left with no adjacent
    /// transitions. Returns `(transitions_pruned, places_dropped)`.
    ///
    /// This is the rule that finishes the marked-graph collapse: after a
    /// series contraction the orphaned real variant consumes exactly
    /// such a stranded place.
    pub fn prune_stranded(&mut self) -> (usize, usize) {
        let mut stack: Vec<usize> = (0..self.places.len())
            .filter(|&i| {
                self.places[i]
                    .as_ref()
                    .is_some_and(|r| r.tokens == 0 && self.producers[i].is_empty())
            })
            .collect();
        let mut pruned = 0usize;
        while let Some(x) = stack.pop() {
            for uid in self.consumers[x].clone() {
                let Some(rec) = self.detach(uid as usize) else {
                    continue;
                };
                pruned += 1;
                for &y in &rec.postset {
                    let yi = y as usize;
                    if self.places[yi]
                        .as_ref()
                        .is_some_and(|r| r.tokens == 0 && self.producers[yi].is_empty())
                    {
                        stack.push(yi);
                    }
                }
            }
        }
        let mut dropped = 0usize;
        for i in 0..self.places.len() {
            let isolated = self.places[i].as_ref().is_some_and(|r| r.tokens == 0)
                && self.consumers[i].is_empty()
                && self.producers[i].is_empty();
            if isolated {
                self.tombstone_place(i);
                dropped += 1;
            }
        }
        (pruned, dropped)
    }

    /// Runs all three reduction rules to a joint fixpoint.
    pub fn reduce(&mut self) -> ReductionStats {
        let mut meter = Meter::new(&Budget::unlimited());
        self.reduce_metered(&mut meter)
    }

    /// [`reduce`](Self::reduce) under a meter: the fixpoint loop polls
    /// the meter's deadline/cancel state between rule passes and stops
    /// early (returning the statistics so far, on a net that is still
    /// well-formed — every individual pass is atomic) once the meter
    /// stops. The resource caps do not bound rule applications; only
    /// the interrupt axes (deadline, cancellation) apply here.
    pub fn reduce_metered(&mut self, meter: &mut Meter) -> ReductionStats {
        let mut stats = ReductionStats::default();
        loop {
            if meter.poll_interrupts() {
                return stats;
            }
            let d = self.dedup_transitions();
            let r = self.remove_redundant_places();
            let (s, iso) = self.prune_stranded();
            stats.duplicate_transitions += d;
            stats.redundant_places += r;
            stats.stranded_transitions += s;
            stats.isolated_places += iso;
            if d + r + s + iso == 0 {
                return stats;
            }
        }
    }

    // ------------------------------------------------------------------
    // Safe-net reduction rules (verdict-preserving, not trace-exact)
    // ------------------------------------------------------------------

    /// Drops places that are constant self-loop observers: marked with
    /// exactly one token and looped on by every adjacent transition
    /// (`p ∈ •t ⟺ p ∈ t•`, i.e. consumers = producers as sets). Such a
    /// place holds 1 in every reachable marking — it never blocks, never
    /// overfills, never changes — so removal preserves languages, safety,
    /// liveness and deadlocks verbatim. A place whose removal would
    /// leave some adjacent transition with no arcs at all is kept.
    /// Returns the number removed.
    pub fn eliminate_self_loop_places(&mut self) -> usize {
        let mut removed = 0usize;
        for i in 0..self.places.len() {
            let constant = self.places[i].as_ref().is_some_and(|rec| rec.tokens == 1)
                && !self.consumers[i].is_empty()
                && self.consumers[i] == self.producers[i];
            if !constant {
                continue;
            }
            let degenerates = self.consumers[i].iter().any(|&uid| {
                self.transitions[uid as usize]
                    .as_ref()
                    .is_some_and(|t| t.preset.len() == 1 && t.postset.len() == 1)
            });
            if degenerates {
                continue;
            }
            let pid = i as u32;
            for uid in self.consumers[i].clone() {
                if let Some(t) = self.transitions[uid as usize].as_mut() {
                    t.preset.remove(&pid);
                    t.postset.remove(&pid);
                }
            }
            self.tombstone_place(i);
            removed += 1;
        }
        removed
    }

    /// Whether transition `t` is a series-place-fusion pivot under the
    /// observable alphabet `keep`: internal, `•t = {p}`, `t• = {q}`,
    /// `p ≠ q`, `t` is `p`'s only consumer and `q`'s only producer, and
    /// `p` has at least one producer (the liveness-preservation gate —
    /// without it, erasing a once-only internal transition could turn an
    /// all-live verdict from false to true).
    fn fsp_candidate(&self, t: usize, keep: &AlphaSet) -> Option<(u32, u32)> {
        let rec = self.transitions.get(t)?.as_ref()?;
        if keep.contains(rec.sym) || rec.preset.len() != 1 || rec.postset.len() != 1 {
            return None;
        }
        let p = *rec.preset.iter().next()?;
        let q = *rec.postset.iter().next()?;
        let tid = t as u32;
        let sole = |s: &BTreeSet<u32>| s.len() == 1 && s.contains(&tid);
        if p != q
            && sole(&self.consumers[p as usize])
            && sole(&self.producers[q as usize])
            && !self.producers[p as usize].is_empty()
        {
            Some((p, q))
        } else {
            None
        }
    }

    /// **Series place fusion** (the FSP rule of safe-net reduction): an
    /// internal transition `t` that merely moves a token from `p` to `q`
    /// — sole consumer of `p`, sole producer of `q` — is erased and `q`
    /// merged into `p` (tokens summed, `q`'s consumers rewired onto
    /// `p`). `keep` is the observable alphabet; only transitions whose
    /// symbol is outside it are fused.
    ///
    /// Sound in both directions for safety, deadlock-freedom and the
    /// `keep`-projected language on *general* nets: reduced markings are
    /// original markings with `t` fired eagerly (`M'(pq) = M(p) + M(q)`),
    /// and whenever the merged place overfills the original can overfill
    /// `q` too, because `t` is enabled by `p` alone. Returns the number
    /// of fusions.
    pub fn fuse_series_places(&mut self, keep: &AlphaSet) -> usize {
        let mut fused = 0usize;
        for t in 0..self.transitions.len() {
            let Some((p, q)) = self.fsp_candidate(t, keep) else {
                continue;
            };
            self.detach(t);
            let Some(q_rec) = self.places[q as usize].as_ref() else {
                continue;
            };
            let (q_tokens, q_name) = (q_rec.tokens, q_rec.name.clone());
            // q's only producer was t, so only consumers need rewiring.
            for uid in std::mem::take(&mut self.consumers[q as usize]) {
                if let Some(rec) = self.transitions[uid as usize].as_mut() {
                    rec.preset.remove(&q);
                    rec.preset.insert(p);
                }
                self.consumers[p as usize].insert(uid);
            }
            if let Some(rec) = self.places[p as usize].as_mut() {
                rec.tokens += q_tokens;
                rec.name = format!("({}.{q_name})", rec.name);
            }
            self.tombstone_place(q as usize);
            fused += 1;
        }
        fused
    }

    /// Whether place `i` is a series-transition-fusion pivot: unmarked,
    /// fed by exactly one transition `t` and read by exactly one
    /// internal transition `u ≠ t` whose whole preset is `{i}`, with a
    /// non-empty postset disjoint from `t`'s (the overlap gate — a place
    /// fed by both `t` and `u` would receive two tokens along the
    /// original path but only one after fusion, and an empty `u`-postset
    /// would let an unsafe token pile on `i` vanish).
    fn fst_candidate(&self, i: usize, keep: &AlphaSet) -> Option<(u32, u32)> {
        let place = self.places.get(i)?.as_ref()?;
        if place.tokens != 0 || self.producers[i].len() != 1 || self.consumers[i].len() != 1 {
            return None;
        }
        let t = *self.producers[i].iter().next()?;
        let u = *self.consumers[i].iter().next()?;
        if t == u {
            return None;
        }
        let u_rec = self.transitions[u as usize].as_ref()?;
        if keep.contains(u_rec.sym) || u_rec.preset.len() != 1 || u_rec.postset.is_empty() {
            return None;
        }
        let t_rec = self.transitions[t as usize].as_ref()?;
        if u_rec.postset.iter().any(|x| t_rec.postset.contains(x)) {
            return None;
        }
        Some((t, u))
    }

    /// **Series transition fusion** (the FST rule): an internal follower
    /// `u` whose sole input is an unmarked place `i` fed only by `t` is
    /// folded into `t` — `t`'s postset swaps `i` for `u`'s postset, and
    /// both `i` and `u` disappear.
    ///
    /// Sound in both directions for safety, deadlock-freedom, liveness
    /// and the `keep`-projected language: reduced runs are original runs
    /// with `u` fired eagerly after each `t` (valid because `u`'s only
    /// enabling condition is the token `t` just produced, and firing it
    /// earlier can only add tokens elsewhere), and `u` is live exactly
    /// when `t` is. Returns the number of fusions.
    pub fn fuse_series_transitions(&mut self, keep: &AlphaSet) -> usize {
        let mut fused = 0usize;
        for i in 0..self.places.len() {
            let Some((t, u)) = self.fst_candidate(i, keep) else {
                continue;
            };
            let Some(u_rec) = self.detach(u as usize) else {
                continue;
            };
            let pid = i as u32;
            if let Some(rec) = self.transitions[t as usize].as_mut() {
                rec.postset.remove(&pid);
                rec.postset.extend(u_rec.postset.iter().copied());
            }
            self.producers[i].remove(&t);
            for &x in &u_rec.postset {
                self.producers[x as usize].insert(t);
            }
            self.tombstone_place(i);
            fused += 1;
        }
        fused
    }

    /// Runs the full safe-net reduction suite — the three trace-exact
    /// rules plus self-loop place elimination and both series fusions —
    /// to a joint fixpoint. `keep` is the observable alphabet:
    /// transitions whose symbol is *not* in `keep` are internal and
    /// eligible for series fusion.
    ///
    /// The result preserves, relative to the input net:
    ///
    /// * safety (1-boundedness) and deadlock-freedom verdicts, exactly;
    /// * the trace language projected onto `keep`;
    /// * receptiveness obligations, when `keep` covers the composition's
    ///   shared alphabet;
    /// * all-transitions-liveness, except that structurally dead
    ///   transitions (never live by definition) are pruned — so a
    ///   `false` verdict can turn `true` only when
    ///   [`ReductionStats::stranded_transitions`] is non-zero.
    ///
    /// Unlike [`NetEditor::reduce`] the result is **not** trace-exact on
    /// the full alphabet: internal transitions disappear.
    pub fn reduce_with(&mut self, keep: &AlphaSet) -> ReductionStats {
        let mut meter = Meter::new(&Budget::unlimited());
        self.reduce_with_metered(keep, &mut meter)
    }

    /// [`reduce_with`](Self::reduce_with) under a meter: polls the
    /// meter's deadline/cancel state between fixpoint passes and
    /// returns early (net still well-formed, stats partial) once it
    /// stops — see [`reduce_metered`](Self::reduce_metered).
    pub fn reduce_with_metered(&mut self, keep: &AlphaSet, meter: &mut Meter) -> ReductionStats {
        let mut stats = ReductionStats::default();
        loop {
            if meter.poll_interrupts() {
                return stats;
            }
            let d = self.dedup_transitions();
            let r = self.remove_redundant_places();
            let (s, iso) = self.prune_stranded();
            let sl = self.eliminate_self_loop_places();
            let fsp = self.fuse_series_places(keep);
            let fst = self.fuse_series_transitions(keep);
            stats.duplicate_transitions += d;
            stats.redundant_places += r;
            stats.stranded_transitions += s;
            stats.isolated_places += iso;
            stats.self_loop_places += sl;
            stats.series_places += fsp;
            stats.series_transitions += fst;
            if d + r + s + iso + sl + fsp + fst == 0 {
                return stats;
            }
        }
    }

    // ------------------------------------------------------------------
    // Materialization
    // ------------------------------------------------------------------

    /// Materializes the edited net: live places in arena (creation)
    /// order, live transitions in path-key (legacy) order, the
    /// maintained alphabet and marking. Bit-identical to what the
    /// equivalent chain of [`hide_transition`](crate::hide_transition)
    /// rebuilds would have produced.
    ///
    /// # Errors
    ///
    /// [`PetriError::UnknownPlace`] / [`PetriError::DegenerateTransition`]
    /// only if internal invariants were violated — never for nets built
    /// through the public editing operations.
    pub fn finish(&self) -> Result<PetriNet<L>, PetriError> {
        let mut net: PetriNet<L> = PetriNet::with_interner(self.interner.clone());
        let mut map: Vec<Option<PlaceId>> = vec![None; self.places.len()];
        for (i, rec) in self.places.iter().enumerate() {
            if let Some(rec) = rec {
                let id = net.add_place(rec.name.clone());
                net.set_initial(id, rec.tokens);
                map[i] = Some(id);
            }
        }
        let mut order: Vec<(&[u32], &TransRec)> = self
            .transitions
            .iter()
            .filter_map(|t| t.as_ref().map(|t| (t.key.as_slice(), t)))
            .collect();
        order.sort_unstable_by(|a, b| a.0.cmp(b.0));
        for (_, rec) in order {
            let mapped = |s: &BTreeSet<u32>| -> Result<Vec<PlaceId>, PetriError> {
                s.iter()
                    .map(|&x| map[x as usize].ok_or(PetriError::UnknownPlace(x)))
                    .collect()
            };
            net.add_transition_sym(mapped(&rec.preset)?, rec.sym, mapped(&rec.postset)?)?;
        }
        for s in self.alphabet.iter() {
            net.declare_sym(s);
        }
        Ok(net)
    }
}

/// Reduces `net` for verdict-level analysis: runs
/// [`NetEditor::reduce_with`] treating every label in `internal` as
/// unobservable, and returns the reduced net plus per-rule statistics.
///
/// The reduced net explores a state space no larger than the original's
/// while agreeing with it on safety, deadlock-freedom, the
/// `internal`-hidden language, and (modulo pruned dead transitions)
/// liveness — see [`NetEditor::reduce_with`] for the exact contract.
/// Labels in `internal` that the net never interned are ignored.
///
/// # Errors
///
/// Propagates [`NetEditor::finish`] failures (internal-invariant
/// violations only).
pub fn reduce_for_analysis<L: Label>(
    net: &PetriNet<L>,
    internal: &BTreeSet<L>,
) -> Result<(PetriNet<L>, ReductionStats), PetriError> {
    let mut keep = net.alphabet_syms().clone();
    for l in internal {
        if let Some(s) = net.interner().get(l) {
            keep.remove(s);
        }
    }
    let mut ed = NetEditor::from_net(net);
    let stats = ed.reduce_with(&keep);
    Ok((ed.finish()?, stats))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cpn_petri::Budget;

    fn chain() -> PetriNet<&'static str> {
        // p0 -a-> p1 -tau-> p2 -b-> p3
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let p3 = net.add_place("p3");
        net.add_transition([p0], "a", [p1]).unwrap();
        net.add_transition([p1], "tau", [p2]).unwrap();
        net.add_transition([p2], "b", [p3]).unwrap();
        net.set_initial(p0, 1);
        net
    }

    #[test]
    fn contract_matches_reference_single_step() {
        let net = chain();
        let reference = crate::hide_transition(&net, TransitionId::from_index(1)).unwrap();
        let mut ed = NetEditor::from_net(&net);
        ed.contract(1).unwrap();
        assert_eq!(ed.finish().unwrap(), reference);
    }

    #[test]
    fn editor_counts_track_edits() {
        let mut ed = NetEditor::from_net(&chain());
        assert_eq!((ed.place_count(), ed.transition_count()), (4, 3));
        assert_eq!(ed.edits(), 0);
        ed.contract(1).unwrap();
        assert_eq!(ed.contractions(), 1);
        assert!(ed.edits() > 0);
        // tau gone, product place minted, duplicate of b appended.
        assert_eq!(ed.transition_count(), 3);
        assert_eq!(ed.place_count(), 4);
    }

    #[test]
    fn contract_error_parity_with_reference() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let t = net.add_transition([p], "tau", [p, q]).unwrap();
        net.set_initial(p, 1);
        let mut ed = NetEditor::from_net(&net);
        assert!(matches!(
            ed.contract(t.index()),
            Err(PetriError::HideSelfLoop(_))
        ));
        assert!(matches!(
            ed.contract(99),
            Err(PetriError::UnknownTransition(99))
        ));
    }

    #[test]
    fn both_sides_consumer_rejected_via_index() {
        // u consumes from both the preset and postset of tau.
        let mut net: PetriNet<&str> = PetriNet::new();
        let a = net.add_place("a");
        let b = net.add_place("b");
        let c = net.add_place("c");
        let tau = net.add_transition([a], "tau", [b]).unwrap();
        net.add_transition([a, b], "u", [c]).unwrap();
        net.set_initial(a, 1);
        let mut ed = NetEditor::from_net(&net);
        assert!(matches!(
            ed.contract(tau.index()),
            Err(PetriError::Precondition(_))
        ));
        assert!(matches!(
            crate::hide_transition(&net, tau),
            Err(PetriError::Precondition(_))
        ));
    }

    #[test]
    fn reduce_completes_marked_graph_collapse() {
        // After contracting tau the orphaned real `b` and its stranded
        // place fuse away: a -> (p1,p2) -> b remains.
        let mut ed = NetEditor::from_net(&chain());
        ed.contract(1).unwrap();
        let stats = ed.reduce();
        assert_eq!(stats.stranded_transitions, 1);
        assert_eq!(ed.transition_count(), 2);
        let net = ed.finish().unwrap();
        assert_eq!(net.transition_count(), 2);
        assert_eq!(net.place_count(), 3);
    }

    #[test]
    fn dedup_collapses_identical_transitions() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([p], "b", [q]).unwrap();
        net.set_initial(p, 1);
        let mut ed = NetEditor::from_net(&net);
        assert_eq!(ed.dedup_transitions(), 1);
        assert_eq!(ed.transition_count(), 2);
    }

    #[test]
    fn redundant_places_lockstep_removed() {
        // r mirrors q exactly (same producer, consumer, marking).
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let r = net.add_place("r");
        net.add_transition([p], "a", [q, r]).unwrap();
        net.add_transition([q, r], "b", [p]).unwrap();
        net.set_initial(p, 1);
        let mut ed = NetEditor::from_net(&net);
        assert_eq!(ed.remove_redundant_places(), 1);
        let reduced = ed.finish().unwrap();
        assert_eq!(reduced.place_count(), 2);
        let l0 = cpn_trace::Language::from_net(&net, 4, 10_000).unwrap();
        let l1 = cpn_trace::Language::from_net(&reduced, 4, 10_000).unwrap();
        assert!(l0.eq_up_to(&l1, 4));
    }

    #[test]
    fn series_place_fusion_collapses_tau_hop() {
        // Cycle p0 -a-> p1 -tau-> p2 -b-> p0: tau merges p1 and p2.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        net.add_transition([p0], "a", [p1]).unwrap();
        net.add_transition([p1], "tau", [p2]).unwrap();
        net.add_transition([p2], "b", [p0]).unwrap();
        net.set_initial(p0, 1);
        let mut keep = AlphaSet::new();
        keep.insert(net.sym_of(&"a").unwrap());
        keep.insert(net.sym_of(&"b").unwrap());
        let mut ed = NetEditor::from_net(&net);
        assert_eq!(ed.fuse_series_places(&keep), 1);
        let reduced = ed.finish().unwrap();
        assert_eq!(reduced.place_count(), 2);
        assert_eq!(reduced.transition_count(), 2);
        // The observable language survives the fusion.
        let l0 = cpn_trace::Language::from_net(&net, 4, 10_000)
            .unwrap()
            .hide(&BTreeSet::from(["tau"]));
        let l1 = cpn_trace::Language::from_net(&reduced, 4, 10_000).unwrap();
        assert!(l0.eq_up_to(&l1, 3));
    }

    #[test]
    fn series_place_fusion_requires_a_producer() {
        // p1 has no producer: fusing away the once-only tau would erase
        // the only non-live transition. The chain must stay intact.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        net.add_transition([p1], "tau", [p2]).unwrap();
        net.set_initial(p1, 1);
        let keep = AlphaSet::new();
        let mut ed = NetEditor::from_net(&net);
        assert_eq!(ed.fuse_series_places(&keep), 0);
    }

    #[test]
    fn series_transition_fusion_folds_follower() {
        // a feeds p1 whose only reader is tau; tau folds into a.
        let mut ed = NetEditor::from_net(&chain());
        let mut keep = AlphaSet::new();
        let net = chain();
        keep.insert(net.sym_of(&"a").unwrap());
        keep.insert(net.sym_of(&"b").unwrap());
        assert_eq!(ed.fuse_series_transitions(&keep), 1);
        let reduced = ed.finish().unwrap();
        assert_eq!(reduced.transition_count(), 2);
        assert_eq!(reduced.place_count(), 3);
        let l0 = cpn_trace::Language::from_net(&net, 6, 10_000)
            .unwrap()
            .hide(&BTreeSet::from(["tau"]));
        let l1 = cpn_trace::Language::from_net(&reduced, 6, 10_000).unwrap();
        assert!(l0.eq_up_to(&l1, 2));
    }

    #[test]
    fn series_transition_fusion_rejects_postset_overlap() {
        // Both t and u feed q: fusing would halve q's token intake.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let q = net.add_place("q");
        net.add_transition([p0], "t", [p1, q]).unwrap();
        net.add_transition([p1], "tau", [q]).unwrap();
        net.set_initial(p0, 1);
        let mut keep = AlphaSet::new();
        keep.insert(net.sym_of(&"t").unwrap());
        let mut ed = NetEditor::from_net(&net);
        assert_eq!(ed.fuse_series_transitions(&keep), 0);
    }

    #[test]
    fn self_loop_place_dropped() {
        // `mutex` is a constant token looped on by both transitions.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let mx = net.add_place("mutex");
        net.add_transition([p0, mx], "a", [p1, mx]).unwrap();
        net.add_transition([p1, mx], "b", [p0, mx]).unwrap();
        net.set_initial(p0, 1);
        net.set_initial(mx, 1);
        let mut ed = NetEditor::from_net(&net);
        assert_eq!(ed.eliminate_self_loop_places(), 1);
        let reduced = ed.finish().unwrap();
        assert_eq!(reduced.place_count(), 2);
        let l0 = cpn_trace::Language::from_net(&net, 4, 10_000).unwrap();
        let l1 = cpn_trace::Language::from_net(&reduced, 4, 10_000).unwrap();
        assert!(l0.eq_up_to(&l1, 4));
    }

    #[test]
    fn self_loop_observer_keeps_its_place() {
        // Removing p would leave `obs` with no arcs at all.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        net.add_transition([p], "obs", [p]).unwrap();
        net.set_initial(p, 1);
        let mut ed = NetEditor::from_net(&net);
        assert_eq!(ed.eliminate_self_loop_places(), 0);
    }

    #[test]
    fn reduce_with_reaches_joint_fixpoint() {
        // tau1 and tau2 in series collapse completely: a -> merged -> b.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p: Vec<_> = (0..5).map(|i| net.add_place(format!("p{i}"))).collect();
        net.add_transition([p[0]], "a", [p[1]]).unwrap();
        net.add_transition([p[1]], "tau1", [p[2]]).unwrap();
        net.add_transition([p[2]], "tau2", [p[3]]).unwrap();
        net.add_transition([p[3]], "b", [p[4]]).unwrap();
        net.add_transition([p[4]], "c", [p[0]]).unwrap();
        net.set_initial(p[0], 1);
        let (reduced, stats) =
            reduce_for_analysis(&net, &BTreeSet::from(["tau1", "tau2"])).unwrap();
        assert_eq!(stats.series_places + stats.series_transitions, 2);
        assert_eq!(reduced.transition_count(), 3);
        assert_eq!(reduced.place_count(), 3);
        let l0 = cpn_trace::Language::from_net(&net, 8, 100_000)
            .unwrap()
            .hide(&BTreeSet::from(["tau1", "tau2"]));
        let l1 = cpn_trace::Language::from_net(&reduced, 8, 100_000).unwrap();
        assert!(l0.eq_up_to(&l1, 4));
    }

    #[test]
    fn hide_label_respects_meter() {
        let net = chain();
        let mut ed = NetEditor::from_net(&net);
        let mut meter = Meter::new(&Budget::new(usize::MAX, 0));
        assert!(!ed.hide_label(&"tau", &mut meter).unwrap());
        assert_eq!(ed.contractions(), 0);
        // Untouched: finishing returns the original net.
        assert_eq!(ed.finish().unwrap(), net);
    }
}
