//! Compositional synthesis (Section 5.2 of the paper).
//!
//! When a module's environment is known, the module may be *reduced
//! against it*: instead of synthesizing `M1`, synthesize
//! `hide(M1 ‖ M2, A2 \ A1)` — the composition restricted to `M1`'s own
//! alphabet. By Theorem 5.1 the result's traces are **contained** in
//! `L(M1)`, i.e. the reduced module has more implementation freedom. The
//! cross-product of synchronization transitions leaves many dead
//! duplicates, which are removed (polynomially for marked graphs).
//!
//! This module also provides empirical checkers for the closure
//! properties the paper states: safety is closed under all operators
//! (Prop 5.2), liveness under all but parallel composition (Prop 5.3),
//! and marked graphs under prefix, renaming and parallel composition
//! (Prop 5.4).

use crate::contract::NetEditor;
use crate::hide::project;
use crate::parallel::parallel;
use cpn_petri::{
    dead_transitions_rg, remove_dead, Bounded, Budget, Exhausted, Label, Meter, PetriError,
    PetriNet, ReachabilityOptions,
};
use std::collections::BTreeSet;
use std::fmt;

/// Outcome of [`reduce_against_environment`].
#[derive(Clone, Debug)]
pub struct Reduction<L: Label> {
    /// The reduced module: `hide(M ‖ env, A_env \ A_M)` with dead
    /// transitions removed.
    pub net: PetriNet<L>,
    /// Number of dead transitions eliminated after composition.
    pub dead_removed: usize,
    /// Size of the composed net before projection, for reporting.
    pub composed_transitions: usize,
}

/// Reduces `module` against a known environment (Section 5.2):
/// `hide(module ‖ env, A_env \ A_module)`, then dead-transition removal.
///
/// The composition step restricts the module's behaviour to what the
/// environment can actually drive (Theorem 5.1:
/// `project(L(M1‖M2), A1) ⊆ L(M1)`), so downstream synthesis sees fewer
/// cases. Dead-transition removal is performed **before** hiding: the
/// dead duplicates come from the synchronization cross-product, and
/// contracting them away first keeps the hiding step small.
///
/// # Errors
///
/// Propagates reachability budget errors and hiding errors (divergence).
///
/// # Example
///
/// ```
/// use cpn_core::reduce_against_environment;
/// use cpn_petri::{PetriNet, ReachabilityOptions};
///
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// // A module offering two services; an environment that declares both
/// // but only ever drives one.
/// let mut m: PetriNet<&str> = PetriNet::new();
/// let idle = m.add_place("idle");
/// let busy = m.add_place("busy");
/// m.add_transition([idle], "req1", [busy])?;
/// m.add_transition([busy], "done1", [idle])?;
/// m.add_transition([idle], "req2", [busy])?;
/// m.add_transition([busy], "done2", [idle])?;
/// m.set_initial(idle, 1);
///
/// let mut env: PetriNet<&str> = PetriNet::new();
/// let e = env.add_place("e");
/// let w = env.add_place("w");
/// env.add_transition([e], "req1", [w])?;
/// env.add_transition([w], "done1", [e])?;
/// env.declare_label("req2");   // known but never offered: blocks it
/// env.declare_label("done2");
/// env.set_initial(e, 1);
///
/// let red = reduce_against_environment(
///     &m, &env, &ReachabilityOptions::default(), 1_000,
/// )?;
/// assert!(red.net.transition_count() < m.transition_count());
/// # Ok(())
/// # }
/// ```
pub fn reduce_against_environment<L: Label>(
    module: &PetriNet<L>,
    env: &PetriNet<L>,
    options: &ReachabilityOptions,
    hide_budget: usize,
) -> Result<Reduction<L>, PetriError> {
    let composed = parallel(module, env)?;
    let composed_transitions = composed.transition_count();
    let rg = composed.reachability(options)?;
    let dead = dead_transitions_rg(&composed, &rg);
    let dead_removed = dead.len();
    let pruned = remove_dead(&composed, &dead);
    let keep: BTreeSet<L> = module.alphabet().clone();
    let net = project(&pruned, &keep, hide_budget)?;
    if net.same_structure(&pruned) {
        // Projection was a no-op (nothing to hide, or hiding only shrank
        // the alphabet): the reachability graph is unchanged, so the
        // second dead-removal pass cannot find anything new.
        return Ok(Reduction {
            net,
            dead_removed,
            composed_transitions,
        });
    }
    // Projection can strand further transitions; one more cleanup pass.
    let rg2 = net.reachability(options)?;
    let dead2 = dead_transitions_rg(&net, &rg2);
    let net = remove_dead(&net, &dead2);
    Ok(Reduction {
        net,
        dead_removed: dead_removed + dead2.len(),
        composed_transitions,
    })
}

/// Single-pass, engine-fused variant of [`reduce_against_environment`]:
/// dead-transition removal and projection run interleaved on one
/// [`NetEditor`], so the pipeline materializes exactly one intermediate
/// net (the composition) instead of one per stage, and the structural
/// reduction rules ([`NetEditor::reduce`]) run between labels to stop
/// product-place accretion. The compiled-kernel reachability pass is
/// reused from the composition; the second pass is skipped outright when
/// projection (plus reduction) changed nothing after pruning.
///
/// Semantically equivalent to the staged pipeline up to trace language —
/// the interleaved reduction rules can remove structurally dead or
/// duplicated elements the staged pipeline keeps, so the resulting net
/// may be *smaller*, never behaviorally different.
///
/// # Errors
///
/// Propagates reachability budget errors and hiding errors (divergence),
/// exactly as [`reduce_against_environment`] does; each hidden label
/// gets its own `hide_budget` of contractions.
pub fn reduce_against_environment_fused<L: Label>(
    module: &PetriNet<L>,
    env: &PetriNet<L>,
    options: &ReachabilityOptions,
    hide_budget: usize,
) -> Result<Reduction<L>, PetriError> {
    let composed = parallel(module, env)?;
    let composed_transitions = composed.transition_count();
    let rg = composed.reachability(options)?;
    let dead = dead_transitions_rg(&composed, &rg);
    let dead_removed = dead.len();

    let mut editor = NetEditor::from_net(&composed);
    // Original transition ids are still valid arena slots here (the
    // editor has performed no contraction yet).
    editor.remove_transitions(&dead);
    let edits_after_prune = editor.edits();

    let keep: BTreeSet<L> = module.alphabet().clone();
    let hidden: BTreeSet<L> = composed
        .alphabet()
        .iter()
        .filter(|l| !keep.contains(l))
        .cloned()
        .collect();
    let per_label = Budget::new(usize::MAX, hide_budget);
    for l in &hidden {
        let mut meter = Meter::new(&per_label);
        if !editor.hide_label(l, &mut meter)? {
            return Err(PetriError::Precondition(format!(
                "hiding of {l} did not converge within {hide_budget} contractions"
            )));
        }
        // Interleaved structural cleanup: keeps the worklist small for
        // the next label instead of letting product places accrete.
        editor.reduce();
    }

    let net = editor.finish()?;
    if editor.edits() == edits_after_prune {
        // Neither projection nor reduction touched the pruned net: its
        // reachability graph is the one already computed.
        return Ok(Reduction {
            net,
            dead_removed,
            composed_transitions,
        });
    }
    let rg2 = net.reachability(options)?;
    let dead2 = dead_transitions_rg(&net, &rg2);
    let net = remove_dead(&net, &dead2);
    Ok(Reduction {
        net,
        dead_removed: dead_removed + dead2.len(),
        composed_transitions,
    })
}

/// Budgeted variant of [`reduce_against_environment_fused`], degrading
/// gracefully instead of erroring when the budget runs out.
///
/// The full [`Budget`] lattice applies — state caps, wall-clock
/// deadlines, and cooperative cancellation — which is what a serving
/// path needs: an explosive composition comes back as a sound partial
/// artifact on time instead of a hard error. Degradation is
/// conservative in the safe direction:
///
/// * If the composition's reachability pass stops early, **no** dead
///   transitions are pruned (a transition is only removable when the
///   *whole* graph proves it dead); hiding and structural reduction
///   still run, so the result is a correct — just less minimized —
///   reduced module.
/// * If the budget interrupts between hidden labels, the remaining
///   labels stay visible. The returned net is a sound intermediate of
///   the pipeline (hiding is applied label-by-label), flagged
///   [`Bounded::Exhausted`].
/// * The post-hiding cleanup pass is skipped when the budget is
///   already spent; again this only costs minimality.
///
/// # Errors
///
/// Propagates composition errors and hiding divergence
/// ([`PetriError::HideSelfLoop`]) exactly as the unbounded variant;
/// running out of budget is **not** an error.
pub fn reduce_against_environment_fused_bounded<L: Label>(
    module: &PetriNet<L>,
    env: &PetriNet<L>,
    budget: &Budget,
    hide_budget: usize,
) -> Result<Bounded<Reduction<L>>, PetriError> {
    let composed = parallel(module, env)?;
    let composed_transitions = composed.transition_count();
    let built = composed.reachability_bounded(budget);
    let mut stop = built.exhausted().copied();
    let mut dead_removed = 0usize;

    let mut editor = NetEditor::from_net(&composed);
    if let Bounded::Complete(rg) = &built {
        let dead = dead_transitions_rg(&composed, rg);
        dead_removed = dead.len();
        editor.remove_transitions(&dead);
    }
    let edits_after_prune = editor.edits();

    let keep: BTreeSet<L> = module.alphabet().clone();
    let hidden: BTreeSet<L> = composed
        .alphabet()
        .iter()
        .filter(|l| !keep.contains(l))
        .cloned()
        .collect();
    let per_label = Budget::new(usize::MAX, hide_budget);
    for l in &hidden {
        if stop.is_none() {
            if let Some(resource) = budget.interrupted() {
                stop = Some(Exhausted {
                    resource,
                    states_explored: 0,
                    transitions_explored: 0,
                    budget: *budget,
                });
            }
        }
        if stop.is_some() {
            break;
        }
        let mut meter = Meter::new(&per_label);
        if !editor.hide_label(l, &mut meter)? {
            return Err(PetriError::Precondition(format!(
                "hiding of {l} did not converge within {hide_budget} contractions"
            )));
        }
        editor.reduce();
    }

    let net = editor.finish()?;
    let reduction = if stop.is_some() || editor.edits() == edits_after_prune {
        // Out of budget (skip the cleanup pass) or nothing changed
        // since pruning (the pass provably finds nothing).
        Reduction {
            net,
            dead_removed,
            composed_transitions,
        }
    } else {
        let built2 = net.reachability_bounded(budget);
        match built2 {
            Bounded::Complete(rg2) => {
                let dead2 = dead_transitions_rg(&net, &rg2);
                let net = remove_dead(&net, &dead2);
                Reduction {
                    net,
                    dead_removed: dead_removed + dead2.len(),
                    composed_transitions,
                }
            }
            Bounded::Exhausted { info, .. } => {
                stop = Some(info);
                Reduction {
                    net,
                    dead_removed,
                    composed_transitions,
                }
            }
        }
    };
    Ok(match stop {
        None => Bounded::Complete(reduction),
        Some(info) => Bounded::Exhausted {
            partial: reduction,
            info,
        },
    })
}

/// Empirical closure evidence for the paper's Propositions 5.2–5.4 on a
/// concrete pair of nets: applies parallel composition and reports which
/// properties were preserved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClosureReport {
    /// Both operands safe.
    pub operands_safe: bool,
    /// Both operands live.
    pub operands_live: bool,
    /// Both operands marked graphs.
    pub operands_marked_graph: bool,
    /// Composition safe (Prop 5.2 predicts: yes when operands are).
    pub composition_safe: bool,
    /// Composition live (Prop 5.3: *not* guaranteed).
    pub composition_live: bool,
    /// Composition a marked graph (Prop 5.4 predicts: yes when operands
    /// are).
    pub composition_marked_graph: bool,
}

impl fmt::Display for ClosureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "operands: safe={} live={} mg={} | composition: safe={} live={} mg={}",
            self.operands_safe,
            self.operands_live,
            self.operands_marked_graph,
            self.composition_safe,
            self.composition_live,
            self.composition_marked_graph
        )
    }
}

/// Builds a [`ClosureReport`] for `n1 ‖ n2`.
///
/// # Errors
///
/// Propagates reachability budget errors (all three nets are explored).
pub fn closure_report<L: Label>(
    n1: &PetriNet<L>,
    n2: &PetriNet<L>,
    options: &ReachabilityOptions,
) -> Result<ClosureReport, PetriError> {
    let a1 = n1.analysis(&n1.reachability(options)?);
    let a2 = n2.analysis(&n2.reachability(options)?);
    let composed = parallel(n1, n2)?;
    let ac = composed.analysis(&composed.reachability(options)?);
    Ok(ClosureReport {
        operands_safe: a1.safe && a2.safe,
        operands_live: a1.live && a2.live,
        operands_marked_graph: n1.structural().is_marked_graph && n2.structural().is_marked_graph,
        composition_safe: ac.safe,
        composition_live: ac.live,
        composition_marked_graph: composed.structural().is_marked_graph,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cpn_trace::Language;

    fn cycle(a: &'static str, b: &'static str) -> PetriNet<&'static str> {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], a, [q]).unwrap();
        net.add_transition([q], b, [p]).unwrap();
        net.set_initial(p, 1);
        net
    }

    /// A module offering two request kinds; an environment using only one.
    fn two_service_module() -> PetriNet<&'static str> {
        let mut net = PetriNet::new();
        let idle = net.add_place("idle");
        let w1 = net.add_place("w1");
        let w2 = net.add_place("w2");
        net.add_transition([idle], "req1", [w1]).unwrap();
        net.add_transition([w1], "done1", [idle]).unwrap();
        net.add_transition([idle], "req2", [w2]).unwrap();
        net.add_transition([w2], "done2", [idle]).unwrap();
        net.set_initial(idle, 1);
        net
    }

    fn env_using_only_req1() -> PetriNet<&'static str> {
        let mut net = PetriNet::new();
        let e0 = net.add_place("e0");
        let e1 = net.add_place("e1");
        net.add_transition([e0], "req1", [e1]).unwrap();
        net.add_transition([e1], "done1", [e0]).unwrap();
        net.set_initial(e0, 1);
        // The environment *knows* the second service but never drives it:
        // the labels are in its alphabet without transitions, so the
        // composition blocks them (Definition 4.7). Without the explicit
        // declaration req2/done2 would be private to the module and run
        // unconstrained — the reason the net tuple carries A explicitly.
        net.declare_label("req2");
        net.declare_label("done2");
        net
    }

    #[test]
    fn reduction_drops_unused_service() {
        let m = two_service_module();
        let env = env_using_only_req1();
        let red =
            reduce_against_environment(&m, &env, &ReachabilityOptions::default(), 1000).unwrap();
        // req2/done2 are never driven: they disappear entirely.
        let l = Language::from_net(&red.net, 4, 100_000).unwrap();
        assert!(l.contains(&["req1", "done1", "req1", "done1"]));
        assert!(!l
            .iter()
            .any(|t| t.contains(&"req2") || t.contains(&"done2")));
        assert!(red.net.transition_count() < m.transition_count());
    }

    #[test]
    fn theorem_5_1_trace_containment() {
        let m = two_service_module();
        let env = env_using_only_req1();
        let red =
            reduce_against_environment(&m, &env, &ReachabilityOptions::default(), 1000).unwrap();
        let reduced_lang = Language::from_net(&red.net, 5, 100_000).unwrap();
        let module_lang = Language::from_net(&m, 5, 100_000).unwrap();
        assert!(
            reduced_lang.subset_up_to(&module_lang, 5),
            "project(L(M‖E), A_M) ⊆ L(M)"
        );
    }

    #[test]
    fn closure_props_5_2_to_5_4_on_synchronized_cycles() {
        // Shared label b: composition synchronizes and stays a live safe
        // marked graph here.
        let n1 = cycle("a", "b");
        let n2 = cycle("b", "c");
        let rep = closure_report(&n1, &n2, &ReachabilityOptions::default()).unwrap();
        assert!(rep.operands_safe && rep.composition_safe, "Prop 5.2");
        assert!(
            rep.operands_marked_graph && rep.composition_marked_graph,
            "Prop 5.4"
        );
        assert!(rep.operands_live && rep.composition_live);
    }

    #[test]
    fn liveness_not_closed_under_composition() {
        // a.b-cycle vs b.a-cycle: both live, but mutual waiting deadlocks
        // the composition — the paper's caveat in Prop 5.3.
        let n1 = cycle("a", "b");
        let n2 = cycle("b", "a");
        let rep = closure_report(&n1, &n2, &ReachabilityOptions::default()).unwrap();
        assert!(rep.operands_live);
        assert!(!rep.composition_live, "{rep}");
        // Safety still holds (Prop 5.2).
        assert!(rep.composition_safe);
    }

    #[test]
    fn reduction_against_synchronized_environment_is_harmless() {
        // Environment synchronizes on `a` but allows everything the
        // module does: the reduction must not lose behaviour.
        let m = cycle("a", "b");
        let env = cycle("a", "x");
        let red =
            reduce_against_environment(&m, &env, &ReachabilityOptions::default(), 1000).unwrap();
        let lm = Language::from_net(&m, 4, 100_000).unwrap();
        let lr = Language::from_net(&red.net, 4, 100_000).unwrap();
        assert!(lr.eq_up_to(&lm, 4), "reduced {lr} vs module {lm}");
    }

    #[test]
    fn reduction_of_fully_independent_environment_diverges() {
        // An environment sharing no labels keeps cycling internally;
        // hiding its whole alphabet is a divergence, which the hiding
        // operator must reject rather than mask (Section 4.4).
        let m = cycle("a", "b");
        let env = cycle("x", "y");
        let err = reduce_against_environment(&m, &env, &ReachabilityOptions::default(), 1000)
            .unwrap_err();
        assert!(
            matches!(err, PetriError::HideSelfLoop(_)),
            "expected divergence, got {err}"
        );
    }
}
