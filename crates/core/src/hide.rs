//! Hiding as **generalized net contraction** (Definition 4.10,
//! Proposition 4.6, Theorem 4.7 and Figure 3 of the paper) — the novel
//! operator of the algebra.
//!
//! Classical approaches hide an action by relabeling its transitions to a
//! silent ε and paying for it during state-space analysis. Here the
//! transition is **removed from the net**, in analogy with the ε-closure
//! of automata:
//!
//! For a transition `t = (p, a, q)` to hide,
//!
//! 1. new places `p × q` replace the places of `p` (places of `q` stay);
//! 2. every successor of `t` (a transition consuming from `q`) is
//!    duplicated;
//! 3. the duplicates consume **all** the new places (a complete virtual
//!    firing of `t`);
//! 4. every other occurrence of a place `p' ∈ p` is replaced by its row
//!    `{p'} × q`;
//! 5. each duplicate re-emits the places of `q` it did not itself consume
//!    (the rest of the virtual firing materializes);
//! 6. `t` is deleted.
//!
//! A token in row `{p'} × q` means "a token in `p'` that may at any time
//! be read as a completed firing of `t`"; keeping the real `q` places
//! separate from the products preserves every choice and conflict of the
//! original net (the reason for the duplication — see the discussion under
//! Figure 3). The construction is trace-preserving
//! (`L(hide(N,a)) = hide(L(N),a)`, Theorem 4.7) and order-independent
//! (Proposition 4.6); both are property-tested against the `cpn-trace`
//! oracle.

use cpn_petri::{Bounded, Budget, Label, Meter, PetriError, PetriNet, PlaceId, TransitionId};
use std::collections::{BTreeMap, BTreeSet};

/// Contracts a single transition out of the net (Definition 4.10).
///
/// # Errors
///
/// * [`PetriError::UnknownTransition`] if `t` is out of range.
/// * [`PetriError::HideSelfLoop`] if `t` has a self-loop (hiding it would
///   create a divergence, which trace semantics cannot observe).
/// * [`PetriError::Precondition`] if `t` has an empty preset or postset —
///   the contraction needs both sides (the paper's nets are
///   strongly-connected, where this always holds).
///
/// # Example
///
/// ```
/// use cpn_core::hide_transition;
/// use cpn_petri::{PetriNet, TransitionId};
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// // a → τ → b; contracting τ leaves a → b over a merged place.
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p0 = net.add_place("p0");
/// let p1 = net.add_place("p1");
/// let p2 = net.add_place("p2");
/// let p3 = net.add_place("p3");
/// net.add_transition([p0], "a", [p1])?;
/// let tau = net.add_transition([p1], "tau", [p2])?;
/// net.add_transition([p2], "b", [p3])?;
/// net.set_initial(p0, 1);
/// let hidden = hide_transition(&net, tau)?;
/// assert_eq!(hidden.transition_count(), 3); // a, b, and b's duplicate
/// # Ok(())
/// # }
/// ```
pub fn hide_transition<L: Label>(
    net: &PetriNet<L>,
    t: TransitionId,
) -> Result<PetriNet<L>, PetriError> {
    if t.index() >= net.transition_count() {
        return Err(PetriError::UnknownTransition(t.index() as u32));
    }
    let tr = net.transition(t);
    if tr.has_self_loop() {
        return Err(PetriError::HideSelfLoop(t.index() as u32));
    }
    let p: BTreeSet<PlaceId> = tr.preset().clone();
    let q: BTreeSet<PlaceId> = tr.postset().clone();
    if p.is_empty() || q.is_empty() {
        return Err(PetriError::Precondition(
            "contraction needs a non-empty preset and postset".to_owned(),
        ));
    }
    // A transition consuming from both p and q would need its virtual
    // variant to take *two* tokens from a product place (one for the
    // pending firing of t, one for its own p-input) — inexpressible with
    // set-valued arcs. The paper's construction implicitly excludes this
    // shape (its nets never feed a transition from both sides of a hidden
    // transition); we reject it explicitly.
    for (uid, u) in net.transitions() {
        if uid != t
            && u.preset().intersection(&p).next().is_some()
            && u.preset().intersection(&q).next().is_some()
        {
            return Err(PetriError::Precondition(format!(
                "transition {uid} consumes from both the preset and the postset of the hidden transition"
            )));
        }
    }

    // The rebuild shares the source net's symbol space: transitions carry
    // their syms across, no label is re-interned.
    let mut out = PetriNet::with_interner(net.interner().clone());
    let m0 = net.initial_marking();

    // Kept places: everything except the preset p (the postset q stays).
    let mut keep: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
    for (old, place) in net.places() {
        if !p.contains(&old) {
            let new = out.add_place(place.name().to_owned());
            out.set_initial(new, m0.tokens(old));
            keep.insert(old, new);
        }
    }
    // Product places (p_i, q_j), marked with M0(p_i): a pending token in
    // p_i is visible in its entire row.
    let mut product: BTreeMap<(PlaceId, PlaceId), PlaceId> = BTreeMap::new();
    for &pi in &p {
        for &qj in &q {
            let id = out.add_place(format!(
                "({},{})",
                net.place(pi).name(),
                net.place(qj).name()
            ));
            out.set_initial(id, m0.tokens(pi));
            product.insert((pi, qj), id);
        }
    }
    for s in net.alphabet_syms().iter() {
        out.declare_sym(s);
    }

    // H_p: replace places of p by their product rows; keep the rest.
    let row = |pi: PlaceId| -> Vec<PlaceId> { q.iter().map(|&qj| product[&(pi, qj)]).collect() };
    let map_set = |s: &BTreeSet<PlaceId>| -> BTreeSet<PlaceId> {
        let mut r = BTreeSet::new();
        for &x in s {
            if p.contains(&x) {
                r.extend(row(x));
            } else {
                r.insert(keep[&x]);
            }
        }
        r
    };
    let all_products: BTreeSet<PlaceId> = product.values().copied().collect();

    for (uid, u) in net.transitions() {
        if uid == t {
            continue;
        }
        let pre = map_set(u.preset());
        let post = map_set(u.postset());
        let consumes_q = u.preset().intersection(&q).next().is_some();
        // Real-token variant: also covers untouched and p-adjacent
        // transitions (map_set is the identity on them).
        out.add_transition_sym(pre.clone(), u.sym(), post.clone())?;
        if consumes_q {
            // Virtual variant: consume the complete pending firing of t
            // plus the non-q part of the preset; re-emit the q places the
            // transition does not consume itself.
            let mut vpre: BTreeSet<PlaceId> = all_products.clone();
            for &x in u.preset() {
                if !q.contains(&x) {
                    if p.contains(&x) {
                        vpre.extend(row(x));
                    } else {
                        vpre.insert(keep[&x]);
                    }
                }
            }
            let mut vpost = post;
            for &qj in &q {
                if !u.preset().contains(&qj) {
                    vpost.insert(keep[&qj]);
                }
            }
            // Guard against degenerate duplicates identical to the real
            // variant (happens in the pure marked-graph collapse case).
            if vpre != pre {
                out.add_transition_sym(vpre, u.sym(), vpost)?;
            }
        }
    }

    Ok(out)
}

/// Hides an action label: contracts **every** transition carrying it
/// (including duplicates created along the way) and removes the label
/// from the alphabet.
///
/// Proposition 4.6: the result is independent of the contraction order —
/// property-tested up to trace equivalence.
///
/// `budget` bounds the number of contractions; chains of hidden
/// transitions feeding each other can grow the net before it shrinks, and
/// hidden *cycles* are divergences the operator must reject.
///
/// # Errors
///
/// * [`PetriError::HideSelfLoop`] if hiding runs into a divergence (a
///   hidden transition whose contraction leaves a silent self-loop).
/// * [`PetriError::Precondition`] if `budget` contractions were not
///   enough.
pub fn hide_label<L: Label>(
    net: &PetriNet<L>,
    label: &L,
    budget: usize,
) -> Result<PetriNet<L>, PetriError> {
    let bounded =
        hide_label_bounded(net, label, &Budget::new(usize::MAX, budget)).map_err(|e| match e {
            crate::CoreError::Net(e) => e,
            other => PetriError::Precondition(other.to_string()),
        })?;
    match bounded {
        Bounded::Complete(done) => Ok(done),
        Bounded::Exhausted { .. } => Err(PetriError::Precondition(format!(
            "hiding of {label} did not converge within {budget} contractions"
        ))),
    }
}

/// Hides a label under a [`Budget`], degrading gracefully: when the
/// budget's transition cap (contractions) runs out before the label is
/// fully contracted, the partially hidden net is returned in
/// [`Bounded::Exhausted`] instead of a hard error. In the partial net
/// the label is still declared and some of its transitions remain.
///
/// # Errors
///
/// Structural errors ([`PetriError::HideSelfLoop`] on divergence, the
/// contraction preconditions) are real failures and still surface, via
/// [`CoreError`](crate::CoreError).
pub fn hide_label_bounded<L: Label>(
    net: &PetriNet<L>,
    label: &L,
    budget: &Budget,
) -> Result<Bounded<PetriNet<L>>, crate::CoreError> {
    hide_labels_bounded(net, &BTreeSet::from([label.clone()]), budget)
}

/// Hides a set of labels (equivalent to successive [`hide_label`]
/// applications, each with its own `budget` of contractions), executed
/// on one [`NetEditor`](crate::NetEditor) so the intermediate nets are
/// never materialized.
///
/// # Errors
///
/// Propagates the errors of [`hide_label`].
pub fn hide_labels<L: Label>(
    net: &PetriNet<L>,
    labels: &BTreeSet<L>,
    budget: usize,
) -> Result<PetriNet<L>, PetriError> {
    let mut editor = crate::NetEditor::from_net(net);
    let per_label = Budget::new(usize::MAX, budget);
    for l in labels {
        let mut meter = Meter::new(&per_label);
        if !editor.hide_label(l, &mut meter)? {
            return Err(PetriError::Precondition(format!(
                "hiding of {l} did not converge within {budget} contractions"
            )));
        }
    }
    editor.finish()
}

/// Hides a set of labels under one shared [`Budget`]: the transition cap
/// bounds the *total* number of contractions across all labels. On
/// exhaustion the partially contracted net is returned in
/// [`Bounded::Exhausted`] with statistics on how far hiding got.
///
/// Runs on the [`NetEditor`](crate::NetEditor) contraction engine: the
/// label→transitions index doubles as the worklist, so a contraction
/// that *duplicates* a transition carrying a hidden label (a successor
/// of the contracted transition can carry the label itself) re-enqueues
/// the duplicate through the same index update that registers it — no
/// per-round rescan is needed, and path-key selection keeps the
/// contraction order (hence the result, including any
/// [`Bounded::Exhausted`] prefix) bit-identical to the reference
/// [`hide_labels_bounded_legacy`] rescan loop.
///
/// # Errors
///
/// Structural contraction errors surface as
/// [`CoreError`](crate::CoreError); running out of budget does not.
pub fn hide_labels_bounded<L: Label>(
    net: &PetriNet<L>,
    labels: &BTreeSet<L>,
    budget: &Budget,
) -> Result<Bounded<PetriNet<L>>, crate::CoreError> {
    let mut meter = Meter::new(budget);
    let mut editor = crate::NetEditor::from_net(net);
    for l in labels {
        if !editor.hide_label(l, &mut meter)? {
            // Exhausted mid-label: the label stays declared and its
            // remaining transitions survive into the partial net.
            return Ok(meter.finish(editor.finish()?));
        }
    }
    Ok(meter.finish(editor.finish()?))
}

/// The pre-engine reference implementation of [`hide_labels_bounded`]:
/// one [`hide_transition`] rebuild per contraction, re-scanning
/// `transitions_with_label` from the first match every round (the
/// rebuild renumbers transitions, so a resume cursor would skip
/// late-inserted duplicates — the engine instead maintains the worklist
/// as an index).
///
/// Kept as the differential oracle for the `contract_equivalence`
/// property suite and the `hide_contract` benchmark baseline; use
/// [`hide_labels_bounded`] everywhere else.
///
/// # Errors
///
/// Structural contraction errors surface as
/// [`CoreError`](crate::CoreError); running out of budget does not.
pub fn hide_labels_bounded_legacy<L: Label>(
    net: &PetriNet<L>,
    labels: &BTreeSet<L>,
    budget: &Budget,
) -> Result<Bounded<PetriNet<L>>, crate::CoreError> {
    let mut meter = Meter::new(budget);
    let mut current = net.clone();
    for l in labels {
        loop {
            let Some(t) = current.transitions_with_label(l).next() else {
                current.undeclare_label(l);
                break;
            };
            if !meter.take_transition() {
                return Ok(meter.finish(current));
            }
            current = hide_transition(&current, t)?;
        }
    }
    Ok(meter.finish(current))
}

/// Projection onto a label set: hides everything **not** in `keep`
/// (Section 4.4: hiding is the opposite of projection). This is the
/// `project(N_send ‖ N_tr, A_tr)` operation of the paper's Section 6
/// design example.
///
/// # Errors
///
/// Propagates the errors of [`hide_label`].
pub fn project<L: Label>(
    net: &PetriNet<L>,
    keep: &BTreeSet<L>,
    budget: usize,
) -> Result<PetriNet<L>, PetriError> {
    let hidden: BTreeSet<L> = net
        .alphabet()
        .into_iter()
        .filter(|l| !keep.contains(l))
        .collect();
    hide_labels(net, &hidden, budget)
}

/// Budgeted projection: hides everything not in `keep` under one shared
/// [`Budget`], returning a partial result on exhaustion.
///
/// # Errors
///
/// Propagates the structural errors of [`hide_labels_bounded`].
pub fn project_bounded<L: Label>(
    net: &PetriNet<L>,
    keep: &BTreeSet<L>,
    budget: &Budget,
) -> Result<Bounded<PetriNet<L>>, crate::CoreError> {
    let hidden: BTreeSet<L> = net
        .alphabet()
        .into_iter()
        .filter(|l| !keep.contains(l))
        .collect();
    hide_labels_bounded(net, &hidden, budget)
}

/// The `hide'` refinement of Section 5.3: instead of contracting, the
/// hidden transitions are **relabeled** to the designated silent label
/// (ε at the STG level). One dummy transition remains per hidden
/// transition, preserving the information whether a synchronization is
/// reached through internal steps — which the receptiveness check needs.
pub fn hide_relabel<L: Label>(net: &PetriNet<L>, labels: &BTreeSet<L>, silent: L) -> PetriNet<L> {
    let mut out = net.map_labels(|l| {
        if labels.contains(l) {
            silent.clone()
        } else {
            l.clone()
        }
    });
    for l in labels {
        out.undeclare_label(l);
    }
    out.declare_label(silent);
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cpn_trace::Language;

    fn lang(net: &PetriNet<&'static str>, d: usize) -> Language<&'static str> {
        Language::from_net(net, d, 1_000_000).unwrap()
    }

    /// Oracle comparison: L(hide(N, a)) = hide(L(N), a) up to `depth`.
    /// The source language is extracted deeper because hiding shortens
    /// traces.
    fn check_theorem_4_7(net: &PetriNet<&'static str>, label: &'static str, depth: usize) {
        let hidden_net = hide_label(net, &label, 10_000).unwrap();
        let lhs = Language::from_net(&hidden_net, depth, 1_000_000).unwrap();
        let slack = depth * 3 + 2;
        let rhs = Language::from_net(net, slack, 1_000_000)
            .unwrap()
            .hide(&BTreeSet::from([label]));
        assert!(
            lhs.eq_up_to(&rhs.truncate(depth), depth),
            "Theorem 4.7 failed for {label} on\n{net}\nlhs {lhs}\nrhs {rhs}"
        );
    }

    #[test]
    fn chain_collapse_marked_graph_special_case() {
        // p0 -a-> p1 -tau-> p2 -b-> p3: the simple collapse of Fig 3(c).
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let p3 = net.add_place("p3");
        net.add_transition([p0], "a", [p1]).unwrap();
        net.add_transition([p1], "tau", [p2]).unwrap();
        net.add_transition([p2], "b", [p3]).unwrap();
        net.set_initial(p0, 1);
        check_theorem_4_7(&net, "tau", 3);
    }

    #[test]
    fn hiding_in_cycle() {
        // (a.tau.b)* — hiding tau leaves (a.b)*.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        net.add_transition([p0], "a", [p1]).unwrap();
        net.add_transition([p1], "tau", [p2]).unwrap();
        net.add_transition([p2], "b", [p0]).unwrap();
        net.set_initial(p0, 1);
        check_theorem_4_7(&net, "tau", 4);
    }

    #[test]
    fn hiding_a_fork() {
        // tau forks into two concurrent places.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let qa = net.add_place("qa");
        let qb = net.add_place("qb");
        let e = net.add_place("e");
        net.add_transition([p0], "tau", [qa, qb]).unwrap();
        net.add_transition([qa], "a", [e]).unwrap();
        net.add_transition([qb], "b", [e]).unwrap();
        net.set_initial(p0, 1);
        check_theorem_4_7(&net, "tau", 3);
    }

    #[test]
    fn hiding_a_join() {
        // tau joins two concurrent places.
        let mut net: PetriNet<&str> = PetriNet::new();
        let pa = net.add_place("pa");
        let pb = net.add_place("pb");
        let q0 = net.add_place("q0");
        let e = net.add_place("e");
        net.add_transition([pa, pb], "tau", [q0]).unwrap();
        net.add_transition([q0], "c", [e]).unwrap();
        net.set_initial(pa, 1);
        net.set_initial(pb, 1);
        check_theorem_4_7(&net, "tau", 2);
    }

    #[test]
    fn hiding_with_conflict_on_preset() {
        // p0 is contested: tau and the observable x both consume it.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let q0 = net.add_place("q0");
        let r = net.add_place("r");
        net.add_transition([p0], "tau", [q0]).unwrap();
        net.add_transition([p0], "x", [r]).unwrap();
        net.add_transition([q0], "a", [p0]).unwrap();
        net.set_initial(p0, 1);
        check_theorem_4_7(&net, "tau", 4);
    }

    #[test]
    fn hiding_with_real_and_virtual_q_tokens() {
        // q0 is marked initially AND reachable through tau: the consumer
        // must work for both, and the p-conflicting transition must not
        // steal the real q token (the case that breaks naive merging).
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let q0 = net.add_place("q0");
        let s = net.add_place("s");
        let r = net.add_place("r");
        net.add_transition([p0], "tau", [q0]).unwrap();
        net.add_transition([q0], "u", [s]).unwrap();
        net.add_transition([p0], "v", [r]).unwrap();
        net.set_initial(q0, 1);
        // p0 is empty: v must be disabled even though q0 is marked.
        let hidden = hide_label(&net, &"tau", 100).unwrap();
        let l = lang(&hidden, 2);
        assert!(l.contains(&["u"]));
        assert!(!l.contains(&["v"]), "v stole the real q token:\n{hidden}");
        check_theorem_4_7(&net, "tau", 3);
    }

    #[test]
    fn hiding_multi_output_with_choice_on_q() {
        // tau: p -> {q1, q2}; consumers on q1 and q2 plus a p-conflict.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let q1 = net.add_place("q1");
        let q2 = net.add_place("q2");
        let s1 = net.add_place("s1");
        let s2 = net.add_place("s2");
        let r = net.add_place("r");
        net.add_transition([p0], "tau", [q1, q2]).unwrap();
        net.add_transition([q1], "a", [s1]).unwrap();
        net.add_transition([q2], "b", [s2]).unwrap();
        net.add_transition([p0], "x", [r]).unwrap();
        net.set_initial(p0, 1);
        check_theorem_4_7(&net, "tau", 3);
    }

    #[test]
    fn hiding_two_transitions_same_label() {
        // Two tau transitions in sequence-ish arrangement.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let p3 = net.add_place("p3");
        net.add_transition([p0], "tau", [p1]).unwrap();
        net.add_transition([p1], "a", [p2]).unwrap();
        net.add_transition([p2], "tau", [p3]).unwrap();
        net.add_transition([p3], "b", [p0]).unwrap();
        net.set_initial(p0, 1);
        check_theorem_4_7(&net, "tau", 4);
    }

    #[test]
    fn order_independence_prop_4_6() {
        // Hide both tau transitions in either order: same trace set.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        net.add_transition([p0], "tau", [p1]).unwrap();
        net.add_transition([p1], "tau", [p2]).unwrap();
        net.add_transition([p2], "a", [p0]).unwrap();
        net.set_initial(p0, 1);
        // Contract a *different* transition first in each run, then let
        // hide_label finish the job (contraction can spawn duplicates of
        // the hidden label, so the full closure is what Prop 4.6 is
        // about).
        let t0 = cpn_petri::TransitionId::from_index(0);
        let via0 = hide_transition(&net, t0).unwrap();
        let done0 = hide_label(&via0, &"tau", 1000).unwrap();

        let t1 = cpn_petri::TransitionId::from_index(1);
        let via1 = hide_transition(&net, t1).unwrap();
        let done1 = hide_label(&via1, &"tau", 1000).unwrap();

        let l0 = lang(&done0, 4);
        let l1 = lang(&done1, 4);
        assert!(l0.eq_up_to(&l1, 4), "Proposition 4.6");
    }

    #[test]
    fn self_loop_rejected_as_divergence() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let t = net.add_transition([p], "tau", [p, q]).unwrap();
        net.set_initial(p, 1);
        assert!(matches!(
            hide_transition(&net, t),
            Err(PetriError::HideSelfLoop(_))
        ));
    }

    #[test]
    fn hidden_cycle_is_a_divergence() {
        // tau: p→q, tau: q→p — hiding the label must fail, not loop.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "tau", [q]).unwrap();
        net.add_transition([q], "tau", [p]).unwrap();
        net.set_initial(p, 1);
        let err = hide_label(&net, &"tau", 100).unwrap_err();
        assert!(
            matches!(
                err,
                PetriError::HideSelfLoop(_) | PetriError::Precondition(_)
            ),
            "unexpected: {err}"
        );
    }

    #[test]
    fn project_keeps_only_requested_labels() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        net.add_transition([p0], "a", [p1]).unwrap();
        net.add_transition([p1], "internal", [p2]).unwrap();
        net.add_transition([p2], "b", [p0]).unwrap();
        net.set_initial(p0, 1);
        let projected = project(&net, &BTreeSet::from(["a", "b"]), 1000).unwrap();
        assert_eq!(
            projected.alphabet(),
            BTreeSet::from(["a", "b"]),
            "alphabet reduced"
        );
        let l = lang(&projected, 4);
        assert!(l.contains(&["a", "b", "a", "b"]));
    }

    #[test]
    fn hide_relabel_keeps_structure() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        net.add_transition([p0], "a", [p1]).unwrap();
        net.add_transition([p1], "b", [p0]).unwrap();
        net.set_initial(p0, 1);
        let relabeled = hide_relabel(&net, &BTreeSet::from(["a"]), "ε");
        assert_eq!(relabeled.transition_count(), 2);
        assert!(relabeled.alphabet().contains(&"ε"));
        assert!(!relabeled.alphabet().contains(&"a"));
        let l = lang(&relabeled, 2);
        assert!(l.contains(&["ε", "b"]));
    }

    #[test]
    fn hide_missing_label_is_identity_plus_alphabet() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        net.add_transition([p], "a", [p]).unwrap();
        net.set_initial(p, 1);
        net.declare_label("ghost");
        let hidden = hide_label(&net, &"ghost", 10).unwrap();
        assert_eq!(hidden.transition_count(), 1);
        assert!(!hidden.alphabet().contains(&"ghost"));
    }
}
