//! Non-deterministic choice via root-unwinding
//! (Definitions 4.5/4.6 and Figure 1 of the paper).
//!
//! Root-unwinding duplicates the entry into a net so that a *loop back to
//! the initial places* cannot re-offer the choice: once the first
//! transition of one branch has fired, the other branch's initial copies
//! are gone forever, even though the original initial places may be
//! re-marked by a cycle. The choice operator then glues two root-unwound
//! nets on the product of their initial-place copies.

use cpn_petri::{Label, PetriError, PetriNet, PlaceId, Sym};
use std::collections::{BTreeMap, BTreeSet};

/// The result of [`root_unwinding`]: the unwound net plus the copies `P0`
/// of the initial places (the bijection `η` is `copies[i] ↦ originals[i]`).
#[derive(Clone, Debug)]
pub struct RootUnwinding<L: Label> {
    /// The unwound net.
    pub net: PetriNet<L>,
    /// The original initial places, in correspondence with `copies`.
    pub originals: Vec<PlaceId>,
    /// The fresh copies `P0`, initially marked instead of the originals.
    pub copies: Vec<PlaceId>,
}

/// Root-unwinding of a net with a safe initial marking (Definition 4.5).
///
/// Fresh places `P0` mirror the initially marked places; transitions
/// consuming from initial places are duplicated with their initial-preset
/// part redirected to the copies; the initial marking moves to `P0`.
///
/// The definition duplicates transitions whose preset lies entirely within
/// the initial places; we generalize to *partially* initial presets by
/// redirecting only the initial part (on the paper's class of inputs the
/// two coincide, because a transition with a partially-marked preset
/// cannot be an entry transition of a safe root).
///
/// # Errors
///
/// Returns [`PetriError::UnsafeInitialMarking`] if some place holds more
/// than one initial token.
///
/// # Example
///
/// ```
/// use cpn_core::root_unwinding;
/// use cpn_petri::PetriNet;
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// net.add_transition([p], "a", [p])?; // loop to the root
/// net.set_initial(p, 1);
/// let rw = root_unwinding(&net)?;
/// assert_eq!(rw.net.place_count(), 2);
/// assert_eq!(rw.net.transition_count(), 2); // original + entry copy
/// # Ok(())
/// # }
/// ```
pub fn root_unwinding<L: Label>(net: &PetriNet<L>) -> Result<RootUnwinding<L>, PetriError> {
    if let Some((p, _)) = net.initial_marking().marked_places().find(|&(_, n)| n > 1) {
        return Err(PetriError::UnsafeInitialMarking(p.index() as u32));
    }

    let mut out = PetriNet::with_interner(net.interner().clone());
    let mut map: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
    for (old, place) in net.places() {
        map.insert(old, out.add_place(place.name().to_owned()));
    }
    for sym in net.alphabet_syms().iter() {
        out.declare_sym(sym);
    }
    for (_, t) in net.transitions() {
        out.add_transition_sym(
            t.preset().iter().map(|p| map[p]),
            t.sym(),
            t.postset().iter().map(|p| map[p]),
        )?;
    }

    let init: Vec<PlaceId> = net.initial_places().into_iter().collect();
    let mut originals = Vec::with_capacity(init.len());
    let mut copies = Vec::with_capacity(init.len());
    let mut copy_of: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
    for &old in &init {
        let new_orig = map[&old];
        let copy = out.add_place(format!("{}′", net.place(old).name()));
        out.set_initial(copy, 1);
        copy_of.insert(new_orig, copy);
        originals.push(new_orig);
        copies.push(copy);
    }

    // Duplicate transitions touching initial places in their preset. The
    // printed Definition 4.5 redirects presets that lie entirely within
    // the initial places; with a *distributed* root (several initially
    // marked places) tokens migrate from the copies to the body one entry
    // at a time, so a faithful unwinding needs every mixed variant: one
    // duplicate per non-empty subset of the initial preset part, with
    // exactly that subset redirected to the copies. Presets are small
    // sets, so the subset enumeration is cheap; on single-rooted nets it
    // degenerates to the paper's construction.
    let snapshot: Vec<(BTreeSet<PlaceId>, Sym, BTreeSet<PlaceId>)> = out
        .transitions()
        .map(|(_, t)| (t.preset().clone(), t.sym(), t.postset().clone()))
        .collect();
    for (pre, sym, post) in snapshot {
        let init_part: Vec<PlaceId> = pre
            .iter()
            .copied()
            .filter(|p| copy_of.contains_key(p))
            .collect();
        if init_part.is_empty() {
            continue;
        }
        for mask in 1u32..(1 << init_part.len()) {
            let redirect: BTreeSet<PlaceId> = init_part
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &p)| p)
                .collect();
            let new_pre: Vec<PlaceId> = pre
                .iter()
                .map(|p| if redirect.contains(p) { copy_of[p] } else { *p })
                .collect();
            out.add_transition_sym(new_pre, sym, post.iter().copied())?;
        }
    }

    Ok(RootUnwinding {
        net: out,
        originals,
        copies,
    })
}

/// Non-deterministic choice `N1 + N2` (Definition 4.6).
///
/// Both nets are root-unwound; the copies `P0_1 × P0_2` are fused into
/// product places so that firing any entry transition of one net consumes
/// a full row (resp. column) and thereby disables every entry of the
/// other net — the choice is committed by the first transition and cannot
/// be re-offered by loops (Figure 1).
///
/// Satisfies `L(N1 + N2) = L(N1) ∪ L(N2)` (Proposition 4.4). The combined
/// alphabet is `A1 ∪ A2`.
///
/// # Errors
///
/// Returns [`PetriError::UnsafeInitialMarking`] if either initial marking
/// is unsafe (Definition 4.6 requires safe roots; see the paper's remark
/// for the general construction, which [`crate::prefix_general`]'s
/// sentinel technique would support).
///
/// # Example
///
/// ```
/// use cpn_core::{choice, nil, prefix};
/// use cpn_trace::Language;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = prefix("a", &nil::<&str>())?;
/// let b = prefix("b", &nil::<&str>())?;
/// let either = choice(&a, &b)?;
/// let lang = Language::from_net(&either, 2, 1000)?;
/// assert!(lang.contains(&["a"][..]));
/// assert!(lang.contains(&["b"][..]));
/// assert!(!lang.contains(&["a", "b"][..]));
/// # Ok(())
/// # }
/// ```
pub fn choice<L: Label>(n1: &PetriNet<L>, n2: &PetriNet<L>) -> Result<PetriNet<L>, PetriError> {
    let mut rw1 = root_unwinding(n1)?;
    let mut rw2 = root_unwinding(n2)?;
    // A net with an empty initial marking has no entry transitions and
    // contributes only ε; give it a virtual root so the product below is
    // non-degenerate and the other branch's entries stay guarded.
    for rw in [&mut rw1, &mut rw2] {
        if rw.copies.is_empty() {
            let v = rw.net.add_place("root′");
            rw.net.set_initial(v, 1);
            rw.copies.push(v);
        }
    }

    // Symbol space: the left unwinding's interner, right labels merged in.
    let mut out = PetriNet::with_interner(rw1.net.interner().clone());
    let remap2: Vec<Sym> = rw2
        .net
        .interner()
        .iter()
        .map(|(_, l)| out.intern_label(l))
        .collect();
    // Copy the non-root places of both unwound nets.
    let mut map1: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
    let mut map2: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
    let copies1: BTreeSet<PlaceId> = rw1.copies.iter().copied().collect();
    let copies2: BTreeSet<PlaceId> = rw2.copies.iter().copied().collect();
    for (old, place) in rw1.net.places() {
        if !copies1.contains(&old) {
            map1.insert(old, out.add_place(format!("L.{}", place.name())));
        }
    }
    for (old, place) in rw2.net.places() {
        if !copies2.contains(&old) {
            map2.insert(old, out.add_place(format!("R.{}", place.name())));
        }
    }
    for sym in rw1.net.alphabet_syms().iter() {
        out.declare_sym(sym);
    }
    for sym in rw2.net.alphabet_syms().iter() {
        out.declare_sym(remap2[sym.index()]);
    }

    // Product places (x, y) for x ∈ P0_1, y ∈ P0_2, all marked.
    let mut product: BTreeMap<(PlaceId, PlaceId), PlaceId> = BTreeMap::new();
    for &x in &rw1.copies {
        for &y in &rw2.copies {
            let id = out.add_place(format!(
                "({},{})",
                rw1.net.place(x).name(),
                rw2.net.place(y).name()
            ));
            out.set_initial(id, 1);
            product.insert((x, y), id);
        }
    }

    // Transitions of N1': entry transitions consume full rows.
    for (_, t) in rw1.net.transitions() {
        let mut pre: BTreeSet<PlaceId> = BTreeSet::new();
        for p in t.preset() {
            if copies1.contains(p) {
                for &y in &rw2.copies {
                    pre.insert(product[&(*p, y)]);
                }
            } else {
                pre.insert(map1[p]);
            }
        }
        let post: Vec<PlaceId> = t.postset().iter().map(|p| map1[p]).collect();
        out.add_transition_sym(pre, t.sym(), post)?;
    }
    // Transitions of N2': entry transitions consume full columns.
    for (_, t) in rw2.net.transitions() {
        let mut pre: BTreeSet<PlaceId> = BTreeSet::new();
        for p in t.preset() {
            if copies2.contains(p) {
                for &x in &rw1.copies {
                    pre.insert(product[&(x, *p)]);
                }
            } else {
                pre.insert(map2[p]);
            }
        }
        let post: Vec<PlaceId> = t.postset().iter().map(|p| map2[p]).collect();
        out.add_transition_sym(pre, remap2[t.sym().index()], post)?;
    }

    // Degenerate roots: if one net has no initial places it contributes no
    // behaviour, matching L(N) = {ε}; nothing extra to do.
    Ok(out)
}

/// Non-deterministic choice for **general** nets (the remark after
/// Definition 4.6: root-unwinding "can also be stated slightly different
/// … by keeping the initial places with their initial marking" and gating
/// duplicated initial transitions through sentinel places).
///
/// Both operands keep their initial markings in place (multisets
/// allowed). A three-place commitment widget — `free` (marked) and one
/// sentinel `c_i` per operand — gates every transition that is enabled
/// in the operand's initial marking: its *first-entry* variant consumes
/// `free` and produces `c_i`; its *re-entry* variant self-loops on
/// `c_i`. The first action of either operand therefore destroys the
/// other's entries forever, while its own initial transitions stay
/// re-fireable — commitment without moving a single token of the
/// original markings.
///
/// Satisfies `L(N1 + N2) = L(N1) ∪ L(N2)` on general nets
/// (property-tested with multiset markings).
///
/// # Errors
///
/// Propagates [`PetriError`] from transition construction; this cannot
/// occur for well-formed operands (every rewritten transition keeps a
/// non-empty preset or postset).
///
/// # Example
///
/// ```
/// use cpn_core::choice_general;
/// use cpn_petri::PetriNet;
/// use cpn_trace::Language;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut n1: PetriNet<&str> = PetriNet::new();
/// let p = n1.add_place("p");
/// n1.add_transition([p], "a", [p])?;
/// n1.set_initial(p, 2); // unsafe: Definition 4.6 proper would reject it
/// let mut n2: PetriNet<&str> = PetriNet::new();
/// let q = n2.add_place("q");
/// n2.add_transition([q], "b", [q])?;
/// n2.set_initial(q, 1);
/// let both = choice_general(&n1, &n2)?;
/// let l = Language::from_net(&both, 3, 10_000)?;
/// assert!(l.contains(&["a", "a", "a"][..]));
/// assert!(l.contains(&["b"][..]));
/// assert!(!l.contains(&["a", "b"][..]));
/// # Ok(())
/// # }
/// ```
pub fn choice_general<L: Label>(
    n1: &PetriNet<L>,
    n2: &PetriNet<L>,
) -> Result<PetriNet<L>, PetriError> {
    let mut out = PetriNet::new();
    let free = out.add_place("free");
    out.set_initial(free, 1);
    let sentinels = [out.add_place("c1"), out.add_place("c2")];

    for (side, net) in [n1, n2].into_iter().enumerate() {
        let tag = if side == 0 { "L" } else { "R" };
        let sentinel = sentinels[side];
        let mut map: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
        for (old, place) in net.places() {
            let new = out.add_place(format!("{tag}.{}", place.name()));
            out.set_initial(new, net.initial_marking().tokens(old));
            map.insert(old, new);
        }
        let remap: Vec<Sym> = net
            .interner()
            .iter()
            .map(|(_, l)| out.intern_label(l))
            .collect();
        for sym in net.alphabet_syms().iter() {
            out.declare_sym(remap[sym.index()]);
        }
        let m0 = net.initial_marking();
        for (tid, t) in net.transitions() {
            let pre: Vec<PlaceId> = t.preset().iter().map(|p| map[p]).collect();
            let post: Vec<PlaceId> = t.postset().iter().map(|p| map[p]).collect();
            let sym = remap[t.sym().index()];
            if net.is_enabled(&m0, tid) {
                // First-entry variant: commits this operand.
                let mut p1 = pre.clone();
                p1.push(free);
                let mut q1 = post.clone();
                q1.push(sentinel);
                out.add_transition_sym(p1, sym, q1)?;
                // Re-entry variant: sentinel self-loop.
                let mut p2 = pre;
                p2.push(sentinel);
                let mut q2 = post;
                q2.push(sentinel);
                out.add_transition_sym(p2, sym, q2)?;
            } else {
                out.add_transition_sym(pre, sym, post)?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cpn_trace::Language;

    fn cycle(a: &'static str, b: &'static str) -> PetriNet<&'static str> {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], a, [q]).unwrap();
        net.add_transition([q], b, [p]).unwrap();
        net.set_initial(p, 1);
        net
    }

    fn lang(net: &PetriNet<&'static str>, d: usize) -> Language<&'static str> {
        Language::from_net(net, d, 100_000).unwrap()
    }

    #[test]
    fn choice_law_prop_4_4_on_cycles() {
        // Both operands loop back to their roots: the Figure 1 situation.
        let n1 = cycle("a", "b");
        let n2 = cycle("c", "d");
        let both = choice(&n1, &n2).unwrap();
        let lhs = lang(&both, 5);
        let rhs = lang(&n1, 5).union(&lang(&n2, 5));
        assert!(lhs.eq_up_to(&rhs, 5), "L(N1+N2) = L(N1) ∪ L(N2)");
    }

    #[test]
    fn committed_choice_cannot_switch_branch() {
        let n1 = cycle("a", "b");
        let n2 = cycle("c", "d");
        let both = choice(&n1, &n2).unwrap();
        let l = lang(&both, 4);
        assert!(l.contains(&["a", "b", "a", "b"]));
        assert!(l.contains(&["c", "d", "c", "d"]));
        // After looping back to the root of branch 1, branch 2 must stay
        // disabled (this is exactly what root-unwinding guarantees).
        assert!(!l.contains(&["a", "b", "c"]));
        assert!(!l.contains(&["c", "d", "a"]));
    }

    #[test]
    fn root_unwinding_preserves_traces() {
        let n = cycle("a", "b");
        let rw = root_unwinding(&n).unwrap();
        assert!(lang(&n, 5).eq_up_to(&Language::from_net(&rw.net, 5, 100_000).unwrap(), 5));
    }

    #[test]
    fn root_unwinding_rejects_unsafe() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        net.add_transition([p], "a", [p]).unwrap();
        net.set_initial(p, 2);
        assert!(matches!(
            root_unwinding(&net),
            Err(PetriError::UnsafeInitialMarking(_))
        ));
    }

    #[test]
    fn choice_with_nil_is_identity_on_traces() {
        let n = cycle("a", "b");
        let with_nil = choice(&n, &crate::ops::nil()).unwrap();
        assert!(lang(&with_nil, 5).eq_up_to(&lang(&n, 5), 5));
    }

    #[test]
    fn choice_of_multi_root_nets() {
        // Each branch starts with two concurrent tokens (fork-less roots):
        // entries consume full rows/columns of the 2×1 product.
        let mut n1: PetriNet<&str> = PetriNet::new();
        let pa = n1.add_place("pa");
        let pb = n1.add_place("pb");
        let done = n1.add_place("done");
        n1.add_transition([pa, pb], "ab", [done]).unwrap();
        n1.set_initial(pa, 1);
        n1.set_initial(pb, 1);

        let mut n2: PetriNet<&str> = PetriNet::new();
        let r = n2.add_place("r");
        let s = n2.add_place("s");
        n2.add_transition([r], "c", [s]).unwrap();
        n2.set_initial(r, 1);

        let both = choice(&n1, &n2).unwrap();
        let l = lang(&both, 3);
        assert!(l.contains(&["ab"]));
        assert!(l.contains(&["c"]));
        assert!(!l.contains(&["ab", "c"]));
        assert!(!l.contains(&["c", "ab"]));
    }

    #[test]
    fn choice_shares_common_labels_without_merging() {
        // Both branches can do "a" first; choice keeps both continuations.
        let n1 = cycle("a", "b");
        let n2 = cycle("a", "c");
        let both = choice(&n1, &n2).unwrap();
        let l = lang(&both, 2);
        assert!(l.contains(&["a", "b"]));
        assert!(l.contains(&["a", "c"]));
    }

    #[test]
    fn choice_with_unmarked_net_keeps_other_branch() {
        let n1 = cycle("a", "b");
        let mut empty: PetriNet<&str> = PetriNet::new();
        let p = empty.add_place("p");
        let q = empty.add_place("q");
        empty.add_transition([p], "z", [q]).unwrap(); // never enabled
        let both = choice(&n1, &empty).unwrap();
        let l = lang(&both, 3);
        assert!(l.contains(&["a", "b", "a"]));
        assert!(!l.iter().any(|t| t.contains(&"z")));
    }

    #[test]
    fn choice_general_law_on_unsafe_markings() {
        // Two tokens circulating: Def 4.6 proper rejects this, the
        // general construction must still satisfy the union law.
        let mut n1: PetriNet<&str> = PetriNet::new();
        let p = n1.add_place("p");
        let q = n1.add_place("q");
        n1.add_transition([p], "a", [q]).unwrap();
        n1.add_transition([q], "b", [p]).unwrap();
        n1.set_initial(p, 2);
        assert!(
            choice(&n1, &cycle("c", "d")).is_err(),
            "Def 4.6 needs safety"
        );

        let n2 = cycle("c", "d");
        let both = choice_general(&n1, &n2).unwrap();
        let lhs = Language::from_net(&both, 5, 1_000_000).unwrap();
        let rhs = Language::from_net(&n1, 5, 1_000_000)
            .unwrap()
            .union(&Language::from_net(&n2, 5, 1_000_000).unwrap());
        assert!(lhs.eq_up_to(&rhs, 5), "general union law\n{lhs}\n{rhs}");
    }

    #[test]
    fn choice_general_agrees_with_choice_on_safe_nets() {
        let n1 = cycle("a", "b");
        let n2 = cycle("c", "d");
        let strict = choice(&n1, &n2).unwrap();
        let general = choice_general(&n1, &n2).unwrap();
        let l1 = Language::from_net(&strict, 5, 1_000_000).unwrap();
        let l2 = Language::from_net(&general, 5, 1_000_000).unwrap();
        assert!(l1.eq_up_to(&l2, 5));
    }

    #[test]
    fn choice_general_commits_with_concurrent_roots() {
        // Two concurrently enabled entry transitions in branch 1: both
        // must fire after commitment, branch 2 must stay dead.
        let mut n1: PetriNet<&str> = PetriNet::new();
        let pa = n1.add_place("pa");
        let pb = n1.add_place("pb");
        n1.add_transition([pa], "a", [pa]).unwrap();
        n1.add_transition([pb], "b", [pb]).unwrap();
        n1.set_initial(pa, 1);
        n1.set_initial(pb, 1);
        let n2 = cycle("c", "d");
        let both = choice_general(&n1, &n2).unwrap();
        let l = Language::from_net(&both, 3, 1_000_000).unwrap();
        assert!(l.contains(&["a", "b", "a"]));
        assert!(l.contains(&["b", "a", "b"]));
        assert!(l.contains(&["c", "d", "c"]));
        assert!(!l.contains(&["a", "c"]));
        assert!(!l.contains(&["c", "a"]));
    }

    #[test]
    fn nested_choice_three_ways() {
        let n1 = cycle("a", "b");
        let n2 = cycle("c", "d");
        let n3 = cycle("e", "f");
        let all = choice(&choice(&n1, &n2).unwrap(), &n3).unwrap();
        let lhs = lang(&all, 4);
        let rhs = lang(&n1, 4).union(&lang(&n2, 4)).union(&lang(&n3, 4));
        assert!(lhs.eq_up_to(&rhs, 4));
    }
}
