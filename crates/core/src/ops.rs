//! Action operators: `nil`, action prefix and renaming
//! (Definitions 4.2–4.4 of the paper).

use cpn_petri::{Label, PetriError, PetriNet, PlaceId};
use std::collections::BTreeMap;

/// The deadlock process `nil` (Definition 4.2): a single marked place and
/// no transitions, so no non-empty trace exists (Proposition 4.1).
///
/// # Example
///
/// ```
/// let net: cpn_petri::PetriNet<&str> = cpn_core::nil();
/// assert_eq!(net.place_count(), 1);
/// assert_eq!(net.transition_count(), 0);
/// ```
pub fn nil<L: Label>() -> PetriNet<L> {
    let mut net = PetriNet::new();
    let p = net.add_place("nil");
    net.set_initial(p, 1);
    net
}

/// Action prefix `a.N` for a net with a **safe initial marking**
/// (Definition 4.3): a fresh marked place `m0` and a transition
/// `(m0, a, M)` into the previously marked places, which lose their
/// initial tokens.
///
/// Satisfies `L(a.N) = {ε, a} ∪ {a}·L(N)` (Proposition 4.2).
///
/// # Errors
///
/// Returns [`PetriError::UnsafeInitialMarking`] if some place initially
/// holds more than one token; use [`prefix_general`] for general nets.
///
/// # Example
///
/// ```
/// use cpn_core::{nil, prefix};
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// let stopped = prefix("a", &nil::<&str>())?;
/// assert_eq!(stopped.transition_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn prefix<L: Label>(action: L, net: &PetriNet<L>) -> Result<PetriNet<L>, PetriError> {
    if let Some((p, _)) = net.initial_marking().marked_places().find(|&(_, n)| n > 1) {
        return Err(PetriError::UnsafeInitialMarking(p.index() as u32));
    }

    let mut out = PetriNet::with_interner(net.interner().clone());
    let mut map: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
    for (old, place) in net.places() {
        map.insert(old, out.add_place(place.name().to_owned()));
    }
    for sym in net.alphabet_syms().iter() {
        out.declare_sym(sym);
    }
    for (_, t) in net.transitions() {
        out.add_transition_sym(
            t.preset().iter().map(|p| map[p]),
            t.sym(),
            t.postset().iter().map(|p| map[p]),
        )?;
    }
    let m0 = out.add_place("m0");
    out.set_initial(m0, 1);
    let initial_places: Vec<PlaceId> = net.initial_places().iter().map(|p| map[p]).collect();
    // The postset may be empty when N has no marked places (e.g. a.nil
    // would if nil were unmarked); Definition 4.3 allows it as long as
    // the preset is non-empty.
    out.add_transition([m0], action, initial_places)?;
    Ok(out)
}

/// Action prefix for **general** nets (the remark after Definition 4.3):
/// the original initial marking is kept in place; a fresh marked place
/// `m0` and transition `(m0, a, {s})` gate every initially enabled
/// transition through a sentinel self-loop on `s`, so nothing can fire
/// before `a` and the original behaviour is untouched afterwards.
///
/// # Errors
///
/// Propagates [`PetriError`] from transition construction; this cannot
/// occur for well-formed operands (every rewritten transition keeps a
/// non-empty preset).
///
/// # Example
///
/// ```
/// use cpn_core::prefix_general;
/// use cpn_petri::PetriNet;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// net.add_transition([p], "b", [p])?;
/// net.set_initial(p, 2); // not safe: Definition 4.3 would reject it
/// let prefixed = prefix_general("a", &net)?;
/// let lang = cpn_trace::Language::from_net(&prefixed, 2, 1000)?;
/// assert!(lang.contains(&["a", "b"][..]));
/// assert!(!lang.contains(&["b"][..]));
/// # Ok(())
/// # }
/// ```
pub fn prefix_general<L: Label>(action: L, net: &PetriNet<L>) -> Result<PetriNet<L>, PetriError> {
    let mut out = PetriNet::with_interner(net.interner().clone());
    let mut map: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
    for (old, place) in net.places() {
        let new = out.add_place(place.name().to_owned());
        out.set_initial(new, net.initial_marking().tokens(old));
        map.insert(old, new);
    }
    for sym in net.alphabet_syms().iter() {
        out.declare_sym(sym);
    }
    let m0 = out.add_place("m0");
    let sentinel = out.add_place("sentinel");
    out.set_initial(m0, 1);

    let m_init = net.initial_marking();
    for (tid, t) in net.transitions() {
        let gated = net.is_enabled(&m_init, tid);
        let mut pre: Vec<PlaceId> = t.preset().iter().map(|p| map[p]).collect();
        let mut post: Vec<PlaceId> = t.postset().iter().map(|p| map[p]).collect();
        if gated {
            pre.push(sentinel);
            post.push(sentinel);
        }
        out.add_transition_sym(pre, t.sym(), post)?;
    }
    out.add_transition([m0], action, [sentinel])?;
    Ok(out)
}

/// Renaming (Definition 4.4, extended to a set of label replacements):
/// every transition labeled by a key of `map` is relabeled to the mapped
/// value; the alphabet drops the keys and gains the values.
///
/// Satisfies `L(rename(N, b→c)) = rename(L(N), b→c)` (Proposition 4.3).
///
/// # Non-injective maps
///
/// The map need not be injective: `{a→z, b→z}` (or `{a→b}` when `b` is
/// already in the alphabet) **merges** the source actions into one label,
/// and distinct actions become indistinguishable afterwards — composition
/// will synchronize them as a single action. This matches the pointwise
/// trace-level [`rename`](cpn_trace::Language::rename), so Proposition
/// 4.3 holds for non-injective maps too (regression-tested by
/// `rename_non_injective_merge_still_satisfies_prop_4_3`); use
/// [`rename_injective`] to rule merging out instead.
///
/// # Example
///
/// ```
/// use cpn_core::rename;
/// use cpn_petri::PetriNet;
/// use std::collections::BTreeMap;
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// net.add_transition([p], "b", [p])?;
/// let renamed = rename(&net, &BTreeMap::from([("b", "c")]));
/// assert!(renamed.alphabet().contains(&"c"));
/// assert!(!renamed.alphabet().contains(&"b"));
/// # Ok(())
/// # }
/// ```
pub fn rename<L: Label>(net: &PetriNet<L>, map: &BTreeMap<L, L>) -> PetriNet<L> {
    let mut out = net.map_labels(|l| map.get(l).cloned().unwrap_or_else(|| l.clone()));
    // Definition 4.4: the renamed-to labels join the alphabet even when
    // the source label had no transitions (A\{b} ∪ {c}).
    for v in map.values() {
        out.declare_label(v.clone());
    }
    out
}

/// [`rename`] restricted to maps that keep distinct actions distinct on
/// this net's alphabet — Definition 4.4 read strictly.
///
/// Rejects a map when two alphabet labels would collapse into one: two
/// keys sharing a value, or a value colliding with an alphabet label the
/// map leaves fixed. Keys and values outside the alphabet are ignored
/// (they rename nothing and collide with nothing).
///
/// # Errors
///
/// [`PetriError::Precondition`] naming the collided-on label.
pub fn rename_injective<L: Label>(
    net: &PetriNet<L>,
    map: &BTreeMap<L, L>,
) -> Result<PetriNet<L>, PetriError> {
    let mut targets: BTreeMap<&L, &L> = BTreeMap::new();
    for l in &net.alphabet() {
        let Some((k, v)) = map.get_key_value(l) else {
            continue;
        };
        if let Some(prev) = targets.insert(v, k) {
            return Err(PetriError::Precondition(format!(
                "non-injective rename: {prev} and {k} both map to {v}"
            )));
        }
    }
    for l in &net.alphabet() {
        if !map.contains_key(l) {
            if let Some(k) = targets.get(l) {
                return Err(PetriError::Precondition(format!(
                    "non-injective rename: {k} maps onto the unrenamed alphabet label {l}"
                )));
            }
        }
    }
    Ok(rename(net, map))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cpn_trace::Language;
    use std::collections::BTreeSet;

    fn ab_cycle() -> PetriNet<&'static str> {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        net.set_initial(p, 1);
        net
    }

    #[test]
    fn nil_has_no_nonempty_traces() {
        let net: PetriNet<&str> = nil();
        let lang = Language::from_net(&net, 5, 100).unwrap();
        assert!(lang.is_empty(), "Proposition 4.1");
    }

    #[test]
    fn prefix_law_prop_4_2() {
        // L(a.N) = {ε,a} ∪ {a}.L(N)
        let n = ab_cycle();
        let prefixed = prefix("x", &n).unwrap();
        let lhs = Language::from_net(&prefixed, 4, 10_000).unwrap();
        let rhs = Language::from_net(&n, 3, 10_000)
            .unwrap()
            .prefix_action("x");
        assert!(lhs.eq_up_to(&rhs, 4));
    }

    #[test]
    fn prefix_rejects_unsafe_marking() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        net.add_transition([p], "b", [p]).unwrap();
        net.set_initial(p, 2);
        assert!(matches!(
            prefix("a", &net),
            Err(PetriError::UnsafeInitialMarking(_))
        ));
    }

    #[test]
    fn prefix_general_matches_prefix_on_safe_nets() {
        let n = ab_cycle();
        let a = prefix("x", &n).unwrap();
        let b = prefix_general("x", &n).unwrap();
        let la = Language::from_net(&a, 4, 10_000).unwrap();
        let lb = Language::from_net(&b, 4, 10_000).unwrap();
        assert!(la.eq_up_to(&lb, 4));
    }

    #[test]
    fn prefix_general_gates_all_initial_transitions() {
        // Two initially enabled transitions; neither may fire before x.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([p], "b", [q]).unwrap();
        net.set_initial(p, 1);
        let g = prefix_general("x", &net).unwrap();
        let lang = Language::from_net(&g, 2, 1000).unwrap();
        assert!(lang.contains(&["x", "a"]));
        assert!(lang.contains(&["x", "b"]));
        assert!(!lang.contains(&["a"]));
        assert!(!lang.contains(&["b"]));
    }

    #[test]
    fn rename_law_prop_4_3() {
        let n = ab_cycle();
        let renamed = rename(&n, &BTreeMap::from([("a", "z")]));
        let lhs = Language::from_net(&renamed, 4, 10_000).unwrap();
        let rhs =
            Language::from_net(&n, 4, 10_000)
                .unwrap()
                .rename(|l| if *l == "a" { "z" } else { *l });
        assert!(lhs.eq_up_to(&rhs, 4));
    }

    #[test]
    fn rename_swaps_via_simultaneous_map() {
        // Simultaneous a→b, b→a must not cascade.
        let n = ab_cycle();
        let swapped = rename(&n, &BTreeMap::from([("a", "b"), ("b", "a")]));
        let lang = Language::from_net(&swapped, 2, 1000).unwrap();
        assert!(lang.contains(&["b", "a"]));
        assert!(!lang.contains(&["a", "b"]));
    }

    #[test]
    fn rename_alphabet_bookkeeping() {
        let n = ab_cycle();
        let renamed = rename(&n, &BTreeMap::from([("a", "c")]));
        let expect: BTreeSet<&str> = ["b", "c"].into();
        assert_eq!(renamed.alphabet(), expect);
    }

    #[test]
    fn rename_non_injective_merge_still_satisfies_prop_4_3() {
        // {a→z, b→z} merges both actions into z; the net-level result
        // must still agree with the pointwise trace-level rename.
        let n = ab_cycle();
        let merged = rename(&n, &BTreeMap::from([("a", "z"), ("b", "z")]));
        assert_eq!(merged.alphabet(), BTreeSet::from(["z"]));
        let lhs = Language::from_net(&merged, 4, 10_000).unwrap();
        let rhs = Language::from_net(&n, 4, 10_000).unwrap().rename(|_| "z");
        assert!(lhs.eq_up_to(&rhs, 4));
        assert!(lhs.contains(&["z", "z", "z"]));
    }

    #[test]
    fn rename_injective_rejects_merging_maps() {
        let n = ab_cycle();
        // Two keys sharing a value.
        assert!(matches!(
            rename_injective(&n, &BTreeMap::from([("a", "z"), ("b", "z")])),
            Err(PetriError::Precondition(_))
        ));
        // A value colliding with an unrenamed alphabet label.
        assert!(matches!(
            rename_injective(&n, &BTreeMap::from([("a", "b")])),
            Err(PetriError::Precondition(_))
        ));
        // A genuinely injective map passes and matches `rename`.
        let ok = rename_injective(&n, &BTreeMap::from([("a", "z"), ("b", "a")])).unwrap();
        assert_eq!(ok, rename(&n, &BTreeMap::from([("a", "z"), ("b", "a")])));
        // Keys/values outside the alphabet are inert, not collisions.
        let inert = rename_injective(&n, &BTreeMap::from([("ghost", "a")])).unwrap();
        assert_eq!(inert.alphabet(), n.alphabet());
    }

    #[test]
    fn prefix_of_nil_is_single_action() {
        let stopped = prefix("a", &nil::<&str>()).unwrap();
        let lang = Language::from_net(&stopped, 3, 100).unwrap();
        assert_eq!(lang.len(), 2); // ε and "a"
        assert!(lang.contains(&["a"]));
    }
}
