//! The circuit algebra `C = (I, O, N)` of Section 5.1.
//!
//! A circuit wraps a behavioural net with the semantic distinction
//! between **input** actions (controlled by the environment) and
//! **output** actions (produced autonomously). Composition synchronizes
//! common actions — shared inputs stay inputs, an input matched with an
//! output becomes an internal output — and common outputs are rejected.
//! Internal actions are outputs, which may then be hidden.

use crate::hide::hide_labels;
use crate::parallel::parallel;
use cpn_petri::{Label, PetriError, PetriNet};
use std::collections::BTreeSet;

/// A behavioural structure with input/output interface:
/// `C = (I, O, N)`.
///
/// Invariants (checked by [`Circuit::new`]): `I` and `O` are disjoint and
/// every transition label of `N` is declared in `I ∪ O` (ε-style silent
/// labels are modeled as outputs, matching the paper's "internal signals
/// are considered as outputs").
#[derive(Clone, Debug)]
pub struct Circuit<L: Label> {
    inputs: BTreeSet<L>,
    outputs: BTreeSet<L>,
    net: PetriNet<L>,
}

impl<L: Label> Circuit<L> {
    /// Builds a circuit, validating the interface.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::Precondition`] if `inputs` and `outputs`
    /// overlap or the net's alphabet is not covered by `inputs ∪ outputs`.
    pub fn new(
        inputs: BTreeSet<L>,
        outputs: BTreeSet<L>,
        net: PetriNet<L>,
    ) -> Result<Self, PetriError> {
        if let Some(l) = inputs.intersection(&outputs).next() {
            return Err(PetriError::Precondition(format!(
                "label {l} is both input and output"
            )));
        }
        for l in &net.alphabet() {
            if !inputs.contains(l) && !outputs.contains(l) {
                return Err(PetriError::Precondition(format!(
                    "net label {l} is neither input nor output"
                )));
            }
        }
        Ok(Circuit {
            inputs,
            outputs,
            net,
        })
    }

    /// The input actions `I`.
    pub fn inputs(&self) -> &BTreeSet<L> {
        &self.inputs
    }

    /// The output actions `O`.
    pub fn outputs(&self) -> &BTreeSet<L> {
        &self.outputs
    }

    /// The behaviour net `N`.
    pub fn net(&self) -> &PetriNet<L> {
        &self.net
    }

    /// Consumes the circuit, returning the behaviour net.
    pub fn into_net(self) -> PetriNet<L> {
        self.net
    }

    /// Parallel composition per Section 5.1:
    /// `C1‖C2 = (I1∪I2 \ (O1∪O2), O1∪O2, N1‖N2)`.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::Precondition`] if the circuits share an
    /// output action.
    pub fn compose(&self, other: &Circuit<L>) -> Result<Circuit<L>, PetriError> {
        if let Some(l) = self.outputs.intersection(&other.outputs).next() {
            return Err(PetriError::Precondition(format!(
                "circuits share output {l}"
            )));
        }
        let outputs: BTreeSet<L> = self.outputs.union(&other.outputs).cloned().collect();
        let inputs: BTreeSet<L> = self
            .inputs
            .union(&other.inputs)
            .filter(|l| !outputs.contains(*l))
            .cloned()
            .collect();
        let net = parallel(&self.net, &other.net)?;
        Ok(Circuit {
            inputs,
            outputs,
            net,
        })
    }

    /// The `hide'` variant on circuits (Section 5.3): internal outputs
    /// are **relabeled** to the designated silent action instead of
    /// contracted. Use when the internals form shapes outside the
    /// contraction class (hidden cycles, both-sided consumers) or when
    /// downstream verification needs the internal-path information.
    ///
    /// # Errors
    ///
    /// [`PetriError::Precondition`] if some label of `A` is not an
    /// output.
    pub fn hide_relabel(&self, labels: &BTreeSet<L>, silent: L) -> Result<Circuit<L>, PetriError> {
        for l in labels {
            if !self.outputs.contains(l) {
                return Err(PetriError::Precondition(format!(
                    "cannot hide non-output {l}"
                )));
            }
        }
        let net = crate::hide::hide_relabel(&self.net, labels, silent.clone());
        let mut outputs: BTreeSet<L> = self
            .outputs
            .iter()
            .filter(|l| !labels.contains(*l))
            .cloned()
            .collect();
        // ε is an internal (output) action in the circuit reading.
        outputs.insert(silent);
        Ok(Circuit {
            inputs: self.inputs.clone(),
            outputs,
            net,
        })
    }

    /// Hiding per Section 5.1: `hide(C, A) = (I, O \ A, hide(N, A))` for
    /// `A ⊆ O`.
    ///
    /// # Errors
    ///
    /// * [`PetriError::Precondition`] if some label of `A` is not an
    ///   output (inputs may not be hidden — the environment drives them).
    /// * Errors of [`hide_labels`] (divergence, budget).
    pub fn hide(&self, labels: &BTreeSet<L>, budget: usize) -> Result<Circuit<L>, PetriError> {
        for l in labels {
            if !self.outputs.contains(l) {
                return Err(PetriError::Precondition(format!(
                    "cannot hide non-output {l}"
                )));
            }
        }
        let net = hide_labels(&self.net, labels, budget)?;
        let outputs: BTreeSet<L> = self
            .outputs
            .iter()
            .filter(|l| !labels.contains(*l))
            .cloned()
            .collect();
        Ok(Circuit {
            inputs: self.inputs.clone(),
            outputs,
            net,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn cycle(a: &'static str, b: &'static str) -> PetriNet<&'static str> {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], a, [q]).unwrap();
        net.add_transition([q], b, [p]).unwrap();
        net.set_initial(p, 1);
        net
    }

    #[test]
    fn new_validates_interface() {
        let net = cycle("req", "ack");
        assert!(Circuit::new(["req"].into(), ["ack"].into(), net.clone()).is_ok());
        // Overlapping I/O rejected.
        assert!(Circuit::new(["req"].into(), ["req", "ack"].into(), net.clone()).is_err());
        // Uncovered label rejected.
        assert!(Circuit::new(["req"].into(), BTreeSet::new(), net).is_err());
    }

    #[test]
    fn compose_rewires_directions() {
        // c1 emits ack; c2 consumes ack and emits done.
        let c1 = Circuit::new(["req"].into(), ["ack"].into(), cycle("req", "ack")).unwrap();
        let c2 = Circuit::new(["ack"].into(), ["done"].into(), cycle("ack", "done")).unwrap();
        let c = c1.compose(&c2).unwrap();
        // ack became internal (still an output), req stays an input.
        assert_eq!(c.inputs(), &BTreeSet::from(["req"]));
        assert_eq!(c.outputs(), &BTreeSet::from(["ack", "done"]));
    }

    #[test]
    fn compose_rejects_shared_outputs() {
        let c1 = Circuit::new(["a"].into(), ["x"].into(), cycle("a", "x")).unwrap();
        let c2 = Circuit::new(["b"].into(), ["x"].into(), cycle("b", "x")).unwrap();
        assert!(c1.compose(&c2).is_err());
    }

    #[test]
    fn shared_inputs_stay_inputs() {
        let c1 = Circuit::new(["go"].into(), ["x"].into(), cycle("go", "x")).unwrap();
        let c2 = Circuit::new(["go"].into(), ["y"].into(), cycle("go", "y")).unwrap();
        let c = c1.compose(&c2).unwrap();
        assert!(c.inputs().contains(&"go"));
    }

    #[test]
    fn hide_removes_internal_outputs() {
        let c1 = Circuit::new(["req"].into(), ["ack"].into(), cycle("req", "ack")).unwrap();
        let c2 = Circuit::new(["ack"].into(), ["done"].into(), cycle("ack", "done")).unwrap();
        let composed = c1.compose(&c2).unwrap();
        let hidden = composed.hide(&["ack"].into(), 1000).unwrap();
        assert!(!hidden.outputs().contains(&"ack"));
        assert!(!hidden.net().alphabet().contains(&"ack"));
    }

    #[test]
    fn hide_rejects_inputs() {
        let c = Circuit::new(["req"].into(), ["ack"].into(), cycle("req", "ack")).unwrap();
        assert!(c.hide(&["req"].into(), 1000).is_err());
    }
}
