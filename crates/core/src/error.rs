//! The algebra-level error type.

use cpn_petri::PetriError;
use std::error::Error;
use std::fmt;

/// Errors produced by the `cpn-core` operators.
///
/// The algebra mostly surfaces kernel errors unchanged; the dedicated
/// type exists so operator-specific failure modes can be added without
/// breaking callers, and so the crate's public API is panic-free.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying Petri net kernel error.
    Net(PetriError),
    /// An operator was applied to a net it cannot rewrite (with the
    /// reason); the paper's constructions exclude these shapes.
    UnsupportedShape(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Net(e) => write!(f, "{e}"),
            CoreError::UnsupportedShape(why) => write!(f, "unsupported net shape: {why}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Net(e) => Some(e),
            CoreError::UnsupportedShape(_) => None,
        }
    }
}

impl From<PetriError> for CoreError {
    fn from(e: PetriError) -> Self {
        CoreError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_displays_kernel_errors() {
        let e = CoreError::from(PetriError::NotMarkedGraph);
        assert_eq!(e, CoreError::Net(PetriError::NotMarkedGraph));
        assert!(!e.to_string().is_empty());
    }
}
