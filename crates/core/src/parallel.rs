//! Parallel composition with rendez-vous synchronization
//! (Definition 4.7, Theorem 4.5 and Figure 2 of the paper).
//!
//! In Petri nets a transition is already a synchronization mechanism: it
//! fires only when all input places are marked. Composition therefore
//! simply **joins transitions with a common label**: for every label in
//! the synchronization set, every pair of equally-labeled transitions of
//! the two nets is fused into one transition with the union of presets
//! and postsets. Transitions whose label is private to one net are copied
//! unchanged. No unfolding is needed, and the construction works for
//! general (non-safe) nets.

use cpn_petri::{AlphaSet, Label, PetriError, PetriNet, PlaceId, Sym, TransitionId};
use std::collections::{BTreeMap, BTreeSet};

/// A parallel composition together with the provenance information the
/// verification layer needs: where each operand's places went, and which
/// result transitions are fused synchronizations (with their per-side
/// preset parts).
#[derive(Clone, Debug)]
pub struct Composition<L: Label> {
    /// The composed net `N1 ‖ N2`.
    pub net: PetriNet<L>,
    /// Old-to-new place map for the left operand.
    pub left_places: BTreeMap<PlaceId, PlaceId>,
    /// Old-to-new place map for the right operand.
    pub right_places: BTreeMap<PlaceId, PlaceId>,
    /// Fused transitions: `(label, result transition, left preset part,
    /// right preset part)` — the `p1` / `p2` of Proposition 5.5.
    pub sync_transitions: Vec<SyncTransition<L>>,
}

/// One fused rendez-vous transition in a [`Composition`].
#[derive(Clone, Debug)]
pub struct SyncTransition<L: Label> {
    /// The synchronized label.
    pub label: L,
    /// The synchronized label's symbol in the **composed net's** symbol
    /// space — what the receptiveness obligations compare on.
    pub sym: Sym,
    /// The fused transition in the composed net.
    pub transition: TransitionId,
    /// The left operand's transition that was fused.
    pub left_transition: TransitionId,
    /// The right operand's transition that was fused.
    pub right_transition: TransitionId,
    /// The left operand's preset part (`p1`), in composed-net place ids.
    pub left_preset: BTreeSet<PlaceId>,
    /// The right operand's preset part (`p2`), in composed-net place ids.
    pub right_preset: BTreeSet<PlaceId>,
}

/// Parallel composition `N1 ‖ N2` synchronizing on the common alphabet
/// `A1 ∩ A2` (Definition 4.7).
///
/// Satisfies `L(N1‖N2) = L(N1) ‖ L(N2)` (Theorem 4.5): the reachability
/// graph of the result is the "interleaved intersection" of the two
/// reachability graphs.
///
/// Note that a common label with transitions in only one net produces
/// **no** transition in the composition — the action is blocked, exactly
/// as the trace-level Definition 4.8 demands.
///
/// # Errors
///
/// Propagates [`PetriError`] from transition construction; this cannot
/// occur for well-formed operands (fused transitions keep the union of
/// the operands' presets and postsets, which is never empty).
///
/// # Example
///
/// ```
/// use cpn_core::parallel;
/// use cpn_petri::PetriNet;
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// let mut n1: PetriNet<&str> = PetriNet::new();
/// let p = n1.add_place("p");
/// n1.add_transition([p], "sync", [p])?;
/// n1.set_initial(p, 1);
/// let n2 = n1.clone();
/// let c = parallel(&n1, &n2)?;
/// assert_eq!(c.transition_count(), 1); // the two sync transitions fused
/// assert_eq!(c.place_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parallel<L: Label>(n1: &PetriNet<L>, n2: &PetriNet<L>) -> Result<PetriNet<L>, PetriError> {
    Ok(parallel_tracked_common(n1, n2)?.net)
}

/// The common alphabet `A1 ∩ A2` — the default synchronization set of
/// Definition 4.7 — computed in symbol space: the right alphabet is
/// remapped into the left net's symbol space and intersected as a
/// bitset, with labels materialized only for the returned set.
pub fn common_alphabet<L: Label>(n1: &PetriNet<L>, n2: &PetriNet<L>) -> BTreeSet<L> {
    let mut right_in_left = AlphaSet::new();
    for s2 in n2.alphabet_syms().iter() {
        if let Some(s1) = n1.sym_of(n2.resolve(s2)) {
            right_in_left.insert(s1);
        }
    }
    right_in_left.intersect_with(n1.alphabet_syms());
    right_in_left
        .iter()
        .map(|s| n1.resolve(s).clone())
        .collect()
}

/// Parallel composition with an explicit synchronization set.
///
/// Labels in `sync` rendez-vous (pairwise fusion of equally-labeled
/// transitions); all other labels interleave freely. The STG circuit
/// algebra uses this to synchronize on shared *signals* while dummy
/// transitions stay private.
///
/// # Errors
///
/// Propagates [`PetriError`] from transition construction (see
/// [`parallel`]).
pub fn parallel_with_sync<L: Label>(
    n1: &PetriNet<L>,
    n2: &PetriNet<L>,
    sync: &BTreeSet<L>,
) -> Result<PetriNet<L>, PetriError> {
    Ok(parallel_tracked(n1, n2, sync)?.net)
}

/// Parallel composition that additionally reports place provenance and
/// the fused synchronization transitions (see [`Composition`]); the
/// receptiveness checks of Section 5.3 are built on this.
///
/// # Errors
///
/// Propagates [`PetriError`] from transition construction (see
/// [`parallel`]).
pub fn parallel_tracked<L: Label>(
    n1: &PetriNet<L>,
    n2: &PetriNet<L>,
    sync: &BTreeSet<L>,
) -> Result<Composition<L>, PetriError> {
    fuse_tracked(n1, n2, SyncSpec::Labels(sync))
}

/// [`parallel_tracked`] on the common alphabet `A1 ∩ A2`, with the sync
/// set resolved **entirely in symbol space**: the right alphabet is
/// remapped into the composed symbol space and intersected as a bitset —
/// no `BTreeSet<L>` is materialized and no label is cloned per call.
///
/// The result is identical to
/// `parallel_tracked(n1, n2, &common_alphabet(n1, n2))`.
///
/// # Errors
///
/// Propagates [`PetriError`] from transition construction (see
/// [`parallel`]).
pub fn parallel_tracked_common<L: Label>(
    n1: &PetriNet<L>,
    n2: &PetriNet<L>,
) -> Result<Composition<L>, PetriError> {
    fuse_tracked(n1, n2, SyncSpec::Common)
}

/// How [`fuse_tracked`] obtains the synchronization set.
enum SyncSpec<'a, L: Label> {
    /// An explicit label set, interned into the composed symbol space.
    Labels(&'a BTreeSet<L>),
    /// The common alphabet, as a pure bitset intersection.
    Common,
}

/// The composition core shared by every `parallel*` entry point.
fn fuse_tracked<L: Label>(
    n1: &PetriNet<L>,
    n2: &PetriNet<L>,
    spec: SyncSpec<'_, L>,
) -> Result<Composition<L>, PetriError> {
    // The composed net's symbol space: the left interner verbatim, the
    // right interner merged in (remap2 translates right syms).
    let mut out = PetriNet::with_interner(n1.interner().clone());
    let remap2: Vec<Sym> = n2
        .interner()
        .iter()
        .map(|(_, l)| out.intern_label(l))
        .collect();
    let mut map1: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
    let mut map2: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
    for (old, place) in n1.places() {
        let new = out.add_place(format!("L.{}", place.name()));
        out.set_initial(new, n1.initial_marking().tokens(old));
        map1.insert(old, new);
    }
    for (old, place) in n2.places() {
        let new = out.add_place(format!("R.{}", place.name()));
        out.set_initial(new, n2.initial_marking().tokens(old));
        map2.insert(old, new);
    }
    for s in n1.alphabet_syms().iter() {
        out.declare_sym(s);
    }
    for s in n2.alphabet_syms().iter() {
        out.declare_sym(remap2[s.index()]);
    }
    // The sync set in the composed net's symbol space (labels unknown to
    // both operands carry no transitions and are dropped harmlessly).
    let sync_syms: AlphaSet = match spec {
        SyncSpec::Labels(sync) => sync.iter().filter_map(|l| out.sym_of(l)).collect(),
        SyncSpec::Common => {
            let mut s: AlphaSet = n2
                .alphabet_syms()
                .iter()
                .map(|s2| remap2[s2.index()])
                .collect();
            s.intersect_with(n1.alphabet_syms());
            s
        }
    };

    // Private transitions are copied unchanged. Left syms are valid in
    // the composed space as-is (its interner extends the left one).
    // Synchronizing transitions are bucketed by composed symbol in the
    // same pass, replacing the per-label `transitions_with_label` scans.
    let mut bucket1: BTreeMap<Sym, Vec<TransitionId>> = BTreeMap::new();
    let mut bucket2: BTreeMap<Sym, Vec<TransitionId>> = BTreeMap::new();
    for (id, t) in n1.transitions() {
        if sync_syms.contains(t.sym()) {
            bucket1.entry(t.sym()).or_default().push(id);
        } else {
            out.add_transition_sym(
                t.preset().iter().map(|p| map1[p]),
                t.sym(),
                t.postset().iter().map(|p| map1[p]),
            )?;
        }
    }
    for (id, t) in n2.transitions() {
        let sym = remap2[t.sym().index()];
        if sync_syms.contains(sym) {
            bucket2.entry(sym).or_default().push(id);
        } else {
            out.add_transition_sym(
                t.preset().iter().map(|p| map2[p]),
                sym,
                t.postset().iter().map(|p| map2[p]),
            )?;
        }
    }

    // Synchronized transitions: all pairs with a common symbol are
    // joined, iterated in **label** order so the composed net's
    // transition order is independent of symbol assignment (and
    // identical to the historical `BTreeSet<L>` iteration).
    let mut order: Vec<Sym> = sync_syms.iter().collect();
    order.sort_unstable_by(|&a, &b| out.resolve(a).cmp(out.resolve(b)));
    let mut sync_transitions = Vec::new();
    for sym in order {
        let (Some(ts1), Some(ts2)) = (bucket1.get(&sym), bucket2.get(&sym)) else {
            continue;
        };
        for &t1 in ts1 {
            for &t2 in ts2 {
                let tr1 = n1.transition(t1);
                let tr2 = n2.transition(t2);
                let left_preset: BTreeSet<PlaceId> = tr1.preset().iter().map(|p| map1[p]).collect();
                let right_preset: BTreeSet<PlaceId> =
                    tr2.preset().iter().map(|p| map2[p]).collect();
                let pre: BTreeSet<PlaceId> = left_preset
                    .iter()
                    .chain(right_preset.iter())
                    .copied()
                    .collect();
                let post: BTreeSet<PlaceId> = tr1
                    .postset()
                    .iter()
                    .map(|p| map1[p])
                    .chain(tr2.postset().iter().map(|p| map2[p]))
                    .collect();
                let transition = out.add_transition_sym(pre, sym, post)?;
                sync_transitions.push(SyncTransition {
                    label: out.resolve(sym).clone(),
                    sym,
                    transition,
                    left_transition: t1,
                    right_transition: t2,
                    left_preset,
                    right_preset,
                });
            }
        }
    }

    Ok(Composition {
        net: out,
        left_places: map1,
        right_places: map2,
        sync_transitions,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::choice::choice;
    use cpn_trace::Language;

    fn lang(net: &PetriNet<&'static str>, d: usize) -> Language<&'static str> {
        Language::from_net(net, d, 1_000_000).unwrap()
    }

    fn cycle2(a: &'static str, b: &'static str) -> PetriNet<&'static str> {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], a, [q]).unwrap();
        net.add_transition([q], b, [p]).unwrap();
        net.set_initial(p, 1);
        net
    }

    /// The paper's Figure 2 left operand: ((a+b).c)*.
    fn fig2_left() -> PetriNet<&'static str> {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([p], "b", [q]).unwrap();
        net.add_transition([q], "c", [p]).unwrap();
        net.set_initial(p, 1);
        net
    }

    /// The paper's Figure 2 right operand: (a.d.a.e)*.
    fn fig2_right() -> PetriNet<&'static str> {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let p3 = net.add_place("p3");
        net.add_transition([p0], "a", [p1]).unwrap();
        net.add_transition([p1], "d", [p2]).unwrap();
        net.add_transition([p2], "a", [p3]).unwrap();
        net.add_transition([p3], "e", [p0]).unwrap();
        net.set_initial(p0, 1);
        net
    }

    #[test]
    fn figure_2_parallel_composition() {
        // ((a+b).c)* ‖ (a.d.a.e)*: a is common and synchronizes; b, c, d,
        // e are private.
        let composed = parallel(&fig2_left(), &fig2_right()).unwrap();
        let l = lang(&composed, 6);
        assert!(l.contains(&["a", "c", "d", "a", "c", "e"]));
        assert!(l.contains(&["a", "d", "c", "a", "e", "c"]));
        assert!(l.contains(&["b", "c", "a"]));
        // Second a needs d first (right net) and c first (left net).
        assert!(!l.contains(&["a", "c", "a"]));
        assert!(!l.contains(&["a", "d", "a"]));
    }

    #[test]
    fn theorem_4_5_traces_of_composition() {
        let n1 = fig2_left();
        let n2 = fig2_right();
        let lhs = lang(&parallel(&n1, &n2).unwrap(), 5);
        let rhs = lang(&n1, 5).parallel(&lang(&n2, 5));
        assert!(lhs.eq_up_to(&rhs, 5), "L(N1‖N2) = L(N1)‖L(N2)");
    }

    #[test]
    fn disjoint_alphabets_interleave() {
        let n1 = cycle2("a", "b");
        let n2 = cycle2("c", "d");
        let composed = parallel(&n1, &n2).unwrap();
        let l = lang(&composed, 4);
        assert!(l.contains(&["a", "c", "b", "d"]));
        assert!(l.contains(&["c", "a", "d", "b"]));
    }

    #[test]
    fn declared_but_transitionless_common_label_blocks() {
        // Definition 4.7: a ∈ A1 ∩ A2 with transitions only in N1 yields
        // no fused transition — the action deadlocks.
        let mut n1 = cycle2("a", "b");
        n1.declare_label("x");
        let mut n2 = cycle2("x", "y");
        n2.declare_label("a");
        let composed = parallel(&n1, &n2).unwrap();
        let l = lang(&composed, 3);
        assert!(!l.iter().any(|t| t.contains(&"a") || t.contains(&"x")));
    }

    #[test]
    fn multiple_same_label_pairs_all_fused() {
        // Two a-transitions in each net ⇒ four fused combinations.
        let mut n1: PetriNet<&str> = PetriNet::new();
        let p = n1.add_place("p");
        let q1 = n1.add_place("q1");
        let q2 = n1.add_place("q2");
        n1.add_transition([p], "a", [q1]).unwrap();
        n1.add_transition([p], "a", [q2]).unwrap();
        n1.set_initial(p, 1);
        let n2 = n1.clone();
        let composed = parallel(&n1, &n2).unwrap();
        assert_eq!(composed.transition_count(), 4);
    }

    #[test]
    fn parallel_then_choice_composes() {
        // Algebra terms nest: (a.b)* ‖ (b.c)* offered against (d.e)*.
        let par = parallel(&cycle2("a", "b"), &cycle2("b", "c")).unwrap();
        let alt = choice(&par, &cycle2("d", "e")).unwrap();
        let l = lang(&alt, 3);
        assert!(l.contains(&["a", "b", "c"]));
        assert!(l.contains(&["d", "e", "d"]));
        assert!(!l.contains(&["a", "d"]));
    }

    #[test]
    fn initial_markings_add_up() {
        let n1 = cycle2("a", "b");
        let n2 = cycle2("c", "d");
        let composed = parallel(&n1, &n2).unwrap();
        assert_eq!(composed.initial_marking().total(), 2);
    }

    #[test]
    fn fused_common_path_matches_label_path() {
        // The symbol-space sync resolution must be observationally
        // identical to the materialized common-alphabet path: same net,
        // same provenance, same fused transitions in the same order.
        let pairs = [
            (fig2_left(), fig2_right()),
            (cycle2("a", "b"), cycle2("b", "c")),
            (cycle2("a", "b"), cycle2("c", "d")),
        ];
        for (n1, n2) in pairs {
            let via_labels = parallel_tracked(&n1, &n2, &common_alphabet(&n1, &n2)).unwrap();
            let fused = parallel_tracked_common(&n1, &n2).unwrap();
            assert_eq!(fused.net, via_labels.net);
            assert_eq!(fused.left_places, via_labels.left_places);
            assert_eq!(fused.right_places, via_labels.right_places);
            assert_eq!(
                fused.sync_transitions.len(),
                via_labels.sync_transitions.len()
            );
            for (a, b) in fused
                .sync_transitions
                .iter()
                .zip(&via_labels.sync_transitions)
            {
                assert_eq!(a.label, b.label);
                assert_eq!(a.transition, b.transition);
                assert_eq!(a.left_preset, b.left_preset);
                assert_eq!(a.right_preset, b.right_preset);
            }
        }
    }

    #[test]
    fn custom_sync_set_overrides_intersection() {
        // Both nets know "a" but we force interleaving.
        let n1 = cycle2("a", "b");
        let n2 = cycle2("a", "c");
        let composed = parallel_with_sync(&n1, &n2, &BTreeSet::new()).unwrap();
        let l = lang(&composed, 2);
        assert!(l.contains(&["a", "a"]), "both a's fire independently");
    }
}
