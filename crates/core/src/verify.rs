//! Receptiveness verification (Section 5.3 of the paper).
//!
//! A system must be *receptive* in its inputs: whenever the environment
//! offers an input, the system must be ready to synchronize. The
//! rendez-vous composition itself never mis-fires — but if two modules
//! are synthesized **individually** and then abutted, a module may emit
//! an output its peer cannot yet accept. Proposition 5.5 characterizes
//! the failure on the composed net: a reachable marking in which the
//! *producer's* preset part of a fused transition is fully marked while
//! the *consumer's* part is not.
//!
//! Two checks are provided:
//!
//! * [`check_receptiveness`] — exhaustive, on the reachability graph of
//!   the composition (exact for bounded nets);
//! * [`check_receptiveness_structural_mg`] — the polynomial structural
//!   check of Theorem 5.7 for live-safe strongly-connected **marked
//!   graphs**, via the marked-graph state equation reduced to difference
//!   constraints (Bellman–Ford, no state space).

use crate::parallel::{parallel_tracked_common, Composition};
use cpn_petri::graph::{solve_difference_constraints, DiffConstraint};
use cpn_petri::{
    AlphaSet, Budget, Label, Marking, Meter, PetriError, PetriNet, PlaceId, ReachabilityOptions,
    Sym, Verdict,
};
use std::collections::BTreeSet;
use std::fmt;

/// Which operand acts as the producer (output side) of a failing
/// synchronization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The left operand produces the output.
    Left,
    /// The right operand produces the output.
    Right,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Left => "left",
            Side::Right => "right",
        })
    }
}

/// A receptiveness violation: the producer can commit to `label` while
/// the consumer is not ready.
#[derive(Clone, Debug)]
pub struct ReceptivenessFailure<L: Label> {
    /// The synchronized action that can mis-fire.
    pub label: L,
    /// Which operand is the producer.
    pub producer: Side,
    /// A witness marking of the composed net (available from the
    /// exhaustive check; the structural check proves existence without
    /// materializing one).
    pub witness: Option<Marking>,
}

/// Result of a receptiveness check.
#[derive(Clone, Debug)]
pub struct ReceptivenessReport<L: Label> {
    /// All failures found (empty ⇒ the composition is receptive,
    /// Proposition 5.6).
    pub failures: Vec<ReceptivenessFailure<L>>,
}

impl<L: Label> ReceptivenessReport<L> {
    /// Whether the composition is receptive (no failure possible).
    pub fn is_receptive(&self) -> bool {
        self.failures.is_empty()
    }
}

/// One checkable obligation: a producer-side transition (its preset part
/// in composed-net ids) against **all** consumer-side alternatives for
/// the same label. With several equally-labeled transitions on each side,
/// a failure exists only when the producer is committed and *no*
/// consumer alternative is ready — checking fused pairs individually
/// would flag spurious cross-pairings.
///
/// Obligations identify actions by their composed-net [`Sym`]; the label
/// is resolved only when a failure is reported.
struct Obligation {
    sym: Sym,
    producer: Side,
    producer_pre: BTreeSet<PlaceId>,
    consumer_pres: Vec<BTreeSet<PlaceId>>,
}

impl Obligation {
    fn fail<L: Label>(
        &self,
        comp: &Composition<L>,
        witness: Option<Marking>,
    ) -> ReceptivenessFailure<L> {
        ReceptivenessFailure {
            label: comp.net.resolve(self.sym).clone(),
            producer: self.producer,
            witness,
        }
    }
}

/// Interns an output-label set into the composed net's symbol space;
/// labels the composition never saw cannot mis-fire and are dropped.
fn output_syms<L: Label>(comp: &Composition<L>, outputs: &BTreeSet<L>) -> AlphaSet {
    outputs.iter().filter_map(|l| comp.net.sym_of(l)).collect()
}

fn obligations<L: Label>(
    comp: &Composition<L>,
    left_outputs: &BTreeSet<L>,
    right_outputs: &BTreeSet<L>,
) -> Vec<Obligation> {
    let left_out = output_syms(comp, left_outputs);
    let right_out = output_syms(comp, right_outputs);
    // Group fused transitions by (symbol, producer preset part).
    let mut out: Vec<Obligation> = Vec::new();
    for sync in &comp.sync_transitions {
        let (side, ppre, cpre) = if left_out.contains(sync.sym) {
            (Side::Left, &sync.left_preset, &sync.right_preset)
        } else if right_out.contains(sync.sym) {
            (Side::Right, &sync.right_preset, &sync.left_preset)
        } else {
            continue;
        };
        match out
            .iter_mut()
            .find(|o| o.sym == sync.sym && o.producer == side && o.producer_pre == *ppre)
        {
            Some(o) => o.consumer_pres.push(cpre.clone()),
            None => out.push(Obligation {
                sym: sync.sym,
                producer: side,
                producer_pre: ppre.clone(),
                consumer_pres: vec![cpre.clone()],
            }),
        }
    }
    out
}

/// Exhaustive receptiveness check (Propositions 5.5/5.6).
///
/// Composes `n1 ‖ n2` on their common alphabet and searches the
/// reachability graph for a marking in which, for some fused transition
/// whose label is an output of one side (`left_outputs` /
/// `right_outputs`), the producer's preset part is fully marked but the
/// consumer's is not.
///
/// Labels that are outputs of neither side (pure synchronization between
/// two inputs) are not checked — no side can autonomously commit to them.
///
/// # Errors
///
/// Returns the reachability errors of the composed net (state budget).
///
/// # Example
///
/// ```
/// use cpn_core::check_receptiveness;
/// use cpn_petri::{PetriNet, ReachabilityOptions};
///
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// // A producer that can push `req` twice against a strict alternator.
/// let mut fast: PetriNet<&str> = PetriNet::new();
/// let a0 = fast.add_place("a0");
/// let a1 = fast.add_place("a1");
/// let a2 = fast.add_place("a2");
/// fast.add_transition([a0], "req", [a1])?;
/// fast.add_transition([a1], "req", [a2])?;
/// fast.add_transition([a2], "ack", [a0])?;
/// fast.set_initial(a0, 1);
///
/// let mut strict: PetriNet<&str> = PetriNet::new();
/// let b0 = strict.add_place("b0");
/// let b1 = strict.add_place("b1");
/// strict.add_transition([b0], "req", [b1])?;
/// strict.add_transition([b1], "ack", [b0])?;
/// strict.set_initial(b0, 1);
///
/// let report = check_receptiveness(
///     &fast, &strict, &["req"].into(), &["ack"].into(),
///     &ReachabilityOptions::default(),
/// )?;
/// assert!(!report.is_receptive()); // the second req finds no listener
/// # Ok(())
/// # }
/// ```
pub fn check_receptiveness<L: Label>(
    n1: &PetriNet<L>,
    n2: &PetriNet<L>,
    left_outputs: &BTreeSet<L>,
    right_outputs: &BTreeSet<L>,
    options: &ReachabilityOptions,
) -> Result<ReceptivenessReport<L>, PetriError> {
    let comp = parallel_tracked_common(n1, n2)?;
    check_receptiveness_composed(&comp, left_outputs, right_outputs, options)
}

/// The exhaustive check on an already-built tracked composition.
///
/// # Errors
///
/// Returns the reachability errors of the composed net (state budget).
pub fn check_receptiveness_composed<L: Label>(
    comp: &Composition<L>,
    left_outputs: &BTreeSet<L>,
    right_outputs: &BTreeSet<L>,
    options: &ReachabilityOptions,
) -> Result<ReceptivenessReport<L>, PetriError> {
    match check_receptiveness_composed_bounded(
        comp,
        left_outputs,
        right_outputs,
        &Budget::states(options.max_states),
    ) {
        Verdict::Holds => Ok(ReceptivenessReport {
            failures: Vec::new(),
        }),
        Verdict::Fails(report) => Ok(report),
        Verdict::Unknown(_) => Err(PetriError::StateBudgetExceeded {
            budget: options.max_states,
        }),
    }
}

/// Budgeted exhaustive receptiveness check (Propositions 5.5/5.6),
/// degrading gracefully.
///
/// Explores the composition's reachability graph under `budget` and
/// returns a tri-state [`Verdict`]:
///
/// * `Fails(report)` — a violation was found; witnesses live on the
///   *explored prefix* of the state space, so they are definite even
///   when exploration was cut short.
/// * `Holds` — the full state space was explored and no violation
///   exists.
/// * `Unknown(stats)` — the budget ran out with no violation on the
///   explored prefix; a larger budget could answer either way.
///
/// # Errors
///
/// Propagates [`PetriError`] from composing the operands (impossible for
/// well-formed nets).
pub fn check_receptiveness_bounded<L: Label>(
    n1: &PetriNet<L>,
    n2: &PetriNet<L>,
    left_outputs: &BTreeSet<L>,
    right_outputs: &BTreeSet<L>,
    budget: &Budget,
) -> Result<Verdict<ReceptivenessReport<L>>, PetriError> {
    let comp = parallel_tracked_common(n1, n2)?;
    Ok(check_receptiveness_composed_bounded(
        &comp,
        left_outputs,
        right_outputs,
        budget,
    ))
}

/// The budgeted exhaustive check on an already-built tracked
/// composition; see [`check_receptiveness_bounded`].
pub fn check_receptiveness_composed_bounded<L: Label>(
    comp: &Composition<L>,
    left_outputs: &BTreeSet<L>,
    right_outputs: &BTreeSet<L>,
    budget: &Budget,
) -> Verdict<ReceptivenessReport<L>> {
    let obs = obligations(comp, left_outputs, right_outputs);
    let built = comp.net.reachability_bounded(budget);
    scan_obligations(comp, &obs, built)
}

/// Stubborn-set variant of [`check_receptiveness_bounded`]: same
/// tri-state verdict, typically a fraction of the states.
///
/// The composition is explored with partial-order reduction
/// ([`PetriNet::reachability_stubborn_bounded`]), watching exactly the
/// places the obligations read (every producer and consumer preset).
/// Every transition touching a watched place is forced into each
/// stubborn set, so the reduced graph reaches the same set of watched
/// valuations as the full graph — `Holds`/`Fails` answers and the
/// failing label set agree with the exhaustive check exactly. Witness
/// markings are genuine reachable failure states but may differ from the
/// full explorer's, and `Unknown` budgets are not comparable
/// state-for-state between the two explorers.
///
/// # Errors
///
/// Propagates [`PetriError`] from composing the operands (impossible for
/// well-formed nets).
pub fn check_receptiveness_stubborn_bounded<L: Label>(
    n1: &PetriNet<L>,
    n2: &PetriNet<L>,
    left_outputs: &BTreeSet<L>,
    right_outputs: &BTreeSet<L>,
    budget: &Budget,
) -> Result<Verdict<ReceptivenessReport<L>>, PetriError> {
    let comp = parallel_tracked_common(n1, n2)?;
    Ok(check_receptiveness_composed_stubborn_bounded(
        &comp,
        left_outputs,
        right_outputs,
        budget,
    ))
}

/// The stubborn-set check on an already-built tracked composition; see
/// [`check_receptiveness_stubborn_bounded`].
pub fn check_receptiveness_composed_stubborn_bounded<L: Label>(
    comp: &Composition<L>,
    left_outputs: &BTreeSet<L>,
    right_outputs: &BTreeSet<L>,
    budget: &Budget,
) -> Verdict<ReceptivenessReport<L>> {
    let obs = obligations(comp, left_outputs, right_outputs);
    let mut watched: BTreeSet<PlaceId> = BTreeSet::new();
    for ob in &obs {
        watched.extend(ob.producer_pre.iter().copied());
        for cpre in &ob.consumer_pres {
            watched.extend(cpre.iter().copied());
        }
    }
    let watched: Vec<PlaceId> = watched.into_iter().collect();
    let built = comp.net.reachability_stubborn_bounded(budget, &watched);
    scan_obligations(comp, &obs, built)
}

/// Shared failure scan: probes every explored marking against every
/// obligation and folds the exploration outcome into a [`Verdict`].
fn scan_obligations<L: Label>(
    comp: &Composition<L>,
    obs: &[Obligation],
    built: cpn_petri::Bounded<cpn_petri::ReachabilityGraph>,
) -> Verdict<ReceptivenessReport<L>> {
    let exhausted = built.exhausted().copied();
    let rg = built.value();
    let mut failures = Vec::new();
    for ob in obs {
        let witness = rg.state_ids().find_map(|s| {
            // Scan the raw arena row; materialize a `Marking` only for
            // the (rare) witness itself.
            let m = rg.marking_slice(s);
            let producer_ready = ob.producer_pre.iter().all(|&p| m[p.index()] > 0);
            let some_consumer_ready = ob
                .consumer_pres
                .iter()
                .any(|cpre| cpre.iter().all(|&p| m[p.index()] > 0));
            if producer_ready && !some_consumer_ready {
                Some(rg.marking(s))
            } else {
                None
            }
        });
        if let Some(w) = witness {
            failures.push(ob.fail(comp, Some(w)));
        }
    }
    if !failures.is_empty() {
        Verdict::Fails(ReceptivenessReport { failures })
    } else {
        match exhausted {
            None => Verdict::Holds,
            Some(info) => Verdict::Unknown(info),
        }
    }
}

/// Structural receptiveness check for **marked graphs** (Theorem 5.7):
/// polynomial in the net size, no state-space construction.
///
/// The composed net must be a marked graph (every place with exactly one
/// producer and one consumer). For live strongly-connected marked graphs
/// the state equation `M = M0 + C·σ, M ≥ 0` characterizes reachability
/// exactly, so "producer part markable while a consumer place is empty"
/// becomes a system of difference constraints over firing counts, decided
/// by Bellman–Ford:
///
/// * for every place `p`: `σ(cons(p)) − σ(prod(p)) ≤ M0(p)`  (`M(p) ≥ 0`)
/// * for every producer-preset place `p`:
///   `σ(cons(p)) − σ(prod(p)) ≤ M0(p) − 1`  (`M(p) ≥ 1`)
/// * for the probed consumer place `p₀`:
///   `σ(prod(p₀)) − σ(cons(p₀)) ≤ −M0(p₀)`  (`M(p₀) = 0`)
///
/// On non-live compositions the check is conservative (it may report a
/// failure that liveness would mask); the paper's Proposition 5.6 reads
/// failures the same way — "a failure is guaranteed to be *possible*".
///
/// # Errors
///
/// * [`PetriError::NotMarkedGraph`] if the composed net is not a marked
///   graph.
pub fn check_receptiveness_structural_mg<L: Label>(
    n1: &PetriNet<L>,
    n2: &PetriNet<L>,
    left_outputs: &BTreeSet<L>,
    right_outputs: &BTreeSet<L>,
) -> Result<ReceptivenessReport<L>, PetriError> {
    let comp = parallel_tracked_common(n1, n2)?;
    check_receptiveness_structural_mg_composed(&comp, left_outputs, right_outputs)
}

/// The structural check on an already-built tracked composition.
///
/// # Errors
///
/// * [`PetriError::NotMarkedGraph`] if the composed net is not a marked
///   graph.
pub fn check_receptiveness_structural_mg_composed<L: Label>(
    comp: &Composition<L>,
    left_outputs: &BTreeSet<L>,
    right_outputs: &BTreeSet<L>,
) -> Result<ReceptivenessReport<L>, PetriError> {
    let net = &comp.net;
    let flows = net.marked_graph_flows()?;
    let m0 = net.initial_marking();
    let n_vars = net.transition_count();

    // Base constraints: M(p) ≥ 0 for every place.
    let base: Vec<DiffConstraint> = flows
        .iter()
        .enumerate()
        .map(|(p, &(prod, cons))| DiffConstraint {
            a: cons.index(),
            b: prod.index(),
            w: i64::from(m0.as_slice()[p]),
        })
        .collect();

    let mut failures = Vec::new();
    for ob in obligations(comp, left_outputs, right_outputs) {
        // A failure marking must starve *every* consumer alternative:
        // pick one empty place per consumer preset (places the producer
        // needs marked are excluded — a consumer whose preset lies inside
        // the producer's can never be unready while the producer is).
        let choice_sets: Vec<Vec<PlaceId>> = ob
            .consumer_pres
            .iter()
            .map(|cpre| {
                cpre.iter()
                    .copied()
                    .filter(|p| !ob.producer_pre.contains(p))
                    .collect::<Vec<_>>()
            })
            .collect();
        if choice_sets.iter().any(Vec::is_empty) {
            // Some consumer is ready whenever the producer is: receptive.
            continue;
        }
        let combos: usize = choice_sets.iter().map(Vec::len).product();
        if combos > 4096 {
            return Err(PetriError::Precondition(format!(
                "receptiveness obligation for {} needs {combos} starvation \
                 combinations; beyond the structural check's budget",
                comp.net.resolve(ob.sym)
            )));
        }
        let mut found = false;
        let mut pick = vec![0usize; choice_sets.len()];
        'combos: loop {
            let mut cs = base.clone();
            for &p in &ob.producer_pre {
                let (prod, cons) = flows[p.index()];
                cs.push(DiffConstraint {
                    a: cons.index(),
                    b: prod.index(),
                    w: i64::from(m0.tokens(p)) - 1,
                });
            }
            for (ci, &k) in pick.iter().enumerate() {
                let p0 = choice_sets[ci][k];
                let (prod0, cons0) = flows[p0.index()];
                cs.push(DiffConstraint {
                    a: prod0.index(),
                    b: cons0.index(),
                    w: -i64::from(m0.tokens(p0)),
                });
            }
            if solve_difference_constraints(n_vars, &cs).is_some() {
                found = true;
                break 'combos;
            }
            // Next combination.
            let mut i = 0;
            loop {
                if i == pick.len() {
                    break 'combos;
                }
                pick[i] += 1;
                if pick[i] < choice_sets[i].len() {
                    break;
                }
                pick[i] = 0;
                i += 1;
            }
        }
        if found {
            failures.push(ob.fail(comp, None));
        }
    }
    Ok(ReceptivenessReport { failures })
}

/// Budgeted structural receptiveness check (Theorem 5.7), degrading
/// gracefully.
///
/// Where [`check_receptiveness_structural_mg`] hard-errors when an
/// obligation needs too many starvation combinations, this variant
/// meters each difference-constraint solve against `budget.max_states`
/// and answers `Unknown(stats)` when the budget runs out. Failures found
/// before exhaustion are definite.
///
/// # Errors
///
/// [`PetriError::NotMarkedGraph`] (wrapped in
/// [`CoreError`](crate::CoreError)) if the composition is not a marked
/// graph — that is a precondition violation, not a budget problem.
pub fn check_receptiveness_structural_mg_bounded<L: Label>(
    n1: &PetriNet<L>,
    n2: &PetriNet<L>,
    left_outputs: &BTreeSet<L>,
    right_outputs: &BTreeSet<L>,
    budget: &Budget,
) -> Result<Verdict<ReceptivenessReport<L>>, crate::CoreError> {
    let comp = parallel_tracked_common(n1, n2).map_err(crate::CoreError::Net)?;
    check_receptiveness_structural_mg_composed_bounded(&comp, left_outputs, right_outputs, budget)
}

/// The budgeted structural check on an already-built tracked
/// composition; see [`check_receptiveness_structural_mg_bounded`].
///
/// # Errors
///
/// [`PetriError::NotMarkedGraph`] wrapped in
/// [`CoreError`](crate::CoreError).
pub fn check_receptiveness_structural_mg_composed_bounded<L: Label>(
    comp: &Composition<L>,
    left_outputs: &BTreeSet<L>,
    right_outputs: &BTreeSet<L>,
    budget: &Budget,
) -> Result<Verdict<ReceptivenessReport<L>>, crate::CoreError> {
    let net = &comp.net;
    let flows = net.marked_graph_flows()?;
    let m0 = net.initial_marking();
    let n_vars = net.transition_count();
    let mut meter = Meter::new(budget);

    let base: Vec<DiffConstraint> = flows
        .iter()
        .enumerate()
        .map(|(p, &(prod, cons))| DiffConstraint {
            a: cons.index(),
            b: prod.index(),
            w: i64::from(m0.as_slice()[p]),
        })
        .collect();

    let mut failures = Vec::new();
    'obligations: for ob in obligations(comp, left_outputs, right_outputs) {
        let choice_sets: Vec<Vec<PlaceId>> = ob
            .consumer_pres
            .iter()
            .map(|cpre| {
                cpre.iter()
                    .copied()
                    .filter(|p| !ob.producer_pre.contains(p))
                    .collect::<Vec<_>>()
            })
            .collect();
        if choice_sets.iter().any(Vec::is_empty) {
            continue;
        }
        let mut found = false;
        let mut pick = vec![0usize; choice_sets.len()];
        'combos: loop {
            // Each combination costs one difference-constraint solve.
            if !meter.take_state() {
                break 'obligations;
            }
            let mut cs = base.clone();
            for &p in &ob.producer_pre {
                let (prod, cons) = flows[p.index()];
                cs.push(DiffConstraint {
                    a: cons.index(),
                    b: prod.index(),
                    w: i64::from(m0.tokens(p)) - 1,
                });
            }
            for (ci, &k) in pick.iter().enumerate() {
                let p0 = choice_sets[ci][k];
                let (prod0, cons0) = flows[p0.index()];
                cs.push(DiffConstraint {
                    a: prod0.index(),
                    b: cons0.index(),
                    w: -i64::from(m0.tokens(p0)),
                });
            }
            if solve_difference_constraints(n_vars, &cs).is_some() {
                found = true;
                break 'combos;
            }
            let mut i = 0;
            loop {
                if i == pick.len() {
                    break 'combos;
                }
                pick[i] += 1;
                if pick[i] < choice_sets[i].len() {
                    break;
                }
                pick[i] = 0;
                i += 1;
            }
        }
        if found {
            failures.push(ob.fail(comp, None));
        }
    }

    Ok(if !failures.is_empty() {
        Verdict::Fails(ReceptivenessReport { failures })
    } else {
        match meter.report() {
            None => Verdict::Holds,
            Some(info) => Verdict::Unknown(info),
        }
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// A well-behaved handshake: producer emits `req`, waits for `ack`;
    /// consumer waits for `req`, emits `ack`. Receptive by construction.
    fn handshake() -> (PetriNet<&'static str>, PetriNet<&'static str>) {
        let mut prod: PetriNet<&str> = PetriNet::new();
        let a0 = prod.add_place("a0");
        let a1 = prod.add_place("a1");
        prod.add_transition([a0], "req", [a1]).unwrap();
        prod.add_transition([a1], "ack", [a0]).unwrap();
        prod.set_initial(a0, 1);

        let mut cons: PetriNet<&str> = PetriNet::new();
        let b0 = cons.add_place("b0");
        let b1 = cons.add_place("b1");
        cons.add_transition([b0], "req", [b1]).unwrap();
        cons.add_transition([b1], "ack", [b0]).unwrap();
        cons.set_initial(b0, 1);
        (prod, cons)
    }

    /// A broken pair: the producer can emit `req` twice before any `ack`,
    /// but the consumer insists on strict alternation.
    fn broken() -> (PetriNet<&'static str>, PetriNet<&'static str>) {
        let mut prod: PetriNet<&str> = PetriNet::new();
        // (req.req.ack)* — producer double-fires.
        let a0 = prod.add_place("a0");
        let a1 = prod.add_place("a1");
        let a2 = prod.add_place("a2");
        prod.add_transition([a0], "req", [a1]).unwrap();
        prod.add_transition([a1], "req", [a2]).unwrap();
        prod.add_transition([a2], "ack", [a0]).unwrap();
        prod.set_initial(a0, 1);

        let mut cons: PetriNet<&str> = PetriNet::new();
        let b0 = cons.add_place("b0");
        let b1 = cons.add_place("b1");
        cons.add_transition([b0], "req", [b1]).unwrap();
        cons.add_transition([b1], "ack", [b0]).unwrap();
        cons.set_initial(b0, 1);
        (prod, cons)
    }

    #[test]
    fn receptive_handshake_passes_exhaustive() {
        let (p, c) = handshake();
        let report = check_receptiveness(
            &p,
            &c,
            &["req"].into(),
            &["ack"].into(),
            &ReachabilityOptions::default(),
        )
        .unwrap();
        assert!(report.is_receptive(), "{:?}", report.failures);
    }

    #[test]
    fn broken_pair_fails_exhaustive() {
        let (p, c) = broken();
        let report = check_receptiveness(
            &p,
            &c,
            &["req"].into(),
            &["ack"].into(),
            &ReachabilityOptions::default(),
        )
        .unwrap();
        assert!(!report.is_receptive());
        // The producer's early second `req` is the primary failure; the
        // consumer's `ack` offered to an unready producer is also found.
        let req_failure = report
            .failures
            .iter()
            .find(|f| f.label == "req")
            .expect("req failure reported");
        assert_eq!(req_failure.producer, Side::Left);
        assert!(req_failure.witness.is_some());
    }

    #[test]
    fn receptive_handshake_passes_structural() {
        let (p, c) = handshake();
        let report =
            check_receptiveness_structural_mg(&p, &c, &["req"].into(), &["ack"].into()).unwrap();
        assert!(report.is_receptive(), "{:?}", report.failures);
    }

    /// A marked-graph mismatch: the consumer starts half a handshake
    /// ahead (expects `ack` before any `req`), so the producer can offer
    /// `req` when the consumer is not ready. Unlike [`broken`], the
    /// composition stays a marked graph, so the structural check applies.
    fn broken_mg() -> (PetriNet<&'static str>, PetriNet<&'static str>) {
        let mut prod: PetriNet<&str> = PetriNet::new();
        let a0 = prod.add_place("a0");
        let a1 = prod.add_place("a1");
        prod.add_transition([a0], "req", [a1]).unwrap();
        prod.add_transition([a1], "ack", [a0]).unwrap();
        prod.set_initial(a0, 1);

        let mut cons: PetriNet<&str> = PetriNet::new();
        let b0 = cons.add_place("b0");
        let b1 = cons.add_place("b1");
        cons.add_transition([b0], "req", [b1]).unwrap();
        cons.add_transition([b1], "ack", [b0]).unwrap();
        cons.set_initial(b1, 1); // phase offset
        (prod, cons)
    }

    #[test]
    fn broken_pair_fails_structural() {
        let (p, c) = broken_mg();
        let report =
            check_receptiveness_structural_mg(&p, &c, &["req"].into(), &["ack"].into()).unwrap();
        assert!(!report.is_receptive());
        assert!(report.failures.iter().any(|f| f.label == "req"));
        // The exhaustive check agrees.
        let ex = check_receptiveness(
            &p,
            &c,
            &["req"].into(),
            &["ack"].into(),
            &ReachabilityOptions::default(),
        )
        .unwrap();
        assert!(!ex.is_receptive());
    }

    #[test]
    fn structural_rejects_non_marked_graph() {
        let (mut p, c) = handshake();
        // Add a choice to the producer: no longer a marked graph.
        let extra = p.add_place("extra");
        let a0 = cpn_petri::PlaceId::from_index(0);
        p.add_transition([a0], "req", [extra]).unwrap();
        let err = check_receptiveness_structural_mg(&p, &c, &["req"].into(), &["ack"].into())
            .unwrap_err();
        assert_eq!(err, PetriError::NotMarkedGraph);
    }

    #[test]
    fn unchecked_labels_are_ignored() {
        // "req" declared as output of neither side: nothing to verify.
        let (p, c) = broken();
        let report = check_receptiveness(
            &p,
            &c,
            &BTreeSet::new(),
            &BTreeSet::new(),
            &ReachabilityOptions::default(),
        )
        .unwrap();
        assert!(report.is_receptive());
    }

    #[test]
    fn structural_and_exhaustive_agree_on_pipelines() {
        // Pipelines of depth k with matched/mismatched slack.
        for slack in 1u32..4 {
            let mut prod: PetriNet<String> = PetriNet::new();
            // Producer ring with `slack` tokens: can run ahead by `slack`.
            let pp: Vec<_> = (0..4).map(|i| prod.add_place(format!("p{i}"))).collect();
            for i in 0..4 {
                let lbl = if i % 2 == 0 { "req" } else { "ack" };
                prod.add_transition([pp[i]], format!("{lbl}{}", i / 2), [pp[(i + 1) % 4]])
                    .unwrap();
            }
            prod.set_initial(pp[0], 1);

            let mut cons: PetriNet<String> = PetriNet::new();
            let cp: Vec<_> = (0..4).map(|i| cons.add_place(format!("c{i}"))).collect();
            for i in 0..4 {
                let lbl = if i % 2 == 0 { "req" } else { "ack" };
                cons.add_transition([cp[i]], format!("{lbl}{}", i / 2), [cp[(i + 1) % 4]])
                    .unwrap();
            }
            // Consumer offset start: mismatch when slack offsets differ.
            cons.set_initial(cp[(slack as usize) % 4], 1);

            let louts: BTreeSet<String> = ["req0".to_string(), "req1".to_string()].into();
            let routs: BTreeSet<String> = ["ack0".to_string(), "ack1".to_string()].into();
            let ex = check_receptiveness(
                &prod,
                &cons,
                &louts,
                &routs,
                &ReachabilityOptions::default(),
            )
            .unwrap();
            let st = check_receptiveness_structural_mg(&prod, &cons, &louts, &routs).unwrap();
            assert_eq!(
                ex.is_receptive(),
                st.is_receptive(),
                "slack {slack}: exhaustive {:?} vs structural {:?}",
                ex.failures,
                st.failures
            );
        }
    }
}
