//! Finite-depth trace-language semantics for labeled Petri nets.
//!
//! Section 4 of de Jong & Lin (DAC 1994) defines the semantics of every
//! algebra operator through the **trace set** of the net (Definition 4.1):
//!
//! > `L(N) = { a1 a2 … | ∃M' : (M0, <a1, a2, …>, M') ∈ RG(N) }`
//!
//! and proves each net-level construction trace-preserving, e.g.
//! `L(N1‖N2) = L(N1)‖L(N2)` (Theorem 4.5) and
//! `L(hide(N,a)) = hide(L(N),a)` (Theorem 4.7).
//!
//! This crate implements those *language-level* operators directly
//! (Definitions 4.8/4.9 for synchronized parallel composition, projection
//! and hiding, renaming, union) on **finite-depth** prefix-closed trace
//! sets, so that the net-level algebra in `cpn-core` can be validated
//! against the paper's equations by exhaustive comparison up to a depth —
//! the crate is the *oracle* for the algebra's property tests, and is also
//! useful on its own for inspecting small specifications.
//!
//! A note on the empty trace: the paper states `L(nil) = ∅` (Prop 4.1)
//! while also defining `RG` reflexively, which puts `ε` in every trace
//! set. We follow the reflexive reading — every [`Language`] contains `ε`
//! and is prefix-closed — and read Prop 4.1 as "nil has no non-empty
//! traces". All the algebraic laws hold verbatim under this reading.
//!
//! # Example
//!
//! ```
//! use cpn_petri::PetriNet;
//! use cpn_trace::Language;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net: PetriNet<&str> = PetriNet::new();
//! let p = net.add_place("p");
//! let q = net.add_place("q");
//! net.add_transition([p], "a", [q])?;
//! net.add_transition([q], "b", [p])?;
//! net.set_initial(p, 1);
//!
//! let lang = Language::from_net(&net, 4, 100_000)?;
//! assert!(lang.contains(&["a", "b", "a", "b"][..]));
//! assert!(!lang.contains(&["b"][..]));
//! # Ok(())
//! # }
//! ```

pub mod language;
pub mod ops;

pub use language::{Language, TraceError};
