//! Language-level operators: the right-hand sides of the paper's
//! trace-preservation theorems.
//!
//! * `rename(L, b→c)` — Prop 4.3.
//! * `L1 ∪ L2` — Prop 4.4 (choice).
//! * `{ε, a} ∪ a.L` — Prop 4.2 (action prefix).
//! * `project(L, A)` / `hide(L, a)` — Section 4.4.
//! * `L1 ‖ L2` — Definitions 4.8/4.9 (synchronized shuffle).

use crate::language::Language;
use cpn_petri::Label;
use std::collections::BTreeSet;

impl<L: Label> Language<L> {
    /// Renames labels through `f` (Prop 4.3 generalized to arbitrary
    /// relabelings). Distinct labels may collapse.
    pub fn rename(&self, mut f: impl FnMut(&L) -> L) -> Language<L> {
        let (alphabet, traces, depth) = self.raw_parts();
        let new_alpha: BTreeSet<L> = alphabet.iter().map(&mut f).collect();
        let new_traces: BTreeSet<Vec<L>> = traces
            .iter()
            .map(|t| t.iter().map(&mut f).collect())
            .collect();
        Language::from_raw(new_alpha, new_traces, depth)
    }

    /// The union of two languages (the trace semantics of choice,
    /// Prop 4.4). The result's exactness depth is the minimum of the two.
    pub fn union(&self, other: &Language<L>) -> Language<L> {
        let (a1, t1, d1) = self.raw_parts();
        let (a2, t2, d2) = other.raw_parts();
        let depth = d1.min(d2);
        let alphabet: BTreeSet<L> = a1.union(a2).cloned().collect();
        let traces: BTreeSet<Vec<L>> = t1
            .iter()
            .chain(t2.iter())
            .filter(|t| t.len() <= depth)
            .cloned()
            .collect();
        Language::from_raw(alphabet, traces, depth)
    }

    /// Action prefix: `{ε} ∪ {a}·L` (Prop 4.2). The exactness depth grows
    /// by one because every trace gained a leading action.
    pub fn prefix_action(&self, a: L) -> Language<L> {
        let (alphabet, traces, depth) = self.raw_parts();
        let mut new_alpha = alphabet.clone();
        new_alpha.insert(a.clone());
        let mut new_traces: BTreeSet<Vec<L>> = BTreeSet::new();
        new_traces.insert(Vec::new());
        for t in traces {
            let mut nt = Vec::with_capacity(t.len() + 1);
            nt.push(a.clone());
            nt.extend(t.iter().cloned());
            new_traces.insert(nt);
        }
        Language::from_raw(new_alpha, new_traces, depth + 1)
    }

    /// Projection onto a label set: deletes every action not in `keep`
    /// from every trace.
    ///
    /// The resulting set is exact only up to the *original* depth in a
    /// weak sense: a short projected trace may have longer witnesses that
    /// were beyond the horizon. Callers comparing against a projected
    /// language should extract the source language at a generous depth
    /// and [`truncate`](Language::truncate) both sides (exactly what the
    /// algebra property tests do).
    pub fn project(&self, keep: &BTreeSet<L>) -> Language<L> {
        let (alphabet, traces, depth) = self.raw_parts();
        let new_alpha: BTreeSet<L> = alphabet.intersection(keep).cloned().collect();
        let new_traces: BTreeSet<Vec<L>> = traces
            .iter()
            .map(|t| {
                t.iter()
                    .filter(|l| keep.contains(l))
                    .cloned()
                    .collect::<Vec<L>>()
            })
            .collect();
        Language::from_raw(new_alpha, new_traces, depth)
    }

    /// Hiding of a label set: `hide(L, A) = project(L, alphabet \ A)`
    /// (Section 4.4: "hiding is opposite to projection").
    pub fn hide(&self, hidden: &BTreeSet<L>) -> Language<L> {
        let keep: BTreeSet<L> = self
            .alphabet()
            .iter()
            .filter(|l| !hidden.contains(l))
            .cloned()
            .collect();
        self.project(&keep)
    }

    /// Synchronized parallel composition (Definitions 4.8/4.9): the
    /// result contains exactly the traces over `A1 ∪ A2` whose projection
    /// onto each alphabet lies in the respective language.
    ///
    /// For prefix-closed languages this is equivalent to the paper's
    /// definition via shuffles of trace pairs, and is computed by a
    /// breadth-first extension so the cost is proportional to the result
    /// size.
    ///
    /// # Example
    ///
    /// ```
    /// use cpn_trace::Language;
    /// use std::collections::BTreeSet;
    ///
    /// // a.c over {a,c} against b.c over {b,c}: c is a rendez-vous.
    /// let l1 = Language::from_traces(BTreeSet::from(["a", "c"]), [vec!["a", "c"]], 4);
    /// let l2 = Language::from_traces(BTreeSet::from(["b", "c"]), [vec!["b", "c"]], 4);
    /// let p = l1.parallel(&l2);
    /// assert!(p.contains(&["a", "b", "c"][..]));
    /// assert!(!p.contains(&["a", "c"][..])); // c blocked until b happened
    /// ```
    pub fn parallel(&self, other: &Language<L>) -> Language<L> {
        let (a1, t1, d1) = self.raw_parts();
        let (a2, t2, d2) = other.raw_parts();
        let depth = d1.min(d2);
        let union_alpha: BTreeSet<L> = a1.union(a2).cloned().collect();
        // Hoisted membership rows: which side(s) each union label belongs
        // to, computed once instead of twice per frontier extension.
        let alpha_rows: Vec<(&L, bool, bool)> = union_alpha
            .iter()
            .map(|a| (a, a1.contains(a), a2.contains(a)))
            .collect();

        let mut result: BTreeSet<Vec<L>> = BTreeSet::new();
        result.insert(Vec::new());
        // Frontier traces paired with their two projections, so membership
        // checks are O(log n) set lookups.
        let mut frontier: Vec<(Vec<L>, Vec<L>, Vec<L>)> =
            vec![(Vec::new(), Vec::new(), Vec::new())];

        // Scratch buffers for the candidate projections and trace: the
        // rejected candidates (the common case) never allocate — cloning
        // happens only when a candidate actually extends the language.
        let mut scratch1: Vec<L> = Vec::new();
        let mut scratch2: Vec<L> = Vec::new();
        let mut scratch_t: Vec<L> = Vec::new();

        for _ in 0..depth {
            let mut next = Vec::new();
            for (t, p1, p2) in &frontier {
                for &(a, in1, in2) in &alpha_rows {
                    // A union label belongs to at least one side; a side
                    // that has it must accept the extended projection.
                    if in1 {
                        scratch1.clear();
                        scratch1.reserve(p1.len() + 1);
                        scratch1.extend_from_slice(p1);
                        scratch1.push(a.clone());
                        if !t1.contains(scratch1.as_slice()) {
                            continue;
                        }
                    }
                    if in2 {
                        scratch2.clear();
                        scratch2.reserve(p2.len() + 1);
                        scratch2.extend_from_slice(p2);
                        scratch2.push(a.clone());
                        if !t2.contains(scratch2.as_slice()) {
                            continue;
                        }
                    }
                    scratch_t.clear();
                    scratch_t.reserve(t.len() + 1);
                    scratch_t.extend_from_slice(t);
                    scratch_t.push(a.clone());
                    if result.contains(scratch_t.as_slice()) {
                        continue;
                    }
                    result.insert(scratch_t.clone());
                    let q1 = if in1 { scratch1.clone() } else { p1.clone() };
                    let q2 = if in2 { scratch2.clone() } else { p2.clone() };
                    next.push((scratch_t.clone(), q1, q2));
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }

        Language::from_raw(union_alpha, result, depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn lang(
        alpha: &[&'static str],
        traces: &[&[&'static str]],
        depth: usize,
    ) -> Language<&'static str> {
        Language::from_traces(
            alpha.iter().copied().collect(),
            traces.iter().map(|t| t.to_vec()),
            depth,
        )
    }

    #[test]
    fn rename_replaces_labels() {
        let l = lang(&["a", "b"], &[&["a", "b"]], 4);
        let r = l.rename(|x| if *x == "a" { "c" } else { *x });
        assert!(r.contains(&["c", "b"]));
        assert!(!r.contains(&["a", "b"]));
        assert!(r.alphabet().contains(&"c"));
        assert!(!r.alphabet().contains(&"a"));
    }

    #[test]
    fn rename_can_collapse() {
        let l = lang(&["a", "b"], &[&["a"], &["b"]], 3);
        let r = l.rename(|_| "x");
        assert_eq!(r.alphabet().len(), 1);
        assert!(r.contains(&["x"]));
        assert_eq!(r.len(), 2); // ε and x
    }

    #[test]
    fn union_is_choice_semantics() {
        let l1 = lang(&["a"], &[&["a"]], 3);
        let l2 = lang(&["b"], &[&["b"]], 3);
        let u = l1.union(&l2);
        assert!(u.contains(&["a"]));
        assert!(u.contains(&["b"]));
        assert_eq!(u.alphabet().len(), 2);
    }

    #[test]
    fn prefix_action_adds_head() {
        let l = lang(&["b"], &[&["b"]], 2);
        let p = l.prefix_action("a");
        assert!(p.contains(&[]));
        assert!(p.contains(&["a"]));
        assert!(p.contains(&["a", "b"]));
        assert!(!p.contains(&["b"]));
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn project_deletes_other_labels() {
        let l = lang(&["a", "b"], &[&["a", "b", "a"]], 5);
        let keep: BTreeSet<&str> = ["a"].into();
        let p = l.project(&keep);
        assert!(p.contains(&["a", "a"]));
        assert!(!p.alphabet().contains(&"b"));
    }

    #[test]
    fn hide_is_complement_projection() {
        let l = lang(&["a", "b"], &[&["a", "b", "a"]], 5);
        let hidden: BTreeSet<&str> = ["b"].into();
        let keep: BTreeSet<&str> = ["a"].into();
        assert_eq!(l.hide(&hidden), l.project(&keep));
    }

    #[test]
    fn parallel_synchronizes_common_labels() {
        // L1 over {a,c}: a then c. L2 over {b,c}: b then c.
        // c is common: must happen in both; a,b interleave.
        let l1 = lang(&["a", "c"], &[&["a", "c"]], 4);
        let l2 = lang(&["b", "c"], &[&["b", "c"]], 4);
        let p = l1.parallel(&l2);
        assert!(p.contains(&["a", "b", "c"]));
        assert!(p.contains(&["b", "a", "c"]));
        assert!(!p.contains(&["c"]), "c needs both a and b first");
        assert!(!p.contains(&["a", "c"]), "c blocked until b");
    }

    #[test]
    fn parallel_unsynchronizable_traces_die() {
        // a.b.c vs c.a.b over the same alphabet: no common extension
        // beyond ε (the paper's example after Def 4.8).
        let l1 = lang(&["a", "b", "c"], &[&["a", "b", "c"]], 4);
        let l2 = lang(&["a", "b", "c"], &[&["c", "a", "b"]], 4);
        let p = l1.parallel(&l2);
        assert_eq!(p.len(), 1, "only ε survives: {p}");
    }

    #[test]
    fn parallel_disjoint_alphabets_is_shuffle() {
        let l1 = lang(&["a"], &[&["a"]], 3);
        let l2 = lang(&["b"], &[&["b"]], 3);
        let p = l1.parallel(&l2);
        assert!(p.contains(&["a", "b"]));
        assert!(p.contains(&["b", "a"]));
    }

    #[test]
    fn parallel_with_self_is_identity() {
        let l = lang(&["a", "b"], &[&["a", "b"], &["b"]], 3);
        let p = l.parallel(&l);
        assert!(p.eq_up_to(&l, 3));
    }

    #[test]
    fn parallel_blocks_on_missing_common_label() {
        // "c" is in both alphabets but only l1 ever does it: blocked.
        let l1 = lang(&["a", "c"], &[&["a", "c"]], 3);
        let l2 = lang(&["b", "c"], &[&["b"]], 3);
        let p = l1.parallel(&l2);
        assert!(p.contains(&["a", "b"]));
        assert!(!p.iter().any(|t| t.contains(&"c")));
    }
}
