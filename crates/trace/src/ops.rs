//! Language-level operators: the right-hand sides of the paper's
//! trace-preservation theorems.
//!
//! * `rename(L, b→c)` — Prop 4.3.
//! * `L1 ∪ L2` / `L1 ∩ L2` — Prop 4.4 (choice) and its dual.
//! * `{ε, a} ∪ a.L` — Prop 4.2 (action prefix).
//! * `project(L, A)` / `hide(L, a)` — Section 4.4.
//! * `L1 ‖ L2` — Definitions 4.8/4.9 (synchronized shuffle).
//!
//! All operators run on the symbol-encoded representation: alphabet and
//! keep/hide sets are [`AlphaSet`] bitsets, traces are `Vec<Sym>`, and
//! cross-language operators remap the other operand's symbols **once**
//! through [`Interner::merge`](cpn_petri::Interner::merge) instead of
//! cloning labels per trace element.

use crate::language::Language;
use cpn_petri::{AlphaSet, Interner, Label, Sym};
use std::collections::BTreeSet;

/// Remaps every trace of `traces` through the symbol table `map`.
fn remap_traces(traces: &BTreeSet<Vec<Sym>>, map: &[Sym]) -> BTreeSet<Vec<Sym>> {
    traces
        .iter()
        .map(|t| t.iter().map(|s| map[s.index()]).collect())
        .collect()
}

impl<L: Label> Language<L> {
    /// Renames labels through `f` (Prop 4.3 generalized to arbitrary
    /// relabelings). Distinct labels may collapse (their symbols merge).
    pub fn rename(&self, mut f: impl FnMut(&L) -> L) -> Language<L> {
        let (interner, alphabet, traces, depth) = self.raw_parts();
        let mut new_interner: Interner<L> = Interner::new();
        // Each source label is mapped exactly once, in symbol order.
        let map: Vec<Sym> = interner
            .iter()
            .map(|(_, l)| new_interner.intern_owned(f(l)))
            .collect();
        let new_alpha: AlphaSet = alphabet.iter().map(|s| map[s.index()]).collect();
        let new_traces = remap_traces(traces, &map);
        Language::from_raw(new_interner, new_alpha, new_traces, depth)
    }

    /// The union of two languages (the trace semantics of choice,
    /// Prop 4.4). The result's exactness depth is the minimum of the two.
    pub fn union(&self, other: &Language<L>) -> Language<L> {
        let (i1, a1, t1, d1) = self.raw_parts();
        let (i2, a2, t2, d2) = other.raw_parts();
        let depth = d1.min(d2);
        let mut interner = i1.clone();
        let map = interner.merge(i2);
        let mut alphabet = a1.clone();
        alphabet.extend(a2.iter().map(|s| map[s.index()]));
        let mut traces: BTreeSet<Vec<Sym>> =
            t1.iter().filter(|t| t.len() <= depth).cloned().collect();
        traces.extend(
            t2.iter()
                .filter(|t| t.len() <= depth)
                .map(|t| t.iter().map(|s| map[s.index()]).collect::<Vec<Sym>>()),
        );
        Language::from_raw(interner, alphabet, traces, depth)
    }

    /// The intersection of two languages: traces present in both, over
    /// the union alphabet. The exactness depth is the minimum of the two.
    ///
    /// A pure bitset/symbol operation: `other` is remapped into `self`'s
    /// symbol space once; traces using labels unknown to `self` cannot
    /// intersect and are skipped without materializing any label.
    pub fn intersection(&self, other: &Language<L>) -> Language<L> {
        let (i1, a1, t1, d1) = self.raw_parts();
        let (i2, a2, t2, d2) = other.raw_parts();
        let depth = d1.min(d2);
        let mut interner = i1.clone();
        let map = interner.merge(i2);
        let mut alphabet = a1.clone();
        alphabet.extend(a2.iter().map(|s| map[s.index()]));
        let mut scratch: Vec<Sym> = Vec::new();
        let traces: BTreeSet<Vec<Sym>> = t2
            .iter()
            .filter(|t| t.len() <= depth)
            .filter_map(|t| {
                scratch.clear();
                scratch.extend(t.iter().map(|s| map[s.index()]));
                t1.contains(&scratch).then(|| scratch.clone())
            })
            .collect();
        Language::from_raw(interner, alphabet, traces, depth)
    }

    /// Action prefix: `{ε} ∪ {a}·L` (Prop 4.2). The exactness depth grows
    /// by one because every trace gained a leading action.
    pub fn prefix_action(&self, a: L) -> Language<L> {
        let (interner, alphabet, traces, depth) = self.raw_parts();
        let mut new_interner = interner.clone();
        let sa = new_interner.intern_owned(a);
        let mut new_alpha = alphabet.clone();
        new_alpha.insert(sa);
        let mut new_traces: BTreeSet<Vec<Sym>> = BTreeSet::new();
        new_traces.insert(Vec::new());
        for t in traces {
            let mut nt = Vec::with_capacity(t.len() + 1);
            nt.push(sa);
            nt.extend_from_slice(t);
            new_traces.insert(nt);
        }
        Language::from_raw(new_interner, new_alpha, new_traces, depth + 1)
    }

    /// Projection onto a label set: deletes every action not in `keep`
    /// from every trace.
    ///
    /// The resulting set is exact only up to the *original* depth in a
    /// weak sense: a short projected trace may have longer witnesses that
    /// were beyond the horizon. Callers comparing against a projected
    /// language should extract the source language at a generous depth
    /// and [`truncate`](Language::truncate) both sides (exactly what the
    /// algebra property tests do).
    pub fn project(&self, keep: &BTreeSet<L>) -> Language<L> {
        let (interner, _, _, _) = self.raw_parts();
        // Labels in `keep` but foreign to this language cannot occur in
        // any trace; dropping them from the bitset is sound.
        let keep_syms: AlphaSet = keep.iter().filter_map(|l| interner.get(l)).collect();
        self.project_syms(&keep_syms)
    }

    /// Projection onto a symbol bitset (in this language's symbol space):
    /// the hot-path form of [`project`](Language::project).
    pub fn project_syms(&self, keep: &AlphaSet) -> Language<L> {
        let (interner, alphabet, traces, depth) = self.raw_parts();
        let new_alpha = alphabet.intersection(keep);
        let new_traces: BTreeSet<Vec<Sym>> = traces
            .iter()
            .map(|t| {
                t.iter()
                    .filter(|s| keep.contains(**s))
                    .copied()
                    .collect::<Vec<Sym>>()
            })
            .collect();
        Language::from_raw(interner.clone(), new_alpha, new_traces, depth)
    }

    /// Hiding of a label set: `hide(L, A) = project(L, alphabet \ A)`
    /// (Section 4.4: "hiding is opposite to projection").
    pub fn hide(&self, hidden: &BTreeSet<L>) -> Language<L> {
        let (interner, alphabet, _, _) = self.raw_parts();
        let hidden_syms: AlphaSet = hidden.iter().filter_map(|l| interner.get(l)).collect();
        self.project_syms(&alphabet.difference(&hidden_syms))
    }

    /// Synchronized parallel composition (Definitions 4.8/4.9): the
    /// result contains exactly the traces over `A1 ∪ A2` whose projection
    /// onto each alphabet lies in the respective language.
    ///
    /// For prefix-closed languages this is equivalent to the paper's
    /// definition via shuffles of trace pairs, and is computed by a
    /// breadth-first extension so the cost is proportional to the result
    /// size. The frontier runs entirely on `Copy` symbols: each of
    /// `other`'s labels is interned once up front, and candidate
    /// extension allocates only when a candidate actually survives.
    ///
    /// # Example
    ///
    /// ```
    /// use cpn_trace::Language;
    /// use std::collections::BTreeSet;
    ///
    /// // a.c over {a,c} against b.c over {b,c}: c is a rendez-vous.
    /// let l1 = Language::from_traces(BTreeSet::from(["a", "c"]), [vec!["a", "c"]], 4);
    /// let l2 = Language::from_traces(BTreeSet::from(["b", "c"]), [vec!["b", "c"]], 4);
    /// let p = l1.parallel(&l2);
    /// assert!(p.contains(&["a", "b", "c"][..]));
    /// assert!(!p.contains(&["a", "c"][..])); // c blocked until b happened
    /// ```
    pub fn parallel(&self, other: &Language<L>) -> Language<L> {
        let (i1, a1, t1, d1) = self.raw_parts();
        let (i2, a2, t2, d2) = other.raw_parts();
        let depth = d1.min(d2);
        // Joint symbol space: self's symbols keep their meaning, other's
        // are remapped through the merge table (one intern per label).
        let mut interner = i1.clone();
        let map = interner.merge(i2);
        let a2_joint: AlphaSet = a2.iter().map(|s| map[s.index()]).collect();
        let t2_joint = remap_traces(t2, &map);
        let union_alpha = a1.union(&a2_joint);
        // Hoisted membership rows: which side(s) each union symbol belongs
        // to, computed once instead of twice per frontier extension.
        let alpha_rows: Vec<(Sym, bool, bool)> = union_alpha
            .iter()
            .map(|s| (s, a1.contains(s), a2_joint.contains(s)))
            .collect();

        let mut result: BTreeSet<Vec<Sym>> = BTreeSet::new();
        result.insert(Vec::new());
        // Frontier traces paired with their two projections, so membership
        // checks are O(log n) set lookups.
        let mut frontier: Vec<(Vec<Sym>, Vec<Sym>, Vec<Sym>)> =
            vec![(Vec::new(), Vec::new(), Vec::new())];

        // Scratch buffers for the candidate projections and trace: the
        // rejected candidates (the common case) never allocate — cloning
        // happens only when a candidate actually extends the language.
        let mut scratch1: Vec<Sym> = Vec::new();
        let mut scratch2: Vec<Sym> = Vec::new();
        let mut scratch_t: Vec<Sym> = Vec::new();

        for _ in 0..depth {
            let mut next = Vec::new();
            for (t, p1, p2) in &frontier {
                for &(a, in1, in2) in &alpha_rows {
                    // A union symbol belongs to at least one side; a side
                    // that has it must accept the extended projection.
                    if in1 {
                        scratch1.clear();
                        scratch1.reserve(p1.len() + 1);
                        scratch1.extend_from_slice(p1);
                        scratch1.push(a);
                        if !t1.contains(scratch1.as_slice()) {
                            continue;
                        }
                    }
                    if in2 {
                        scratch2.clear();
                        scratch2.reserve(p2.len() + 1);
                        scratch2.extend_from_slice(p2);
                        scratch2.push(a);
                        if !t2_joint.contains(scratch2.as_slice()) {
                            continue;
                        }
                    }
                    scratch_t.clear();
                    scratch_t.reserve(t.len() + 1);
                    scratch_t.extend_from_slice(t);
                    scratch_t.push(a);
                    if result.contains(scratch_t.as_slice()) {
                        continue;
                    }
                    result.insert(scratch_t.clone());
                    let q1 = if in1 { scratch1.clone() } else { p1.clone() };
                    let q2 = if in2 { scratch2.clone() } else { p2.clone() };
                    next.push((scratch_t.clone(), q1, q2));
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }

        Language::from_raw(interner, union_alpha, result, depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn lang(
        alpha: &[&'static str],
        traces: &[&[&'static str]],
        depth: usize,
    ) -> Language<&'static str> {
        Language::from_traces(
            alpha.iter().copied().collect(),
            traces.iter().map(|t| t.to_vec()),
            depth,
        )
    }

    #[test]
    fn rename_replaces_labels() {
        let l = lang(&["a", "b"], &[&["a", "b"]], 4);
        let r = l.rename(|x| if *x == "a" { "c" } else { *x });
        assert!(r.contains(&["c", "b"]));
        assert!(!r.contains(&["a", "b"]));
        assert!(r.alphabet().contains(&"c"));
        assert!(!r.alphabet().contains(&"a"));
    }

    #[test]
    fn rename_can_collapse() {
        let l = lang(&["a", "b"], &[&["a"], &["b"]], 3);
        let r = l.rename(|_| "x");
        assert_eq!(r.alphabet().len(), 1);
        assert!(r.contains(&["x"]));
        assert_eq!(r.len(), 2); // ε and x
    }

    #[test]
    fn union_is_choice_semantics() {
        let l1 = lang(&["a"], &[&["a"]], 3);
        let l2 = lang(&["b"], &[&["b"]], 3);
        let u = l1.union(&l2);
        assert!(u.contains(&["a"]));
        assert!(u.contains(&["b"]));
        assert_eq!(u.alphabet().len(), 2);
    }

    #[test]
    fn intersection_keeps_common_traces() {
        let l1 = lang(&["a", "b"], &[&["a", "b"], &["a", "a"]], 4);
        let l2 = lang(&["b", "a"], &[&["a", "b"], &["b"]], 4);
        let i = l1.intersection(&l2);
        assert!(i.contains(&[]));
        assert!(i.contains(&["a"]));
        assert!(i.contains(&["a", "b"]));
        assert!(!i.contains(&["a", "a"]));
        assert!(!i.contains(&["b"]));
        assert_eq!(i.alphabet().len(), 2);
        // Symmetric up to symbol numbering.
        assert_eq!(i, l2.intersection(&l1));
    }

    #[test]
    fn intersection_with_foreign_alphabet_drops_foreign_traces() {
        let l1 = lang(&["a"], &[&["a"]], 3);
        let l2 = lang(&["a", "z"], &[&["a"], &["z"]], 3);
        let i = l1.intersection(&l2);
        assert!(i.contains(&["a"]));
        assert!(!i.contains(&["z"]));
        assert!(i.alphabet().contains(&"z"), "alphabet is the union");
    }

    #[test]
    fn prefix_action_adds_head() {
        let l = lang(&["b"], &[&["b"]], 2);
        let p = l.prefix_action("a");
        assert!(p.contains(&[]));
        assert!(p.contains(&["a"]));
        assert!(p.contains(&["a", "b"]));
        assert!(!p.contains(&["b"]));
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn project_deletes_other_labels() {
        let l = lang(&["a", "b"], &[&["a", "b", "a"]], 5);
        let keep: BTreeSet<&str> = ["a"].into();
        let p = l.project(&keep);
        assert!(p.contains(&["a", "a"]));
        assert!(!p.alphabet().contains(&"b"));
    }

    #[test]
    fn hide_is_complement_projection() {
        let l = lang(&["a", "b"], &[&["a", "b", "a"]], 5);
        let hidden: BTreeSet<&str> = ["b"].into();
        let keep: BTreeSet<&str> = ["a"].into();
        assert_eq!(l.hide(&hidden), l.project(&keep));
    }

    #[test]
    fn parallel_synchronizes_common_labels() {
        // L1 over {a,c}: a then c. L2 over {b,c}: b then c.
        // c is common: must happen in both; a,b interleave.
        let l1 = lang(&["a", "c"], &[&["a", "c"]], 4);
        let l2 = lang(&["b", "c"], &[&["b", "c"]], 4);
        let p = l1.parallel(&l2);
        assert!(p.contains(&["a", "b", "c"]));
        assert!(p.contains(&["b", "a", "c"]));
        assert!(!p.contains(&["c"]), "c needs both a and b first");
        assert!(!p.contains(&["a", "c"]), "c blocked until b");
    }

    #[test]
    fn parallel_unsynchronizable_traces_die() {
        // a.b.c vs c.a.b over the same alphabet: no common extension
        // beyond ε (the paper's example after Def 4.8).
        let l1 = lang(&["a", "b", "c"], &[&["a", "b", "c"]], 4);
        let l2 = lang(&["a", "b", "c"], &[&["c", "a", "b"]], 4);
        let p = l1.parallel(&l2);
        assert_eq!(p.len(), 1, "only ε survives: {p}");
    }

    #[test]
    fn parallel_disjoint_alphabets_is_shuffle() {
        let l1 = lang(&["a"], &[&["a"]], 3);
        let l2 = lang(&["b"], &[&["b"]], 3);
        let p = l1.parallel(&l2);
        assert!(p.contains(&["a", "b"]));
        assert!(p.contains(&["b", "a"]));
    }

    #[test]
    fn parallel_with_self_is_identity() {
        let l = lang(&["a", "b"], &[&["a", "b"], &["b"]], 3);
        let p = l.parallel(&l);
        assert!(p.eq_up_to(&l, 3));
    }

    #[test]
    fn parallel_blocks_on_missing_common_label() {
        // "c" is in both alphabets but only l1 ever does it: blocked.
        let l1 = lang(&["a", "c"], &[&["a", "c"]], 3);
        let l2 = lang(&["b", "c"], &[&["b"]], 3);
        let p = l1.parallel(&l2);
        assert!(p.contains(&["a", "b"]));
        assert!(!p.iter().any(|t| t.contains(&"c")));
    }
}
