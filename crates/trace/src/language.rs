//! The [`Language`] type: a prefix-closed set of traces up to a depth.
//!
//! Traces are stored symbol-encoded: the language owns an
//! [`Interner`] and every trace is a `Vec<Sym>`, so set membership,
//! BFS extension and the operator algebra run on `Copy` symbols with no
//! label clones. Labels are materialized at the API boundary
//! ([`Language::iter`], [`Display`](fmt::Display), [`Language::alphabet`]).

use cpn_petri::{
    AlphaSet, Bounded, Budget, CandidateScratch, Interner, Label, Marking, Meter, PetriNet, Sym,
};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Errors produced during trace extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// Trace enumeration exceeded the configured budget.
    BudgetExceeded {
        /// The budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BudgetExceeded { budget } => {
                write!(f, "trace budget of {budget} traces exceeded")
            }
        }
    }
}

impl Error for TraceError {}

/// A prefix-closed trace language over labels `L`, exact up to `depth`.
///
/// Contains every firing sequence of length at most `depth` (and always
/// `ε`). The alphabet is carried explicitly because the language-level
/// parallel composition (Definition 4.8) is projection-based and needs it.
///
/// Equality (and [`eq_up_to`](Language::eq_up_to)) is **semantic**: two
/// languages compare equal when they denote the same label alphabet and
/// trace set, regardless of the symbol numbering their interners happen
/// to use.
#[derive(Clone)]
pub struct Language<L: Label> {
    interner: Interner<L>,
    alphabet: AlphaSet,
    traces: BTreeSet<Vec<Sym>>,
    depth: usize,
}

impl<L: Label> Language<L> {
    /// The language containing only the empty trace (the semantics of
    /// `nil`), over the given alphabet.
    pub fn nil(alphabet: BTreeSet<L>, depth: usize) -> Self {
        let mut interner = Interner::new();
        let alphabet = alphabet
            .into_iter()
            .map(|l| interner.intern_owned(l))
            .collect();
        let mut traces = BTreeSet::new();
        traces.insert(Vec::new());
        Language {
            interner,
            alphabet,
            traces,
            depth,
        }
    }

    /// Builds a language from explicit traces, closing it under prefixes.
    ///
    /// Traces longer than `depth` are truncated away (their prefixes up to
    /// `depth` are kept).
    pub fn from_traces(
        alphabet: BTreeSet<L>,
        traces: impl IntoIterator<Item = Vec<L>>,
        depth: usize,
    ) -> Self {
        let mut interner = Interner::new();
        let alphabet: AlphaSet = alphabet
            .into_iter()
            .map(|l| interner.intern_owned(l))
            .collect();
        let mut set = BTreeSet::new();
        set.insert(Vec::new());
        for t in traces {
            let t: Vec<Sym> = t
                .into_iter()
                .take(depth)
                .map(|l| interner.intern_owned(l))
                .collect();
            for i in 1..=t.len() {
                set.insert(t[..i].to_vec());
            }
        }
        Language {
            interner,
            alphabet,
            traces: set,
            depth,
        }
    }

    /// Extracts `L(N)` up to `depth` by exhaustive firing-sequence
    /// enumeration (Definition 4.1).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BudgetExceeded`] when more than `budget`
    /// distinct `(trace, marking)` pairs are visited — a guard against
    /// exponential nets at large depths.
    pub fn from_net(net: &PetriNet<L>, depth: usize, budget: usize) -> Result<Self, TraceError> {
        match Self::from_net_bounded(net, depth, &Budget::states(budget.saturating_sub(1))) {
            Bounded::Complete(l) => Ok(l),
            Bounded::Exhausted { .. } => Err(TraceError::BudgetExceeded { budget }),
        }
    }

    /// Extracts `L(N)` up to `depth` under a [`Budget`], degrading
    /// gracefully instead of erroring.
    ///
    /// The budget's state cap bounds distinct `(marking, trace)` pairs
    /// beyond the initial one; its transition cap bounds firings. When a
    /// cap is hit, enumeration stops and the prefix-closed language
    /// collected so far is returned in [`Bounded::Exhausted`] — every
    /// trace in it is a genuine trace of the net, but traces past the
    /// stop point are missing.
    ///
    /// The language shares the net's symbol space (its interner is a
    /// snapshot of the net's), and the enumeration itself is label-free:
    /// each firing appends a `Copy` symbol read off the compiled net.
    pub fn from_net_bounded(net: &PetriNet<L>, depth: usize, budget: &Budget) -> Bounded<Self> {
        let mut meter = Meter::new(budget);
        let mut traces: BTreeSet<Vec<Sym>> = BTreeSet::new();
        traces.insert(Vec::new());

        // Frontier of distinct (marking, trace) pairs at the current depth.
        let mut frontier: BTreeSet<(Marking, Vec<Sym>)> = BTreeSet::new();
        frontier.insert((net.initial_marking(), Vec::new()));

        // Successor generation goes through the compiled firing rule:
        // only consumers of marked places are re-tested, in ascending
        // transition order like the legacy full scan.
        let compiled = net.compile();
        let mut scratch = CandidateScratch::new(compiled.transition_count());
        let mut cands: Vec<u32> = Vec::new();

        'explore: for _ in 0..depth {
            let mut next: BTreeSet<(Marking, Vec<Sym>)> = BTreeSet::new();
            for (m, trace) in &frontier {
                compiled.enabled_candidates(m.as_slice(), &mut scratch, &mut cands);
                for &tu in &cands {
                    if !compiled.is_enabled(m.as_slice(), tu) {
                        continue;
                    }
                    let t = cpn_petri::TransitionId::from_index(tu as usize);
                    if !meter.take_transition() {
                        break 'explore;
                    }
                    let Ok(m2) = net.fire(m, t) else {
                        continue; // enabled transitions always fire
                    };
                    let mut t2 = trace.clone();
                    t2.push(compiled.sym(tu));
                    traces.insert(t2.clone());
                    let pair = (m2, t2);
                    if next.contains(&pair) {
                        continue;
                    }
                    if !meter.take_state() {
                        break 'explore;
                    }
                    next.insert(pair);
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }

        meter.finish(Language {
            interner: net.interner().clone(),
            alphabet: net.alphabet_syms().clone(),
            traces,
            depth,
        })
    }

    /// The alphabet the language is defined over, materialized as labels.
    pub fn alphabet(&self) -> BTreeSet<L> {
        self.alphabet
            .iter()
            .map(|s| self.interner.resolve(s).clone())
            .collect()
    }

    /// The alphabet as a symbol bitset (in this language's symbol space).
    pub fn alphabet_syms(&self) -> &AlphaSet {
        &self.alphabet
    }

    /// This language's label interner.
    pub fn interner(&self) -> &Interner<L> {
        &self.interner
    }

    /// The exactness depth: all traces of length ≤ depth are present.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of traces (including `ε`).
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the language is just `{ε}`.
    pub fn is_empty(&self) -> bool {
        self.traces.len() == 1
    }

    /// Membership test.
    pub fn contains(&self, trace: &[L]) -> bool {
        let mut t = Vec::with_capacity(trace.len());
        for l in trace {
            match self.interner.get(l) {
                Some(s) => t.push(s),
                None => return false,
            }
        }
        self.traces.contains(&t)
    }

    /// Iterates over all traces (in symbol-lexicographic order),
    /// materializing labels.
    pub fn iter(&self) -> impl Iterator<Item = Vec<L>> + '_ {
        self.traces.iter().map(|t| {
            t.iter()
                .map(|&s| self.interner.resolve(s).clone())
                .collect()
        })
    }

    /// Restricts the language (and its exactness depth) to traces of
    /// length at most `depth`.
    pub fn truncate(&self, depth: usize) -> Language<L> {
        Language {
            interner: self.interner.clone(),
            alphabet: self.alphabet.clone(),
            traces: self
                .traces
                .iter()
                .filter(|t| t.len() <= depth)
                .cloned()
                .collect(),
            depth: self.depth.min(depth),
        }
    }

    /// Remaps `other`'s traces into `self`'s symbol space and tests trace
    /// set equality. A label of `other` missing from `self`'s interner can
    /// only appear in traces `self` cannot contain.
    fn traces_equal(&self, other: &Language<L>) -> bool {
        if self.interner == other.interner {
            return self.traces == other.traces;
        }
        if self.traces.len() != other.traces.len() {
            return false;
        }
        let map: Vec<Option<Sym>> = other
            .interner
            .iter()
            .map(|(_, l)| self.interner.get(l))
            .collect();
        // The remap is injective (interners are bijections), so equal
        // cardinality plus containment implies set equality.
        let mut scratch: Vec<Sym> = Vec::new();
        other.traces.iter().all(|t| {
            scratch.clear();
            for s in t {
                match map[s.index()] {
                    Some(m) => scratch.push(m),
                    None => return false,
                }
            }
            self.traces.contains(&scratch)
        })
    }

    /// Whether `self` and `other` agree on all traces up to `depth`
    /// (alphabets are *not* compared — the paper's equations are about
    /// trace sets).
    pub fn eq_up_to(&self, other: &Language<L>, depth: usize) -> bool {
        debug_assert!(
            depth <= self.depth && depth <= other.depth,
            "comparison depth exceeds language exactness"
        );
        self.truncate(depth).traces_equal(&other.truncate(depth))
    }

    /// Whether every trace of `self` (up to `depth`) is a trace of
    /// `other` — the containment of Theorem 5.1.
    pub fn subset_up_to(&self, other: &Language<L>, depth: usize) -> bool {
        let map: Vec<Option<Sym>> = self
            .interner
            .iter()
            .map(|(_, l)| other.interner.get(l))
            .collect();
        let mut scratch: Vec<Sym> = Vec::new();
        self.traces.iter().filter(|t| t.len() <= depth).all(|t| {
            scratch.clear();
            for s in t {
                match map[s.index()] {
                    Some(m) => scratch.push(m),
                    None => return false,
                }
            }
            other.traces.contains(&scratch)
        })
    }

    pub(crate) fn raw_parts(&self) -> (&Interner<L>, &AlphaSet, &BTreeSet<Vec<Sym>>, usize) {
        (&self.interner, &self.alphabet, &self.traces, self.depth)
    }

    pub(crate) fn from_raw(
        interner: Interner<L>,
        alphabet: AlphaSet,
        traces: BTreeSet<Vec<Sym>>,
        depth: usize,
    ) -> Self {
        Language {
            interner,
            alphabet,
            traces,
            depth,
        }
    }
}

impl<L: Label> PartialEq for Language<L> {
    /// Semantic equality: same depth, same alphabet **label** set, same
    /// trace set — independent of symbol numbering.
    fn eq(&self, other: &Self) -> bool {
        if self.depth != other.depth || self.alphabet.len() != other.alphabet.len() {
            return false;
        }
        let alpha_eq = self.alphabet.iter().all(|s| {
            other
                .interner
                .get(self.interner.resolve(s))
                .is_some_and(|o| other.alphabet.contains(o))
        });
        alpha_eq && self.traces_equal(other)
    }
}

impl<L: Label> Eq for Language<L> {}

impl<L: Label> fmt::Debug for Language<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Language(depth {}, {} traces over {{{}}})",
            self.depth,
            self.traces.len(),
            self.alphabet
                .iter()
                .map(|s| self.interner.resolve(s).to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

impl<L: Label> fmt::Display for Language<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{self:?}")?;
        for t in &self.traces {
            if t.is_empty() {
                writeln!(f, "  ε")?;
            } else {
                writeln!(
                    f,
                    "  {}",
                    t.iter()
                        .map(|&s| self.interner.resolve(s).to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab_cycle() -> PetriNet<&'static str> {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        net.set_initial(p, 1);
        net
    }

    #[test]
    fn cycle_language_alternates() {
        let l = Language::from_net(&ab_cycle(), 3, 1000).unwrap();
        assert!(l.contains(&[]));
        assert!(l.contains(&["a"]));
        assert!(l.contains(&["a", "b"]));
        assert!(l.contains(&["a", "b", "a"]));
        assert!(!l.contains(&["a", "a"]));
        assert!(!l.contains(&["b"]));
        assert_eq!(l.len(), 4);
    }

    #[test]
    fn nil_is_epsilon_only() {
        let l: Language<&str> = Language::nil(BTreeSet::new(), 5);
        assert!(l.is_empty());
        assert!(l.contains(&[]));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn from_traces_prefix_closes() {
        let l = Language::from_traces(BTreeSet::from(["a", "b"]), vec![vec!["a", "b"]], 5);
        assert!(l.contains(&["a"]));
        assert!(l.contains(&["a", "b"]));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn from_traces_truncates_to_depth() {
        let l = Language::from_traces(BTreeSet::from(["a"]), vec![vec!["a", "a", "a"]], 2);
        assert!(l.contains(&["a", "a"]));
        assert!(!l.contains(&["a", "a", "a"]));
    }

    #[test]
    fn truncate_reduces_depth() {
        let l = Language::from_net(&ab_cycle(), 4, 1000).unwrap();
        let t = l.truncate(2);
        assert_eq!(t.depth(), 2);
        assert!(t.contains(&["a", "b"]));
        assert!(!t.contains(&["a", "b", "a"]));
    }

    #[test]
    fn eq_up_to_ignores_deeper_traces() {
        let l3 = Language::from_net(&ab_cycle(), 3, 1000).unwrap();
        let l4 = Language::from_net(&ab_cycle(), 4, 1000).unwrap();
        assert!(l3.eq_up_to(&l4, 3));
        assert_ne!(l3, l4);
    }

    #[test]
    fn equality_is_symbol_order_independent() {
        // Same trace set {ε, "a b"}, interners numbered in opposite
        // orders: l1 has a=0,b=1; rev is hand-built with b=0,a=1.
        let l1 = Language::from_traces(BTreeSet::from(["a", "b"]), vec![vec!["a", "b"]], 4);
        let mut interner: Interner<&str> = Interner::new();
        let b = interner.intern(&"b");
        let a = interner.intern(&"a");
        let alphabet: AlphaSet = [a, b].into_iter().collect();
        // Prefix-closed by hand, matching from_traces' closure of "a b".
        let traces = BTreeSet::from([vec![], vec![a], vec![a, b]]);
        let rev = Language::from_raw(interner, alphabet, traces, 4);
        assert_ne!(
            l1.interner().get(&"a"),
            rev.interner().get(&"a"),
            "the two interners must disagree on symbol assignment"
        );
        assert_eq!(l1, rev, "equality must resolve through the interners");
        assert!(l1.eq_up_to(&rev, 4) && rev.eq_up_to(&l1, 4));
        let same = Language::from_traces(BTreeSet::from(["b", "a"]), vec![vec!["a", "b"]], 4);
        assert_eq!(l1, same);
        assert!(l1.eq_up_to(&same, 4));
    }

    #[test]
    fn subset_detects_restriction() {
        let full = Language::from_net(&ab_cycle(), 3, 1000).unwrap();
        let sub = Language::from_traces(BTreeSet::from(["a", "b"]), vec![vec!["a"]], 3);
        assert!(sub.subset_up_to(&full, 3));
        assert!(!full.subset_up_to(&sub, 3));
    }

    #[test]
    fn budget_exceeded_reported() {
        // Two concurrent independent cycles explode combinatorially.
        let mut net: PetriNet<String> = PetriNet::new();
        for i in 0..4 {
            let p = net.add_place(format!("p{i}"));
            let q = net.add_place(format!("q{i}"));
            net.add_transition([p], format!("a{i}"), [q]).unwrap();
            net.add_transition([q], format!("b{i}"), [p]).unwrap();
            net.set_initial(p, 1);
        }
        let err = Language::from_net(&net, 6, 10).unwrap_err();
        assert_eq!(err, TraceError::BudgetExceeded { budget: 10 });
    }

    #[test]
    fn nondeterministic_same_label_choice() {
        // Two transitions labeled "a" to different places; both successor
        // behaviours must be in the language.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q1 = net.add_place("q1");
        let q2 = net.add_place("q2");
        net.add_transition([p], "a", [q1]).unwrap();
        net.add_transition([p], "a", [q2]).unwrap();
        net.add_transition([q1], "b", [p]).unwrap();
        net.add_transition([q2], "c", [p]).unwrap();
        net.set_initial(p, 1);
        let l = Language::from_net(&net, 2, 1000).unwrap();
        assert!(l.contains(&["a", "b"]));
        assert!(l.contains(&["a", "c"]));
    }

    #[test]
    fn display_renders_epsilon() {
        let l: Language<&str> = Language::nil(BTreeSet::new(), 1);
        assert!(l.to_string().contains('ε'));
    }
}
