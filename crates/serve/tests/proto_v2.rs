//! Protocol v2 end-to-end tests: version negotiation with v1 clients,
//! server-side `verify` (the paper pipeline), batching with per-item
//! results and umbrella deadlines, live stats with cache counters,
//! streaming progress frames, and pipelined correlation.

use cpn_serve::frame::{
    encode_frame, read_frame, read_handshake, read_handshake_in, write_handshake_version,
    MIN_PROTO_VERSION, PROTO_VERSION,
};
use cpn_serve::proto::{split_corr, with_corr};
use cpn_serve::{
    BatchItem, Client, Endpoint, PipelinedClient, Receptive, Request, Response, Server,
    ServerConfig,
};
use std::io::Write;
use std::time::Duration;

const SMALL_NET: &str = r#"net small {
    places { p* q }
    transition "a" { pre: p; post: q }
    transition "b" { pre: q; post: p }
}"#;

/// The paper's running example: a producer/consumer handshake pair in
/// one document. `req` is the module's output, `ack` the
/// environment's; the composition is receptive.
const HANDSHAKE_DOC: &str = r#"net producer {
    places { a0* a1 }
    transition "req" { pre: a0; post: a1 }
    transition "ack" { pre: a1; post: a0 }
}

net consumer {
    places { b0* b1 }
    transition "req" { pre: b0; post: b1 }
    transition "ack" { pre: b1; post: b0 }
}"#;

/// Same pair with the consumer phase-shifted half a handshake: the
/// producer can offer `req` when the consumer is not ready.
const BROKEN_DOC: &str = r#"net producer {
    places { a0* a1 }
    transition "req" { pre: a0; post: a1 }
    transition "ack" { pre: a1; post: a0 }
}

net consumer {
    places { b0 b1* }
    transition "req" { pre: b0; post: b1 }
    transition "ack" { pre: b1; post: b0 }
}"#;

fn explosive_doc(n: usize) -> String {
    let mut doc = String::from("net boom {\n    places {");
    for i in 0..n {
        doc.push_str(&format!(" a{i}* b{i}"));
    }
    doc.push_str(" }\n");
    for i in 0..n {
        doc.push_str(&format!(
            "    transition \"up{i}\" {{ pre: a{i}; post: b{i} }}\n"
        ));
        doc.push_str(&format!(
            "    transition \"down{i}\" {{ pre: b{i}; post: a{i} }}\n"
        ));
    }
    doc.push('}');
    doc
}

fn small_reach(deadline_ms: Option<u64>) -> Request {
    Request::Reach {
        net: "small".into(),
        max_states: 1000,
        deadline_ms,
        threads: 1,
        stream: false,
        doc: SMALL_NET.into(),
    }
}

fn config() -> ServerConfig {
    ServerConfig {
        workers: 4,
        queue_depth: 32,
        default_deadline: Duration::from_secs(10),
        drain_grace: Duration::from_secs(2),
        idle_timeout: Duration::from_secs(5),
        io_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

fn start() -> (
    Endpoint,
    cpn_serve::ServerHandle,
    std::thread::JoinHandle<cpn_serve::ServerStats>,
) {
    let server = Server::bind(&[Endpoint::Tcp("127.0.0.1:0".into())], config()).expect("bind");
    let ep = server.local_endpoints().expect("endpoints").remove(0);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (ep, handle, join)
}

/// A v1 client (advertising version 1) still handshakes and runs the
/// lock-step loop unchanged against the v2 server; batch frames are
/// refused with a typed error instead of a protocol break.
#[test]
fn v1_client_handshakes_and_works_unchanged() {
    let (ep, handle, join) = start();
    let mut conn = cpn_serve::Conn::dial(&ep).expect("dial");
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    write_handshake_version(&mut conn, 1).expect("handshake out");
    let negotiated =
        read_handshake_in(&mut conn, MIN_PROTO_VERSION..=PROTO_VERSION).expect("handshake in");
    assert_eq!(negotiated, 1, "server must meet a v1 client at v1");

    // Lock-step request/response, no correlation prefixes.
    for _ in 0..2 {
        conn.write_all(&encode_frame(small_reach(None).encode().as_bytes()))
            .expect("request frame");
        let payload = read_frame(&mut conn, 1 << 20).expect("response frame");
        let text = std::str::from_utf8(&payload).expect("UTF-8");
        assert!(
            !text.starts_with('@'),
            "v1 responses must not carry correlation ids: {text}"
        );
        match Response::decode(text).expect("typed") {
            Response::Result(s) => assert_eq!(s.states, 2),
            other => panic!("expected Result, got {other:?}"),
        }
    }

    // Batch is a v2 feature: typed refusal, connection stays up.
    let batch = Request::batch(vec![small_reach(None)], None).expect("batch");
    conn.write_all(&encode_frame(batch.encode().as_bytes()))
        .expect("batch frame");
    let payload = read_frame(&mut conn, 1 << 20).expect("refusal");
    match Response::decode(std::str::from_utf8(&payload).expect("UTF-8")).expect("typed") {
        Response::BadRequest(msg) => assert!(msg.contains("v2"), "msg: {msg}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    conn.shutdown();
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.panics, 0);
}

#[test]
fn default_client_negotiates_v2() {
    let (ep, handle, join) = start();
    let client = Client::connect(&ep).expect("connect");
    assert_eq!(client.version(), PROTO_VERSION);
    drop(client);
    handle.begin_drain();
    join.join().expect("server");
}

/// The tentpole `verify` request: compose module ‖ environment, check
/// receptiveness, reduce against the environment — one round trip.
#[test]
fn verify_runs_the_paper_pipeline_server_side() {
    let (ep, handle, join) = start();
    let mut client = Client::connect(&ep).expect("connect");

    let req = Request::Verify {
        module: "producer".into(),
        env: "consumer".into(),
        louts: vec!["req".into()],
        routs: vec!["ack".into()],
        max_states: 100_000,
        deadline_ms: Some(5_000),
        hide_budget: 10_000,
        stream: false,
        doc: HANDSHAKE_DOC.into(),
    };
    match client.request(&req).expect("verify") {
        Response::VerifyResult(v) => {
            assert_eq!(v.receptive, Receptive::Yes, "{v:?}");
            assert!(v.failures.is_empty());
            assert_eq!(v.composed_transitions, 2, "req and ack synchronize");
            assert!(v.stopped.is_none());
            assert!(
                v.reduced_transitions.is_some(),
                "reduction stage ran: {v:?}"
            );
        }
        other => panic!("expected VerifyResult, got {other:?}"),
    }

    let broken = Request::Verify {
        module: "producer".into(),
        env: "consumer".into(),
        louts: vec!["req".into()],
        routs: vec!["ack".into()],
        max_states: 100_000,
        deadline_ms: Some(5_000),
        hide_budget: 10_000,
        stream: false,
        doc: BROKEN_DOC.into(),
    };
    match client.request(&broken).expect("verify broken") {
        Response::VerifyResult(v) => {
            assert_eq!(v.receptive, Receptive::No, "{v:?}");
            assert!(
                v.failures.iter().any(|l| l == "req"),
                "failing label reported: {v:?}"
            );
        }
        other => panic!("expected VerifyResult, got {other:?}"),
    }
    drop(client);
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.panics, 0);
}

/// A batch answers every item in submission order, including typed
/// per-item errors; siblings of a bad item are unaffected.
#[test]
fn batch_answers_every_item_in_order() {
    let (ep, handle, join) = start();
    let mut client = Client::connect(&ep).expect("connect");
    let items = vec![
        small_reach(None),
        Request::Cover {
            net: "small".into(),
            max_states: 1000,
            deadline_ms: None,
            threads: 1,
            doc: SMALL_NET.into(),
        },
        Request::Reach {
            net: "ghost".into(),
            max_states: 10,
            deadline_ms: None,
            threads: 1,
            stream: false,
            doc: SMALL_NET.into(),
        },
        small_reach(None),
    ];
    let replies = client.batch(items, Some(10_000)).expect("batch");
    assert_eq!(replies.len(), 4);
    assert!(matches!(&replies[0], Response::Result(s) if s.states == 2));
    assert!(matches!(&replies[1], Response::Result(_)));
    assert!(matches!(&replies[2], Response::BadRequest(_)));
    assert!(matches!(&replies[3], Response::Result(s) if s.states == 2));
    drop(client);
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.bad_requests, 1);
    assert_eq!(stats.served, 3, "good items served, BatchDone uncounted");
}

/// An undecodable item inside a batch frame gets its own typed
/// `BadRequest` naming the index; well-formed siblings still run.
#[test]
fn malformed_batch_item_does_not_poison_siblings() {
    let (ep, handle, join) = start();
    let mut conn = cpn_serve::Conn::dial(&ep).expect("dial");
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    write_handshake_version(&mut conn, PROTO_VERSION).expect("handshake out");
    assert_eq!(read_handshake(&mut conn).expect("handshake in"), 2);

    let batch = Request::Batch {
        deadline_ms: Some(5_000),
        items: vec![
            BatchItem::Request(small_reach(None)),
            BatchItem::Malformed("unparseable verb".into()),
            BatchItem::Request(small_reach(None)),
        ],
    };
    conn.write_all(&encode_frame(
        with_corr(Some(9), &batch.encode()).as_bytes(),
    ))
    .expect("batch frame");

    let mut by_index = std::collections::BTreeMap::new();
    loop {
        let payload = read_frame(&mut conn, 1 << 20).expect("frame");
        let text = std::str::from_utf8(&payload).expect("UTF-8");
        let (corr, body) = split_corr(text).expect("corr");
        assert_eq!(corr, Some(9), "batch replies echo the request id");
        match Response::decode(body).expect("typed") {
            Response::Item { index, inner } => {
                assert!(
                    by_index.insert(index, *inner).is_none(),
                    "index {index} twice"
                );
            }
            Response::BatchDone { n } => {
                assert_eq!(n, 3);
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(by_index.len(), 3, "every item answered exactly once");
    assert!(matches!(&by_index[&0], Response::Result(s) if s.states == 2));
    match &by_index[&1] {
        Response::BadRequest(msg) => assert!(msg.contains("item 1"), "msg: {msg}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    assert!(matches!(&by_index[&2], Response::Result(s) if s.states == 2));

    conn.shutdown();
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.bad_requests, 1);
}

/// An explosive item under a batch umbrella deadline degrades to a
/// typed partial; already-finished siblings keep their results, and
/// unstarted siblings get `DeadlineExceeded` rather than hanging.
#[test]
fn batch_umbrella_deadline_degrades_without_poisoning() {
    let (ep, handle, join) = start();
    let mut client = Client::connect(&ep).expect("connect");
    let items = vec![
        small_reach(None),
        Request::Reach {
            net: "boom".into(),
            max_states: 50_000_000,
            deadline_ms: None,
            threads: 1,
            stream: false,
            doc: explosive_doc(24),
        },
        small_reach(None),
    ];
    let replies = client.batch(items, Some(400)).expect("batch");
    assert_eq!(replies.len(), 3, "every item answered");
    assert!(
        matches!(&replies[0], Response::Result(s) if s.is_complete()),
        "first item ran before the umbrella expired: {:?}",
        replies[0]
    );
    match &replies[1] {
        Response::Result(s) => {
            assert!(!s.is_complete(), "2^24 states cannot finish in 400ms");
            assert_eq!(s.stopped.as_deref(), Some("deadline"));
        }
        Response::DeadlineExceeded => {}
        other => panic!("expected typed degradation, got {other:?}"),
    }
    assert!(
        matches!(
            &replies[2],
            Response::Result(_) | Response::DeadlineExceeded
        ),
        "trailing item typed, not hung: {:?}",
        replies[2]
    );
    drop(client);
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.panics, 0);
}

/// `stats` reports live service counters and the compiled-net cache's
/// hit/miss/eviction numbers.
#[test]
fn stats_reports_cache_counters() {
    let (ep, handle, join) = start();
    let mut client = Client::connect(&ep).expect("connect");
    for _ in 0..2 {
        match client.request(&small_reach(None)).expect("reach") {
            Response::Result(_) => {}
            other => panic!("expected Result, got {other:?}"),
        }
    }
    match client.request(&Request::Stats).expect("stats") {
        Response::Stats(s) => {
            assert!(s.served >= 2, "{s:?}");
            assert_eq!(s.cache_misses, 1, "first reach compiled: {s:?}");
            assert!(s.cache_hits >= 1, "second reach hit: {s:?}");
            assert_eq!(s.cache_evictions, 0, "{s:?}");
            assert_eq!(s.cache_len, 1, "{s:?}");
            assert!(s.cache_capacity >= 1, "{s:?}");
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    drop(client);
    handle.begin_drain();
    join.join().expect("server");
}

/// A streaming reach emits monotone progress frames and a final answer
/// byte-identical to the unstreamed one.
#[test]
fn streaming_reach_emits_progress_and_identical_final() {
    let (ep, handle, join) = start();
    let doc = explosive_doc(16); // 65536 states: several stream slices
    let mut client = Client::connect(&ep).expect("connect");

    let unstreamed = client
        .request(&Request::Reach {
            net: "boom".into(),
            max_states: 1_000_000,
            deadline_ms: Some(30_000),
            threads: 1,
            stream: false,
            doc: doc.clone(),
        })
        .expect("plain reach");

    let mut progress = Vec::new();
    let streamed = client
        .request_streaming(
            &Request::Reach {
                net: "boom".into(),
                max_states: 1_000_000,
                deadline_ms: Some(30_000),
                threads: 1,
                stream: true,
                doc,
            },
            |p| progress.push(p.clone()),
        )
        .expect("streaming reach");

    assert!(
        !progress.is_empty(),
        "65536 states must cross the first stream slice"
    );
    assert!(progress.iter().all(|p| p.stage == "explore"));
    assert!(
        progress.windows(2).all(|w| w[0].states <= w[1].states),
        "progress is monotone: {progress:?}"
    );
    assert_eq!(
        streamed.encode(),
        unstreamed.encode(),
        "streamed final byte-identical to unstreamed"
    );
    match streamed {
        Response::Result(s) => assert_eq!(s.states, 65536),
        other => panic!("expected Result, got {other:?}"),
    }
    drop(client);
    handle.begin_drain();
    join.join().expect("server");
}

/// Pipelined requests settle against the right correlation ids even
/// when answers differ per request.
#[test]
fn pipelined_client_matches_answers_to_submissions() {
    let (ep, handle, join) = start();
    let mut client = PipelinedClient::connect(&ep, 4).expect("pipelined connect");
    let mut expected = std::collections::HashMap::new();
    for i in 0..12 {
        let (req, kind) = if i % 3 == 2 {
            (
                Request::Reach {
                    net: "ghost".into(),
                    max_states: 10,
                    deadline_ms: None,
                    threads: 1,
                    stream: false,
                    doc: SMALL_NET.into(),
                },
                "bad",
            )
        } else {
            (small_reach(None), "ok")
        };
        let corr = client.submit(&req).expect("submit");
        expected.insert(corr, kind);
    }
    let settled = client.drain().expect("drain");
    assert_eq!(settled.len(), 12);
    for (corr, resp) in settled {
        match (expected[&corr], resp) {
            ("ok", Response::Result(s)) => assert_eq!(s.states, 2),
            ("bad", Response::BadRequest(_)) => {}
            (kind, other) => panic!("corr {corr} expected {kind}, got {other:?}"),
        }
    }
    drop(client);
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.panics, 0);
}
