//! Chaos soak: a seeded transport fault injector hammers the daemon
//! with truncated frames, oversized length prefixes, garbage bytes,
//! mid-request disconnects, and stalled writes, interleaved with
//! well-formed requests. Invariants, from the issue's acceptance
//! criteria:
//!
//! * every **well-formed** request receives a typed response,
//! * the daemon neither panics nor deadlocks,
//! * the worker pool is idle (fully joined) after the drain.
//!
//! The schedule is a pure function of `CHAOS_SEED`, so a failure
//! reproduces exactly. `CPN_CHAOS_QUICK=1` (the CI smoke setting)
//! trims the connection count.

use cpn_serve::frame::{encode_frame, read_frame, read_handshake, write_handshake};
use cpn_serve::proto::{split_corr, with_corr};
use cpn_serve::{Client, Endpoint, PipelinedClient, Request, Response, Server, ServerConfig};
use cpn_testkit::{
    corrupt_exchange, corrupt_frame, BurstFault, ChaosInjector, TransportFault, WriteStep,
};
use std::io::Write;
use std::time::Duration;

const CHAOS_SEED: u64 = 0xDAC9_4CAF_E001;

const SMALL_NET: &str = r#"net small {
    places { p* q }
    transition "a" { pre: p; post: q }
    transition "b" { pre: q; post: p }
}"#;

fn soak_config() -> ServerConfig {
    ServerConfig {
        workers: 3,
        queue_depth: 4,
        default_deadline: Duration::from_secs(5),
        drain_grace: Duration::from_secs(2),
        idle_timeout: Duration::from_secs(2),
        // Short I/O timeout so stalled writers are cut quickly.
        io_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    }
}

/// One faulty connection: handshake correctly, then run the corruption
/// script for a would-be request frame. Nothing here may hang or panic
/// the server; whatever comes back (a typed error frame, a close) is
/// acceptable for a *malformed* exchange.
fn run_faulty_connection(ep: &Endpoint, fault: &TransportFault, injector: &mut ChaosInjector) {
    let Ok(mut conn) = cpn_serve::Conn::dial(ep) else {
        return; // server mid-shed; dial refusal is a typed outcome
    };
    let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = conn.set_write_timeout(Some(Duration::from_secs(2)));
    if write_handshake(&mut conn).is_err() || read_handshake(&mut conn).is_err() {
        return;
    }
    let request = Request::Reach {
        net: "small".into(),
        max_states: 1000,
        deadline_ms: Some(1000),
        threads: 1,
        stream: false,
        doc: SMALL_NET.into(),
    };
    let wire = encode_frame(request.encode().as_bytes());
    let steps = corrupt_frame(&wire, fault, injector);
    for step in steps {
        match step {
            WriteStep::Bytes(bytes) => {
                if conn.write_all(&bytes).is_err() {
                    return; // server already cut us off — fine
                }
                let _ = conn.flush();
            }
            WriteStep::Pause(d) => std::thread::sleep(d),
            WriteStep::CloseNow => {
                conn.shutdown();
                return;
            }
        }
    }
    // A stalled-but-complete frame is a well-formed request: it must
    // still get a typed response (the stall is under the I/O timeout).
    if matches!(fault, TransportFault::StalledWrite { .. }) {
        let payload = read_frame(&mut conn, 1 << 20).expect("stalled frame still answered");
        let text = std::str::from_utf8(&payload).expect("UTF-8 response");
        let resp = Response::decode(text).expect("typed response");
        assert!(
            matches!(
                resp,
                Response::Result(_)
                    | Response::Overloaded
                    | Response::DeadlineExceeded
                    | Response::InternalError(_)
            ),
            "unexpected response to stalled request: {resp:?}"
        );
    }
}

/// One clean connection: a well-formed request that MUST get a typed
/// response.
fn run_clean_connection(ep: &Endpoint, i: usize) -> Response {
    let mut client = Client::connect(ep).expect("clean connect");
    let req = match i % 3 {
        0 => Request::Ping,
        1 => Request::Reach {
            net: "small".into(),
            max_states: 1000,
            deadline_ms: Some(2000),
            threads: 1,
            stream: false,
            doc: SMALL_NET.into(),
        },
        _ => Request::Cover {
            net: "small".into(),
            max_states: 1000,
            deadline_ms: Some(2000),
            threads: 1,
            doc: SMALL_NET.into(),
        },
    };
    client.request(&req).expect("typed response")
}

#[test]
fn chaos_soak_every_wellformed_request_answered() {
    let connections: usize = if std::env::var_os("CPN_CHAOS_QUICK").is_some() {
        25
    } else {
        80
    };
    let server = Server::bind(&[Endpoint::Tcp("127.0.0.1:0".into())], soak_config()).expect("bind");
    let ep = server.local_endpoints().expect("endpoints").remove(0);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let mut injector = ChaosInjector::new(CHAOS_SEED).with_ratio(2, 5);
    let mut clean = 0usize;
    let mut answered = 0usize;
    for i in 0..connections {
        match injector.next_connection() {
            Some(fault) => run_faulty_connection(&ep, &fault, &mut injector),
            None => {
                clean += 1;
                match run_clean_connection(&ep, i) {
                    Response::Pong | Response::Result(_) => answered += 1,
                    Response::Overloaded | Response::DeadlineExceeded => answered += 1,
                    other => panic!("well-formed request got {other:?}"),
                }
            }
        }
    }
    let (seen, faulted) = injector.stats();
    assert_eq!(seen as usize, connections);
    assert!(
        faulted as f64 / seen as f64 >= 0.3,
        "fault rate too low under seed {CHAOS_SEED:#x}: {faulted}/{seen}"
    );
    assert_eq!(answered, clean, "every well-formed request answered");

    handle.begin_drain();
    let stats = join.join().expect("server run");
    assert_eq!(stats.panics, 0, "no worker panics under chaos: {stats:?}");
    assert_eq!(
        stats.workers_joined, 3,
        "worker pool idle and joined post-drain: {stats:?}"
    );
    assert!(stats.accepted >= clean as u64);
}

/// Oversized length prefixes specifically must produce the typed
/// `bad-request` refusal before the connection closes — the frame cap
/// is checked before allocation.
#[test]
fn oversized_prefix_gets_typed_refusal() {
    let server = Server::bind(&[Endpoint::Tcp("127.0.0.1:0".into())], soak_config()).expect("bind");
    let ep = server.local_endpoints().expect("endpoints").remove(0);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let mut conn = cpn_serve::Conn::dial(&ep).expect("dial");
    let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
    write_handshake(&mut conn).expect("handshake out");
    read_handshake(&mut conn).expect("handshake in");
    conn.write_all(&u32::MAX.to_be_bytes())
        .expect("evil prefix");
    conn.write_all(b"junk").expect("junk");
    let payload = read_frame(&mut conn, 1 << 20).expect("refusal frame");
    let resp = Response::decode(std::str::from_utf8(&payload).expect("UTF-8")).expect("typed");
    match resp {
        Response::BadRequest(msg) => assert!(msg.contains("exceeds"), "msg: {msg}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }

    handle.begin_drain();
    let stats = join.join().expect("server run");
    assert_eq!(stats.bad_requests, 1);
}

/// One faulty *pipelined* connection: handshake at v2, then write a
/// burst of correlated request frames through the burst corruptor.
/// Frames that went out complete and uncorrupted are well-formed
/// requests; if the connection survived the script (no close), each
/// must be answered exactly once, matched by correlation id.
fn run_faulty_burst(ep: &Endpoint, fault: &BurstFault, burst: usize) {
    let Ok(mut conn) = cpn_serve::Conn::dial(ep) else {
        return;
    };
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = conn.set_write_timeout(Some(Duration::from_secs(2)));
    if write_handshake(&mut conn).is_err() || read_handshake(&mut conn).is_err() {
        return;
    }
    let frames: Vec<Vec<u8>> = (0..burst)
        .map(|i| {
            let req = Request::Reach {
                net: "small".into(),
                max_states: 1000,
                deadline_ms: Some(2000),
                threads: 1,
                stream: false,
                doc: SMALL_NET.into(),
            };
            encode_frame(with_corr(Some(i as u64 + 1), &req.encode()).as_bytes())
        })
        .collect();
    let (steps, clean) = corrupt_exchange(&frames, fault);
    let closed = steps.iter().any(|s| matches!(s, WriteStep::CloseNow));
    for step in steps {
        match step {
            WriteStep::Bytes(bytes) => {
                if conn.write_all(&bytes).is_err() {
                    return;
                }
                let _ = conn.flush();
            }
            WriteStep::Pause(d) => std::thread::sleep(d),
            WriteStep::CloseNow => {
                conn.shutdown();
                return;
            }
        }
    }
    if closed {
        return;
    }
    // Connection survived: every clean frame gets exactly one final
    // response, correlation ids covering exactly the submitted set.
    let mut seen = std::collections::BTreeSet::new();
    while seen.len() < clean {
        let payload = read_frame(&mut conn, 1 << 20).expect("burst response frame");
        let text = std::str::from_utf8(&payload).expect("UTF-8 response");
        let (corr, body) = split_corr(text).expect("correlated response");
        let resp = Response::decode(body).expect("typed response");
        if !resp.is_final() {
            continue; // progress frames don't settle an id
        }
        let id = corr.expect("v2 responses carry correlation ids");
        assert!(
            (1..=clean as u64).contains(&id),
            "response for a frame never sent cleanly: {id}"
        );
        assert!(seen.insert(id), "correlation id {id} answered twice");
    }
}

/// One clean *batch* connection: every item must come back, in order.
fn run_clean_batch(ep: &Endpoint, items: usize) -> usize {
    let mut client = Client::connect(ep).expect("batch connect");
    let reqs: Vec<Request> = (0..items)
        .map(|_| Request::Reach {
            net: "small".into(),
            max_states: 1000,
            deadline_ms: Some(2000),
            threads: 1,
            stream: false,
            doc: SMALL_NET.into(),
        })
        .collect();
    let replies = client.batch(reqs, Some(10_000)).expect("batch replies");
    assert_eq!(replies.len(), items, "every batch item answered");
    replies
        .iter()
        .filter(|r| {
            matches!(
                r,
                Response::Result(_) | Response::Overloaded | Response::DeadlineExceeded
            )
        })
        .count()
}

/// One clean *pipelined* connection: submit a window of requests, then
/// drain; every submission must settle exactly once.
fn run_clean_pipeline(ep: &Endpoint, depth: usize, count: usize) -> usize {
    let mut client = PipelinedClient::connect(ep, depth).expect("pipelined connect");
    let req = Request::Reach {
        net: "small".into(),
        max_states: 1000,
        deadline_ms: Some(2000),
        threads: 1,
        stream: false,
        doc: SMALL_NET.into(),
    };
    let mut submitted = std::collections::BTreeSet::new();
    for _ in 0..count {
        submitted.insert(client.submit(&req).expect("submit"));
    }
    let settled = client.drain().expect("drain");
    assert_eq!(settled.len(), count, "every pipelined request settled");
    let mut seen = std::collections::BTreeSet::new();
    for (corr, resp) in settled {
        assert!(submitted.contains(&corr), "unknown correlation id {corr}");
        assert!(seen.insert(corr), "correlation id {corr} settled twice");
        assert!(resp.is_final(), "drain returned a non-final frame");
    }
    count
}

/// Chaos soak over protocol v2: batched and pipelined connections with
/// mid-burst disconnects, truncated tails, and stalled interleaved
/// frames mixed in. Every well-formed item is answered exactly once;
/// the daemon neither panics nor leaks workers.
#[test]
fn chaos_soak_batched_and_pipelined() {
    let connections: usize = if std::env::var_os("CPN_CHAOS_QUICK").is_some() {
        20
    } else {
        60
    };
    let config = ServerConfig {
        queue_depth: 32, // batches fan out; don't shed the clean ones
        ..soak_config()
    };
    let server = Server::bind(&[Endpoint::Tcp("127.0.0.1:0".into())], config).expect("bind");
    let ep = server.local_endpoints().expect("endpoints").remove(0);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let mut injector = ChaosInjector::new(CHAOS_SEED ^ 0xB417).with_ratio(2, 5);
    let mut clean_items = 0usize;
    let mut answered = 0usize;
    for i in 0..connections {
        let burst = 2 + i % 5;
        match injector.next_burst(burst) {
            Some(fault) => run_faulty_burst(&ep, &fault, burst),
            None if i % 2 == 0 => {
                clean_items += burst;
                answered += run_clean_batch(&ep, burst);
            }
            None => {
                clean_items += burst;
                answered += run_clean_pipeline(&ep, 4, burst);
            }
        }
    }
    assert_eq!(
        answered, clean_items,
        "every well-formed item answered exactly once"
    );

    handle.begin_drain();
    let stats = join.join().expect("server run");
    assert_eq!(
        stats.panics, 0,
        "no worker panics under v2 chaos: {stats:?}"
    );
    assert_eq!(stats.workers_joined, 3, "pool joined post-drain: {stats:?}");
}

/// A client that sends a well-formed batch and disconnects before
/// reading any replies must not wedge or panic the server: the sink
/// turns broken, in-flight items finish, the pool drains clean.
#[test]
fn mid_batch_disconnect_does_not_poison_the_pool() {
    let server = Server::bind(&[Endpoint::Tcp("127.0.0.1:0".into())], soak_config()).expect("bind");
    let ep = server.local_endpoints().expect("endpoints").remove(0);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    for _ in 0..4 {
        let mut conn = cpn_serve::Conn::dial(&ep).expect("dial");
        write_handshake(&mut conn).expect("handshake out");
        read_handshake(&mut conn).expect("handshake in");
        let items: Vec<Request> = (0..6)
            .map(|_| Request::Reach {
                net: "small".into(),
                max_states: 1000,
                deadline_ms: Some(2000),
                threads: 1,
                stream: false,
                doc: SMALL_NET.into(),
            })
            .collect();
        let batch = Request::batch(items, Some(5_000)).expect("batch");
        conn.write_all(&encode_frame(batch.encode().as_bytes()))
            .expect("batch frame");
        let _ = conn.flush();
        conn.shutdown(); // gone before any Item frame comes back
    }
    // The server is still healthy for a well-behaved client.
    let mut client = Client::connect(&ep).expect("connect after abandonments");
    assert_eq!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    );
    drop(client);
    handle.begin_drain();
    let stats = join.join().expect("server run");
    assert_eq!(stats.panics, 0, "stats: {stats:?}");
    assert_eq!(stats.workers_joined, 3, "stats: {stats:?}");
}

/// A streaming client that disconnects mid-stream (truncating the
/// progress sequence from its side) must not panic the server.
#[test]
fn disconnect_during_streaming_reach_is_harmless() {
    let server = Server::bind(&[Endpoint::Tcp("127.0.0.1:0".into())], soak_config()).expect("bind");
    let ep = server.local_endpoints().expect("endpoints").remove(0);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    // 2^20 states: big enough that streaming emits progress slices.
    let mut doc = String::from("net boom {\n    places {");
    for i in 0..20 {
        doc.push_str(&format!(" a{i}* b{i}"));
    }
    doc.push_str(" }\n");
    for i in 0..20 {
        doc.push_str(&format!(
            "    transition \"t{i}\" {{ pre: a{i}; post: b{i} }}\n"
        ));
    }
    doc.push('}');

    let mut conn = cpn_serve::Conn::dial(&ep).expect("dial");
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    write_handshake(&mut conn).expect("handshake out");
    read_handshake(&mut conn).expect("handshake in");
    let req = Request::Reach {
        net: "boom".into(),
        max_states: 1_000_000,
        deadline_ms: Some(5_000),
        threads: 1,
        stream: true,
        doc,
    };
    conn.write_all(&encode_frame(with_corr(Some(7), &req.encode()).as_bytes()))
        .expect("streaming request");
    // Read exactly one frame (a progress slice or the final), then cut.
    let _ = read_frame(&mut conn, 1 << 20).expect("first streamed frame");
    conn.shutdown();

    handle.begin_drain();
    let stats = join.join().expect("server run");
    assert_eq!(stats.panics, 0, "stats: {stats:?}");
    assert_eq!(stats.workers_joined, 3, "stats: {stats:?}");
}
