//! Chaos soak: a seeded transport fault injector hammers the daemon
//! with truncated frames, oversized length prefixes, garbage bytes,
//! mid-request disconnects, and stalled writes, interleaved with
//! well-formed requests. Invariants, from the issue's acceptance
//! criteria:
//!
//! * every **well-formed** request receives a typed response,
//! * the daemon neither panics nor deadlocks,
//! * the worker pool is idle (fully joined) after the drain.
//!
//! The schedule is a pure function of `CHAOS_SEED`, so a failure
//! reproduces exactly. `CPN_CHAOS_QUICK=1` (the CI smoke setting)
//! trims the connection count.

use cpn_serve::frame::{encode_frame, read_frame, read_handshake, write_handshake};
use cpn_serve::{Client, Endpoint, Request, Response, Server, ServerConfig};
use cpn_testkit::{corrupt_frame, ChaosInjector, TransportFault, WriteStep};
use std::io::Write;
use std::time::Duration;

const CHAOS_SEED: u64 = 0xDAC9_4CAF_E001;

const SMALL_NET: &str = r#"net small {
    places { p* q }
    transition "a" { pre: p; post: q }
    transition "b" { pre: q; post: p }
}"#;

fn soak_config() -> ServerConfig {
    ServerConfig {
        workers: 3,
        queue_depth: 4,
        default_deadline: Duration::from_secs(5),
        drain_grace: Duration::from_secs(2),
        idle_timeout: Duration::from_secs(2),
        // Short I/O timeout so stalled writers are cut quickly.
        io_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    }
}

/// One faulty connection: handshake correctly, then run the corruption
/// script for a would-be request frame. Nothing here may hang or panic
/// the server; whatever comes back (a typed error frame, a close) is
/// acceptable for a *malformed* exchange.
fn run_faulty_connection(ep: &Endpoint, fault: &TransportFault, injector: &mut ChaosInjector) {
    let Ok(mut conn) = cpn_serve::Conn::dial(ep) else {
        return; // server mid-shed; dial refusal is a typed outcome
    };
    let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = conn.set_write_timeout(Some(Duration::from_secs(2)));
    if write_handshake(&mut conn).is_err() || read_handshake(&mut conn).is_err() {
        return;
    }
    let request = Request::Reach {
        net: "small".into(),
        max_states: 1000,
        deadline_ms: Some(1000),
        threads: 1,
        doc: SMALL_NET.into(),
    };
    let wire = encode_frame(request.encode().as_bytes());
    let steps = corrupt_frame(&wire, fault, injector);
    for step in steps {
        match step {
            WriteStep::Bytes(bytes) => {
                if conn.write_all(&bytes).is_err() {
                    return; // server already cut us off — fine
                }
                let _ = conn.flush();
            }
            WriteStep::Pause(d) => std::thread::sleep(d),
            WriteStep::CloseNow => {
                conn.shutdown();
                return;
            }
        }
    }
    // A stalled-but-complete frame is a well-formed request: it must
    // still get a typed response (the stall is under the I/O timeout).
    if matches!(fault, TransportFault::StalledWrite { .. }) {
        let payload = read_frame(&mut conn, 1 << 20).expect("stalled frame still answered");
        let text = std::str::from_utf8(&payload).expect("UTF-8 response");
        let resp = Response::decode(text).expect("typed response");
        assert!(
            matches!(
                resp,
                Response::Result(_)
                    | Response::Overloaded
                    | Response::DeadlineExceeded
                    | Response::InternalError(_)
            ),
            "unexpected response to stalled request: {resp:?}"
        );
    }
}

/// One clean connection: a well-formed request that MUST get a typed
/// response.
fn run_clean_connection(ep: &Endpoint, i: usize) -> Response {
    let mut client = Client::connect(ep).expect("clean connect");
    let req = match i % 3 {
        0 => Request::Ping,
        1 => Request::Reach {
            net: "small".into(),
            max_states: 1000,
            deadline_ms: Some(2000),
            threads: 1,
            doc: SMALL_NET.into(),
        },
        _ => Request::Cover {
            net: "small".into(),
            max_states: 1000,
            deadline_ms: Some(2000),
            threads: 1,
            doc: SMALL_NET.into(),
        },
    };
    client.request(&req).expect("typed response")
}

#[test]
fn chaos_soak_every_wellformed_request_answered() {
    let connections: usize = if std::env::var_os("CPN_CHAOS_QUICK").is_some() {
        25
    } else {
        80
    };
    let server = Server::bind(&[Endpoint::Tcp("127.0.0.1:0".into())], soak_config()).expect("bind");
    let ep = server.local_endpoints().expect("endpoints").remove(0);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let mut injector = ChaosInjector::new(CHAOS_SEED).with_ratio(2, 5);
    let mut clean = 0usize;
    let mut answered = 0usize;
    for i in 0..connections {
        match injector.next_connection() {
            Some(fault) => run_faulty_connection(&ep, &fault, &mut injector),
            None => {
                clean += 1;
                match run_clean_connection(&ep, i) {
                    Response::Pong | Response::Result(_) => answered += 1,
                    Response::Overloaded | Response::DeadlineExceeded => answered += 1,
                    other => panic!("well-formed request got {other:?}"),
                }
            }
        }
    }
    let (seen, faulted) = injector.stats();
    assert_eq!(seen as usize, connections);
    assert!(
        faulted as f64 / seen as f64 >= 0.3,
        "fault rate too low under seed {CHAOS_SEED:#x}: {faulted}/{seen}"
    );
    assert_eq!(answered, clean, "every well-formed request answered");

    handle.begin_drain();
    let stats = join.join().expect("server run");
    assert_eq!(stats.panics, 0, "no worker panics under chaos: {stats:?}");
    assert_eq!(
        stats.workers_joined, 3,
        "worker pool idle and joined post-drain: {stats:?}"
    );
    assert!(stats.accepted >= clean as u64);
}

/// Oversized length prefixes specifically must produce the typed
/// `bad-request` refusal before the connection closes — the frame cap
/// is checked before allocation.
#[test]
fn oversized_prefix_gets_typed_refusal() {
    let server = Server::bind(&[Endpoint::Tcp("127.0.0.1:0".into())], soak_config()).expect("bind");
    let ep = server.local_endpoints().expect("endpoints").remove(0);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let mut conn = cpn_serve::Conn::dial(&ep).expect("dial");
    let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
    write_handshake(&mut conn).expect("handshake out");
    read_handshake(&mut conn).expect("handshake in");
    conn.write_all(&u32::MAX.to_be_bytes())
        .expect("evil prefix");
    conn.write_all(b"junk").expect("junk");
    let payload = read_frame(&mut conn, 1 << 20).expect("refusal frame");
    let resp = Response::decode(std::str::from_utf8(&payload).expect("UTF-8")).expect("typed");
    match resp {
        Response::BadRequest(msg) => assert!(msg.contains("exceeds"), "msg: {msg}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }

    handle.begin_drain();
    let stats = join.join().expect("server run");
    assert_eq!(stats.bad_requests, 1);
}
