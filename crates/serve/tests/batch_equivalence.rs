//! Equivalence property from the issue's acceptance criteria: a batch
//! of N requests, and N pipelined requests, produce responses
//! **byte-identical** to N sequential single requests on a lock-step
//! connection — including typed partial verdicts (`DeadlineExceeded`,
//! states-exhausted partial results), `threads=` variants, and
//! per-item errors.
//!
//! Determinism hinges on the kernel's exploration contract: under a
//! fixed `max_states` cap the explored prefix is a pure function of
//! the net, so even truncated answers replay exactly.

use cpn_serve::{Client, Endpoint, PipelinedClient, Request, Response, Server, ServerConfig};
use std::time::Duration;

const SMALL_NET: &str = r#"net small {
    places { p* q }
    transition "a" { pre: p; post: q }
    transition "b" { pre: q; post: p }
}"#;

const HANDSHAKE_DOC: &str = r#"net producer {
    places { a0* a1 }
    transition "req" { pre: a0; post: a1 }
    transition "ack" { pre: a1; post: a0 }
}

net consumer {
    places { b0* b1 }
    transition "req" { pre: b0; post: b1 }
    transition "ack" { pre: b1; post: b0 }
}"#;

fn toggles_doc(n: usize) -> String {
    let mut doc = String::from("net boom {\n    places {");
    for i in 0..n {
        doc.push_str(&format!(" a{i}* b{i}"));
    }
    doc.push_str(" }\n");
    for i in 0..n {
        doc.push_str(&format!(
            "    transition \"up{i}\" {{ pre: a{i}; post: b{i} }}\n"
        ));
        doc.push_str(&format!(
            "    transition \"down{i}\" {{ pre: b{i}; post: a{i} }}\n"
        ));
    }
    doc.push('}');
    doc
}

/// The deterministic request mix. Every case has exactly one possible
/// typed answer, so byte-comparison is sound:
///
/// * complete reach / cover on a tiny net,
/// * a states-exhausted partial (`max_states` below the state count),
/// * a `threads=2` variant (kernel answers are thread-count invariant),
/// * `deadline_ms=0`, already expired on arrival → `DeadlineExceeded`,
/// * a missing net name → `BadRequest`,
/// * a server-side `verify` of the handshake pair.
fn request_mix() -> Vec<Request> {
    let boom = toggles_doc(10); // 1024 states
    vec![
        Request::Reach {
            net: "small".into(),
            max_states: 1000,
            deadline_ms: None,
            threads: 1,
            stream: false,
            doc: SMALL_NET.into(),
        },
        Request::Cover {
            net: "small".into(),
            max_states: 1000,
            deadline_ms: None,
            threads: 1,
            doc: SMALL_NET.into(),
        },
        Request::Reach {
            net: "boom".into(),
            max_states: 100,
            deadline_ms: None,
            threads: 1,
            stream: false,
            doc: boom.clone(),
        },
        Request::Reach {
            net: "boom".into(),
            max_states: 100_000,
            deadline_ms: None,
            threads: 2,
            stream: false,
            doc: boom.clone(),
        },
        Request::Reach {
            net: "boom".into(),
            max_states: 100_000,
            deadline_ms: Some(0),
            threads: 1,
            stream: false,
            doc: boom,
        },
        Request::Reach {
            net: "ghost".into(),
            max_states: 10,
            deadline_ms: None,
            threads: 1,
            stream: false,
            doc: SMALL_NET.into(),
        },
        Request::Verify {
            module: "producer".into(),
            env: "consumer".into(),
            louts: vec!["req".into()],
            routs: vec!["ack".into()],
            max_states: 100_000,
            deadline_ms: None,
            hide_budget: 10_000,
            stream: false,
            doc: HANDSHAKE_DOC.into(),
        },
    ]
}

fn start() -> (
    Endpoint,
    cpn_serve::ServerHandle,
    std::thread::JoinHandle<cpn_serve::ServerStats>,
) {
    let config = ServerConfig {
        workers: 4,
        queue_depth: 32,
        default_deadline: Duration::from_secs(30),
        drain_grace: Duration::from_secs(2),
        idle_timeout: Duration::from_secs(5),
        io_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let server = Server::bind(&[Endpoint::Tcp("127.0.0.1:0".into())], config).expect("bind");
    let ep = server.local_endpoints().expect("endpoints").remove(0);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (ep, handle, join)
}

fn sequential_baseline(ep: &Endpoint, reqs: &[Request]) -> Vec<String> {
    let mut client = Client::connect(ep).expect("connect");
    reqs.iter()
        .map(|r| client.request(r).expect("sequential response").encode())
        .collect()
}

#[test]
fn batch_responses_byte_identical_to_sequential() {
    let (ep, handle, join) = start();
    let reqs = request_mix();
    let baseline = sequential_baseline(&ep, &reqs);

    let mut client = Client::connect(&ep).expect("connect");
    // No umbrella deadline: per-item behavior must match the
    // sequential requests, where only the items' own deadlines apply.
    let replies = client.batch(reqs.clone(), None).expect("batch");
    let got: Vec<String> = replies.iter().map(Response::encode).collect();
    assert_eq!(
        got, baseline,
        "batch items must be byte-identical to sequential answers"
    );

    // Repeat the batch: cache hits must not change any byte either.
    let replies = client.batch(reqs, None).expect("second batch");
    let got: Vec<String> = replies.iter().map(Response::encode).collect();
    assert_eq!(got, baseline, "warm-cache batch still identical");

    drop(client);
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.panics, 0);
}

#[test]
fn pipelined_responses_byte_identical_to_sequential() {
    let (ep, handle, join) = start();
    let reqs = request_mix();
    let baseline = sequential_baseline(&ep, &reqs);

    for window in [1usize, 4, 16] {
        let mut client = PipelinedClient::connect(&ep, window).expect("pipelined connect");
        let mut corr_to_index = std::collections::HashMap::new();
        let mut got = vec![String::new(); reqs.len()];
        for (i, req) in reqs.iter().enumerate() {
            // submit() pumps completions while the window is full, so
            // collect as we go rather than only at the end.
            corr_to_index.insert(client.submit(req).expect("submit"), i);
        }
        for (corr, resp) in client.drain().expect("drain") {
            let i = corr_to_index[&corr];
            got[i] = resp.encode();
        }
        assert_eq!(
            got, baseline,
            "pipelined answers at window {window} must be byte-identical"
        );
    }

    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.panics, 0);
}
