//! End-to-end service tests: round trips over TCP and UDS, deadline
//! degradation without head-of-line starvation, panic isolation, load
//! shedding, and graceful drain.

use cpn_serve::{
    request_with_retry, Client, Endpoint, Request, Response, RetryPolicy, Server, ServerConfig,
};
use std::time::{Duration, Instant};

const SMALL_NET: &str = r#"net small {
    places { p* q }
    transition "a" { pre: p; post: q }
    transition "b" { pre: q; post: p }
}"#;

/// `n` independent toggles: `2^n` reachable states, far beyond any
/// short deadline.
fn explosive_doc(n: usize) -> String {
    let mut doc = String::from("net boom {\n    places {");
    for i in 0..n {
        doc.push_str(&format!(" a{i}* b{i}"));
    }
    doc.push_str(" }\n");
    for i in 0..n {
        doc.push_str(&format!(
            "    transition \"up{i}\" {{ pre: a{i}; post: b{i} }}\n"
        ));
        doc.push_str(&format!(
            "    transition \"down{i}\" {{ pre: b{i}; post: a{i} }}\n"
        ));
    }
    doc.push('}');
    doc
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        workers: 4,
        queue_depth: 8,
        default_deadline: Duration::from_secs(10),
        drain_grace: Duration::from_secs(2),
        idle_timeout: Duration::from_secs(5),
        io_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

fn start(
    config: ServerConfig,
) -> (
    Endpoint,
    cpn_serve::ServerHandle,
    std::thread::JoinHandle<cpn_serve::ServerStats>,
) {
    let server = Server::bind(&[Endpoint::Tcp("127.0.0.1:0".into())], config).expect("bind");
    let ep = server.local_endpoints().expect("endpoints").remove(0);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (ep, handle, join)
}

#[test]
fn tcp_round_trip_and_cache_hit() {
    let (ep, handle, join) = start(quick_config());
    let mut client = Client::connect(&ep).expect("connect");
    assert_eq!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    );

    let req = Request::Reach {
        net: "small".into(),
        max_states: 1000,
        deadline_ms: None,
        threads: 1,
        stream: false,
        doc: SMALL_NET.into(),
    };
    for _ in 0..2 {
        match client.request(&req).expect("reach") {
            Response::Result(s) => {
                assert!(s.is_complete());
                assert_eq!(s.states, 2);
                assert_eq!(s.edges, 2);
                assert!(s.detail.contains("bound=1"));
            }
            other => panic!("expected Result, got {other:?}"),
        }
    }
    let cover = Request::Cover {
        net: "small".into(),
        max_states: 1000,
        deadline_ms: None,
        threads: 1,
        doc: SMALL_NET.into(),
    };
    match client.request(&cover).expect("cover") {
        Response::Result(s) => {
            assert!(s.is_complete());
            assert!(s.detail.contains("bounded=1"), "detail: {}", s.detail);
        }
        other => panic!("expected Result, got {other:?}"),
    }
    drop(client);
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.served, 4);
    // Second identical reach and the cover reused the parsed document.
    assert!(stats.cache_hits >= 1, "stats: {stats:?}");
    assert_eq!(stats.workers_joined, 4);
}

/// A structurally distinct (module, env) document pair per `i`: the
/// token counts differ, so every net gets its own canonical identity
/// and its own cache entry.
fn pair_doc(i: usize) -> String {
    format!(
        "net m {{ places {{ p*{} q }} transition \"go\" {{ pre: p; post: q }} }}\n\
         net e {{ places {{ r*{} s }} transition \"go\" {{ pre: r; post: s }} }}",
        2 * i + 2,
        2 * i + 3
    )
}

/// LRU eviction under a mixed Reach/Verify load: a hot net re-touched
/// between cold `verify` pairs survives the churn, evictions are
/// counted, and a reformatted copy of the hot document is answered
/// from the structural tier without recompiling.
#[test]
fn cache_eviction_under_mixed_load() {
    let config = ServerConfig {
        cache_capacity: 3,
        ..quick_config()
    };
    let (ep, handle, join) = start(config);
    let mut client = Client::connect(&ep).expect("connect");

    let hot = Request::Reach {
        net: "small".into(),
        max_states: 1000,
        deadline_ms: None,
        threads: 1,
        stream: false,
        doc: SMALL_NET.into(),
    };
    match client.request(&hot).expect("seed reach") {
        Response::Result(s) => assert!(s.is_complete()),
        other => panic!("expected Result, got {other:?}"),
    }
    // Churn: each verify compiles two cold nets (module + env),
    // overflowing the 3-entry cache; the hot net is re-touched after
    // every pair, so it is never the LRU victim.
    for i in 0..3 {
        let verify = Request::Verify {
            module: "m".into(),
            env: "e".into(),
            louts: vec!["go".into()],
            routs: vec![],
            max_states: 10_000,
            deadline_ms: None,
            hide_budget: 10_000,
            stream: false,
            doc: pair_doc(i),
        };
        match client.request(&verify).expect("verify") {
            Response::VerifyResult(_) => {}
            other => panic!("expected VerifyResult, got {other:?}"),
        }
        match client.request(&hot).expect("hot re-touch") {
            Response::Result(_) => {}
            other => panic!("expected Result, got {other:?}"),
        }
    }
    // A reformatted copy of the hot document (different net name,
    // place names, whitespace) parses to the same canonical identity:
    // structural hit, no recompile.
    let reformatted = Request::Reach {
        net: "tiny".into(),
        max_states: 1000,
        deadline_ms: None,
        threads: 1,
        stream: false,
        doc: "net tiny {\n  places { x*  y }\n  transition \"a\" { pre: x; post: y }\n  transition \"b\" { pre: y; post: x }\n}\n".into(),
    };
    match client.request(&reformatted).expect("reformatted reach") {
        Response::Result(s) => assert!(s.is_complete()),
        other => panic!("expected Result, got {other:?}"),
    }

    match client.request(&Request::Stats).expect("stats") {
        Response::Stats(s) => {
            // 1 hot seed + 3 verify pairs compiled; 3 hot re-touches
            // were byte hits and the reformatted copy a structural hit.
            assert_eq!(s.cache_misses, 7, "{s:?}");
            assert_eq!(s.cache_byte_hits, 3, "{s:?}");
            assert_eq!(s.cache_structural_hits, 1, "{s:?}");
            assert_eq!(s.cache_hits, 4, "{s:?}");
            // 7 insertions through a 3-entry cache: 4 LRU victims, and
            // the hot entry is not among them.
            assert_eq!(s.cache_evictions, 4, "{s:?}");
            assert_eq!(s.cache_len, 3, "{s:?}");
            assert_eq!(s.cache_capacity, 3, "{s:?}");
            assert!(s.cache_bytes > 0, "{s:?}");
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    // The hot document is still resident after all the churn.
    match client.request(&hot).expect("hot after churn") {
        Response::Result(s) => assert!(s.is_complete()),
        other => panic!("expected Result, got {other:?}"),
    }
    drop(client);
    handle.begin_drain();
    join.join().expect("server");
}

#[cfg(unix)]
#[test]
fn uds_round_trip() {
    let dir = std::env::temp_dir().join(format!("cpn-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("uds-round-trip.sock");
    let server = Server::bind(&[Endpoint::Unix(path.clone())], quick_config()).expect("bind");
    let ep = server.local_endpoints().expect("endpoints").remove(0);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&ep).expect("connect");
    assert_eq!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    );
    drop(client);
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.accepted, 1);
    assert!(!path.exists(), "socket file removed on drop");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explosive_request_degrades_without_starving_small_ones() {
    let (ep, handle, join) = start(quick_config());
    let doc = explosive_doc(24);

    // The explosive request occupies one worker for ~50ms and must come
    // back as a sound partial result, not a hang or a crash.
    let ep_boom = ep.clone();
    let boom = std::thread::spawn(move || {
        let mut c = Client::connect(&ep_boom).expect("connect");
        let started = Instant::now();
        let resp = c
            .request(&Request::Reach {
                net: "boom".into(),
                max_states: 50_000_000,
                deadline_ms: Some(50),
                threads: 1,
                stream: false,
                doc,
            })
            .expect("reach");
        (resp, started.elapsed())
    });

    // Meanwhile small requests keep completing on the other workers.
    for _ in 0..5 {
        let mut c = Client::connect(&ep).expect("connect");
        let started = Instant::now();
        match c
            .request(&Request::Reach {
                net: "small".into(),
                max_states: 1000,
                deadline_ms: Some(5_000),
                threads: 1,
                stream: false,
                doc: SMALL_NET.into(),
            })
            .expect("small reach")
        {
            Response::Result(s) => assert!(s.is_complete()),
            other => panic!("expected Result, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "small request starved behind the explosive one"
        );
    }

    let (resp, elapsed) = boom.join().expect("boom thread");
    match resp {
        Response::Result(s) => {
            assert!(!s.is_complete(), "2^24 states cannot finish in 50ms");
            assert_eq!(s.stopped.as_deref(), Some("deadline"));
            assert!(s.states >= 1, "partial results intact");
        }
        other => panic!("expected partial Result, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(10),
        "deadline did not bound the explosive request ({elapsed:?})"
    );

    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.workers_joined, 4);
}

#[test]
fn worker_panic_is_isolated_and_typed() {
    std::env::set_var("CPN_SERVE_CHAOS", "1");
    let (ep, handle, join) = start(quick_config());
    let mut client = Client::connect(&ep).expect("connect");
    let poison = Request::Reach {
        net: "__chaos_panic".into(),
        max_states: 10,
        deadline_ms: None,
        threads: 1,
        stream: false,
        doc: SMALL_NET.into(),
    };
    match client.request(&poison).expect("poison request") {
        Response::InternalError(msg) => assert!(msg.contains("panic"), "msg: {msg}"),
        other => panic!("expected InternalError, got {other:?}"),
    }
    // The pool survives: the same connection keeps working.
    assert_eq!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    );
    match client
        .request(&Request::Reach {
            net: "small".into(),
            max_states: 100,
            deadline_ms: None,
            threads: 1,
            stream: false,
            doc: SMALL_NET.into(),
        })
        .expect("reach after panic")
    {
        Response::Result(s) => assert!(s.is_complete()),
        other => panic!("expected Result, got {other:?}"),
    }
    drop(client);
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.workers_joined, 4);
}

#[test]
fn malformed_requests_get_bad_request() {
    let (ep, handle, join) = start(quick_config());
    let mut client = Client::connect(&ep).expect("connect");
    let cases = [
        Request::Reach {
            net: "ghost".into(),
            max_states: 10,
            deadline_ms: None,
            threads: 1,
            stream: false,
            doc: SMALL_NET.into(),
        },
        Request::Reach {
            net: "small".into(),
            max_states: 10,
            deadline_ms: None,
            threads: 1,
            stream: false,
            doc: "net small {".into(),
        },
    ];
    for req in cases {
        match client.request(&req).expect("request") {
            Response::BadRequest(_) => {}
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }
    drop(client);
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.bad_requests, 2);
}

#[test]
fn nonsense_thread_counts_are_rejected_typed() {
    let (ep, handle, join) = start(quick_config());
    let mut client = Client::connect(&ep).expect("connect");
    for threads in [0, cpn_serve::MAX_REQUEST_THREADS + 1, usize::MAX] {
        let req = Request::Reach {
            net: "small".into(),
            max_states: 1000,
            deadline_ms: None,
            threads,
            stream: false,
            doc: SMALL_NET.into(),
        };
        match client.request(&req).expect("request") {
            Response::BadRequest(msg) => {
                assert!(msg.contains("threads"), "msg: {msg}");
            }
            other => panic!("expected BadRequest for threads={threads}, got {other:?}"),
        }
    }
    drop(client);
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.panics, 0);
}

#[test]
fn parallel_reach_answers_match_sequential() {
    let (ep, handle, join) = start(quick_config());
    let doc = explosive_doc(10); // 1024 states
    let mut client = Client::connect(&ep).expect("connect");
    let mut answers = Vec::new();
    // 4 exceeds this host's core count on CI runners sometimes; the
    // server clamps, and the kernel's determinism contract makes every
    // variant byte-identical anyway.
    for threads in [1usize, 2, 4] {
        let req = Request::Reach {
            net: "boom".into(),
            max_states: 100_000,
            deadline_ms: None,
            threads,
            stream: false,
            doc: doc.clone(),
        };
        match client.request(&req).expect("reach") {
            Response::Result(s) => {
                assert!(s.is_complete(), "threads={threads}");
                answers.push(s);
            }
            other => panic!("expected Result at threads={threads}, got {other:?}"),
        }
    }
    assert_eq!(answers[0].states, 1024);
    assert!(
        answers.windows(2).all(|w| w[0] == w[1]),
        "thread count changed an answer: {answers:?}"
    );
    drop(client);
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.panics, 0);
}

#[test]
fn drain_refuses_new_connections_and_finishes() {
    let (ep, handle, join) = start(quick_config());
    let mut client = Client::connect(&ep).expect("connect");
    assert_eq!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    );
    handle.begin_drain();
    let stats = join.join().expect("server");
    assert_eq!(stats.workers_joined, 4);
    // The listener is gone: a retried request exhausts its attempts.
    let policy = RetryPolicy {
        attempts: 2,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(4),
        seed: 3,
    };
    assert!(request_with_retry(&ep, &Request::Ping, &policy).is_err());
}

#[test]
fn retry_rides_out_a_late_starting_server() {
    // Bind to learn a free port, drain immediately, then restart a
    // server on that port after a delay; the retrying client connects
    // once the listener is back.
    let (ep, handle, join) = start(quick_config());
    handle.begin_drain();
    join.join().expect("server");

    let ep_for_server = ep.clone();
    let starter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        let server = Server::bind(&[ep_for_server], quick_config()).expect("rebind");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    });

    let policy = RetryPolicy {
        attempts: 8,
        base: Duration::from_millis(50),
        cap: Duration::from_millis(200),
        seed: 11,
    };
    let resp = request_with_retry(&ep, &Request::Ping, &policy).expect("retry succeeds");
    assert_eq!(resp, Response::Pong);

    let (handle, join) = starter.join().expect("starter");
    handle.begin_drain();
    join.join().expect("server");
}
