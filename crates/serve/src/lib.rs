//! # cpn-serve — a fault-tolerant verification daemon
//!
//! Long-running verification service over the workspace's Petri-net
//! kernel: clients submit `.cpn` documents over TCP or Unix domain
//! sockets and receive typed verdicts. The design goal is *graceful
//! degradation everywhere* — every overload, deadline, malformed
//! input, transport fault, or worker panic maps to a typed response or
//! a clean close, never a crash, hang, or silent wrong answer:
//!
//! * **Framing** ([`frame`]) — magic + version handshake, then
//!   length-prefixed frames with the length validated before any
//!   allocation.
//! * **Protocol** ([`proto`]) — typed [`Request`]/[`Response`] enums
//!   with a text codec (`key=value` command line + `.cpn` document),
//!   debuggable with `nc`.
//! * **Pool** ([`server`]) — fixed worker threads behind a bounded
//!   queue; a full queue sheds with [`Response::Overloaded`]; worker
//!   panics are isolated per-request with `catch_unwind`.
//! * **Budgets** — every request runs under a `cpn-petri` [`Budget`]
//!   with a wall-clock deadline and the server's cancellation token,
//!   so explosive state spaces return `Unknown`-style partial results
//!   on time (no head-of-line blocking past the deadline).
//! * **Drain** — SIGTERM (or [`ServerHandle::begin_drain`]) stops
//!   accepting, sheds new work, lets in-flight requests finish under a
//!   shrinking deadline, then cancels stragglers and joins the pool.
//! * **Cache** ([`cache`]) — compiled nets keyed by document content
//!   hash with LRU eviction, so an edit-verify loop pays parse +
//!   compile once per edit and a batch hash-conses repeated documents.
//! * **Client** ([`client`]) — handshake, typed errors, and
//!   retry-with-full-jitter backoff for sheds and transient faults.
//!
//! ## Protocol v2: batching, pipelining, streaming, server-side verify
//!
//! The handshake negotiates `min(client, server)` versions, so v1
//! clients keep working unchanged. On a v2 connection:
//!
//! * [`Request::Batch`] carries N sub-requests in one frame, answered
//!   in order with [`Response::Item`] frames and closed by
//!   [`Response::BatchDone`] — one round trip for N verdicts, with a
//!   batch-level umbrella deadline degrading unstarted items to typed
//!   `DeadlineExceeded` partials instead of poisoning siblings.
//! * [`PipelinedClient`] keeps a configurable window of correlated
//!   requests in flight on one connection; frames carry `@<id>`
//!   correlation prefixes so completions are matched out of order.
//! * `stream=true` requests emit non-final [`Response::Progress`]
//!   frames while long explorations run.
//! * [`Request::Verify`] runs the paper pipeline server-side: compose
//!   `module ‖ env`, check receptiveness, reduce against the
//!   environment — answered with [`Response::VerifyResult`].
//! * [`Request::Stats`] reports live service and cache counters.
//!
//! [`Budget`]: cpn_petri::Budget
//!
//! ## Example (in-process round trip)
//!
//! ```
//! use cpn_serve::{Client, Endpoint, Request, Response, Server, ServerConfig};
//!
//! let server = Server::bind(
//!     &[Endpoint::Tcp("127.0.0.1:0".into())],
//!     ServerConfig::default(),
//! )?;
//! let ep = server.local_endpoints()?.remove(0);
//! let handle = server.handle();
//! let join = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(&ep)?;
//! assert_eq!(client.request(&Request::Ping)?, Response::Pong);
//!
//! handle.begin_drain();
//! let stats = join.join().expect("server thread");
//! assert_eq!(stats.accepted, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
pub mod client;
pub mod frame;
pub mod proto;
pub mod server;
pub mod transport;

pub use cache::{CacheMiss, CacheStats, CachedNet, NetCache};
pub use client::{request_with_retry, Client, ClientError, PipelinedClient, RetryPolicy};
pub use frame::{FrameError, DEFAULT_MAX_FRAME, MAGIC, MIN_PROTO_VERSION, PROTO_VERSION};
pub use proto::{
    BatchItem, BatchLimits, ExploreSummary, ProgressUpdate, Receptive, Request, Response,
    StatsReply, VerifySummary, DEFAULT_HIDE_BUDGET, MAX_BATCH_ITEMS,
};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats, MAX_REQUEST_THREADS};
pub use transport::{Conn, Endpoint, Listener};
