//! Content-hash-keyed session cache of compiled nets.
//!
//! Clients resubmitting the same document (an interactive design loop
//! re-verifying after each edit, a CI matrix fanning one net across
//! many property checks) should not pay parse + compile per request.
//! The cache keys on an FNV-1a hash of the raw document text plus the
//! requested net name, so a one-byte edit is a different key and stale
//! hits are impossible without comparing full documents.

use cpn_format::{parse_with_limits, ParseLimits};
use cpn_petri::{CompiledNet, PetriNet};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// FNV-1a, 64-bit: tiny, allocation-free, good dispersion on text.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A parsed and compiled net, shared between workers.
#[derive(Debug)]
pub struct CachedNet {
    /// The validated source net (used by analyses that need labels or
    /// the interpreter, e.g. coverability).
    pub net: PetriNet<String>,
    /// The compiled firing rule for the hot explorers.
    pub compiled: CompiledNet,
    /// The initial marking as a flat slice.
    pub m0: Vec<u32>,
}

/// Why a cache lookup failed to produce a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMiss {
    /// The document failed to parse (message from `cpn-format`).
    Parse(String),
    /// The document parsed but contains no `net` item with this name.
    NoSuchNet(String),
}

/// Bounded FIFO cache mapping `(doc hash, net name)` to compiled nets.
#[derive(Debug)]
pub struct NetCache {
    inner: Mutex<CacheInner>,
    limits: ParseLimits,
}

#[derive(Debug)]
struct CacheInner {
    map: HashMap<(u64, String), Arc<CachedNet>>,
    order: VecDeque<(u64, String)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl NetCache {
    /// A cache holding at most `capacity` compiled nets, parsing with
    /// the given limits on misses.
    pub fn new(capacity: usize, limits: ParseLimits) -> Self {
        NetCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
                hits: 0,
                misses: 0,
            }),
            limits,
        }
    }

    /// The compiled net for `name` inside `doc`, parsing and compiling
    /// on a miss.
    ///
    /// # Errors
    ///
    /// [`CacheMiss`] when the document is malformed or names no such
    /// net; errors are not cached (the retry cost is the parse, and a
    /// poisoned negative entry would outlive a client's fixed resubmit).
    pub fn get_or_compile(&self, doc: &str, name: &str) -> Result<Arc<CachedNet>, CacheMiss> {
        let key = (fnv1a(doc.as_bytes()), name.to_owned());
        {
            let mut inner = self.lock();
            if let Some(hit) = inner.map.get(&key) {
                let hit = Arc::clone(hit);
                inner.hits += 1;
                return Ok(hit);
            }
            inner.misses += 1;
        }
        // Parse and compile outside the lock: a slow adversarial
        // document must not serialize every other worker's lookups.
        let parsed =
            parse_with_limits(doc, &self.limits).map_err(|e| CacheMiss::Parse(e.to_string()))?;
        let net = parsed
            .nets
            .into_iter()
            .find_map(|(n, net)| (n == name).then_some(net))
            .ok_or_else(|| CacheMiss::NoSuchNet(name.to_owned()))?;
        let compiled = net.compile();
        let m0 = net.initial_marking().as_slice().to_vec();
        let entry = Arc::new(CachedNet { net, compiled, m0 });
        let mut inner = self.lock();
        match inner.map.entry(key.clone()) {
            // Another worker compiled the same document concurrently;
            // keep its entry (both are equivalent).
            Entry::Occupied(e) => Ok(Arc::clone(e.get())),
            Entry::Vacant(e) => {
                e.insert(Arc::clone(&entry));
                inner.order.push_back(key);
                while inner.order.len() > inner.capacity {
                    if let Some(old) = inner.order.pop_front() {
                        inner.map.remove(&old);
                    }
                }
                Ok(entry)
            }
        }
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.lock();
        (inner.hits, inner.misses)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A worker that panicked while holding this lock has already
        // been isolated by `catch_unwind`; the cache state itself is
        // only ever mutated in small invariant-preserving steps.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    const DOC: &str = "net n { places { p* q } transition \"t\" { pre: p; post: q } }";

    #[test]
    fn second_lookup_hits() {
        let cache = NetCache::new(8, ParseLimits::default());
        let a = cache.get_or_compile(DOC, "n").unwrap();
        let b = cache.get_or_compile(DOC, "n").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn one_byte_edit_is_a_different_key() {
        let cache = NetCache::new(8, ParseLimits::default());
        let a = cache.get_or_compile(DOC, "n").unwrap();
        let edited = DOC.replace("p*", "p*2");
        let b = cache.get_or_compile(&edited, "n").unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.m0.iter().sum::<u32>(), 2);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let cache = NetCache::new(2, ParseLimits::default());
        for i in 0..4 {
            let doc = format!("net n{i} {{ places {{ p* }} }}");
            cache.get_or_compile(&doc, &format!("n{i}")).unwrap();
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn errors_are_typed_and_uncached() {
        let cache = NetCache::new(8, ParseLimits::default());
        assert!(matches!(
            cache.get_or_compile("net n {", "n"),
            Err(CacheMiss::Parse(_))
        ));
        assert!(matches!(
            cache.get_or_compile(DOC, "ghost"),
            Err(CacheMiss::NoSuchNet(_))
        ));
        assert!(cache.is_empty());
    }
}
