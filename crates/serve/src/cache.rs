//! Structural-identity LRU cache of compiled nets.
//!
//! Clients resubmitting the same document (an interactive design loop
//! re-verifying after each edit, a CI matrix fanning one net across
//! many property checks, a batch hash-consing its items' documents)
//! should not pay parse + compile per request. The cache is two-tier:
//!
//! 1. a **byte tier** keyed on an FNV-1a hash of the raw document text
//!    plus the requested net name — the zero-parse fast path for exact
//!    resubmissions;
//! 2. a **structural tier** keyed on the net's canonical
//!    [`cpn_petri::NetId`] — documents that differ only in
//!    whitespace, place names, declaration order, or interner history
//!    compile to the same entry, as do shared sub-modules submitted
//!    under different documents.
//!
//! A byte miss that lands on a resident `NetId` costs one parse but no
//! compile, and is counted as a *structural hit*; only lookups whose
//! canonical identity is genuinely absent count as misses.
//!
//! Eviction is least-recently-*used* (every hit refreshes the entry),
//! not FIFO: a hot net a pipelined client hammers between submissions
//! of many cold one-off documents must survive the churn. Capacities
//! are tens of entries, so eviction scans the structural tier for the
//! minimum tick instead of maintaining an ordering structure —
//! O(capacity) per *eviction* (misses only, at most one scan each) and
//! zero overhead on the hit path beyond a counter store. Evicting an
//! entry also purges every byte-tier alias that pointed at it.

use cpn_format::{parse_with_limits, ParseLimits};
use cpn_petri::{CompiledNet, NetId, PetriNet};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// FNV-1a, 64-bit — re-exported from [`cpn_petri::hash`] so existing
/// callers keep compiling while the implementation lives in one place.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    cpn_petri::hash::fnv1a_64(bytes)
}

/// A parsed and compiled net, shared between workers.
#[derive(Debug)]
pub struct CachedNet {
    /// The validated source net (used by analyses that need labels or
    /// the interpreter, e.g. coverability).
    pub net: PetriNet<String>,
    /// The compiled firing rule for the hot explorers.
    pub compiled: CompiledNet,
    /// The initial marking as a flat slice.
    pub m0: Vec<u32>,
    /// The canonical structural identity the entry is keyed on.
    pub id: NetId,
}

/// Why a cache lookup failed to produce a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMiss {
    /// The document failed to parse (message from `cpn-format`).
    Parse(String),
    /// The document parsed but contains no `net` item with this name.
    NoSuchNet(String),
}

/// Counters describing the cache's behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (`byte_hits + structural_hits`).
    pub hits: u64,
    /// Hits on the byte tier: identical document text, no parse.
    pub byte_hits: u64,
    /// Hits on the structural tier: the document had to be parsed but
    /// its canonical [`NetId`] was already resident, so the compile
    /// was skipped.
    pub structural_hits: u64,
    /// Lookups that had to parse + compile (or failed to parse).
    pub misses: u64,
    /// Entries discarded to make room (LRU victims).
    pub evictions: u64,
    /// Entries currently resident (structural tier).
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
    /// Approximate bytes held by resident entries (nets + compiled
    /// firing rules; see [`CachedNet::approx_bytes`]).
    pub bytes: u64,
}

impl CachedNet {
    /// Approximate resident size of this entry in bytes: places,
    /// transitions, and arcs of both the source net and its compiled
    /// form, plus fixed overhead. An estimate for capacity planning
    /// via `stats`, not an allocator measurement.
    pub fn approx_bytes(&self) -> u64 {
        let arcs: usize = self
            .net
            .transitions()
            .map(|(_, t)| t.preset().len() + t.postset().len())
            .sum();
        // Source net (BTreeSet arc nodes dominate) + compiled CSR
        // (u32 per arc endpoint, twice) + marking slice + overhead.
        64 + 48 * self.net.place_count() as u64
            + 64 * self.net.transition_count() as u64
            + 48 * arcs as u64
            + 4 * self.m0.len() as u64
    }
}

/// Bounded LRU cache mapping documents to compiled nets by canonical
/// structural identity.
#[derive(Debug)]
pub struct NetCache {
    inner: Mutex<CacheInner>,
    limits: ParseLimits,
}

#[derive(Debug)]
struct CacheEntry {
    net: Arc<CachedNet>,
    /// Recency stamp; the entry with the smallest tick is the LRU.
    tick: u64,
    approx_bytes: u64,
}

#[derive(Debug)]
struct CacheInner {
    /// Byte tier: exact (doc hash, net name) pairs seen before, each
    /// an alias for a structural entry. Multiple byte keys may alias
    /// one `NetId` (reformatted or renamed copies of the same net).
    by_bytes: HashMap<(u64, String), NetId>,
    /// Structural tier: the compiled nets themselves.
    by_id: HashMap<NetId, CacheEntry>,
    /// Monotonic use counter; the entry with the smallest stored tick
    /// is the least recently used.
    tick: u64,
    capacity: usize,
    byte_hits: u64,
    structural_hits: u64,
    misses: u64,
    evictions: u64,
}

impl CacheInner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Refreshes `id`'s recency and returns its entry, if resident.
    fn refresh(&mut self, id: NetId) -> Option<Arc<CachedNet>> {
        let tick = self.touch();
        let entry = self.by_id.get_mut(&id)?;
        entry.tick = tick;
        Some(Arc::clone(&entry.net))
    }

    /// Records a byte-tier alias for `id` (bounded: aliases of evicted
    /// entries are purged with their target, so the alias map stays
    /// proportional to capacity times distinct spellings seen).
    fn alias(&mut self, key: (u64, String), id: NetId) {
        self.by_bytes.insert(key, id);
    }

    fn evict_to_capacity(&mut self) {
        while self.by_id.len() > self.capacity {
            let victim = self
                .by_id
                .iter()
                .min_by_key(|(_, entry)| entry.tick)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    self.by_id.remove(&id);
                    self.by_bytes.retain(|_, target| *target != id);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }
}

impl NetCache {
    /// A cache holding at most `capacity` compiled nets, parsing with
    /// the given limits on misses.
    pub fn new(capacity: usize, limits: ParseLimits) -> Self {
        NetCache {
            inner: Mutex::new(CacheInner {
                by_bytes: HashMap::new(),
                by_id: HashMap::new(),
                tick: 0,
                capacity: capacity.max(1),
                byte_hits: 0,
                structural_hits: 0,
                misses: 0,
                evictions: 0,
            }),
            limits,
        }
    }

    /// The compiled net for `name` inside `doc`, parsing and compiling
    /// on a miss. Hits refresh the entry's recency. An exact resubmit
    /// is a byte hit (no parse); a reformatted or renamed copy of a
    /// resident net is a structural hit (parse, no compile).
    ///
    /// # Errors
    ///
    /// [`CacheMiss`] when the document is malformed or names no such
    /// net; errors are not cached (the retry cost is the parse, and a
    /// poisoned negative entry would outlive a client's fixed resubmit)
    /// but do count as misses.
    pub fn get_or_compile(&self, doc: &str, name: &str) -> Result<Arc<CachedNet>, CacheMiss> {
        let key = (fnv1a(doc.as_bytes()), name.to_owned());
        {
            let mut inner = self.lock();
            if let Some(&id) = inner.by_bytes.get(&key) {
                match inner.refresh(id) {
                    Some(hit) => {
                        inner.byte_hits += 1;
                        return Ok(hit);
                    }
                    // Stale alias: the structural entry was evicted
                    // between this lookup's byte key landing and now.
                    // (Eviction purges aliases, so this arm is only
                    // reachable if the two tiers ever disagree; drop
                    // the alias and fall through to the slow path.)
                    None => {
                        inner.by_bytes.remove(&key);
                    }
                }
            }
        }
        // Parse outside the lock: a slow adversarial document must not
        // serialize every other worker's lookups.
        let outcome = parse_with_limits(doc, &self.limits)
            .map_err(|e| CacheMiss::Parse(e.to_string()))
            .and_then(|parsed| {
                parsed
                    .nets
                    .into_iter()
                    .find_map(|(n, net)| (n == name).then_some(net))
                    .ok_or_else(|| CacheMiss::NoSuchNet(name.to_owned()))
            });
        let net = match outcome {
            Ok(net) => net,
            Err(miss) => {
                self.lock().misses += 1;
                return Err(miss);
            }
        };
        let id = net.net_id();
        {
            // Structural probe: the canonical identity may already be
            // resident under a different spelling. Count the miss here
            // — only when the identity is genuinely absent — so a
            // reformatted resubmit is a (structural) hit, not a miss.
            let mut inner = self.lock();
            if let Some(hit) = inner.refresh(id) {
                inner.structural_hits += 1;
                inner.alias(key, id);
                return Ok(hit);
            }
            inner.misses += 1;
        }
        // Compile outside the lock for the same reason as the parse.
        let compiled = net.compile();
        let m0 = net.initial_marking().as_slice().to_vec();
        let entry = Arc::new(CachedNet {
            net,
            compiled,
            m0,
            id,
        });
        let approx_bytes = entry.approx_bytes();
        let mut inner = self.lock();
        let tick = inner.touch();
        match inner.by_id.entry(id) {
            // Another worker compiled the same net concurrently; keep
            // its entry (both are equivalent) and refresh it.
            Entry::Occupied(mut e) => {
                e.get_mut().tick = tick;
                let hit = Arc::clone(&e.get().net);
                inner.alias(key, id);
                Ok(hit)
            }
            Entry::Vacant(e) => {
                e.insert(CacheEntry {
                    net: Arc::clone(&entry),
                    tick,
                    approx_bytes,
                });
                inner.alias(key, id);
                inner.evict_to_capacity();
                Ok(entry)
            }
        }
    }

    /// Whether a compiled net for `name` inside `doc` is already
    /// resident under this exact document text. Read-only routing
    /// probe: no recency refresh and no hit/miss accounting — callers
    /// that decide to take the entry go through
    /// [`NetCache::get_or_compile`], which does the counting. Byte
    /// tier only: a reformatted copy of a resident net probes `false`
    /// (routing must stay O(hash), not O(parse)).
    pub fn peek(&self, doc: &str, name: &str) -> bool {
        let key = (fnv1a(doc.as_bytes()), name.to_owned());
        let inner = self.lock();
        inner
            .by_bytes
            .get(&key)
            .is_some_and(|id| inner.by_id.contains_key(id))
    }

    /// All counters since construction.
    pub fn full_stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.byte_hits + inner.structural_hits,
            byte_hits: inner.byte_hits,
            structural_hits: inner.structural_hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.by_id.len(),
            capacity: inner.capacity,
            bytes: inner.by_id.values().map(|e| e.approx_bytes).sum(),
        }
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        let s = self.full_stats();
        (s.hits, s.misses)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.lock().by_id.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A worker that panicked while holding this lock has already
        // been isolated by `catch_unwind`; the cache state itself is
        // only ever mutated in small invariant-preserving steps.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    const DOC: &str = "net n { places { p* q } transition \"t\" { pre: p; post: q } }";

    /// `DOC` reformatted: different whitespace, place names, and net
    /// name — byte-distinct, structurally identical.
    const DOC_REFORMATTED: &str =
        "net other {\n  places { start*  end }\n  transition \"t\" { pre: start; post: end }\n}\n";

    /// A family of *structurally distinct* single-place documents
    /// (token counts differ), for LRU churn tests.
    fn cold_doc(i: usize) -> (String, String) {
        let name = format!("cold{i}");
        (format!("net {name} {{ places {{ p*{} }} }}", i + 2), name)
    }

    #[test]
    fn second_lookup_hits() {
        let cache = NetCache::new(8, ParseLimits::default());
        let a = cache.get_or_compile(DOC, "n").unwrap();
        let b = cache.get_or_compile(DOC, "n").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        let full = cache.full_stats();
        assert_eq!(full.byte_hits, 1, "exact resubmit is a byte hit");
        assert_eq!(full.structural_hits, 0);
    }

    #[test]
    fn reformatted_document_is_a_structural_hit() {
        let cache = NetCache::new(8, ParseLimits::default());
        let a = cache.get_or_compile(DOC, "n").unwrap();
        let b = cache.get_or_compile(DOC_REFORMATTED, "other").unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "renamed/reformatted copy shares the compiled entry"
        );
        let full = cache.full_stats();
        assert_eq!(full.byte_hits, 0);
        assert_eq!(full.structural_hits, 1);
        assert_eq!(full.misses, 1);
        assert_eq!(full.len, 1, "one structural entry, two byte aliases");
        // The alias is now installed: resubmitting the reformatted
        // text is a byte hit.
        let c = cache.get_or_compile(DOC_REFORMATTED, "other").unwrap();
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(cache.full_stats().byte_hits, 1);
    }

    #[test]
    fn one_byte_edit_is_a_different_key() {
        let cache = NetCache::new(8, ParseLimits::default());
        let a = cache.get_or_compile(DOC, "n").unwrap();
        let edited = DOC.replace("p*", "p*2");
        let b = cache.get_or_compile(&edited, "n").unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.m0.iter().sum::<u32>(), 2);
        assert_eq!(cache.full_stats().misses, 2, "marking change is structural");
    }

    #[test]
    fn capacity_evicts_and_counts() {
        let cache = NetCache::new(2, ParseLimits::default());
        for i in 0..4 {
            let (doc, name) = cold_doc(i);
            cache.get_or_compile(&doc, &name).unwrap();
        }
        let stats = cache.full_stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.capacity, 2);
        assert!(stats.bytes > 0, "resident entries report approximate size");
    }

    #[test]
    fn hot_entry_survives_churn() {
        // The LRU property: an entry touched between insertions of cold
        // entries is never the eviction victim.
        let cache = NetCache::new(2, ParseLimits::default());
        let hot = cache.get_or_compile(DOC, "n").unwrap();
        for i in 0..8 {
            let (doc, name) = cold_doc(i);
            cache.get_or_compile(&doc, &name).unwrap();
            // Re-touch the hot entry after every cold insertion.
            let again = cache.get_or_compile(DOC, "n").unwrap();
            assert!(Arc::ptr_eq(&hot, &again), "hot entry evicted at churn {i}");
        }
        let stats = cache.full_stats();
        assert_eq!(stats.hits, 8, "every hot re-touch was a hit");
        assert_eq!(stats.byte_hits, 8);
        assert_eq!(stats.misses, 9);
        assert_eq!(stats.evictions, 7);
    }

    #[test]
    fn eviction_purges_byte_aliases() {
        let cache = NetCache::new(1, ParseLimits::default());
        // Two byte aliases for one structural entry.
        cache.get_or_compile(DOC, "n").unwrap();
        cache.get_or_compile(DOC_REFORMATTED, "other").unwrap();
        assert!(cache.peek(DOC, "n"));
        assert!(cache.peek(DOC_REFORMATTED, "other"));
        // Evict it with a structurally different net.
        let (doc, name) = cold_doc(0);
        cache.get_or_compile(&doc, &name).unwrap();
        assert!(!cache.peek(DOC, "n"), "alias purged with its entry");
        assert!(!cache.peek(DOC_REFORMATTED, "other"));
        let stats = cache.full_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.len, 1);
        // Re-looking up the evicted net is a genuine miss again.
        cache.get_or_compile(DOC, "n").unwrap();
        assert_eq!(cache.full_stats().misses, 3);
    }

    #[test]
    fn errors_are_typed_and_uncached() {
        let cache = NetCache::new(8, ParseLimits::default());
        assert!(matches!(
            cache.get_or_compile("net n {", "n"),
            Err(CacheMiss::Parse(_))
        ));
        assert!(matches!(
            cache.get_or_compile(DOC, "ghost"),
            Err(CacheMiss::NoSuchNet(_))
        ));
        assert!(cache.is_empty());
        assert_eq!(
            cache.full_stats().misses,
            2,
            "failed lookups count as misses"
        );
    }
}
