//! Content-hash-keyed LRU cache of compiled nets.
//!
//! Clients resubmitting the same document (an interactive design loop
//! re-verifying after each edit, a CI matrix fanning one net across
//! many property checks, a batch hash-consing its items' documents)
//! should not pay parse + compile per request. The cache keys on an
//! FNV-1a hash of the raw document text plus the requested net name, so
//! a one-byte edit is a different key and stale hits are impossible
//! without comparing full documents.
//!
//! Eviction is least-recently-*used* (every hit refreshes the entry),
//! not FIFO: a hot net a pipelined client hammers between submissions
//! of many cold one-off documents must survive the churn. Capacities
//! are tens of entries, so eviction scans the map for the minimum tick
//! instead of maintaining an ordering structure — O(capacity) per
//! *eviction* (misses only, at most one scan each) and zero overhead on
//! the hit path beyond a counter store.

use cpn_format::{parse_with_limits, ParseLimits};
use cpn_petri::{CompiledNet, PetriNet};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// FNV-1a, 64-bit: tiny, allocation-free, good dispersion on text.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A parsed and compiled net, shared between workers.
#[derive(Debug)]
pub struct CachedNet {
    /// The validated source net (used by analyses that need labels or
    /// the interpreter, e.g. coverability).
    pub net: PetriNet<String>,
    /// The compiled firing rule for the hot explorers.
    pub compiled: CompiledNet,
    /// The initial marking as a flat slice.
    pub m0: Vec<u32>,
}

/// Why a cache lookup failed to produce a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMiss {
    /// The document failed to parse (message from `cpn-format`).
    Parse(String),
    /// The document parsed but contains no `net` item with this name.
    NoSuchNet(String),
}

/// Counters describing the cache's behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to parse + compile.
    pub misses: u64,
    /// Entries discarded to make room (LRU victims).
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

/// Bounded LRU cache mapping `(doc hash, net name)` to compiled nets.
#[derive(Debug)]
pub struct NetCache {
    inner: Mutex<CacheInner>,
    limits: ParseLimits,
}

#[derive(Debug)]
struct CacheInner {
    map: HashMap<(u64, String), (Arc<CachedNet>, u64)>,
    /// Monotonic use counter; the entry with the smallest stored tick
    /// is the least recently used.
    tick: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CacheInner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn evict_to_capacity(&mut self) {
        while self.map.len() > self.capacity {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.map.remove(&k);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }
}

impl NetCache {
    /// A cache holding at most `capacity` compiled nets, parsing with
    /// the given limits on misses.
    pub fn new(capacity: usize, limits: ParseLimits) -> Self {
        NetCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                capacity: capacity.max(1),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            limits,
        }
    }

    /// The compiled net for `name` inside `doc`, parsing and compiling
    /// on a miss. Hits refresh the entry's recency.
    ///
    /// # Errors
    ///
    /// [`CacheMiss`] when the document is malformed or names no such
    /// net; errors are not cached (the retry cost is the parse, and a
    /// poisoned negative entry would outlive a client's fixed resubmit).
    pub fn get_or_compile(&self, doc: &str, name: &str) -> Result<Arc<CachedNet>, CacheMiss> {
        let key = (fnv1a(doc.as_bytes()), name.to_owned());
        {
            let mut inner = self.lock();
            let tick = inner.touch();
            if let Some((hit, last_used)) = inner.map.get_mut(&key) {
                *last_used = tick;
                let hit = Arc::clone(hit);
                inner.hits += 1;
                return Ok(hit);
            }
            inner.misses += 1;
        }
        // Parse and compile outside the lock: a slow adversarial
        // document must not serialize every other worker's lookups.
        let parsed =
            parse_with_limits(doc, &self.limits).map_err(|e| CacheMiss::Parse(e.to_string()))?;
        let net = parsed
            .nets
            .into_iter()
            .find_map(|(n, net)| (n == name).then_some(net))
            .ok_or_else(|| CacheMiss::NoSuchNet(name.to_owned()))?;
        let compiled = net.compile();
        let m0 = net.initial_marking().as_slice().to_vec();
        let entry = Arc::new(CachedNet { net, compiled, m0 });
        let mut inner = self.lock();
        let tick = inner.touch();
        match inner.map.entry(key) {
            // Another worker compiled the same document concurrently;
            // keep its entry (both are equivalent) and refresh it.
            Entry::Occupied(mut e) => {
                e.get_mut().1 = tick;
                Ok(Arc::clone(&e.get().0))
            }
            Entry::Vacant(e) => {
                e.insert((Arc::clone(&entry), tick));
                inner.evict_to_capacity();
                Ok(entry)
            }
        }
    }

    /// Whether a compiled net for `name` inside `doc` is already
    /// resident. Read-only routing probe: no recency refresh and no
    /// hit/miss accounting — callers that decide to take the entry go
    /// through [`NetCache::get_or_compile`], which does the counting.
    pub fn peek(&self, doc: &str, name: &str) -> bool {
        let key = (fnv1a(doc.as_bytes()), name.to_owned());
        self.lock().map.contains_key(&key)
    }

    /// All counters since construction.
    pub fn full_stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
            capacity: inner.capacity,
        }
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        let s = self.full_stats();
        (s.hits, s.misses)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A worker that panicked while holding this lock has already
        // been isolated by `catch_unwind`; the cache state itself is
        // only ever mutated in small invariant-preserving steps.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    const DOC: &str = "net n { places { p* q } transition \"t\" { pre: p; post: q } }";

    #[test]
    fn second_lookup_hits() {
        let cache = NetCache::new(8, ParseLimits::default());
        let a = cache.get_or_compile(DOC, "n").unwrap();
        let b = cache.get_or_compile(DOC, "n").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn one_byte_edit_is_a_different_key() {
        let cache = NetCache::new(8, ParseLimits::default());
        let a = cache.get_or_compile(DOC, "n").unwrap();
        let edited = DOC.replace("p*", "p*2");
        let b = cache.get_or_compile(&edited, "n").unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.m0.iter().sum::<u32>(), 2);
    }

    #[test]
    fn capacity_evicts_and_counts() {
        let cache = NetCache::new(2, ParseLimits::default());
        for i in 0..4 {
            let doc = format!("net n{i} {{ places {{ p* }} }}");
            cache.get_or_compile(&doc, &format!("n{i}")).unwrap();
        }
        let stats = cache.full_stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.capacity, 2);
    }

    #[test]
    fn hot_entry_survives_churn() {
        // The LRU property: an entry touched between insertions of cold
        // entries is never the eviction victim.
        let cache = NetCache::new(2, ParseLimits::default());
        let hot = cache.get_or_compile(DOC, "n").unwrap();
        for i in 0..8 {
            let doc = format!("net cold{i} {{ places {{ p* }} }}");
            cache.get_or_compile(&doc, &format!("cold{i}")).unwrap();
            // Re-touch the hot entry after every cold insertion.
            let again = cache.get_or_compile(DOC, "n").unwrap();
            assert!(Arc::ptr_eq(&hot, &again), "hot entry evicted at churn {i}");
        }
        let stats = cache.full_stats();
        assert_eq!(stats.hits, 8, "every hot re-touch was a hit");
        assert_eq!(stats.misses, 9);
        assert_eq!(stats.evictions, 7);
    }

    #[test]
    fn errors_are_typed_and_uncached() {
        let cache = NetCache::new(8, ParseLimits::default());
        assert!(matches!(
            cache.get_or_compile("net n {", "n"),
            Err(CacheMiss::Parse(_))
        ));
        assert!(matches!(
            cache.get_or_compile(DOC, "ghost"),
            Err(CacheMiss::NoSuchNet(_))
        ));
        assert!(cache.is_empty());
    }
}
