//! The verification daemon: accept loop, bounded worker pool, load
//! shedding, panic isolation, and graceful drain.
//!
//! ## Architecture
//!
//! One lightweight thread per connection reads frames and decodes
//! requests; compute runs on a **fixed pool** of worker threads fed by
//! a **bounded queue**. When the queue is full the connection thread
//! answers [`Response::Overloaded`] immediately instead of buffering —
//! explicit load shedding, so a flood of explosive requests degrades
//! into fast typed refusals rather than unbounded memory growth.
//!
//! Every compute request runs under a [`Budget`] carrying a wall-clock
//! [`Deadline`] and the server's [`CancelToken`](cpn_petri::CancelToken); the kernel's
//! explorers poll both coarsely and return sound partial results
//! (`Unknown` verdicts) rather than overrunning. Worker panics are
//! caught per-request with `catch_unwind`; the worker survives and the
//! client receives [`Response::InternalError`].
//!
//! ## Drain
//!
//! [`ServerHandle::begin_drain`] (wired to SIGTERM in the binary)
//! stops the accept loop and stamps a drain deadline. Requests already
//! queued or executing finish under a deadline shrunk to the drain
//! deadline; new requests are shed. When the grace period ends, the
//! server cancels its token — in-flight explorations stop at the next
//! poll with partial results — and the pool is joined.

use crate::cache::{CacheMiss, NetCache};
use crate::frame::{
    read_frame_payload, write_frame, write_handshake, FrameError, DEFAULT_MAX_FRAME,
};
use crate::proto::{ExploreSummary, Request, Response};
use crate::transport::{Conn, Endpoint, Listener};
use cpn_format::ParseLimits;
use cpn_petri::{
    reachability_bounded_parallel_compiled, Bounded, Budget, CancelScope, CoverabilityOutcome,
    CoverabilityTree, Deadline,
};
use std::io::{self, Read};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Protocol ceiling on `threads=` in a request: values above it (or `0`)
/// are nonsense and rejected with `BadRequest` rather than clamped.
/// Matches the exploration kernel's own worker cap.
pub const MAX_REQUEST_THREADS: usize = 64;

/// Tunables for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Compute worker threads (the fixed pool).
    pub workers: usize,
    /// Bounded depth of the work queue; a full queue sheds.
    pub queue_depth: usize,
    /// Cap on a single frame's payload.
    pub max_frame: usize,
    /// Idle timeout: a connection sending nothing for this long closes.
    pub idle_timeout: Duration,
    /// I/O timeout for mid-frame reads and response writes (a stalled
    /// peer is cut off, not waited on forever).
    pub io_timeout: Duration,
    /// Deadline applied to requests that do not set their own (and the
    /// cap on those that do).
    pub default_deadline: Duration,
    /// How long in-flight work may run after drain begins.
    pub drain_grace: Duration,
    /// Cap on concurrently served connections; beyond it new
    /// connections are shed with `Overloaded`.
    pub max_connections: usize,
    /// Cap on `max_states` a request may ask for.
    pub max_states_cap: usize,
    /// Cap on exploration threads a request may use; requests asking for
    /// more are clamped here (asking for `0` or for more than
    /// [`MAX_REQUEST_THREADS`] is a `BadRequest` instead).
    pub max_threads: usize,
    /// Parse limits for client documents.
    pub parse_limits: ParseLimits,
    /// Compiled-net cache entries.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            max_frame: DEFAULT_MAX_FRAME,
            idle_timeout: Duration::from_secs(60),
            io_timeout: Duration::from_secs(10),
            default_deadline: Duration::from_secs(30),
            drain_grace: Duration::from_secs(5),
            max_connections: 256,
            max_states_cap: 5_000_000,
            max_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            parse_limits: ParseLimits::default(),
            cache_capacity: 64,
        }
    }
}

/// Counters exposed after [`Server::run`] returns (all monotonic).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and handshaken.
    pub accepted: u64,
    /// Requests answered with a non-shed response.
    pub served: u64,
    /// Requests or connections shed with `Overloaded`.
    pub shed: u64,
    /// Worker panics caught (each produced an `InternalError`).
    pub panics: u64,
    /// Malformed requests answered with `BadRequest`.
    pub bad_requests: u64,
    /// Requests whose deadline passed before compute started.
    pub deadline_rejected: u64,
    /// Connections dropped during handshake (bad magic/version/EOF).
    pub handshake_failures: u64,
    /// Compiled-net cache hits / misses.
    pub cache_hits: u64,
    /// Compiled-net cache misses.
    pub cache_misses: u64,
    /// Workers that exited cleanly at drain (equals the pool size when
    /// the drain left the pool idle).
    pub workers_joined: usize,
}

#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    bad_requests: AtomicU64,
    deadline_rejected: AtomicU64,
    handshake_failures: AtomicU64,
}

struct Shared {
    config: ServerConfig,
    cache: NetCache,
    counters: Counters,
    accepting: AtomicBool,
    draining: AtomicBool,
    hard_stop: AtomicBool,
    stop_workers: AtomicBool,
    drain_deadline: Mutex<Option<Deadline>>,
    cancel: CancelScope,
    active_conns: AtomicUsize,
}

impl Shared {
    /// The deadline stamped by `begin_drain`, if draining.
    fn drain_deadline(&self) -> Option<Deadline> {
        *lock(&self.drain_deadline)
    }
}

/// Remote control over a running [`Server`] (cloneable, thread-safe).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins a graceful drain: stop accepting, shed new requests, let
    /// in-flight work finish under the shrinking drain deadline.
    pub fn begin_drain(&self) {
        let mut dd = lock(&self.shared.drain_deadline);
        if dd.is_none() {
            *dd = Some(Deadline::after(self.shared.config.drain_grace));
        }
        drop(dd);
        self.shared.accepting.store(false, Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Cancels all in-flight explorations immediately (they return
    /// partial results at their next poll).
    pub fn hard_cancel(&self) {
        self.shared.hard_stop.store(true, Ordering::SeqCst);
        self.shared.cancel.cancel();
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }
}

struct Job {
    request: Request,
    reply: SyncSender<Response>,
}

/// The verification daemon. Bind with [`Server::bind`], then
/// [`Server::run`] until a [`ServerHandle::begin_drain`] completes.
pub struct Server {
    listeners: Vec<Listener>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds every endpoint and prepares the pool.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if any endpoint fails to bind.
    pub fn bind(endpoints: &[Endpoint], config: ServerConfig) -> io::Result<Server> {
        let listeners = endpoints
            .iter()
            .map(Listener::bind)
            .collect::<io::Result<Vec<_>>>()?;
        let cache = NetCache::new(config.cache_capacity, config.parse_limits);
        let shared = Arc::new(Shared {
            config,
            cache,
            counters: Counters::default(),
            accepting: AtomicBool::new(true),
            draining: AtomicBool::new(false),
            hard_stop: AtomicBool::new(false),
            stop_workers: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            cancel: CancelScope::new(),
            active_conns: AtomicUsize::new(0),
        });
        Ok(Server { listeners, shared })
    }

    /// A handle for drain/cancel control from other threads (e.g. the
    /// signal handler poll loop).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The concrete bound endpoints (resolves `:0` ports).
    ///
    /// # Errors
    ///
    /// [`io::Error`] if a local address cannot be read.
    pub fn local_endpoints(&self) -> io::Result<Vec<Endpoint>> {
        self.listeners
            .iter()
            .map(Listener::local_endpoint)
            .collect()
    }

    /// Serves until a drain completes; returns the final counters.
    pub fn run(self) -> ServerStats {
        let Server { listeners, shared } = self;
        let (job_tx, job_rx) = sync_channel::<Job>(shared.config.queue_depth);
        let job_rx = Arc::new(Mutex::new(job_rx));

        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&job_rx);
                thread::Builder::new()
                    .name(format!("cpn-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .unwrap_or_else(|e| panic!("spawning worker {i}: {e}"))
            })
            .collect();

        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        while shared.accepting.load(Ordering::SeqCst) {
            let mut any = false;
            for listener in &listeners {
                match listener.try_accept() {
                    Ok(Some(conn)) => {
                        any = true;
                        self::accept_conn(&shared, conn, &job_tx, &mut conn_threads);
                    }
                    Ok(None) => {}
                    Err(_) => {}
                }
            }
            conn_threads.retain(|h| !h.is_finished());
            if !any {
                thread::sleep(Duration::from_millis(5));
            }
        }
        // Stop accepting: drop the listeners now so the OS refuses new
        // connections for the rest of the drain.
        drop(listeners);

        // Let in-flight connections finish under the drain deadline.
        loop {
            let deadline = shared.drain_deadline();
            let idle = shared.active_conns.load(Ordering::SeqCst) == 0;
            if idle {
                break;
            }
            if let Some(d) = deadline {
                if d.expired() {
                    // Grace over: cancel in-flight exploration; give
                    // connections a short moment to flush replies.
                    shared.hard_stop.store(true, Ordering::SeqCst);
                    shared.cancel.cancel();
                    if d.instant().elapsed() > shared.config.io_timeout {
                        break;
                    }
                }
            }
            thread::sleep(Duration::from_millis(10));
        }

        // Retire the pool.
        shared.stop_workers.store(true, Ordering::SeqCst);
        drop(job_tx);
        let mut joined = 0;
        for w in workers {
            if w.join().is_ok() {
                joined += 1;
            }
        }
        for h in conn_threads {
            let _ = h.join();
        }

        let (cache_hits, cache_misses) = shared.cache.stats();
        let c = &shared.counters;
        ServerStats {
            accepted: c.accepted.load(Ordering::SeqCst),
            served: c.served.load(Ordering::SeqCst),
            shed: c.shed.load(Ordering::SeqCst),
            panics: c.panics.load(Ordering::SeqCst),
            bad_requests: c.bad_requests.load(Ordering::SeqCst),
            deadline_rejected: c.deadline_rejected.load(Ordering::SeqCst),
            handshake_failures: c.handshake_failures.load(Ordering::SeqCst),
            cache_hits,
            cache_misses,
            workers_joined: joined,
        }
    }
}

fn accept_conn(
    shared: &Arc<Shared>,
    conn: Conn,
    job_tx: &SyncSender<Job>,
    conn_threads: &mut Vec<JoinHandle<()>>,
) {
    let active = shared.active_conns.load(Ordering::SeqCst);
    if active >= shared.config.max_connections {
        // Shed at the door: handshake so the client can read a typed
        // refusal, then close.
        shared.counters.shed.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(shared);
        let _ = thread::Builder::new()
            .name("cpn-serve-shed".to_owned())
            .spawn(move || {
                let mut conn = conn;
                let _ = conn.set_write_timeout(Some(shared.config.io_timeout));
                if write_handshake(&mut conn).is_ok() {
                    let _ = write_frame(
                        &mut conn,
                        Response::Overloaded.encode().as_bytes(),
                        shared.config.max_frame,
                    );
                }
            });
        return;
    }
    shared.active_conns.fetch_add(1, Ordering::SeqCst);
    let shared_cl = Arc::clone(shared);
    let tx = job_tx.clone();
    let spawned = thread::Builder::new()
        .name("cpn-serve-conn".to_owned())
        .spawn(move || {
            serve_conn(&shared_cl, conn, &tx);
            shared_cl.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
    match spawned {
        Ok(h) => conn_threads.push(h),
        Err(_) => {
            shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Reads one frame with separate idle and I/O timeouts. Returns
/// `Ok(None)` when the server is hard-stopping and the peer is idle.
fn read_frame_with_timeouts(
    shared: &Shared,
    conn: &mut Conn,
) -> Result<Option<Vec<u8>>, FrameError> {
    // Idle phase: poll for the first byte in short slices so drain and
    // hard-stop are observed promptly.
    let poll = Duration::from_millis(200);
    let started = Instant::now();
    let mut first = [0u8; 1];
    loop {
        conn.set_read_timeout(Some(poll))?;
        match conn.read(&mut first) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed",
                )))
            }
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // An idle connection (no frame started) has nothing
                // in flight: close it as soon as a drain begins rather
                // than holding the drain open for the whole grace.
                if shared.hard_stop.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst)
                {
                    return Ok(None);
                }
                if started.elapsed() >= shared.config.idle_timeout {
                    return Err(FrameError::Io(e));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    // Frame phase: the peer has started a frame; finish it under the
    // I/O timeout (a stalled writer is cut off, not waited on).
    conn.set_read_timeout(Some(shared.config.io_timeout))?;
    let mut rest = [0u8; 3];
    conn.read_exact(&mut rest)?;
    let claimed = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]) as usize;
    read_frame_payload(conn, claimed, shared.config.max_frame).map(Some)
}

fn serve_conn(shared: &Arc<Shared>, mut conn: Conn, job_tx: &SyncSender<Job>) {
    let _ = conn.set_write_timeout(Some(shared.config.io_timeout));
    let _ = conn.set_read_timeout(Some(shared.config.io_timeout));
    if crate::frame::read_handshake(&mut conn).is_err() || write_handshake(&mut conn).is_err() {
        shared
            .counters
            .handshake_failures
            .fetch_add(1, Ordering::SeqCst);
        conn.shutdown();
        return;
    }
    shared.counters.accepted.fetch_add(1, Ordering::SeqCst);

    loop {
        let payload = match read_frame_with_timeouts(shared, &mut conn) {
            Ok(Some(p)) => p,
            Ok(None) => break, // hard stop, peer idle
            Err(FrameError::Oversized { claimed, max }) => {
                // The stream is desynchronized past this point (we did
                // not consume the oversized payload): answer, close.
                let resp = Response::BadRequest(format!(
                    "frame of {claimed} bytes exceeds the {max}-byte cap"
                ));
                let _ = write_frame(&mut conn, resp.encode().as_bytes(), shared.config.max_frame);
                shared.counters.bad_requests.fetch_add(1, Ordering::SeqCst);
                break;
            }
            Err(_) => break, // EOF, idle timeout, truncation, transport fault
        };
        let response = match std::str::from_utf8(&payload) {
            Err(_) => Response::BadRequest("request is not UTF-8".to_owned()),
            Ok(text) => match Request::decode(text) {
                Err(msg) => Response::BadRequest(msg),
                Ok(Request::Ping) => Response::Pong,
                Ok(request) => dispatch(shared, request, job_tx),
            },
        };
        match &response {
            Response::BadRequest(_) => {
                shared.counters.bad_requests.fetch_add(1, Ordering::SeqCst);
            }
            // Sheds are counted where they happen (queue or door).
            Response::Overloaded => {}
            _ => {
                shared.counters.served.fetch_add(1, Ordering::SeqCst);
            }
        }
        if write_frame(
            &mut conn,
            response.encode().as_bytes(),
            shared.config.max_frame,
        )
        .is_err()
        {
            break;
        }
    }
    conn.shutdown();
}

/// Queues a compute request, shedding when full, and waits for the
/// worker's reply.
fn dispatch(shared: &Arc<Shared>, request: Request, job_tx: &SyncSender<Job>) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        // New work during drain is shed; only already-queued requests
        // finish.
        shared.counters.shed.fetch_add(1, Ordering::SeqCst);
        return Response::Overloaded;
    }
    let wait = request
        .deadline()
        .unwrap_or(shared.config.default_deadline)
        .min(shared.config.default_deadline);
    let (reply_tx, reply_rx) = sync_channel(1);
    match job_tx.try_send(Job {
        request,
        reply: reply_tx,
    }) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shared.counters.shed.fetch_add(1, Ordering::SeqCst);
            return Response::Overloaded;
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.counters.shed.fetch_add(1, Ordering::SeqCst);
            return Response::Overloaded;
        }
    }
    // Deadline + queue wait + poll slack; the worker answers
    // DeadlineExceeded itself if the deadline passes in the queue.
    let reply_timeout = wait + shared.config.io_timeout + Duration::from_secs(2);
    match reply_rx.recv_timeout(reply_timeout) {
        Ok(resp) => resp,
        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
            Response::InternalError("worker did not reply in time".to_owned())
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let guard = lock(rx);
            guard.recv_timeout(Duration::from_millis(100))
        };
        match job {
            Ok(job) => {
                let response =
                    catch_unwind(AssertUnwindSafe(|| handle_request(shared, &job.request)))
                        .unwrap_or_else(|panic| {
                            shared.counters.panics.fetch_add(1, Ordering::SeqCst);
                            Response::InternalError(format!(
                                "worker panicked: {}",
                                panic_message(&panic)
                            ))
                        });
                // The connection thread may have timed out and gone.
                let _ = job.reply.send(response);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop_workers.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Computes one request under its budget. Runs inside `catch_unwind`.
fn handle_request(shared: &Shared, request: &Request) -> Response {
    let (net_name, max_states, threads, doc, is_cover) = match request {
        Request::Ping => return Response::Pong,
        Request::Reach {
            net,
            max_states,
            threads,
            doc,
            ..
        } => (net, *max_states, *threads, doc, false),
        Request::Cover {
            net,
            max_states,
            threads,
            doc,
            ..
        } => (net, *max_states, *threads, doc, true),
    };

    // Validate, then clamp: zero threads or requests beyond the protocol
    // ceiling are client nonsense and get a typed rejection; anything
    // else is clamped to what this server is willing to run.
    if threads == 0 || threads > MAX_REQUEST_THREADS {
        return Response::BadRequest(format!(
            "threads must be in 1..={MAX_REQUEST_THREADS}, got {threads}"
        ));
    }
    let threads = threads.min(shared.config.max_threads.max(1));

    // Chaos hook: with CPN_SERVE_CHAOS set, a request for this net name
    // panics inside the worker on purpose, so panic isolation is
    // testable end-to-end over the real wire path. Inert in normal
    // operation.
    if net_name == "__chaos_panic" && std::env::var_os("CPN_SERVE_CHAOS").is_some() {
        panic!("chaos hook: deliberate worker panic");
    }

    // Budget: client's caps clamped by the server's, the deadline shrunk
    // to the drain deadline when draining, the server's cancel token.
    let mut deadline = Deadline::after(
        request
            .deadline()
            .unwrap_or(shared.config.default_deadline)
            .min(shared.config.default_deadline),
    );
    if let Some(dd) = shared.drain_deadline() {
        deadline = deadline.min(dd);
    }
    if deadline.expired() {
        shared
            .counters
            .deadline_rejected
            .fetch_add(1, Ordering::SeqCst);
        return Response::DeadlineExceeded;
    }
    let budget = Budget::states(max_states.min(shared.config.max_states_cap))
        .with_deadline_at(deadline)
        .with_cancel(shared.cancel.token());

    let cached = match shared.cache.get_or_compile(doc, net_name) {
        Ok(c) => c,
        Err(CacheMiss::Parse(msg)) => return Response::BadRequest(format!("parse error: {msg}")),
        Err(CacheMiss::NoSuchNet(name)) => {
            return Response::BadRequest(format!("no net named `{name}` in document"))
        }
    };

    let summary = if is_cover {
        match CoverabilityTree::build_bounded(&cached.net, &budget) {
            Bounded::Complete(tree) => {
                let detail = match tree.outcome() {
                    CoverabilityOutcome::Bounded { bound } => format!("bounded={bound}"),
                    CoverabilityOutcome::Unbounded { witnesses } => {
                        format!("unbounded_witnesses={}", witnesses.len())
                    }
                };
                ExploreSummary {
                    states: tree.markings().len(),
                    edges: 0,
                    stopped: None,
                    detail,
                }
            }
            Bounded::Exhausted { partial, info } => ExploreSummary {
                states: partial.markings().len(),
                edges: info.transitions_explored,
                stopped: Some(info.resource.to_string()),
                detail: String::new(),
            },
        }
    } else {
        // The lock-free kernel's output is byte-identical to the
        // sequential one, so the thread count never changes an answer —
        // only how fast it arrives.
        match reachability_bounded_parallel_compiled(&cached.compiled, &cached.m0, &budget, threads)
        {
            Bounded::Complete(rg) => ExploreSummary {
                states: rg.state_count(),
                edges: rg.edge_count(),
                stopped: None,
                detail: format!("bound={}", rg.token_bound()),
            },
            Bounded::Exhausted { partial, info } => ExploreSummary {
                states: partial.state_count(),
                edges: partial.edge_count(),
                stopped: Some(info.resource.to_string()),
                detail: String::new(),
            },
        }
    };
    Response::Result(summary)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Locks a mutex, recovering from poisoning (a panicking worker has
/// already been isolated; the guarded state stays consistent).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}
