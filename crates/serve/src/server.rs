//! The verification daemon: accept loop, bounded worker pool, load
//! shedding, panic isolation, and graceful drain.
//!
//! ## Architecture
//!
//! One lightweight thread per connection reads frames and decodes
//! requests; compute runs on a **fixed pool** of worker threads fed by
//! a **bounded queue**. When the queue is full the connection thread
//! answers [`Response::Overloaded`] immediately instead of buffering —
//! explicit load shedding, so a flood of explosive requests degrades
//! into fast typed refusals rather than unbounded memory growth.
//!
//! Every compute request runs under a [`Budget`] carrying a wall-clock
//! [`Deadline`] and the server's [`CancelToken`](cpn_petri::CancelToken); the kernel's
//! explorers poll both coarsely and return sound partial results
//! (`Unknown` verdicts) rather than overrunning. Worker panics are
//! caught per-request with `catch_unwind`; the worker survives and the
//! client receives [`Response::InternalError`].
//!
//! ## Protocol v2: pipelining, batches, streaming
//!
//! The handshake negotiates `min(client, PROTO_VERSION)` per
//! connection. A v1 connection keeps the strict lock-step loop above —
//! one frame in, one frame out, byte-identical to earlier builds. A v2
//! connection splits reading from writing: the connection thread keeps
//! reading (and dispatching) frames while workers write responses
//! through a shared, mutex-serialized clone of the socket, each frame
//! tagged with the request's correlation id. That gives
//!
//! * **pipelining** — many requests in flight on one connection, each
//!   answered as it finishes;
//! * **batches** — one frame carrying N sub-requests, executed as a
//!   single pool job that emits [`Response::Item`] frames in order and
//!   closes with [`Response::BatchDone`]. A per-batch umbrella deadline
//!   caps the whole batch: items not started when it passes degrade to
//!   per-item `DeadlineExceeded` without poisoning finished siblings,
//!   and a panicking item is caught per-item. Documents repeated across
//!   items hash-cons through the compiled-net cache, so N items over
//!   one net parse once;
//! * **streaming** — `stream=true` explorations emit non-final
//!   [`Response::Progress`] frames (geometrically growing exploration
//!   slices; total re-exploration overhead is bounded by a constant
//!   factor of the final run) before the final answer.
//!
//! ## Drain
//!
//! [`ServerHandle::begin_drain`] (wired to SIGTERM in the binary)
//! stops the accept loop and stamps a drain deadline. Requests already
//! queued or executing finish under a deadline shrunk to the drain
//! deadline; new requests are shed. When the grace period ends, the
//! server cancels its token — in-flight explorations stop at the next
//! poll with partial results — and the pool is joined.

use crate::cache::{CacheMiss, NetCache};
use crate::frame::{
    read_frame_payload, read_handshake_in, write_frame, write_handshake_version, FrameError,
    DEFAULT_MAX_FRAME, MIN_PROTO_VERSION, PROTO_VERSION,
};
use crate::proto::{
    split_corr, with_corr, BatchItem, BatchLimits, ExploreSummary, ProgressUpdate, Receptive,
    Request, Response, StatsReply, VerifySummary,
};
use crate::transport::{Conn, Endpoint, Listener};
use cpn_core::{
    check_receptiveness_composed_bounded, parallel_tracked_common,
    reduce_against_environment_fused_bounded,
};
use cpn_format::ParseLimits;
use cpn_petri::{
    reachability_bounded_parallel_compiled, Bounded, Budget, CancelScope, CoverabilityOutcome,
    CoverabilityTree, Deadline, Resource, Verdict,
};
use std::collections::{BTreeSet, HashMap};
use std::io::{self, BufReader, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Protocol ceiling on `threads=` in a request: values above it (or `0`)
/// are nonsense and rejected with `BadRequest` rather than clamped.
/// Matches the exploration kernel's own worker cap.
pub const MAX_REQUEST_THREADS: usize = 64;

/// First streamed exploration slice (states); each subsequent slice is
/// four times larger, so the re-explored prefix sums to at most a third
/// of the final slice.
const STREAM_FIRST_SLICE: usize = 4096;

/// Tunables for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Compute worker threads (the fixed pool).
    pub workers: usize,
    /// Bounded depth of the work queue; a full queue sheds.
    pub queue_depth: usize,
    /// Cap on a single frame's payload.
    pub max_frame: usize,
    /// Idle timeout: a connection sending nothing for this long closes.
    pub idle_timeout: Duration,
    /// I/O timeout for mid-frame reads and response writes (a stalled
    /// peer is cut off, not waited on forever).
    pub io_timeout: Duration,
    /// Deadline applied to requests that do not set their own (and the
    /// cap on those that do).
    pub default_deadline: Duration,
    /// How long in-flight work may run after drain begins.
    pub drain_grace: Duration,
    /// Cap on concurrently served connections; beyond it new
    /// connections are shed with `Overloaded`.
    pub max_connections: usize,
    /// Cap on `max_states` a request may ask for.
    pub max_states_cap: usize,
    /// Cap on exploration threads a request may use; requests asking for
    /// more are clamped here (asking for `0` or for more than
    /// [`MAX_REQUEST_THREADS`] is a `BadRequest` instead).
    pub max_threads: usize,
    /// Parse limits for client documents (also bound per-item batch
    /// sizes).
    pub parse_limits: ParseLimits,
    /// Cap on items in one batch frame.
    pub max_batch_items: usize,
    /// Compiled-net cache entries.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            max_frame: DEFAULT_MAX_FRAME,
            idle_timeout: Duration::from_secs(60),
            io_timeout: Duration::from_secs(10),
            default_deadline: Duration::from_secs(30),
            drain_grace: Duration::from_secs(5),
            max_connections: 256,
            max_states_cap: 5_000_000,
            max_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            parse_limits: ParseLimits::default(),
            max_batch_items: crate::proto::MAX_BATCH_ITEMS,
            cache_capacity: 64,
        }
    }
}

impl ServerConfig {
    /// The batch-frame validation limits this configuration implies:
    /// per-item text is bounded by both the frame cap and the document
    /// parse limits, so an item can never smuggle in a document the
    /// parser would refuse standalone.
    fn batch_limits(&self) -> BatchLimits {
        BatchLimits {
            max_items: self.max_batch_items,
            max_item_bytes: self.max_frame.min(self.parse_limits.max_input_bytes),
        }
    }
}

/// Counters exposed after [`Server::run`] returns (all monotonic).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and handshaken.
    pub accepted: u64,
    /// Requests answered with a non-shed response (batch items count
    /// individually; `batch-done` and `progress` frames do not).
    pub served: u64,
    /// Requests or connections shed with `Overloaded`.
    pub shed: u64,
    /// Worker panics caught (each produced an `InternalError`).
    pub panics: u64,
    /// Malformed requests answered with `BadRequest`.
    pub bad_requests: u64,
    /// Requests whose deadline passed before compute started.
    pub deadline_rejected: u64,
    /// Connections dropped during handshake (bad magic/version/EOF).
    pub handshake_failures: u64,
    /// Compiled-net cache hits / misses.
    pub cache_hits: u64,
    /// Compiled-net cache misses.
    pub cache_misses: u64,
    /// Workers that exited cleanly at drain (equals the pool size when
    /// the drain left the pool idle).
    pub workers_joined: usize,
}

#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    bad_requests: AtomicU64,
    deadline_rejected: AtomicU64,
    handshake_failures: AtomicU64,
}

struct Shared {
    config: ServerConfig,
    cache: NetCache,
    counters: Counters,
    accepting: AtomicBool,
    draining: AtomicBool,
    hard_stop: AtomicBool,
    stop_workers: AtomicBool,
    drain_deadline: Mutex<Option<Deadline>>,
    cancel: CancelScope,
    active_conns: AtomicUsize,
    /// Permits for the v2 inline fast path (see [`inline_eligible`]):
    /// connection threads may run at most this many small queries
    /// beside the pool, so total concurrent compute stays bounded by
    /// `2 * workers` even with many pipelining clients.
    inline_permits: AtomicUsize,
}

impl Shared {
    /// The deadline stamped by `begin_drain`, if draining.
    fn drain_deadline(&self) -> Option<Deadline> {
        *lock(&self.drain_deadline)
    }

    /// Updates the served / bad-request counters for one final
    /// response (sheds are counted where they happen).
    fn count_final(&self, response: &Response) {
        match response {
            Response::BadRequest(_) => {
                self.counters.bad_requests.fetch_add(1, Ordering::SeqCst);
            }
            Response::Overloaded => {}
            _ => {
                self.counters.served.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// A point-in-time snapshot for `Request::Stats`.
    fn stats_reply(&self) -> StatsReply {
        let cache = self.cache.full_stats();
        StatsReply {
            served: self.counters.served.load(Ordering::SeqCst),
            shed: self.counters.shed.load(Ordering::SeqCst),
            bad_requests: self.counters.bad_requests.load(Ordering::SeqCst),
            panics: self.counters.panics.load(Ordering::SeqCst),
            cache_hits: cache.hits,
            cache_byte_hits: cache.byte_hits,
            cache_structural_hits: cache.structural_hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_len: cache.len,
            cache_capacity: cache.capacity,
            cache_bytes: cache.bytes,
        }
    }
}

/// Remote control over a running [`Server`] (cloneable, thread-safe).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins a graceful drain: stop accepting, shed new requests, let
    /// in-flight work finish under the shrinking drain deadline.
    pub fn begin_drain(&self) {
        let mut dd = lock(&self.shared.drain_deadline);
        if dd.is_none() {
            *dd = Some(Deadline::after(self.shared.config.drain_grace));
        }
        drop(dd);
        self.shared.accepting.store(false, Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Cancels all in-flight explorations immediately (they return
    /// partial results at their next poll).
    pub fn hard_cancel(&self) {
        self.shared.hard_stop.store(true, Ordering::SeqCst);
        self.shared.cancel.cancel();
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }
}

/// Coalesce pending response bytes into one `write` once this many
/// bytes accumulate, even while more completions are imminent.
const SINK_FLUSH_BYTES: usize = 64 * 1024;

/// The writer half of a [`ConnSink`]: the socket clone plus the
/// pending coalescing buffer, guarded together so frames append and
/// flush atomically.
struct SinkState {
    conn: Conn,
    pending: Vec<u8>,
}

/// The write half of a v2 connection, shared between the connection
/// thread and the workers computing its requests. Frames are appended
/// whole under the mutex (concurrent completions interleave at frame
/// granularity, never byte granularity) into a pending buffer, and the
/// buffer is flushed with a single `write` syscall when no further
/// completion is imminent — so a burst of pipelined or batched answers
/// costs one syscall, not one per frame.
struct ConnSink {
    state: Mutex<SinkState>,
    max_frame: usize,
    /// Requests dispatched to the pool whose final frame has not been
    /// written yet; the connection thread drains to zero before closing.
    in_flight: AtomicUsize,
    /// Requests dispatched but not yet picked up by a worker. While
    /// nonzero, another completion is imminent and workers leave their
    /// frames in the pending buffer for the last one to flush.
    queued: AtomicUsize,
    /// Set on the first write failure; workers stop computing for a
    /// connection whose peer is gone.
    broken: AtomicBool,
}

impl ConnSink {
    /// Appends one frame to the pending buffer without flushing
    /// (unless the buffer has grown past [`SINK_FLUSH_BYTES`]).
    fn enqueue(&self, corr: Option<u64>, response: &Response) -> bool {
        if self.broken.load(Ordering::SeqCst) {
            return false;
        }
        let text = with_corr(corr, &response.encode());
        if text.len() > self.max_frame {
            // Our own encodings stay under the cap; treat an overrun
            // like a dead peer rather than desynchronize the stream.
            self.broken.store(true, Ordering::SeqCst);
            return false;
        }
        let mut state = lock(&self.state);
        state
            .pending
            .extend_from_slice(&(text.len() as u32).to_be_bytes());
        state.pending.extend_from_slice(text.as_bytes());
        if state.pending.len() >= SINK_FLUSH_BYTES {
            return self.flush_locked(&mut state);
        }
        true
    }

    /// Writes everything pending in one syscall.
    fn flush(&self) -> bool {
        let mut state = lock(&self.state);
        self.flush_locked(&mut state)
    }

    fn flush_locked(&self, state: &mut SinkState) -> bool {
        if self.broken.load(Ordering::SeqCst) {
            return false;
        }
        if state.pending.is_empty() {
            return true;
        }
        let result = state
            .conn
            .write_all(&state.pending)
            .and_then(|()| state.conn.flush());
        state.pending.clear();
        if result.is_err() {
            self.broken.store(true, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Appends and flushes immediately — for frames a peer is waiting
    /// on right now (inline replies, sheds, progress updates).
    fn send(&self, corr: Option<u64>, response: &Response) -> bool {
        self.enqueue(corr, response) && self.flush()
    }

    /// Appends a worker's final frame, flushing only when no other
    /// dispatched request is waiting for a worker — the common case
    /// under pipelining is that the next completion is milliseconds
    /// away and rides the same syscall.
    fn send_coalesced(&self, corr: Option<u64>, response: &Response) -> bool {
        if !self.enqueue(corr, response) {
            return false;
        }
        if self.queued.load(Ordering::SeqCst) == 0 {
            return self.flush();
        }
        true
    }

    fn is_broken(&self) -> bool {
        self.broken.load(Ordering::SeqCst)
    }
}

/// Where a worker's answer goes.
enum Reply {
    /// v1 lock-step: the connection thread blocks on this channel.
    Channel(SyncSender<Response>),
    /// v2 pipelined: the worker writes frames itself, tagged with the
    /// request's correlation id.
    Sink(Arc<ConnSink>, Option<u64>),
}

struct Job {
    request: Request,
    reply: Reply,
}

/// Streaming context threaded into a handler when the client asked for
/// progress frames (v2, non-batch only).
struct StreamCtx<'a> {
    sink: &'a ConnSink,
    corr: Option<u64>,
}

impl StreamCtx<'_> {
    fn progress(&self, stage: &str, states: usize, edges: usize) {
        let update = ProgressUpdate {
            stage: stage.to_owned(),
            states,
            edges,
        };
        self.sink.send(self.corr, &Response::Progress(update));
    }
}

/// The verification daemon. Bind with [`Server::bind`], then
/// [`Server::run`] until a [`ServerHandle::begin_drain`] completes.
pub struct Server {
    listeners: Vec<Listener>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds every endpoint and prepares the pool.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if any endpoint fails to bind.
    pub fn bind(endpoints: &[Endpoint], config: ServerConfig) -> io::Result<Server> {
        let listeners = endpoints
            .iter()
            .map(Listener::bind)
            .collect::<io::Result<Vec<_>>>()?;
        let cache = NetCache::new(config.cache_capacity, config.parse_limits);
        let inline_slots = config.workers.max(1);
        let shared = Arc::new(Shared {
            config,
            cache,
            counters: Counters::default(),
            accepting: AtomicBool::new(true),
            draining: AtomicBool::new(false),
            hard_stop: AtomicBool::new(false),
            stop_workers: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            cancel: CancelScope::new(),
            active_conns: AtomicUsize::new(0),
            inline_permits: AtomicUsize::new(inline_slots),
        });
        Ok(Server { listeners, shared })
    }

    /// A handle for drain/cancel control from other threads (e.g. the
    /// signal handler poll loop).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The concrete bound endpoints (resolves `:0` ports).
    ///
    /// # Errors
    ///
    /// [`io::Error`] if a local address cannot be read.
    pub fn local_endpoints(&self) -> io::Result<Vec<Endpoint>> {
        self.listeners
            .iter()
            .map(Listener::local_endpoint)
            .collect()
    }

    /// Serves until a drain completes; returns the final counters.
    pub fn run(self) -> ServerStats {
        let Server { listeners, shared } = self;
        let (job_tx, job_rx) = sync_channel::<Job>(shared.config.queue_depth);
        let job_rx = Arc::new(Mutex::new(job_rx));

        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&job_rx);
                thread::Builder::new()
                    .name(format!("cpn-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .unwrap_or_else(|e| panic!("spawning worker {i}: {e}"))
            })
            .collect();

        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        while shared.accepting.load(Ordering::SeqCst) {
            let mut any = false;
            for listener in &listeners {
                match listener.try_accept() {
                    Ok(Some(conn)) => {
                        any = true;
                        self::accept_conn(&shared, conn, &job_tx, &mut conn_threads);
                    }
                    Ok(None) => {}
                    Err(_) => {}
                }
            }
            conn_threads.retain(|h| !h.is_finished());
            if !any {
                thread::sleep(Duration::from_millis(5));
            }
        }
        // Stop accepting: drop the listeners now so the OS refuses new
        // connections for the rest of the drain.
        drop(listeners);

        // Let in-flight connections finish under the drain deadline.
        loop {
            let deadline = shared.drain_deadline();
            let idle = shared.active_conns.load(Ordering::SeqCst) == 0;
            if idle {
                break;
            }
            if let Some(d) = deadline {
                if d.expired() {
                    // Grace over: cancel in-flight exploration; give
                    // connections a short moment to flush replies.
                    shared.hard_stop.store(true, Ordering::SeqCst);
                    shared.cancel.cancel();
                    if d.instant().elapsed() > shared.config.io_timeout {
                        break;
                    }
                }
            }
            thread::sleep(Duration::from_millis(10));
        }

        // Retire the pool.
        shared.stop_workers.store(true, Ordering::SeqCst);
        drop(job_tx);
        let mut joined = 0;
        for w in workers {
            if w.join().is_ok() {
                joined += 1;
            }
        }
        for h in conn_threads {
            let _ = h.join();
        }

        let (cache_hits, cache_misses) = shared.cache.stats();
        let c = &shared.counters;
        ServerStats {
            accepted: c.accepted.load(Ordering::SeqCst),
            served: c.served.load(Ordering::SeqCst),
            shed: c.shed.load(Ordering::SeqCst),
            panics: c.panics.load(Ordering::SeqCst),
            bad_requests: c.bad_requests.load(Ordering::SeqCst),
            deadline_rejected: c.deadline_rejected.load(Ordering::SeqCst),
            handshake_failures: c.handshake_failures.load(Ordering::SeqCst),
            cache_hits,
            cache_misses,
            workers_joined: joined,
        }
    }
}

fn accept_conn(
    shared: &Arc<Shared>,
    conn: Conn,
    job_tx: &SyncSender<Job>,
    conn_threads: &mut Vec<JoinHandle<()>>,
) {
    let active = shared.active_conns.load(Ordering::SeqCst);
    if active >= shared.config.max_connections {
        // Shed at the door: complete the (negotiated) handshake so the
        // client can read a typed refusal, then close.
        shared.counters.shed.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(shared);
        let _ = thread::Builder::new()
            .name("cpn-serve-shed".to_owned())
            .spawn(move || {
                let mut conn = conn;
                let _ = conn.set_read_timeout(Some(shared.config.io_timeout));
                let _ = conn.set_write_timeout(Some(shared.config.io_timeout));
                if let Ok(peer) = read_handshake_in(&mut conn, MIN_PROTO_VERSION..=PROTO_VERSION) {
                    if write_handshake_version(&mut conn, peer.min(PROTO_VERSION)).is_ok() {
                        let _ = write_frame(
                            &mut conn,
                            Response::Overloaded.encode().as_bytes(),
                            shared.config.max_frame,
                        );
                    }
                }
            });
        return;
    }
    shared.active_conns.fetch_add(1, Ordering::SeqCst);
    let shared_cl = Arc::clone(shared);
    let tx = job_tx.clone();
    let spawned = thread::Builder::new()
        .name("cpn-serve-conn".to_owned())
        .spawn(move || {
            serve_conn(&shared_cl, conn, &tx);
            shared_cl.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
    match spawned {
        Ok(h) => conn_threads.push(h),
        Err(_) => {
            shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Reads one frame with separate idle and I/O timeouts. Returns
/// `Ok(None)` when the server is hard-stopping and the peer is idle.
fn read_frame_with_timeouts(
    shared: &Shared,
    conn: &mut Conn,
) -> Result<Option<Vec<u8>>, FrameError> {
    // Idle phase: poll for the first byte in short slices so drain and
    // hard-stop are observed promptly.
    let poll = Duration::from_millis(200);
    let started = Instant::now();
    let mut first = [0u8; 1];
    loop {
        conn.set_read_timeout(Some(poll))?;
        match conn.read(&mut first) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed",
                )))
            }
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // An idle connection (no frame started) has nothing
                // in flight: close it as soon as a drain begins rather
                // than holding the drain open for the whole grace.
                if shared.hard_stop.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst)
                {
                    return Ok(None);
                }
                if started.elapsed() >= shared.config.idle_timeout {
                    return Err(FrameError::Io(e));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    // Frame phase: the peer has started a frame; finish it under the
    // I/O timeout (a stalled writer is cut off, not waited on).
    conn.set_read_timeout(Some(shared.config.io_timeout))?;
    let mut rest = [0u8; 3];
    conn.read_exact(&mut rest)?;
    let claimed = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]) as usize;
    read_frame_payload(conn, claimed, shared.config.max_frame).map(Some)
}

fn serve_conn(shared: &Arc<Shared>, mut conn: Conn, job_tx: &SyncSender<Job>) {
    let _ = conn.set_write_timeout(Some(shared.config.io_timeout));
    let _ = conn.set_read_timeout(Some(shared.config.io_timeout));
    let peer = match read_handshake_in(&mut conn, MIN_PROTO_VERSION..=PROTO_VERSION) {
        Ok(v) => v,
        Err(_) => {
            shared
                .counters
                .handshake_failures
                .fetch_add(1, Ordering::SeqCst);
            conn.shutdown();
            return;
        }
    };
    let version = peer.min(PROTO_VERSION);
    if write_handshake_version(&mut conn, version).is_err() {
        shared
            .counters
            .handshake_failures
            .fetch_add(1, Ordering::SeqCst);
        conn.shutdown();
        return;
    }
    shared.counters.accepted.fetch_add(1, Ordering::SeqCst);
    if version >= 2 {
        serve_conn_v2(shared, conn, job_tx);
    } else {
        serve_conn_v1(shared, conn, job_tx);
    }
}

/// The v1 lock-step loop: one frame in, one frame out, the connection
/// thread blocking on the worker's reply. Byte-identical to earlier
/// builds — a v1 client cannot observe the upgrade.
fn serve_conn_v1(shared: &Arc<Shared>, mut conn: Conn, job_tx: &SyncSender<Job>) {
    loop {
        let payload = match read_frame_with_timeouts(shared, &mut conn) {
            Ok(Some(p)) => p,
            Ok(None) => break, // hard stop, peer idle
            Err(FrameError::Oversized { claimed, max }) => {
                // The stream is desynchronized past this point (we did
                // not consume the oversized payload): answer, close.
                let resp = Response::BadRequest(format!(
                    "frame of {claimed} bytes exceeds the {max}-byte cap"
                ));
                let _ = write_frame(&mut conn, resp.encode().as_bytes(), shared.config.max_frame);
                shared.counters.bad_requests.fetch_add(1, Ordering::SeqCst);
                break;
            }
            Err(_) => break, // EOF, idle timeout, truncation, transport fault
        };
        let response = match std::str::from_utf8(&payload) {
            Err(_) => Response::BadRequest("request is not UTF-8".to_owned()),
            Ok(text) => match Request::decode_with_limits(text, &shared.config.batch_limits()) {
                Err(msg) => Response::BadRequest(msg),
                Ok(Request::Ping) => Response::Pong,
                Ok(Request::Stats) => Response::Stats(shared.stats_reply()),
                Ok(Request::Batch { .. }) => {
                    Response::BadRequest("batch requires protocol v2".to_owned())
                }
                Ok(request) => dispatch_v1(shared, request, job_tx),
            },
        };
        shared.count_final(&response);
        if write_frame(
            &mut conn,
            response.encode().as_bytes(),
            shared.config.max_frame,
        )
        .is_err()
        {
            break;
        }
    }
    conn.shutdown();
}

/// The v2 pipelined loop: the connection thread only reads and
/// dispatches; workers write through the shared [`ConnSink`]. Inline
/// verbs (`ping`, `stats`) are answered from this thread so they never
/// queue behind compute.
fn serve_conn_v2(shared: &Arc<Shared>, conn: Conn, job_tx: &SyncSender<Job>) {
    let writer = match conn.try_clone() {
        Ok(w) => w,
        Err(_) => {
            conn.shutdown();
            return;
        }
    };
    let _ = writer.set_write_timeout(Some(shared.config.io_timeout));
    let sink = Arc::new(ConnSink {
        state: Mutex::new(SinkState {
            conn: writer,
            pending: Vec::new(),
        }),
        max_frame: shared.config.max_frame,
        in_flight: AtomicUsize::new(0),
        queued: AtomicUsize::new(0),
        broken: AtomicBool::new(false),
    });
    let limits = shared.config.batch_limits();
    // Buffer reads: a pipelined burst of small request frames arrives
    // in one TCP segment and is parsed from one `read` syscall.
    let mut reader = BufReader::with_capacity(64 * 1024, conn);
    // Sticky "this peer pipelines" bit: set the first time a frame
    // arrives with another already buffered behind it. It lets the
    // *tail* frame of a burst take the inline fast path too — without
    // it every burst pays one pool handoff, which dominates the cost
    // of a burst of microsecond queries.
    let mut bursty = false;

    loop {
        if sink.is_broken() {
            break;
        }
        let payload = match read_frame_buffered(shared, &mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => break, // drain/hard stop, peer idle
            Err(FrameError::Oversized { claimed, max }) => {
                let resp = Response::BadRequest(format!(
                    "frame of {claimed} bytes exceeds the {max}-byte cap"
                ));
                shared.count_final(&resp);
                sink.send(None, &resp);
                break; // stream desynchronized
            }
            Err(_) => break,
        };
        let (corr, body) = match std::str::from_utf8(&payload) {
            Err(_) => {
                let resp = Response::BadRequest("request is not UTF-8".to_owned());
                shared.count_final(&resp);
                sink.send(None, &resp);
                continue;
            }
            Ok(text) => match split_corr(text) {
                Ok(split) => split,
                Err(msg) => {
                    let resp = Response::BadRequest(msg);
                    shared.count_final(&resp);
                    sink.send(None, &resp);
                    continue;
                }
            },
        };
        match Request::decode_with_limits(body, &limits) {
            Err(msg) => {
                let resp = Response::BadRequest(msg);
                shared.count_final(&resp);
                sink.send(corr, &resp);
            }
            Ok(Request::Ping) => {
                shared.count_final(&Response::Pong);
                sink.send(corr, &Response::Pong);
            }
            Ok(Request::Stats) => {
                let resp = Response::Stats(shared.stats_reply());
                shared.count_final(&resp);
                sink.send(corr, &resp);
            }
            Ok(request) => {
                // Fast path for pipelined bursts: when another complete
                // frame is already waiting in the read buffer, a small
                // query over an already-compiled net runs right here —
                // the pool handoff costs two context switches that
                // dwarf the exploration itself. A lock-step client
                // (empty buffer) stays on the pool: it is RTT-bound, so
                // inlining buys nothing and the read loop stays free.
                let more = frame_buffered(&reader);
                bursty |= more;
                if bursty
                    && !shared.draining.load(Ordering::SeqCst)
                    && inline_eligible(shared, &request)
                    && try_acquire_inline(shared)
                {
                    let response = run_guarded(shared, &request, None, None);
                    shared.inline_permits.fetch_add(1, Ordering::SeqCst);
                    shared.count_final(&response);
                    if more {
                        // Coalesce behind the burst: the next frame's
                        // own send (or the post-loop flush) carries
                        // this reply.
                        sink.enqueue(corr, &response);
                    } else {
                        // Tail of the burst: flush everything in one
                        // write before blocking on the socket again.
                        sink.send(corr, &response);
                    }
                } else {
                    // Pool handoff: flush any replies the fast path
                    // coalesced first, so they are not stranded behind
                    // pooled compute.
                    sink.flush();
                    if let Some(resp) = dispatch_v2(shared, request, corr, &sink, job_tx) {
                        // Shed (never queued): answer from this thread.
                        sink.send(corr, &resp);
                    }
                }
            }
        }
    }

    // Stop reading, but let dispatched work flush its final frames
    // before the socket closes — a pipelined client is owed exactly one
    // final frame per accepted request.
    let grace =
        shared.config.drain_grace.max(shared.config.io_timeout) + shared.config.default_deadline;
    let wait_until = Instant::now() + grace;
    while sink.in_flight.load(Ordering::SeqCst) > 0
        && !sink.is_broken()
        && Instant::now() < wait_until
    {
        thread::sleep(Duration::from_millis(5));
    }
    sink.flush(); // anything a worker left coalesced goes out first
    reader.into_inner().shutdown();
}

/// [`read_frame_with_timeouts`] over a buffered reader: identical idle
/// and I/O timeout behavior, but consecutive small frames are served
/// from one underlying `read`. Timeouts only bite when the buffer is
/// empty and the socket is actually consulted.
fn read_frame_buffered(
    shared: &Shared,
    reader: &mut BufReader<Conn>,
) -> Result<Option<Vec<u8>>, FrameError> {
    let poll = Duration::from_millis(200);
    let started = Instant::now();
    let mut first = [0u8; 1];
    loop {
        reader.get_mut().set_read_timeout(Some(poll))?;
        match reader.read(&mut first) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed",
                )))
            }
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.hard_stop.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst)
                {
                    return Ok(None);
                }
                if started.elapsed() >= shared.config.idle_timeout {
                    return Err(FrameError::Io(e));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    reader
        .get_mut()
        .set_read_timeout(Some(shared.config.io_timeout))?;
    let mut rest = [0u8; 3];
    reader.read_exact(&mut rest)?;
    let claimed = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]) as usize;
    read_frame_payload(reader, claimed, shared.config.max_frame).map(Some)
}

/// Ceiling on `max_states` for the inline fast path: an exploration
/// this small finishes in microseconds, so running it on the
/// connection thread costs less than waking a worker for it.
const INLINE_MAX_STATES: usize = 10_000;

/// Whether the read buffer already holds a complete frame — i.e. the
/// connection thread will process another request before it can block
/// on the socket, so a fast-path reply may coalesce behind it.
fn frame_buffered(reader: &BufReader<Conn>) -> bool {
    let buf = reader.buffer();
    buf.len() >= 4 && buf.len() - 4 >= u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize
}

/// Whether a request may run on the connection thread instead of the
/// pool: a non-streaming reach/cover query capped small enough
/// ([`INLINE_MAX_STATES`]) to finish in microseconds, over a net that
/// is already compiled (a cache miss would put an unbounded parse on
/// the read loop). Routing hint only — the answer is byte-identical on
/// either path.
fn inline_eligible(shared: &Shared, request: &Request) -> bool {
    let (net, doc, max_states) = match request {
        Request::Reach {
            stream: false,
            net,
            doc,
            max_states,
            ..
        } => (net, doc, max_states),
        Request::Cover {
            net,
            doc,
            max_states,
            ..
        } => (net, doc, max_states),
        _ => return false,
    };
    *max_states <= INLINE_MAX_STATES && shared.cache.peek(doc, net)
}

/// Takes one inline permit if any are free. Released by incrementing
/// [`Shared::inline_permits`] after the inline run.
fn try_acquire_inline(shared: &Shared) -> bool {
    shared
        .inline_permits
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

/// Queues a compute request for the v2 path. Returns `Some(shed
/// response)` when the request never reached the pool, `None` when a
/// worker now owns answering it.
fn dispatch_v2(
    shared: &Arc<Shared>,
    request: Request,
    corr: Option<u64>,
    sink: &Arc<ConnSink>,
    job_tx: &SyncSender<Job>,
) -> Option<Response> {
    if shared.draining.load(Ordering::SeqCst) {
        shared.counters.shed.fetch_add(1, Ordering::SeqCst);
        return Some(Response::Overloaded);
    }
    // Count in-flight before the send: the worker may finish (and
    // decrement) before try_send even returns.
    sink.in_flight.fetch_add(1, Ordering::SeqCst);
    sink.queued.fetch_add(1, Ordering::SeqCst);
    match job_tx.try_send(Job {
        request,
        reply: Reply::Sink(Arc::clone(sink), corr),
    }) {
        Ok(()) => None,
        Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
            sink.queued.fetch_sub(1, Ordering::SeqCst);
            sink.in_flight.fetch_sub(1, Ordering::SeqCst);
            shared.counters.shed.fetch_add(1, Ordering::SeqCst);
            Some(Response::Overloaded)
        }
    }
}

/// Queues a compute request, shedding when full, and waits for the
/// worker's reply (v1 lock-step path).
fn dispatch_v1(shared: &Arc<Shared>, request: Request, job_tx: &SyncSender<Job>) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        // New work during drain is shed; only already-queued requests
        // finish.
        shared.counters.shed.fetch_add(1, Ordering::SeqCst);
        return Response::Overloaded;
    }
    let wait = request
        .deadline()
        .unwrap_or(shared.config.default_deadline)
        .min(shared.config.default_deadline);
    let (reply_tx, reply_rx) = sync_channel(1);
    match job_tx.try_send(Job {
        request,
        reply: Reply::Channel(reply_tx),
    }) {
        Ok(()) => {}
        Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
            shared.counters.shed.fetch_add(1, Ordering::SeqCst);
            return Response::Overloaded;
        }
    }
    // Deadline + queue wait + poll slack; the worker answers
    // DeadlineExceeded itself if the deadline passes in the queue.
    let reply_timeout = wait + shared.config.io_timeout + Duration::from_secs(2);
    match reply_rx.recv_timeout(reply_timeout) {
        Ok(resp) => resp,
        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
            Response::InternalError("worker did not reply in time".to_owned())
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let guard = lock(rx);
            guard.recv_timeout(Duration::from_millis(100))
        };
        match job {
            Ok(job) => match job.reply {
                Reply::Channel(tx) => {
                    let response = run_guarded(shared, &job.request, None, None);
                    // The connection thread may have timed out and gone.
                    // (v1 counts finals on the connection thread.)
                    let _ = tx.send(response);
                }
                Reply::Sink(sink, corr) => {
                    // No longer waiting for a worker: completions
                    // behind this one shouldn't hold the flush.
                    sink.queued.fetch_sub(1, Ordering::SeqCst);
                    run_v2_job(shared, &job.request, &sink, corr);
                    sink.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            },
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop_workers.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Runs one request's handler inside `catch_unwind`, converting a panic
/// into `InternalError` (and counting it) without killing the worker.
fn run_guarded(
    shared: &Shared,
    request: &Request,
    umbrella: Option<Deadline>,
    stream: Option<&StreamCtx<'_>>,
) -> Response {
    catch_unwind(AssertUnwindSafe(|| {
        handle_request_opts(shared, request, umbrella, stream)
    }))
    .unwrap_or_else(|panic| {
        shared.counters.panics.fetch_add(1, Ordering::SeqCst);
        Response::InternalError(format!("worker panicked: {}", panic_message(&panic)))
    })
}

/// Executes one v2 job end-to-end: computes, counts, and writes every
/// frame it owes (per-item frames and `batch-done` for a batch, the
/// single final otherwise).
fn run_v2_job(shared: &Shared, request: &Request, sink: &ConnSink, corr: Option<u64>) {
    match request {
        Request::Batch { deadline_ms, items } => {
            // Umbrella deadline for the whole batch, capped by the
            // server default and the drain deadline like any single
            // request's.
            let mut umbrella = Deadline::after(
                deadline_ms
                    .map(Duration::from_millis)
                    .unwrap_or(shared.config.default_deadline)
                    .min(shared.config.default_deadline),
            );
            if let Some(dd) = shared.drain_deadline() {
                umbrella = umbrella.min(dd);
            }
            // Repeated identical items hash-cons their *answers*: the
            // kernel's determinism contract makes a completed or
            // states-exhausted verdict a pure function of the request,
            // so byte-identical items share one computation. Verdicts
            // cut short by wall-clock (deadline/cancel) are not pure
            // and always recompute.
            let mut memo: HashMap<String, Response> = HashMap::new();
            for (index, item) in items.iter().enumerate() {
                // A gone peer makes the remaining compute pointless.
                if sink.is_broken() {
                    return;
                }
                let inner = match item {
                    BatchItem::Malformed(msg) => {
                        Response::BadRequest(format!("item {index}: {msg}"))
                    }
                    BatchItem::Request(_) if umbrella.expired() => {
                        // Umbrella over: unstarted items degrade to
                        // typed partials; finished siblings stand.
                        shared
                            .counters
                            .deadline_rejected
                            .fetch_add(1, Ordering::SeqCst);
                        Response::DeadlineExceeded
                    }
                    BatchItem::Request(req) => {
                        let key = req.encode();
                        match memo.get(&key) {
                            Some(hit) => hit.clone(),
                            None => {
                                let resp = run_guarded(shared, req, Some(umbrella), None);
                                if response_is_pure(&resp) {
                                    memo.insert(key, resp.clone());
                                }
                                resp
                            }
                        }
                    }
                };
                shared.count_final(&inner);
                // Items coalesce in the sink (the client reads nothing
                // until `batch-done` anyway); size overflow flushes.
                sink.enqueue(
                    corr,
                    &Response::Item {
                        index,
                        inner: Box::new(inner),
                    },
                );
            }
            // Always close the batch, even when every item degraded —
            // the client's collect loop keys on this frame. This send
            // flushes the whole batch in one write.
            sink.send(corr, &Response::BatchDone { n: items.len() });
        }
        _ => {
            let wants_stream = matches!(
                request,
                Request::Reach { stream: true, .. } | Request::Verify { stream: true, .. }
            );
            let ctx = StreamCtx { sink, corr };
            let response = run_guarded(shared, request, None, wants_stream.then_some(&ctx));
            shared.count_final(&response);
            sink.send_coalesced(corr, &response);
        }
    }
}

/// Whether a response is a pure function of its request — reusable for
/// a byte-identical sibling in the same batch. Complete verdicts and
/// states-exhausted partials are deterministic (the kernel's contract);
/// anything the wall clock or a cancellation shaped is not.
fn response_is_pure(resp: &Response) -> bool {
    let deterministic_stop = |stopped: &Option<String>| {
        !matches!(stopped.as_deref(), Some("deadline") | Some("cancelled"))
    };
    match resp {
        Response::Result(s) => deterministic_stop(&s.stopped),
        Response::VerifyResult(v) => deterministic_stop(&v.stopped),
        Response::BadRequest(_) => true,
        _ => false,
    }
}

/// Computes one request under its budget. Runs inside `catch_unwind`.
fn handle_request_opts(
    shared: &Shared,
    request: &Request,
    umbrella: Option<Deadline>,
    stream: Option<&StreamCtx<'_>>,
) -> Response {
    let (net_name, max_states, threads, doc, is_cover) = match request {
        Request::Ping => return Response::Pong,
        Request::Stats => return Response::Stats(shared.stats_reply()),
        Request::Batch { .. } => {
            return Response::BadRequest("batch requires protocol v2".to_owned())
        }
        Request::Verify { .. } => return handle_verify(shared, request, umbrella, stream),
        Request::Reach {
            net,
            max_states,
            threads,
            doc,
            ..
        } => (net, *max_states, *threads, doc, false),
        Request::Cover {
            net,
            max_states,
            threads,
            doc,
            ..
        } => (net, *max_states, *threads, doc, true),
    };

    // Validate, then clamp: zero threads or requests beyond the protocol
    // ceiling are client nonsense and get a typed rejection; anything
    // else is clamped to what this server is willing to run.
    if threads == 0 || threads > MAX_REQUEST_THREADS {
        return Response::BadRequest(format!(
            "threads must be in 1..={MAX_REQUEST_THREADS}, got {threads}"
        ));
    }
    let threads = threads.min(shared.config.max_threads.max(1));

    // Chaos hook: with CPN_SERVE_CHAOS set, a request for this net name
    // panics inside the worker on purpose, so panic isolation is
    // testable end-to-end over the real wire path. Inert in normal
    // operation.
    if net_name == "__chaos_panic" && std::env::var_os("CPN_SERVE_CHAOS").is_some() {
        panic!("chaos hook: deliberate worker panic");
    }

    let deadline = match effective_deadline(shared, request, umbrella) {
        Some(d) => d,
        None => return Response::DeadlineExceeded,
    };
    let cap = max_states.min(shared.config.max_states_cap);

    let cached = match shared.cache.get_or_compile(doc, net_name) {
        Ok(c) => c,
        Err(CacheMiss::Parse(msg)) => return Response::BadRequest(format!("parse error: {msg}")),
        Err(CacheMiss::NoSuchNet(name)) => {
            return Response::BadRequest(format!("no net named `{name}` in document"))
        }
    };

    let summary = if is_cover {
        let budget = Budget::states(cap)
            .with_deadline_at(deadline)
            .with_cancel(shared.cancel.token());
        match CoverabilityTree::build_bounded(&cached.net, &budget) {
            Bounded::Complete(tree) => {
                let detail = match tree.outcome() {
                    CoverabilityOutcome::Bounded { bound } => format!("bounded={bound}"),
                    CoverabilityOutcome::Unbounded { witnesses } => {
                        format!("unbounded_witnesses={}", witnesses.len())
                    }
                };
                ExploreSummary {
                    states: tree.markings().len(),
                    edges: 0,
                    stopped: None,
                    detail,
                }
            }
            Bounded::Exhausted { partial, info } => ExploreSummary {
                states: partial.markings().len(),
                edges: info.transitions_explored,
                stopped: Some(info.resource.to_string()),
                detail: String::new(),
            },
        }
    } else {
        explore_reach(shared, &cached, cap, deadline, threads, stream)
    };
    Response::Result(summary)
}

/// The shrunk per-request deadline (client's, server default, batch
/// umbrella, drain), or `None` when it has already passed.
fn effective_deadline(
    shared: &Shared,
    request: &Request,
    umbrella: Option<Deadline>,
) -> Option<Deadline> {
    let mut deadline = Deadline::after(
        request
            .deadline()
            .unwrap_or(shared.config.default_deadline)
            .min(shared.config.default_deadline),
    );
    if let Some(u) = umbrella {
        deadline = deadline.min(u);
    }
    if let Some(dd) = shared.drain_deadline() {
        deadline = deadline.min(dd);
    }
    if deadline.expired() {
        shared
            .counters
            .deadline_rejected
            .fetch_add(1, Ordering::SeqCst);
        return None;
    }
    Some(deadline)
}

/// Reachability, optionally streamed. The streamed variant re-explores
/// in geometrically growing slices (×4), emitting a `progress` frame
/// after each exhausted slice; because the slices grow geometrically,
/// the re-explored prefixes sum to less than a third of the final
/// exploration, and the final answer is byte-identical to the
/// unstreamed one (the kernel is deterministic under a states cap).
fn explore_reach(
    shared: &Shared,
    cached: &crate::cache::CachedNet,
    cap: usize,
    deadline: Deadline,
    threads: usize,
    stream: Option<&StreamCtx<'_>>,
) -> ExploreSummary {
    let mut slice = match stream {
        Some(_) => STREAM_FIRST_SLICE.min(cap),
        None => cap,
    };
    loop {
        let budget = Budget::states(slice)
            .with_deadline_at(deadline)
            .with_cancel(shared.cancel.token());
        // The lock-free kernel's output is byte-identical to the
        // sequential one, so the thread count never changes an answer —
        // only how fast it arrives.
        match reachability_bounded_parallel_compiled(&cached.compiled, &cached.m0, &budget, threads)
        {
            Bounded::Complete(rg) => {
                return ExploreSummary {
                    states: rg.state_count(),
                    edges: rg.edge_count(),
                    stopped: None,
                    detail: format!("bound={}", rg.token_bound()),
                }
            }
            Bounded::Exhausted { partial, info } => {
                if slice < cap && matches!(info.resource, Resource::States) {
                    if let Some(ctx) = stream {
                        ctx.progress("explore", partial.state_count(), partial.edge_count());
                    }
                    slice = slice.saturating_mul(4).min(cap);
                    continue;
                }
                return ExploreSummary {
                    states: partial.state_count(),
                    edges: partial.edge_count(),
                    stopped: Some(info.resource.to_string()),
                    detail: String::new(),
                };
            }
        }
    }
}

/// The paper pipeline server-side: compose, check receptiveness, reduce
/// against the environment — each stage under the one shared budget,
/// each stage boundary streamed when asked.
fn handle_verify(
    shared: &Shared,
    request: &Request,
    umbrella: Option<Deadline>,
    stream: Option<&StreamCtx<'_>>,
) -> Response {
    let Request::Verify {
        module,
        env,
        louts,
        routs,
        max_states,
        hide_budget,
        doc,
        ..
    } = request
    else {
        return Response::InternalError("handle_verify on non-verify request".to_owned());
    };
    let deadline = match effective_deadline(shared, request, umbrella) {
        Some(d) => d,
        None => return Response::DeadlineExceeded,
    };
    let cap = (*max_states).min(shared.config.max_states_cap);
    let budget = Budget::states(cap)
        .with_deadline_at(deadline)
        .with_cancel(shared.cancel.token());

    // Both nets come out of the same cache the single-request paths
    // use, so a batch fanning one document across many (module, env)
    // pairs parses it once.
    let module_net = match shared.cache.get_or_compile(doc, module) {
        Ok(c) => c,
        Err(CacheMiss::Parse(msg)) => return Response::BadRequest(format!("parse error: {msg}")),
        Err(CacheMiss::NoSuchNet(name)) => {
            return Response::BadRequest(format!("no net named `{name}` in document"))
        }
    };
    let env_net = match shared.cache.get_or_compile(doc, env) {
        Ok(c) => c,
        Err(CacheMiss::Parse(msg)) => return Response::BadRequest(format!("parse error: {msg}")),
        Err(CacheMiss::NoSuchNet(name)) => {
            return Response::BadRequest(format!("no net named `{name}` in document"))
        }
    };
    let louts: BTreeSet<String> = louts.iter().cloned().collect();
    let routs: BTreeSet<String> = routs.iter().cloned().collect();

    let comp = match parallel_tracked_common(&module_net.net, &env_net.net) {
        Ok(c) => c,
        Err(err) => return Response::BadRequest(format!("composition failed: {err}")),
    };
    let composed_transitions = comp.net.transition_count();
    if let Some(ctx) = stream {
        ctx.progress("composed", 0, composed_transitions);
    }

    // Stage 2: receptiveness of the composition (Propositions 5.5/5.6).
    let verdict = check_receptiveness_composed_bounded(&comp, &louts, &routs, &budget);
    let (receptive, failures, states, edges, mut stopped) = match verdict {
        Verdict::Holds => (Receptive::Yes, Vec::new(), 0, 0, None),
        Verdict::Fails(report) => {
            let labels = report.failures.into_iter().map(|f| f.label).collect();
            (Receptive::No, labels, 0, 0, None)
        }
        Verdict::Unknown(info) => (
            Receptive::Unknown,
            Vec::new(),
            info.states_explored,
            info.transitions_explored,
            Some(info.resource.to_string()),
        ),
    };
    if let Some(ctx) = stream {
        ctx.progress("checked", states, edges);
    }

    // Stage 3: reduce the module against the environment — skipped
    // entirely once the budget is spent (the partial receptiveness
    // verdict is already the most the client can get).
    let mut reduced_transitions = None;
    let mut dead_removed = 0;
    if budget.interrupted().is_none() && stopped.is_none() {
        match reduce_against_environment_fused_bounded(
            &module_net.net,
            &env_net.net,
            &budget,
            *hide_budget,
        ) {
            Ok(Bounded::Complete(red)) => {
                reduced_transitions = Some(red.net.transition_count());
                dead_removed = red.dead_removed;
                if let Some(ctx) = stream {
                    ctx.progress("reduced", 0, red.net.transition_count());
                }
            }
            Ok(Bounded::Exhausted { partial, info }) => {
                dead_removed = partial.dead_removed;
                stopped = Some(info.resource.to_string());
            }
            // Divergent hiding is a property of the submitted nets
            // (unbounded internal behaviour), not of the server: typed
            // rejection, like a parse failure.
            Err(err) => return Response::BadRequest(format!("reduction failed: {err}")),
        }
    }

    Response::VerifyResult(VerifySummary {
        receptive,
        failures,
        states,
        edges,
        stopped,
        composed_transitions,
        reduced_transitions,
        dead_removed,
    })
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Locks a mutex, recovering from poisoning (a panicking worker has
/// already been isolated; the guarded state stays consistent).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}
