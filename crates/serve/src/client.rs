//! Client library: handshake, request/response, and
//! retry-with-jittered-backoff for transient failures.

use crate::frame::{read_frame, read_handshake, write_frame, write_handshake, FrameError};
use crate::proto::{Request, Response};
use crate::transport::{Conn, Endpoint};
use std::fmt;
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Dial, handshake, or framing failed.
    Transport(FrameError),
    /// The server's bytes decoded but were not a valid response.
    Protocol(String),
    /// Every attempt of a retried request failed; holds the last error.
    RetriesExhausted(Box<ClientError>),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::RetriesExhausted(last) => {
                write!(f, "retries exhausted; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Transport(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Transport(FrameError::Io(e))
    }
}

/// A connected, handshaken client.
pub struct Client {
    conn: Conn,
    max_frame: usize,
}

impl Client {
    /// Dials and handshakes.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] on dial/handshake failure.
    pub fn connect(ep: &Endpoint) -> Result<Client, ClientError> {
        Client::connect_with(ep, crate::frame::DEFAULT_MAX_FRAME, Duration::from_secs(30))
    }

    /// [`Client::connect`] with an explicit frame cap and I/O timeout.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] on dial/handshake failure.
    pub fn connect_with(
        ep: &Endpoint,
        max_frame: usize,
        io_timeout: Duration,
    ) -> Result<Client, ClientError> {
        let mut conn = Conn::dial(ep)?;
        conn.set_read_timeout(Some(io_timeout))?;
        conn.set_write_timeout(Some(io_timeout))?;
        write_handshake(&mut conn).map_err(FrameError::Io)?;
        read_handshake(&mut conn)?;
        Ok(Client { conn, max_frame })
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] on I/O failure,
    /// [`ClientError::Protocol`] if the server's reply does not decode.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.conn, req.encode().as_bytes(), self.max_frame)?;
        let payload = read_frame(&mut self.conn, self.max_frame)?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".to_owned()))?;
        Response::decode(text).map_err(ClientError::Protocol)
    }
}

/// Backoff policy for [`request_with_retry`]: exponential growth from
/// `base` capped at `cap`, with full jitter (each sleep is uniform in
/// `[0, backoff]`, the AWS "full jitter" scheme — it decorrelates a
/// thundering herd of clients retrying a shed server).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub attempts: u32,
    /// First backoff before jitter.
    pub base: Duration,
    /// Upper bound on the un-jittered backoff.
    pub cap: Duration,
    /// Seed for the jitter stream — deterministic tests pass a fixed
    /// seed; production callers can derive one from the PID or clock.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

/// One request with reconnect-and-retry on transient failures: dial
/// errors, transport errors, and [`Response::Overloaded`] sheds all
/// back off and retry; definitive responses (results, typed errors)
/// return immediately.
///
/// # Errors
///
/// [`ClientError::RetriesExhausted`] wrapping the last failure once the
/// attempt budget is spent.
pub fn request_with_retry(
    ep: &Endpoint,
    req: &Request,
    policy: &RetryPolicy,
) -> Result<Response, ClientError> {
    let mut jitter = SplitMix64::new(policy.seed);
    let mut backoff = policy.base;
    let mut last: Option<ClientError> = None;
    for attempt in 0..policy.attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(jitter.duration_in(backoff));
            backoff = (backoff * 2).min(policy.cap);
        }
        let outcome = Client::connect(ep).and_then(|mut c| c.request(req));
        match outcome {
            Ok(Response::Overloaded) => {
                last = Some(ClientError::Protocol("server overloaded".to_owned()));
            }
            Ok(resp) => return Ok(resp),
            Err(e) => last = Some(e),
        }
    }
    Err(ClientError::RetriesExhausted(Box::new(last.unwrap_or(
        ClientError::Protocol("no attempts made".to_owned()),
    ))))
}

/// Minimal SplitMix64 for jitter — the client must not depend on the
/// test-only `cpn-testkit` crate.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform duration in `[0, max]` (full jitter).
    fn duration_in(&mut self, max: Duration) -> Duration {
        let nanos = max.as_nanos().min(u128::from(u64::MAX)) as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(((u128::from(self.next_u64()) * u128::from(nanos + 1)) >> 64) as u64)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let max = Duration::from_millis(100);
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..100 {
            let d = a.duration_in(max);
            assert!(d <= max);
            assert_eq!(d, b.duration_in(max));
        }
    }

    #[test]
    fn retry_against_dead_endpoint_exhausts() {
        // Port 1 on localhost is essentially never listening.
        let ep = Endpoint::Tcp("127.0.0.1:1".to_owned());
        let policy = RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 1,
        };
        match request_with_retry(&ep, &Request::Ping, &policy) {
            Err(ClientError::RetriesExhausted(_)) => {}
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }
}
