//! Client library: handshake negotiation, request/response, batches,
//! pipelining, and retry-with-jittered-backoff for transient failures.
//!
//! Three client shapes, cheapest first:
//!
//! * [`Client::request`] — one request, one response, lock-step. Works
//!   against v1 and v2 servers (the handshake negotiates down
//!   automatically).
//! * [`Client::batch`] — N sub-requests in one frame, N answers in one
//!   round trip (v2). The dominant cost of small verification requests
//!   is the per-round-trip overhead, not the exploration; batching
//!   amortizes it across the batch.
//! * [`PipelinedClient`] — a configurable window of requests in flight
//!   at once, correlated by id, completions consumable out of order
//!   (v2). Keeps the connection's pipe full without waiting for each
//!   answer before sending the next question.

use crate::frame::{
    read_frame, read_handshake_in, write_frame, write_handshake, FrameError, MIN_PROTO_VERSION,
    PROTO_VERSION,
};
use crate::proto::{split_corr, with_corr, ProgressUpdate, Request, Response};
use crate::transport::{Conn, Endpoint};
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::io::{BufReader, Write};
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Dial, handshake, or framing failed.
    Transport(FrameError),
    /// The server's bytes decoded but were not a valid response.
    Protocol(String),
    /// A batch was refused as a whole before any item ran (shed,
    /// malformed frame, …); holds the server's typed answer.
    Refused(Response),
    /// Every attempt of a retried request failed; holds the last error.
    RetriesExhausted(Box<ClientError>),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::Refused(resp) => write!(f, "refused: {resp}"),
            ClientError::RetriesExhausted(last) => {
                write!(f, "retries exhausted; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Transport(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Transport(FrameError::Io(e))
    }
}

fn decode_frame(payload: &[u8]) -> Result<(Option<u64>, Response), ClientError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ClientError::Protocol("response is not UTF-8".to_owned()))?;
    let (corr, body) = split_corr(text).map_err(ClientError::Protocol)?;
    let response = Response::decode(body).map_err(ClientError::Protocol)?;
    Ok((corr, response))
}

/// A connected, handshaken client.
///
/// Reads are buffered: a server flushing a coalesced burst of frames
/// (a whole batch's items, pipelined completions) is consumed with one
/// `read` syscall instead of two per frame.
pub struct Client {
    reader: BufReader<Conn>,
    max_frame: usize,
    io_timeout: Duration,
    version: u16,
}

impl Client {
    /// Dials and handshakes (negotiating the protocol version down to
    /// what the server speaks).
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] on dial/handshake failure.
    pub fn connect(ep: &Endpoint) -> Result<Client, ClientError> {
        Client::connect_with(ep, crate::frame::DEFAULT_MAX_FRAME, Duration::from_secs(30))
    }

    /// [`Client::connect`] with an explicit frame cap and I/O timeout.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] on dial/handshake failure.
    pub fn connect_with(
        ep: &Endpoint,
        max_frame: usize,
        io_timeout: Duration,
    ) -> Result<Client, ClientError> {
        let mut conn = Conn::dial(ep)?;
        conn.set_read_timeout(Some(io_timeout))?;
        conn.set_write_timeout(Some(io_timeout))?;
        write_handshake(&mut conn).map_err(FrameError::Io)?;
        let version = read_handshake_in(&mut conn, MIN_PROTO_VERSION..=PROTO_VERSION)?;
        Ok(Client {
            reader: BufReader::with_capacity(64 * 1024, conn),
            max_frame,
            io_timeout,
            version,
        })
    }

    /// The protocol version negotiated with the server.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Sends one request and waits for its final response, discarding
    /// any streamed progress frames.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] on I/O failure,
    /// [`ClientError::Protocol`] if the server's reply does not decode.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.request_streaming(req, |_| {})
    }

    /// Sends one request, invoking `on_progress` for each streamed
    /// [`Response::Progress`] frame, and returns the final response.
    ///
    /// # Errors
    ///
    /// As [`Client::request`]. A batch request gets a whole-batch error
    /// here — use [`Client::batch`] for batches.
    pub fn request_streaming(
        &mut self,
        req: &Request,
        mut on_progress: impl FnMut(ProgressUpdate),
    ) -> Result<Response, ClientError> {
        write_frame(
            self.reader.get_mut(),
            req.encode().as_bytes(),
            self.max_frame,
        )?;
        loop {
            let payload = read_frame(&mut self.reader, self.max_frame)?;
            let (_, response) = decode_frame(&payload)?;
            match response {
                Response::Progress(p) => on_progress(p),
                Response::Item { .. } | Response::BatchDone { .. } => {
                    return Err(ClientError::Protocol(
                        "unexpected batch frame for a single request".to_owned(),
                    ))
                }
                final_resp => return Ok(final_resp),
            }
        }
    }

    /// Sends `items` as one batch frame and collects the per-item
    /// answers, in item order, through the closing `batch-done` frame.
    /// Requires a v2 server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on a v1 connection or a malformed item
    /// list, [`ClientError::Refused`] when the server answered the
    /// whole batch with a single typed refusal (e.g. `Overloaded`),
    /// [`ClientError::Transport`] on I/O failure.
    pub fn batch(
        &mut self,
        items: Vec<Request>,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<Response>, ClientError> {
        if self.version < 2 {
            return Err(ClientError::Protocol(
                "batch requires protocol v2; server negotiated v1".to_owned(),
            ));
        }
        let n = items.len();
        let req = Request::batch(items, deadline_ms).map_err(ClientError::Protocol)?;
        write_frame(
            self.reader.get_mut(),
            req.encode().as_bytes(),
            self.max_frame,
        )?;

        // Item frames may be spaced by whole explorations; wait per
        // frame for the umbrella deadline (or the server's default),
        // plus margin, instead of the plain I/O timeout.
        let umbrella = deadline_ms.map_or(Duration::from_secs(30), Duration::from_millis);
        self.reader
            .get_mut()
            .set_read_timeout(Some(crate::frame::reply_timeout(umbrella)))?;
        let result = self.collect_batch(n);
        let _ = self
            .reader
            .get_mut()
            .set_read_timeout(Some(self.io_timeout));
        result
    }

    fn collect_batch(&mut self, n: usize) -> Result<Vec<Response>, ClientError> {
        let mut out: Vec<Option<Response>> = (0..n).map(|_| None).collect();
        let mut filled = 0usize;
        loop {
            let payload = read_frame(&mut self.reader, self.max_frame)?;
            let (_, response) = decode_frame(&payload)?;
            match response {
                Response::Progress(_) => {}
                Response::Item { index, inner } => {
                    let slot = out.get_mut(index).ok_or_else(|| {
                        ClientError::Protocol(format!("item index {index} out of range 0..{n}"))
                    })?;
                    if slot.replace(*inner).is_some() {
                        return Err(ClientError::Protocol(format!(
                            "item {index} answered twice"
                        )));
                    }
                    filled += 1;
                }
                Response::BatchDone { n: done } => {
                    if done != n || filled != n {
                        return Err(ClientError::Protocol(format!(
                            "batch-done n={done} after {filled} of {n} items"
                        )));
                    }
                    return Ok(out.into_iter().flatten().collect());
                }
                refusal if filled == 0 => return Err(ClientError::Refused(refusal)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected mid-batch frame `{other}`"
                    )))
                }
            }
        }
    }
}

/// A v2 client keeping up to `window` requests in flight on one
/// connection. Submissions past the window block until a completion
/// frees a slot; completions are correlated by id, so they can be
/// consumed out of submission order.
///
/// Writes coalesce: submitted frames collect in a buffer that is
/// flushed in one syscall the moment the client turns around to read
/// (window full, [`PipelinedClient::recv`], [`PipelinedClient::drain`])
/// or on an explicit [`PipelinedClient::flush`]. A full window of
/// small requests therefore costs one `write`, not `window` of them.
pub struct PipelinedClient {
    reader: BufReader<Conn>,
    wbuf: Vec<u8>,
    max_frame: usize,
    window: usize,
    next_corr: u64,
    in_flight: HashSet<u64>,
    ready: VecDeque<(u64, Response)>,
    progress: Vec<(u64, ProgressUpdate)>,
}

impl PipelinedClient {
    /// Dials, handshakes, and requires protocol v2.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] on dial/handshake failure,
    /// [`ClientError::Protocol`] if the server only speaks v1.
    pub fn connect(ep: &Endpoint, window: usize) -> Result<PipelinedClient, ClientError> {
        PipelinedClient::connect_with(
            ep,
            window,
            crate::frame::DEFAULT_MAX_FRAME,
            Duration::from_secs(30),
        )
    }

    /// [`PipelinedClient::connect`] with an explicit frame cap and I/O
    /// timeout.
    ///
    /// # Errors
    ///
    /// As [`PipelinedClient::connect`].
    pub fn connect_with(
        ep: &Endpoint,
        window: usize,
        max_frame: usize,
        io_timeout: Duration,
    ) -> Result<PipelinedClient, ClientError> {
        let mut conn = Conn::dial(ep)?;
        conn.set_read_timeout(Some(io_timeout))?;
        conn.set_write_timeout(Some(io_timeout))?;
        write_handshake(&mut conn).map_err(FrameError::Io)?;
        let version = read_handshake_in(&mut conn, MIN_PROTO_VERSION..=PROTO_VERSION)?;
        if version < 2 {
            return Err(ClientError::Protocol(
                "pipelining requires protocol v2; server negotiated v1".to_owned(),
            ));
        }
        Ok(PipelinedClient {
            reader: BufReader::with_capacity(64 * 1024, conn),
            wbuf: Vec::new(),
            max_frame,
            window: window.max(1),
            next_corr: 1,
            in_flight: HashSet::new(),
            ready: VecDeque::new(),
            progress: Vec::new(),
        })
    }

    /// Requests currently awaiting their final frame.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Submits a request, returning its correlation id. Blocks (by
    /// receiving completions) while the in-flight window is full.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] for a batch request (one batch is
    /// already a pipeline — submit it via [`Client::batch`]),
    /// [`ClientError::Transport`] on I/O failure.
    pub fn submit(&mut self, req: &Request) -> Result<u64, ClientError> {
        if matches!(req, Request::Batch { .. }) {
            return Err(ClientError::Protocol(
                "submit individual requests; batches go through Client::batch".to_owned(),
            ));
        }
        // Hysteresis: when the window fills, receive until *half* of
        // it is free rather than exactly one slot. Submissions then
        // alternate between a burst of writes (one coalesced syscall)
        // and a burst of reads, instead of degenerating into strict
        // one-in-one-out lock-step at full depth. A window of 1 keeps
        // exact lock-step.
        if self.in_flight.len() >= self.window {
            let refill = (self.window / 2).max(1);
            while self.in_flight.len() > self.window - refill {
                self.pump_one()?;
            }
        }
        let corr = self.next_corr;
        self.next_corr += 1;
        let text = with_corr(Some(corr), &req.encode());
        // Into the coalescing buffer (a Vec sinks write_frame's single
        // write); the wire write happens at the next flush point.
        write_frame(&mut self.wbuf, text.as_bytes(), self.max_frame)?;
        self.in_flight.insert(corr);
        Ok(corr)
    }

    /// Pushes any buffered submissions onto the wire now. Called
    /// automatically before every read; useful when the window is not
    /// yet full and the caller wants the server started immediately.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] on I/O failure.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        if self.wbuf.is_empty() {
            return Ok(());
        }
        let conn = self.reader.get_mut();
        conn.write_all(&self.wbuf)?;
        conn.flush()?;
        self.wbuf.clear();
        Ok(())
    }

    /// The next completed `(correlation id, final response)`, in
    /// completion order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when nothing is in flight, or on a
    /// frame that violates the protocol; [`ClientError::Transport`] on
    /// I/O failure.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        loop {
            if let Some(done) = self.ready.pop_front() {
                return Ok(done);
            }
            if self.in_flight.is_empty() {
                return Err(ClientError::Protocol("no requests in flight".to_owned()));
            }
            self.pump_one()?;
        }
    }

    /// Receives until every in-flight request has completed; returns
    /// all buffered completions in completion order.
    ///
    /// # Errors
    ///
    /// As [`PipelinedClient::recv`].
    pub fn drain(&mut self) -> Result<Vec<(u64, Response)>, ClientError> {
        while !self.in_flight.is_empty() {
            self.pump_one()?;
        }
        Ok(self.ready.drain(..).collect())
    }

    /// Takes the streamed progress frames buffered so far (tagged with
    /// their request's correlation id).
    pub fn take_progress(&mut self) -> Vec<(u64, ProgressUpdate)> {
        std::mem::take(&mut self.progress)
    }

    /// Reads frames until one final response completes some request.
    fn pump_one(&mut self) -> Result<(), ClientError> {
        self.flush()?; // everything we owe the server goes first
        loop {
            let payload = read_frame(&mut self.reader, self.max_frame)?;
            let (corr, response) = decode_frame(&payload)?;
            let corr = corr.ok_or_else(|| {
                ClientError::Protocol(format!("response `{response}` missing correlation id"))
            })?;
            match response {
                Response::Progress(p) => {
                    self.progress.push((corr, p));
                }
                Response::Item { .. } | Response::BatchDone { .. } => {
                    return Err(ClientError::Protocol(
                        "unexpected batch frame on a pipelined connection".to_owned(),
                    ))
                }
                final_resp => {
                    if !self.in_flight.remove(&corr) {
                        return Err(ClientError::Protocol(format!(
                            "completion for unknown correlation id {corr}"
                        )));
                    }
                    self.ready.push_back((corr, final_resp));
                    return Ok(());
                }
            }
        }
    }
}

/// Backoff policy for [`request_with_retry`]: exponential growth from
/// `base` capped at `cap`, with full jitter (each sleep is uniform in
/// `[0, backoff]`, the AWS "full jitter" scheme — it decorrelates a
/// thundering herd of clients retrying a shed server).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub attempts: u32,
    /// First backoff before jitter.
    pub base: Duration,
    /// Upper bound on the un-jittered backoff.
    pub cap: Duration,
    /// Seed for the jitter stream — deterministic tests pass a fixed
    /// seed; production callers can derive one from the PID or clock.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

/// One request with reconnect-and-retry on transient failures: dial
/// errors, transport errors, and [`Response::Overloaded`] sheds all
/// back off and retry; definitive responses (results, typed errors)
/// return immediately.
///
/// # Errors
///
/// [`ClientError::RetriesExhausted`] wrapping the last failure once the
/// attempt budget is spent.
pub fn request_with_retry(
    ep: &Endpoint,
    req: &Request,
    policy: &RetryPolicy,
) -> Result<Response, ClientError> {
    let mut jitter = SplitMix64::new(policy.seed);
    let mut backoff = policy.base;
    let mut last: Option<ClientError> = None;
    for attempt in 0..policy.attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(jitter.duration_in(backoff));
            backoff = (backoff * 2).min(policy.cap);
        }
        let outcome = Client::connect(ep).and_then(|mut c| c.request(req));
        match outcome {
            Ok(Response::Overloaded) => {
                last = Some(ClientError::Protocol("server overloaded".to_owned()));
            }
            Ok(resp) => return Ok(resp),
            Err(e) => last = Some(e),
        }
    }
    Err(ClientError::RetriesExhausted(Box::new(last.unwrap_or(
        ClientError::Protocol("no attempts made".to_owned()),
    ))))
}

/// Minimal SplitMix64 for jitter — the client must not depend on the
/// test-only `cpn-testkit` crate.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform duration in `[0, max]` (full jitter).
    fn duration_in(&mut self, max: Duration) -> Duration {
        let nanos = max.as_nanos().min(u128::from(u64::MAX)) as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(((u128::from(self.next_u64()) * u128::from(nanos + 1)) >> 64) as u64)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let max = Duration::from_millis(100);
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..100 {
            let d = a.duration_in(max);
            assert!(d <= max);
            assert_eq!(d, b.duration_in(max));
        }
    }

    #[test]
    fn retry_against_dead_endpoint_exhausts() {
        // Port 1 on localhost is essentially never listening.
        let ep = Endpoint::Tcp("127.0.0.1:1".to_owned());
        let policy = RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 1,
        };
        match request_with_retry(&ep, &Request::Ping, &policy) {
            Err(ClientError::RetriesExhausted(_)) => {}
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }
}
