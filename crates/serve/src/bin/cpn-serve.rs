//! The `cpn-serve` daemon binary.
//!
//! ```text
//! cpn-serve [--tcp ADDR] [--uds PATH] [--workers N] [--queue N]
//!           [--deadline-ms N] [--drain-ms N] [--print-endpoints]
//! ```
//!
//! At least one of `--tcp` / `--uds` is required. SIGTERM and SIGINT
//! begin a graceful drain: the listener closes, in-flight requests
//! finish under the shrinking drain deadline, and the process exits 0
//! with final counters on stderr.

use cpn_serve::{Endpoint, Server, ServerConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set from the signal handler; polled by the main thread.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Hand-rolled `signal(2)` binding: the workspace is dependency-free
    // by construction, so no libc crate. The handler only stores a
    // relaxed atomic — async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

struct Args {
    endpoints: Vec<Endpoint>,
    config: ServerConfig,
    print_endpoints: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut endpoints = Vec::new();
    let mut config = ServerConfig::default();
    let mut print_endpoints = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--tcp" => endpoints.push(Endpoint::Tcp(value("--tcp")?)),
            #[cfg(unix)]
            "--uds" => endpoints.push(Endpoint::Unix(value("--uds")?.into())),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "bad --workers value")?;
            }
            "--queue" => {
                config.queue_depth = value("--queue")?.parse().map_err(|_| "bad --queue value")?;
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "bad --deadline-ms value")?;
                config.default_deadline = Duration::from_millis(ms);
            }
            "--drain-ms" => {
                let ms: u64 = value("--drain-ms")?
                    .parse()
                    .map_err(|_| "bad --drain-ms value")?;
                config.drain_grace = Duration::from_millis(ms);
            }
            "--print-endpoints" => print_endpoints = true,
            "--help" | "-h" => {
                return Err("usage: cpn-serve [--tcp ADDR] [--uds PATH] [--workers N] \
                            [--queue N] [--deadline-ms N] [--drain-ms N] [--print-endpoints]"
                    .to_owned())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if endpoints.is_empty() {
        return Err("at least one of --tcp / --uds is required".to_owned());
    }
    Ok(Args {
        endpoints,
        config,
        print_endpoints,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("cpn-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(&args.endpoints, args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cpn-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.print_endpoints {
        match server.local_endpoints() {
            Ok(eps) => {
                for ep in eps {
                    println!("{ep}");
                }
            }
            Err(e) => {
                eprintln!("cpn-serve: cannot read local endpoints: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    install_signal_handlers();

    let handle = server.handle();
    let signal_poller = std::thread::spawn(move || loop {
        if SHUTDOWN.load(Ordering::Relaxed) {
            handle.begin_drain();
            return;
        }
        if handle.is_draining() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    let stats = server.run();
    let _ = signal_poller.join();
    eprintln!(
        "cpn-serve: drained. accepted={} served={} shed={} panics={} bad_requests={} \
         deadline_rejected={} cache_hits={} cache_misses={} workers_joined={}",
        stats.accepted,
        stats.served,
        stats.shed,
        stats.panics,
        stats.bad_requests,
        stats.deadline_rejected,
        stats.cache_hits,
        stats.cache_misses,
        stats.workers_joined,
    );
    ExitCode::SUCCESS
}
