//! Typed requests and responses, and their wire codec.
//!
//! A request payload is UTF-8 text: one command line (`verb key=value
//! ...`), then — for verbs that analyse a net — the `.cpn` document on
//! the following lines, exactly as `cpn-format` parses it. Responses
//! are a single line of the same `verb key=value` shape. Reusing the
//! workspace text format keeps the daemon debuggable with `nc`/`socat`
//! and means the server-side document parser is the same hardened
//! [`cpn_format::parse_with_limits`] the rest of the workspace uses.

use std::fmt;
use std::time::Duration;

/// A client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Explore the reachability graph of the named net in the document.
    Reach {
        /// Name of the `net` item inside `doc` to analyse.
        net: String,
        /// State cap (server further caps this).
        max_states: usize,
        /// Per-request wall-clock deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Exploration worker threads (server clamps; `1` = sequential,
        /// values above the server cap or `0` are rejected).
        threads: usize,
        /// The `.cpn` document text.
        doc: String,
    },
    /// Build the Karp–Miller coverability tree of the named net.
    Cover {
        /// Name of the `net` item inside `doc` to analyse.
        net: String,
        /// Node cap (server further caps this).
        max_states: usize,
        /// Per-request wall-clock deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Accepted and validated like `Reach::threads`, but the tree
        /// build itself is sequential (Karp–Miller node construction is
        /// inherently ordered); present so clients can set one knob.
        threads: usize,
        /// The `.cpn` document text.
        doc: String,
    },
}

impl Request {
    /// The per-request deadline, if the client set one.
    pub fn deadline(&self) -> Option<Duration> {
        match self {
            Request::Ping => None,
            Request::Reach { deadline_ms, .. } | Request::Cover { deadline_ms, .. } => {
                deadline_ms.map(Duration::from_millis)
            }
        }
    }

    /// Serializes to the wire text form.
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => "ping".to_owned(),
            Request::Reach {
                net,
                max_states,
                deadline_ms,
                threads,
                doc,
            } => encode_doc_request("reach", net, *max_states, *deadline_ms, *threads, doc),
            Request::Cover {
                net,
                max_states,
                deadline_ms,
                threads,
                doc,
            } => encode_doc_request("cover", net, *max_states, *deadline_ms, *threads, doc),
        }
    }

    /// Parses the wire text form.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformation; the server
    /// maps it to [`Response::BadRequest`].
    pub fn decode(text: &str) -> Result<Request, String> {
        let (line, rest) = match text.split_once('\n') {
            Some((l, r)) => (l, r),
            None => (text, ""),
        };
        let mut words = line.split_whitespace();
        let verb = words.next().ok_or("empty request")?;
        match verb {
            "ping" => Ok(Request::Ping),
            "reach" | "cover" => {
                let mut net = None;
                let mut max_states = 100_000usize;
                let mut deadline_ms = None;
                let mut threads = 1usize;
                for word in words {
                    let (k, v) = word
                        .split_once('=')
                        .ok_or_else(|| format!("malformed option `{word}` (expected key=value)"))?;
                    match k {
                        "net" => net = Some(v.to_owned()),
                        "max_states" => {
                            max_states = v.parse().map_err(|_| format!("bad max_states `{v}`"))?;
                        }
                        "deadline_ms" => {
                            deadline_ms =
                                Some(v.parse().map_err(|_| format!("bad deadline_ms `{v}`"))?);
                        }
                        "threads" => {
                            threads = v.parse().map_err(|_| format!("bad threads `{v}`"))?;
                        }
                        other => return Err(format!("unknown option `{other}`")),
                    }
                }
                let net = net.ok_or("missing `net=` option")?;
                let doc = rest.to_owned();
                Ok(if verb == "reach" {
                    Request::Reach {
                        net,
                        max_states,
                        deadline_ms,
                        threads,
                        doc,
                    }
                } else {
                    Request::Cover {
                        net,
                        max_states,
                        deadline_ms,
                        threads,
                        doc,
                    }
                })
            }
            other => Err(format!("unknown verb `{other}`")),
        }
    }
}

fn encode_doc_request(
    verb: &str,
    net: &str,
    max_states: usize,
    deadline_ms: Option<u64>,
    threads: usize,
    doc: &str,
) -> String {
    let mut line = format!("{verb} net={net} max_states={max_states}");
    if let Some(ms) = deadline_ms {
        line.push_str(&format!(" deadline_ms={ms}"));
    }
    // `threads=1` is the default: omit it so pre-threads peers still
    // parse requests from new clients.
    if threads != 1 {
        line.push_str(&format!(" threads={threads}"));
    }
    line.push('\n');
    line.push_str(doc);
    line
}

/// How far an exploration got, complete or not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreSummary {
    /// Distinct states (or tree nodes) discovered.
    pub states: usize,
    /// Edges examined.
    pub edges: usize,
    /// `None` if the exploration completed; otherwise the resource that
    /// ran out first (`states`, `transitions`, `deadline`, `cancelled`).
    pub stopped: Option<String>,
    /// Verb-specific detail: the token bound for `reach`, the
    /// boundedness verdict for `cover`.
    pub detail: String,
}

impl ExploreSummary {
    /// Whether the exploration saw the whole structure.
    pub fn is_complete(&self) -> bool {
        self.stopped.is_none()
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// A verification result — definite if `summary.is_complete()`,
    /// otherwise a sound partial answer (the `Unknown` arm of the
    /// workspace's verdict lattice).
    Result(ExploreSummary),
    /// The bounded work queue was full; retry with backoff.
    Overloaded,
    /// The request's deadline passed before a worker picked it up.
    DeadlineExceeded,
    /// The request was malformed (framing was fine, content was not).
    BadRequest(String),
    /// The worker handling the request panicked; the daemon survives.
    InternalError(String),
}

impl Response {
    /// Serializes to the wire text form.
    pub fn encode(&self) -> String {
        match self {
            Response::Pong => "pong".to_owned(),
            Response::Result(s) => {
                let mut line = format!("result states={} edges={}", s.states, s.edges);
                match &s.stopped {
                    None => line.push_str(" complete=true"),
                    Some(r) => {
                        line.push_str(&format!(" complete=false stopped={r}"));
                    }
                }
                if !s.detail.is_empty() {
                    line.push_str(&format!(" detail={}", s.detail));
                }
                line
            }
            Response::Overloaded => "overloaded".to_owned(),
            Response::DeadlineExceeded => "deadline-exceeded".to_owned(),
            Response::BadRequest(msg) => format!("bad-request {}", escape(msg)),
            Response::InternalError(msg) => format!("internal-error {}", escape(msg)),
        }
    }

    /// Parses the wire text form.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformation; the client
    /// surfaces it as a protocol error.
    pub fn decode(text: &str) -> Result<Response, String> {
        let line = text.lines().next().unwrap_or("");
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r),
            None => (line, ""),
        };
        match verb {
            "pong" => Ok(Response::Pong),
            "overloaded" => Ok(Response::Overloaded),
            "deadline-exceeded" => Ok(Response::DeadlineExceeded),
            "bad-request" => Ok(Response::BadRequest(unescape(rest))),
            "internal-error" => Ok(Response::InternalError(unescape(rest))),
            "result" => {
                let mut s = ExploreSummary {
                    states: 0,
                    edges: 0,
                    stopped: None,
                    detail: String::new(),
                };
                let mut complete = false;
                for word in rest.split_whitespace() {
                    let (k, v) = word
                        .split_once('=')
                        .ok_or_else(|| format!("malformed field `{word}`"))?;
                    match k {
                        "states" => s.states = v.parse().map_err(|_| "bad states")?,
                        "edges" => s.edges = v.parse().map_err(|_| "bad edges")?,
                        "complete" => complete = v == "true",
                        "stopped" => s.stopped = Some(v.to_owned()),
                        "detail" => s.detail = v.to_owned(),
                        other => return Err(format!("unknown field `{other}`")),
                    }
                }
                if complete && s.stopped.is_some() {
                    return Err("complete result carries a stop reason".to_owned());
                }
                if !complete && s.stopped.is_none() {
                    return Err("incomplete result missing stop reason".to_owned());
                }
                Ok(Response::Result(s))
            }
            other => Err(format!("unknown response verb `{other}`")),
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Newlines and the field separator cannot appear inside a message.
fn escape(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ")
}

fn unescape(msg: &str) -> String {
    msg.to_owned()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    const DOC: &str = "net n { places { p* q } transition \"t\" { pre: p; post: q } }";

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Ping,
            Request::Reach {
                net: "n".into(),
                max_states: 500,
                deadline_ms: Some(50),
                threads: 1,
                doc: DOC.into(),
            },
            Request::Reach {
                net: "n".into(),
                max_states: 500,
                deadline_ms: None,
                threads: 4,
                doc: DOC.into(),
            },
            Request::Cover {
                net: "n".into(),
                max_states: 1000,
                deadline_ms: None,
                threads: 2,
                doc: DOC.into(),
            },
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn default_threads_stays_off_the_wire() {
        let req = Request::Reach {
            net: "n".into(),
            max_states: 500,
            deadline_ms: None,
            threads: 1,
            doc: DOC.into(),
        };
        assert!(!req.encode().contains("threads="));
        // Absent on the wire decodes back to the default.
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Pong,
            Response::Result(ExploreSummary {
                states: 12,
                edges: 30,
                stopped: None,
                detail: "bound=1".into(),
            }),
            Response::Result(ExploreSummary {
                states: 4096,
                edges: 9999,
                stopped: Some("deadline".into()),
                detail: String::new(),
            }),
            Response::Overloaded,
            Response::DeadlineExceeded,
            Response::BadRequest("missing `net=` option".into()),
            Response::InternalError("worker panicked".into()),
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::decode("").is_err());
        assert!(Request::decode("frobnicate x=1").is_err());
        assert!(Request::decode("reach max_states=10").is_err()); // no net=
        assert!(Request::decode("reach net=n max_states=banana").is_err());
        assert!(Request::decode("reach net=n bogus").is_err());
        assert!(Request::decode("reach net=n threads=many").is_err());
        assert!(Request::decode("reach net=n threads=-2").is_err());
    }

    #[test]
    fn inconsistent_results_rejected() {
        assert!(
            Response::decode("result states=1 edges=0 complete=true stopped=deadline").is_err()
        );
        assert!(Response::decode("result states=1 edges=0 complete=false").is_err());
    }
}
