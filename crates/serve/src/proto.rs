//! Typed requests and responses, and their wire codec.
//!
//! A request payload is UTF-8 text: one command line (`verb key=value
//! ...`), then — for verbs that analyse a net — the `.cpn` document on
//! the following lines, exactly as `cpn-format` parses it. Responses
//! are a single line of the same `verb key=value` shape. Reusing the
//! workspace text format keeps the daemon debuggable with `nc`/`socat`
//! and means the server-side document parser is the same hardened
//! [`cpn_format::parse_with_limits`] the rest of the workspace uses.
//!
//! ## Protocol v2 additions
//!
//! * **Correlation ids** — any frame may be prefixed `@<id> ` (a
//!   decimal `u64` chosen by the client); every response frame to that
//!   request carries the same prefix, so a pipelined client matching
//!   out-of-order completions needs no bookkeeping beyond the id. See
//!   [`split_corr`]/[`with_corr`].
//! * **[`Request::Batch`]** — N sub-requests (reach/cover/verify) in
//!   one frame, answered by N [`Response::Item`] frames *in order*
//!   followed by one [`Response::BatchDone`]. Each item is
//!   byte-length-prefixed (`item <len>` line, then exactly `len` bytes
//!   of the sub-request text), so documents containing arbitrary lines
//!   cannot desynchronize the batch. Item framing is validated against
//!   [`BatchLimits`] — per-item size accounting, a cap on the item
//!   count, and **no** allocation sized from attacker-controlled
//!   headers: items are collected incrementally as they actually
//!   arrive.
//! * **[`Request::Verify`]** — the paper pipeline server-side: compose
//!   `module ‖ env`, check receptiveness of the composition, and
//!   reduce the module against the environment (hide the internal
//!   labels). Answered with [`Response::VerifyResult`].
//! * **[`Request::Stats`]** — live service and cache counters,
//!   answered with [`Response::Stats`].
//! * **[`Response::Progress`]** — non-final streamed frames emitted
//!   while a long exploration or verify pipeline runs, when the
//!   request set `stream=true`.

use std::fmt;
use std::time::Duration;

/// Default cap on hiding contractions per label in a server-side
/// verify (the client may lower it with `hide_budget=`).
pub const DEFAULT_HIDE_BUDGET: usize = 100_000;

/// Hard protocol ceiling on items per batch. A server may impose a
/// lower cap via [`BatchLimits`]; beyond this, the frame is rejected
/// regardless of configuration.
pub const MAX_BATCH_ITEMS: usize = 1024;

/// Validation limits for decoding batch frames.
#[derive(Clone, Copy, Debug)]
pub struct BatchLimits {
    /// Maximum number of items in one batch frame.
    pub max_items: usize,
    /// Maximum size in bytes of a single item's sub-request text
    /// (command line + document). Servers derive this from their
    /// `ParseLimits::max_input_bytes`.
    pub max_item_bytes: usize,
}

impl Default for BatchLimits {
    fn default() -> Self {
        BatchLimits {
            max_items: MAX_BATCH_ITEMS,
            max_item_bytes: crate::frame::DEFAULT_MAX_FRAME,
        }
    }
}

/// One entry of a decoded batch.
///
/// Item *framing* errors that can be skipped safely (an oversized
/// per-item length with the bytes still inside the frame) and item
/// *content* errors (a sub-request that does not decode) surface as
/// [`BatchItem::Malformed`] so the server can answer that single item
/// with a typed `BadRequest` while its siblings still run — one bad
/// item must not poison the batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchItem {
    /// A well-formed sub-request (reach, cover, or verify).
    Request(Request),
    /// The item was framed but is not a servable sub-request; the
    /// message explains why.
    Malformed(String),
}

/// A client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Live service and cache counters (v2); answered inline.
    Stats,
    /// Explore the reachability graph of the named net in the document.
    Reach {
        /// Name of the `net` item inside `doc` to analyse.
        net: String,
        /// State cap (server further caps this).
        max_states: usize,
        /// Per-request wall-clock deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Exploration worker threads (server clamps; `1` = sequential,
        /// values above the server cap or `0` are rejected).
        threads: usize,
        /// Stream non-final [`Response::Progress`] frames while the
        /// exploration runs (v2 connections only; ignored inside a
        /// batch).
        stream: bool,
        /// The `.cpn` document text.
        doc: String,
    },
    /// Build the Karp–Miller coverability tree of the named net.
    Cover {
        /// Name of the `net` item inside `doc` to analyse.
        net: String,
        /// Node cap (server further caps this).
        max_states: usize,
        /// Per-request wall-clock deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Accepted and validated like `Reach::threads`, but the tree
        /// build itself is sequential (Karp–Miller node construction is
        /// inherently ordered); present so clients can set one knob.
        threads: usize,
        /// The `.cpn` document text.
        doc: String,
    },
    /// The paper pipeline server-side (v2): compose `module ‖ env`,
    /// check receptiveness of the composition
    /// (`cpn_core::check_receptiveness_bounded`), and reduce the
    /// module against the environment
    /// (`cpn_core::reduce_against_environment_fused_bounded` — dead
    /// pruning, hiding of the environment-internal labels, structural
    /// reduction).
    Verify {
        /// Name of the module net inside `doc`.
        module: String,
        /// Name of the environment net inside `doc`.
        env: String,
        /// Labels the module drives (outputs of the left operand).
        /// Labels containing whitespace are not expressible on the
        /// wire; commas and `%` are percent-escaped.
        louts: Vec<String>,
        /// Labels the environment drives (outputs of the right operand).
        routs: Vec<String>,
        /// State cap for both exploration passes.
        max_states: usize,
        /// Per-request wall-clock deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Cap on hiding contractions per hidden label.
        hide_budget: usize,
        /// Stream per-stage [`Response::Progress`] frames.
        stream: bool,
        /// The `.cpn` document text (must contain both nets).
        doc: String,
    },
    /// N sub-requests in one frame (v2), answered in order with
    /// [`Response::Item`] frames and closed by [`Response::BatchDone`].
    Batch {
        /// Umbrella wall-clock deadline for the whole batch in
        /// milliseconds; items not yet started when it passes are
        /// answered `DeadlineExceeded` individually.
        deadline_ms: Option<u64>,
        /// The sub-requests, in answer order.
        items: Vec<BatchItem>,
    },
}

impl Request {
    /// A batch of well-formed sub-requests.
    ///
    /// # Errors
    ///
    /// A description of the first item that is not batchable (only
    /// reach, cover, and verify are) or a count over
    /// [`MAX_BATCH_ITEMS`].
    pub fn batch(items: Vec<Request>, deadline_ms: Option<u64>) -> Result<Request, String> {
        if items.len() > MAX_BATCH_ITEMS {
            return Err(format!(
                "batch of {} items exceeds the protocol cap of {MAX_BATCH_ITEMS}",
                items.len()
            ));
        }
        for (i, item) in items.iter().enumerate() {
            match item {
                Request::Reach { .. } | Request::Cover { .. } | Request::Verify { .. } => {}
                other => {
                    return Err(format!(
                        "item {i}: `{}` cannot appear inside a batch",
                        other.verb()
                    ))
                }
            }
        }
        Ok(Request::Batch {
            deadline_ms,
            items: items.into_iter().map(BatchItem::Request).collect(),
        })
    }

    /// The wire verb of this request.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Stats => "stats",
            Request::Reach { .. } => "reach",
            Request::Cover { .. } => "cover",
            Request::Verify { .. } => "verify",
            Request::Batch { .. } => "batch",
        }
    }

    /// The per-request deadline, if the client set one (for a batch:
    /// the umbrella deadline).
    pub fn deadline(&self) -> Option<Duration> {
        match self {
            Request::Ping | Request::Stats => None,
            Request::Reach { deadline_ms, .. }
            | Request::Cover { deadline_ms, .. }
            | Request::Verify { deadline_ms, .. }
            | Request::Batch { deadline_ms, .. } => deadline_ms.map(Duration::from_millis),
        }
    }

    /// Serializes to the wire text form.
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => "ping".to_owned(),
            Request::Stats => "stats".to_owned(),
            Request::Reach {
                net,
                max_states,
                deadline_ms,
                threads,
                stream,
                doc,
            } => encode_doc_request(
                "reach",
                net,
                *max_states,
                *deadline_ms,
                *threads,
                *stream,
                doc,
            ),
            Request::Cover {
                net,
                max_states,
                deadline_ms,
                threads,
                doc,
            } => encode_doc_request(
                "cover",
                net,
                *max_states,
                *deadline_ms,
                *threads,
                false,
                doc,
            ),
            Request::Verify {
                module,
                env,
                louts,
                routs,
                max_states,
                deadline_ms,
                hide_budget,
                stream,
                doc,
            } => {
                let mut line = format!("verify module={module} env={env} max_states={max_states}");
                if !louts.is_empty() {
                    line.push_str(&format!(" louts={}", encode_label_list(louts)));
                }
                if !routs.is_empty() {
                    line.push_str(&format!(" routs={}", encode_label_list(routs)));
                }
                if let Some(ms) = deadline_ms {
                    line.push_str(&format!(" deadline_ms={ms}"));
                }
                if *hide_budget != DEFAULT_HIDE_BUDGET {
                    line.push_str(&format!(" hide_budget={hide_budget}"));
                }
                if *stream {
                    line.push_str(" stream=true");
                }
                line.push('\n');
                line.push_str(doc);
                line
            }
            Request::Batch { deadline_ms, items } => {
                let mut out = format!("batch n={}", items.len());
                if let Some(ms) = deadline_ms {
                    out.push_str(&format!(" deadline_ms={ms}"));
                }
                out.push('\n');
                for item in items {
                    let text = match item {
                        BatchItem::Request(req) => req.encode(),
                        // A decoded-as-malformed item re-encodes as an
                        // intentionally invalid verb carrying its message,
                        // so encode∘decode is total (it will decode as
                        // Malformed again).
                        BatchItem::Malformed(msg) => format!("!malformed {msg}"),
                    };
                    out.push_str(&format!("item {}\n", text.len()));
                    out.push_str(&text);
                    out.push('\n');
                }
                out
            }
        }
    }

    /// Parses the wire text form under default [`BatchLimits`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformation; the server
    /// maps it to [`Response::BadRequest`].
    pub fn decode(text: &str) -> Result<Request, String> {
        Request::decode_with_limits(text, &BatchLimits::default())
    }

    /// Parses the wire text form, validating batch frames against
    /// explicit limits.
    ///
    /// # Errors
    ///
    /// As [`Request::decode`]. Batch *framing* violations (item count
    /// over the cap, a length running past the frame, trailing bytes)
    /// are errors naming the item index; a recoverable single item
    /// (oversized but skippable, or undecodable content) comes back as
    /// [`BatchItem::Malformed`] instead so its siblings still run.
    pub fn decode_with_limits(text: &str, limits: &BatchLimits) -> Result<Request, String> {
        let (line, rest) = match text.split_once('\n') {
            Some((l, r)) => (l, r),
            None => (text, ""),
        };
        let mut words = line.split_whitespace();
        let verb = words.next().ok_or("empty request")?;
        match verb {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "reach" | "cover" => {
                let mut net = None;
                let mut max_states = 100_000usize;
                let mut deadline_ms = None;
                let mut threads = 1usize;
                let mut stream = false;
                for word in words {
                    let (k, v) = word
                        .split_once('=')
                        .ok_or_else(|| format!("malformed option `{word}` (expected key=value)"))?;
                    match k {
                        "net" => net = Some(v.to_owned()),
                        "max_states" => {
                            max_states = v.parse().map_err(|_| format!("bad max_states `{v}`"))?;
                        }
                        "deadline_ms" => {
                            deadline_ms =
                                Some(v.parse().map_err(|_| format!("bad deadline_ms `{v}`"))?);
                        }
                        "threads" => {
                            threads = v.parse().map_err(|_| format!("bad threads `{v}`"))?;
                        }
                        "stream" if verb == "reach" => {
                            stream = parse_bool(v)?;
                        }
                        other => return Err(format!("unknown option `{other}`")),
                    }
                }
                let net = net.ok_or("missing `net=` option")?;
                let doc = rest.to_owned();
                Ok(if verb == "reach" {
                    Request::Reach {
                        net,
                        max_states,
                        deadline_ms,
                        threads,
                        stream,
                        doc,
                    }
                } else {
                    Request::Cover {
                        net,
                        max_states,
                        deadline_ms,
                        threads,
                        doc,
                    }
                })
            }
            "verify" => {
                let mut module = None;
                let mut env = None;
                let mut louts = Vec::new();
                let mut routs = Vec::new();
                let mut max_states = 100_000usize;
                let mut deadline_ms = None;
                let mut hide_budget = DEFAULT_HIDE_BUDGET;
                let mut stream = false;
                for word in words {
                    let (k, v) = word
                        .split_once('=')
                        .ok_or_else(|| format!("malformed option `{word}` (expected key=value)"))?;
                    match k {
                        "module" => module = Some(v.to_owned()),
                        "env" => env = Some(v.to_owned()),
                        "louts" => louts = decode_label_list(v),
                        "routs" => routs = decode_label_list(v),
                        "max_states" => {
                            max_states = v.parse().map_err(|_| format!("bad max_states `{v}`"))?;
                        }
                        "deadline_ms" => {
                            deadline_ms =
                                Some(v.parse().map_err(|_| format!("bad deadline_ms `{v}`"))?);
                        }
                        "hide_budget" => {
                            hide_budget =
                                v.parse().map_err(|_| format!("bad hide_budget `{v}`"))?;
                        }
                        "stream" => stream = parse_bool(v)?,
                        other => return Err(format!("unknown option `{other}`")),
                    }
                }
                Ok(Request::Verify {
                    module: module.ok_or("missing `module=` option")?,
                    env: env.ok_or("missing `env=` option")?,
                    louts,
                    routs,
                    max_states,
                    deadline_ms,
                    hide_budget,
                    stream,
                    doc: rest.to_owned(),
                })
            }
            "batch" => decode_batch(words, rest, limits),
            other => Err(format!("unknown verb `{other}`")),
        }
    }
}

/// Parses the body of a `batch` frame: `item <len>` lines each followed
/// by exactly `len` bytes of sub-request text and a terminating
/// newline. Items are collected as they arrive — never pre-allocated
/// from the claimed `n=` — and `n=` must match the actual count.
fn decode_batch<'a>(
    words: impl Iterator<Item = &'a str>,
    body: &str,
    limits: &BatchLimits,
) -> Result<Request, String> {
    let mut declared: Option<usize> = None;
    let mut deadline_ms = None;
    for word in words {
        let (k, v) = word
            .split_once('=')
            .ok_or_else(|| format!("malformed option `{word}` (expected key=value)"))?;
        match k {
            "n" => declared = Some(v.parse().map_err(|_| format!("bad n `{v}`"))?),
            "deadline_ms" => {
                deadline_ms = Some(v.parse().map_err(|_| format!("bad deadline_ms `{v}`"))?);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let declared = declared.ok_or("missing `n=` option")?;
    let max_items = limits.max_items.min(MAX_BATCH_ITEMS);
    if declared > max_items {
        return Err(format!(
            "batch of {declared} items exceeds the {max_items}-item cap"
        ));
    }

    let mut items = Vec::new(); // grown per parsed item, never from `n=`
    let mut at = 0usize;
    let bytes = body.as_bytes();
    while at < bytes.len() {
        let index = items.len();
        if index >= declared {
            return Err(format!(
                "batch declared n={declared} but carries trailing bytes after item {}",
                declared.saturating_sub(1)
            ));
        }
        let line_end = body[at..]
            .find('\n')
            .map(|o| at + o)
            .ok_or_else(|| format!("item {index}: unterminated item header"))?;
        let header = &body[at..line_end];
        let len: usize = header
            .strip_prefix("item ")
            .and_then(|l| l.trim().parse().ok())
            .ok_or_else(|| format!("item {index}: malformed item header `{header}`"))?;
        let start = line_end + 1;
        // Size accounting happens *before* touching the payload, and a
        // length running past the frame is a framing error for the
        // whole batch (nothing after it can be trusted).
        if len > body.len().saturating_sub(start) {
            return Err(format!(
                "item {index}: length {len} runs past the end of the frame"
            ));
        }
        let end = start + len;
        let item = if len > limits.max_item_bytes {
            // Oversized but skippable: reject this item, keep siblings.
            Some(BatchItem::Malformed(format!(
                "item of {len} bytes exceeds the {}-byte per-item cap",
                limits.max_item_bytes
            )))
        } else {
            match body.get(start..end) {
                None => {
                    return Err(format!(
                        "item {index}: length {len} splits a UTF-8 character"
                    ))
                }
                Some(text) => Some(match Request::decode_with_limits(text, limits) {
                    Ok(
                        req @ (Request::Reach { .. }
                        | Request::Cover { .. }
                        | Request::Verify { .. }),
                    ) => BatchItem::Request(req),
                    Ok(other) => BatchItem::Malformed(format!(
                        "`{}` cannot appear inside a batch",
                        other.verb()
                    )),
                    Err(msg) => BatchItem::Malformed(msg),
                }),
            }
        };
        if let Some(item) = item {
            items.push(item);
        }
        at = end;
        // Each item body is followed by exactly one newline.
        if bytes.get(at) == Some(&b'\n') {
            at += 1;
        } else if at < bytes.len() {
            return Err(format!("item {index}: missing terminator after item body"));
        }
    }
    if items.len() != declared {
        return Err(format!(
            "batch declared n={declared} but carries {} items",
            items.len()
        ));
    }
    Ok(Request::Batch { deadline_ms, items })
}

fn parse_bool(v: &str) -> Result<bool, String> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("bad boolean `{other}`")),
    }
}

fn encode_doc_request(
    verb: &str,
    net: &str,
    max_states: usize,
    deadline_ms: Option<u64>,
    threads: usize,
    stream: bool,
    doc: &str,
) -> String {
    let mut line = format!("{verb} net={net} max_states={max_states}");
    if let Some(ms) = deadline_ms {
        line.push_str(&format!(" deadline_ms={ms}"));
    }
    // `threads=1` is the default: omit it so pre-threads peers still
    // parse requests from new clients.
    if threads != 1 {
        line.push_str(&format!(" threads={threads}"));
    }
    if stream {
        line.push_str(" stream=true");
    }
    line.push('\n');
    line.push_str(doc);
    line
}

/// How far an exploration got, complete or not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreSummary {
    /// Distinct states (or tree nodes) discovered.
    pub states: usize,
    /// Edges examined.
    pub edges: usize,
    /// `None` if the exploration completed; otherwise the resource that
    /// ran out first (`states`, `transitions`, `deadline`, `cancelled`).
    pub stopped: Option<String>,
    /// Verb-specific detail: the token bound for `reach`, the
    /// boundedness verdict for `cover`.
    pub detail: String,
}

impl ExploreSummary {
    /// Whether the exploration saw the whole structure.
    pub fn is_complete(&self) -> bool {
        self.stopped.is_none()
    }
}

/// Tri-state receptiveness answer carried by [`Response::VerifyResult`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Receptive {
    /// The composition is receptive (full state space explored).
    Yes,
    /// A definite violation was found on the explored prefix.
    No,
    /// The budget ran out before a definite answer.
    Unknown,
}

impl fmt::Display for Receptive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Receptive::Yes => "true",
            Receptive::No => "false",
            Receptive::Unknown => "unknown",
        })
    }
}

/// Result of a server-side verify pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifySummary {
    /// The receptiveness verdict for `module ‖ env`.
    pub receptive: Receptive,
    /// Labels that can mis-fire (non-empty iff `receptive` is `No`).
    pub failures: Vec<String>,
    /// States explored when the receptiveness pass stopped early
    /// (0 for definite verdicts, which report no exploration counts).
    pub states: usize,
    /// Edges explored when the receptiveness pass stopped early.
    pub edges: usize,
    /// `None` when every pipeline stage completed; otherwise the first
    /// resource that ran out.
    pub stopped: Option<String>,
    /// Transitions of the composition before reduction.
    pub composed_transitions: usize,
    /// Transitions of the reduced module, when the reduction stage ran
    /// (it is skipped when the budget dies earlier).
    pub reduced_transitions: Option<usize>,
    /// Dead transitions removed by the reduction stage.
    pub dead_removed: usize,
}

/// Live service and cache counters carried by [`Response::Stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Requests answered with a non-shed response so far.
    pub served: u64,
    /// Requests or connections shed with `Overloaded` so far.
    pub shed: u64,
    /// Malformed requests so far.
    pub bad_requests: u64,
    /// Worker panics caught so far.
    pub panics: u64,
    /// Compiled-net cache hits (byte + structural).
    pub cache_hits: u64,
    /// Byte-tier hits: identical document text, answered with no parse.
    pub cache_byte_hits: u64,
    /// Structural-tier hits: byte-distinct documents whose canonical
    /// net identity was already resident (parsed, but not recompiled).
    pub cache_structural_hits: u64,
    /// Compiled-net cache misses.
    pub cache_misses: u64,
    /// Compiled-net cache evictions (LRU victims).
    pub cache_evictions: u64,
    /// Entries currently resident in the cache.
    pub cache_len: usize,
    /// Configured cache capacity.
    pub cache_capacity: usize,
    /// Approximate bytes held by resident cache entries.
    pub cache_bytes: u64,
}

/// A non-final streamed update for a `stream=true` request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgressUpdate {
    /// Pipeline stage (`explore` for sliced reachability; `composed`,
    /// `checked`, `reduced` for the verify pipeline).
    pub stage: String,
    /// States discovered so far (stage-specific).
    pub states: usize,
    /// Edges examined so far (stage-specific).
    pub edges: usize,
}

/// A server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// A verification result — definite if `summary.is_complete()`,
    /// otherwise a sound partial answer (the `Unknown` arm of the
    /// workspace's verdict lattice).
    Result(ExploreSummary),
    /// Answer to [`Request::Verify`].
    VerifyResult(VerifySummary),
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// A non-final streamed update (only on v2 connections, only for
    /// `stream=true` requests); one or more may precede the final
    /// response with the same correlation id.
    Progress(ProgressUpdate),
    /// One batch item's answer, tagged with its index; non-final.
    Item {
        /// Zero-based index of the item inside its batch.
        index: usize,
        /// The item's own response (never `Item`/`BatchDone`/`Progress`).
        inner: Box<Response>,
    },
    /// Final frame of a batch: all `n` items have been answered.
    BatchDone {
        /// Number of item frames that preceded this one.
        n: usize,
    },
    /// The bounded work queue was full; retry with backoff.
    Overloaded,
    /// The request's deadline passed before a worker picked it up.
    DeadlineExceeded,
    /// The request was malformed (framing was fine, content was not).
    BadRequest(String),
    /// The worker handling the request panicked; the daemon survives.
    InternalError(String),
}

impl Response {
    /// Whether this frame completes its request (a pipelined client
    /// keeps reading for the same correlation id until a final frame).
    pub fn is_final(&self) -> bool {
        !matches!(self, Response::Progress(_) | Response::Item { .. })
    }

    /// Serializes to the wire text form.
    pub fn encode(&self) -> String {
        match self {
            Response::Pong => "pong".to_owned(),
            Response::Result(s) => {
                let mut line = format!("result states={} edges={}", s.states, s.edges);
                match &s.stopped {
                    None => line.push_str(" complete=true"),
                    Some(r) => {
                        line.push_str(&format!(" complete=false stopped={r}"));
                    }
                }
                if !s.detail.is_empty() {
                    line.push_str(&format!(" detail={}", s.detail));
                }
                line
            }
            Response::VerifyResult(s) => {
                let mut line = format!(
                    "verify-result receptive={} states={} edges={} composed_transitions={} \
                     dead_removed={}",
                    s.receptive, s.states, s.edges, s.composed_transitions, s.dead_removed
                );
                if let Some(rt) = s.reduced_transitions {
                    line.push_str(&format!(" reduced_transitions={rt}"));
                }
                if let Some(r) = &s.stopped {
                    line.push_str(&format!(" stopped={r}"));
                }
                if !s.failures.is_empty() {
                    line.push_str(&format!(" failures={}", encode_label_list(&s.failures)));
                }
                line
            }
            Response::Stats(s) => format!(
                "stats served={} shed={} bad_requests={} panics={} cache_hits={} \
                 cache_byte_hits={} cache_structural_hits={} cache_misses={} \
                 cache_evictions={} cache_len={} cache_capacity={} cache_bytes={}",
                s.served,
                s.shed,
                s.bad_requests,
                s.panics,
                s.cache_hits,
                s.cache_byte_hits,
                s.cache_structural_hits,
                s.cache_misses,
                s.cache_evictions,
                s.cache_len,
                s.cache_capacity,
                s.cache_bytes
            ),
            Response::Progress(p) => format!(
                "progress stage={} states={} edges={}",
                p.stage, p.states, p.edges
            ),
            Response::Item { index, inner } => format!("item {index} {}", inner.encode()),
            Response::BatchDone { n } => format!("batch-done n={n}"),
            Response::Overloaded => "overloaded".to_owned(),
            Response::DeadlineExceeded => "deadline-exceeded".to_owned(),
            Response::BadRequest(msg) => format!("bad-request {}", escape(msg)),
            Response::InternalError(msg) => format!("internal-error {}", escape(msg)),
        }
    }

    /// Parses the wire text form.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformation; the client
    /// surfaces it as a protocol error.
    pub fn decode(text: &str) -> Result<Response, String> {
        let line = text.lines().next().unwrap_or("");
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r),
            None => (line, ""),
        };
        match verb {
            "pong" => Ok(Response::Pong),
            "overloaded" => Ok(Response::Overloaded),
            "deadline-exceeded" => Ok(Response::DeadlineExceeded),
            "bad-request" => Ok(Response::BadRequest(unescape(rest))),
            "internal-error" => Ok(Response::InternalError(unescape(rest))),
            "batch-done" => {
                let n = rest
                    .strip_prefix("n=")
                    .and_then(|v| v.trim().parse().ok())
                    .ok_or_else(|| format!("malformed batch-done `{rest}`"))?;
                Ok(Response::BatchDone { n })
            }
            "item" => {
                let (idx, inner) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("malformed item frame `{rest}`"))?;
                let index = idx.parse().map_err(|_| format!("bad item index `{idx}`"))?;
                let inner = Response::decode(inner)?;
                if !matches!(
                    inner,
                    Response::Result(_)
                        | Response::VerifyResult(_)
                        | Response::BadRequest(_)
                        | Response::DeadlineExceeded
                        | Response::InternalError(_)
                        | Response::Overloaded
                ) {
                    return Err(format!("invalid nested item response `{inner:?}`"));
                }
                Ok(Response::Item {
                    index,
                    inner: Box::new(inner),
                })
            }
            "progress" => {
                let mut p = ProgressUpdate {
                    stage: String::new(),
                    states: 0,
                    edges: 0,
                };
                for word in rest.split_whitespace() {
                    let (k, v) = word
                        .split_once('=')
                        .ok_or_else(|| format!("malformed field `{word}`"))?;
                    match k {
                        "stage" => p.stage = v.to_owned(),
                        "states" => p.states = v.parse().map_err(|_| "bad states")?,
                        "edges" => p.edges = v.parse().map_err(|_| "bad edges")?,
                        other => return Err(format!("unknown field `{other}`")),
                    }
                }
                if p.stage.is_empty() {
                    return Err("progress frame missing stage".to_owned());
                }
                Ok(Response::Progress(p))
            }
            "stats" => {
                let mut s = StatsReply::default();
                for word in rest.split_whitespace() {
                    let (k, v) = word
                        .split_once('=')
                        .ok_or_else(|| format!("malformed field `{word}`"))?;
                    let parsed: u64 = v.parse().map_err(|_| format!("bad {k}"))?;
                    match k {
                        "served" => s.served = parsed,
                        "shed" => s.shed = parsed,
                        "bad_requests" => s.bad_requests = parsed,
                        "panics" => s.panics = parsed,
                        "cache_hits" => s.cache_hits = parsed,
                        "cache_byte_hits" => s.cache_byte_hits = parsed,
                        "cache_structural_hits" => s.cache_structural_hits = parsed,
                        "cache_misses" => s.cache_misses = parsed,
                        "cache_evictions" => s.cache_evictions = parsed,
                        "cache_len" => s.cache_len = parsed as usize,
                        "cache_capacity" => s.cache_capacity = parsed as usize,
                        "cache_bytes" => s.cache_bytes = parsed,
                        other => return Err(format!("unknown field `{other}`")),
                    }
                }
                Ok(Response::Stats(s))
            }
            "verify-result" => {
                let mut s = VerifySummary {
                    receptive: Receptive::Unknown,
                    failures: Vec::new(),
                    states: 0,
                    edges: 0,
                    stopped: None,
                    composed_transitions: 0,
                    reduced_transitions: None,
                    dead_removed: 0,
                };
                let mut saw_receptive = false;
                for word in rest.split_whitespace() {
                    let (k, v) = word
                        .split_once('=')
                        .ok_or_else(|| format!("malformed field `{word}`"))?;
                    match k {
                        "receptive" => {
                            saw_receptive = true;
                            s.receptive = match v {
                                "true" => Receptive::Yes,
                                "false" => Receptive::No,
                                "unknown" => Receptive::Unknown,
                                other => return Err(format!("bad receptive `{other}`")),
                            };
                        }
                        "states" => s.states = v.parse().map_err(|_| "bad states")?,
                        "edges" => s.edges = v.parse().map_err(|_| "bad edges")?,
                        "stopped" => s.stopped = Some(v.to_owned()),
                        "composed_transitions" => {
                            s.composed_transitions =
                                v.parse().map_err(|_| "bad composed_transitions")?;
                        }
                        "reduced_transitions" => {
                            s.reduced_transitions =
                                Some(v.parse().map_err(|_| "bad reduced_transitions")?);
                        }
                        "dead_removed" => {
                            s.dead_removed = v.parse().map_err(|_| "bad dead_removed")?;
                        }
                        "failures" => s.failures = decode_label_list(v),
                        other => return Err(format!("unknown field `{other}`")),
                    }
                }
                if !saw_receptive {
                    return Err("verify-result missing receptive field".to_owned());
                }
                if s.receptive == Receptive::No && s.failures.is_empty() {
                    return Err("non-receptive result missing failures".to_owned());
                }
                Ok(Response::VerifyResult(s))
            }
            "result" => {
                let mut s = ExploreSummary {
                    states: 0,
                    edges: 0,
                    stopped: None,
                    detail: String::new(),
                };
                let mut complete = false;
                for word in rest.split_whitespace() {
                    let (k, v) = word
                        .split_once('=')
                        .ok_or_else(|| format!("malformed field `{word}`"))?;
                    match k {
                        "states" => s.states = v.parse().map_err(|_| "bad states")?,
                        "edges" => s.edges = v.parse().map_err(|_| "bad edges")?,
                        "complete" => complete = v == "true",
                        "stopped" => s.stopped = Some(v.to_owned()),
                        "detail" => s.detail = v.to_owned(),
                        other => return Err(format!("unknown field `{other}`")),
                    }
                }
                if complete && s.stopped.is_some() {
                    return Err("complete result carries a stop reason".to_owned());
                }
                if !complete && s.stopped.is_none() {
                    return Err("incomplete result missing stop reason".to_owned());
                }
                Ok(Response::Result(s))
            }
            other => Err(format!("unknown response verb `{other}`")),
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Prefixes a frame's text with a correlation id (`@<id> `); the
/// identity when `corr` is `None` (v1 frames carry no id).
pub fn with_corr(corr: Option<u64>, text: &str) -> String {
    match corr {
        Some(id) => format!("@{id} {text}"),
        None => text.to_owned(),
    }
}

/// Splits an optional `@<id> ` correlation prefix off a frame's text.
///
/// # Errors
///
/// A description of a malformed prefix (an `@` not followed by
/// `digits `+space).
pub fn split_corr(text: &str) -> Result<(Option<u64>, &str), String> {
    let Some(rest) = text.strip_prefix('@') else {
        return Ok((None, text));
    };
    let (id, body) = rest
        .split_once(' ')
        .ok_or("malformed correlation prefix (no body)")?;
    let id = id
        .parse()
        .map_err(|_| format!("bad correlation id `{id}`"))?;
    Ok((Some(id), body))
}

/// Encodes a label list as a single `key=value` word: items joined by
/// commas with `%`, `,`, and whitespace percent-escaped (labels are
/// arbitrary strings; command-line words must contain neither spaces
/// nor newlines).
fn encode_label_list(labels: &[String]) -> String {
    let mut out = String::new();
    for (i, l) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        for ch in l.chars() {
            match ch {
                '%' => out.push_str("%25"),
                ',' => out.push_str("%2C"),
                ' ' => out.push_str("%20"),
                '\n' => out.push_str("%0A"),
                '\t' => out.push_str("%09"),
                '\r' => out.push_str("%0D"),
                other => out.push(other),
            }
        }
    }
    out
}

fn decode_label_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|item| {
            let mut out = String::with_capacity(item.len());
            let mut chars = item.chars().peekable();
            while let Some(ch) = chars.next() {
                if ch == '%' {
                    let hex: String = chars.by_ref().take(2).collect();
                    match u8::from_str_radix(&hex, 16) {
                        Ok(b) => out.push(b as char),
                        Err(_) => {
                            out.push('%');
                            out.push_str(&hex);
                        }
                    }
                } else {
                    out.push(ch);
                }
            }
            out
        })
        .collect()
}

/// Newlines and the field separator cannot appear inside a message.
fn escape(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ")
}

fn unescape(msg: &str) -> String {
    msg.to_owned()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    const DOC: &str = "net n { places { p* q } transition \"t\" { pre: p; post: q } }";

    fn reach(net: &str, max_states: usize) -> Request {
        Request::Reach {
            net: net.into(),
            max_states,
            deadline_ms: None,
            threads: 1,
            stream: false,
            doc: DOC.into(),
        }
    }

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Reach {
                net: "n".into(),
                max_states: 500,
                deadline_ms: Some(50),
                threads: 1,
                stream: false,
                doc: DOC.into(),
            },
            Request::Reach {
                net: "n".into(),
                max_states: 500,
                deadline_ms: None,
                threads: 4,
                stream: true,
                doc: DOC.into(),
            },
            Request::Cover {
                net: "n".into(),
                max_states: 1000,
                deadline_ms: None,
                threads: 2,
                doc: DOC.into(),
            },
            Request::Verify {
                module: "m".into(),
                env: "e".into(),
                louts: vec!["req".into(), "weird,label".into()],
                routs: vec!["ack".into()],
                max_states: 2000,
                deadline_ms: Some(250),
                hide_budget: 99,
                stream: true,
                doc: DOC.into(),
            },
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn batch_round_trips() {
        let batch = Request::batch(
            vec![
                reach("n", 100),
                Request::Cover {
                    net: "n".into(),
                    max_states: 10,
                    deadline_ms: Some(5),
                    threads: 1,
                    doc: DOC.into(),
                },
                Request::Verify {
                    module: "m".into(),
                    env: "e".into(),
                    louts: vec!["a".into()],
                    routs: vec![],
                    max_states: 50,
                    deadline_ms: None,
                    hide_budget: DEFAULT_HIDE_BUDGET,
                    stream: false,
                    doc: DOC.into(),
                },
            ],
            Some(750),
        )
        .unwrap();
        assert_eq!(Request::decode(&batch.encode()).unwrap(), batch);
    }

    #[test]
    fn batch_rejects_unbatchable_items_at_construction() {
        assert!(Request::batch(vec![Request::Ping], None).is_err());
        assert!(Request::batch(vec![Request::Stats], None).is_err());
    }

    #[test]
    fn batch_count_mismatch_rejected() {
        let good = Request::batch(vec![reach("n", 100)], None)
            .unwrap()
            .encode();
        let lying = good.replacen("batch n=1", "batch n=2", 1);
        assert!(Request::decode(&lying).unwrap_err().contains("1 items"));
        let lying_low = {
            let two = Request::batch(vec![reach("n", 100), reach("n", 200)], None)
                .unwrap()
                .encode();
            two.replacen("batch n=2", "batch n=1", 1)
        };
        assert!(Request::decode(&lying_low).is_err());
    }

    #[test]
    fn batch_item_running_past_frame_rejected() {
        let wire = "batch n=1\nitem 99999\nshort";
        let err = Request::decode(wire).unwrap_err();
        assert!(err.contains("item 0"), "{err}");
        assert!(err.contains("runs past"), "{err}");
    }

    #[test]
    fn batch_over_item_cap_rejected_without_allocation() {
        let wire = format!("batch n={}\n", usize::MAX);
        let err = Request::decode(&wire).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn oversized_item_is_typed_per_item_and_siblings_survive() {
        let limits = BatchLimits {
            max_items: 16,
            max_item_bytes: 32,
        };
        let small = "reach net=n max_states=5\n";
        let big = format!("reach net=n max_states=5\n{}", "x".repeat(100));
        let wire = format!(
            "batch n=2\nitem {}\n{}\nitem {}\n{}\n",
            big.len(),
            big,
            small.len(),
            small
        );
        match Request::decode_with_limits(&wire, &limits).unwrap() {
            Request::Batch { items, .. } => {
                assert!(matches!(&items[0], BatchItem::Malformed(m) if m.contains("per-item")));
                assert!(matches!(
                    &items[1],
                    BatchItem::Request(Request::Reach { .. })
                ));
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn malformed_item_content_is_per_item_not_fatal() {
        let bad = "frobnicate x=1";
        let good = "reach net=n max_states=5\n";
        let wire = format!(
            "batch n=2\nitem {}\n{}\nitem {}\n{}\n",
            bad.len(),
            bad,
            good.len(),
            good
        );
        match Request::decode(&wire).unwrap() {
            Request::Batch { items, .. } => {
                assert!(matches!(&items[0], BatchItem::Malformed(_)));
                assert!(matches!(&items[1], BatchItem::Request(_)));
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn nested_batch_is_per_item_malformed() {
        let inner = Request::batch(vec![reach("n", 5)], None).unwrap().encode();
        let wire = format!("batch n=1\nitem {}\n{}\n", inner.len(), inner);
        match Request::decode(&wire).unwrap() {
            Request::Batch { items, .. } => {
                assert!(matches!(&items[0], BatchItem::Malformed(m) if m.contains("batch")));
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn default_threads_stays_off_the_wire() {
        let req = reach("n", 500);
        assert!(!req.encode().contains("threads="));
        assert!(!req.encode().contains("stream="));
        // Absent on the wire decodes back to the default.
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn correlation_prefix_round_trips() {
        assert_eq!(with_corr(None, "ping"), "ping");
        assert_eq!(with_corr(Some(7), "ping"), "@7 ping");
        assert_eq!(split_corr("ping").unwrap(), (None, "ping"));
        assert_eq!(split_corr("@7 ping").unwrap(), (Some(7), "ping"));
        assert_eq!(
            split_corr("@12 reach net=n\ndoc").unwrap(),
            (Some(12), "reach net=n\ndoc")
        );
        assert!(split_corr("@x ping").is_err());
        assert!(split_corr("@7").is_err());
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Pong,
            Response::Result(ExploreSummary {
                states: 12,
                edges: 30,
                stopped: None,
                detail: "bound=1".into(),
            }),
            Response::Result(ExploreSummary {
                states: 4096,
                edges: 9999,
                stopped: Some("deadline".into()),
                detail: String::new(),
            }),
            Response::VerifyResult(VerifySummary {
                receptive: Receptive::No,
                failures: vec!["req".into(), "comma,label".into()],
                states: 40,
                edges: 80,
                stopped: None,
                composed_transitions: 12,
                reduced_transitions: Some(4),
                dead_removed: 2,
            }),
            Response::VerifyResult(VerifySummary {
                receptive: Receptive::Unknown,
                failures: vec![],
                states: 7,
                edges: 9,
                stopped: Some("deadline".into()),
                composed_transitions: 12,
                reduced_transitions: None,
                dead_removed: 0,
            }),
            Response::Stats(StatsReply {
                served: 10,
                shed: 1,
                bad_requests: 2,
                panics: 0,
                cache_hits: 5,
                cache_byte_hits: 4,
                cache_structural_hits: 1,
                cache_misses: 6,
                cache_evictions: 3,
                cache_len: 3,
                cache_capacity: 64,
                cache_bytes: 4096,
            }),
            Response::Progress(ProgressUpdate {
                stage: "explore".into(),
                states: 4096,
                edges: 20480,
            }),
            Response::Item {
                index: 3,
                inner: Box::new(Response::DeadlineExceeded),
            },
            Response::Item {
                index: 0,
                inner: Box::new(Response::Result(ExploreSummary {
                    states: 2,
                    edges: 2,
                    stopped: None,
                    detail: "bound=1".into(),
                })),
            },
            Response::BatchDone { n: 64 },
            Response::Overloaded,
            Response::DeadlineExceeded,
            Response::BadRequest("missing `net=` option".into()),
            Response::InternalError("worker panicked".into()),
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn finality_is_classified() {
        assert!(Response::Pong.is_final());
        assert!(Response::BatchDone { n: 0 }.is_final());
        assert!(!Response::Progress(ProgressUpdate {
            stage: "explore".into(),
            states: 0,
            edges: 0
        })
        .is_final());
        assert!(!Response::Item {
            index: 0,
            inner: Box::new(Response::DeadlineExceeded)
        }
        .is_final());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::decode("").is_err());
        assert!(Request::decode("frobnicate x=1").is_err());
        assert!(Request::decode("reach max_states=10").is_err()); // no net=
        assert!(Request::decode("reach net=n max_states=banana").is_err());
        assert!(Request::decode("reach net=n bogus").is_err());
        assert!(Request::decode("reach net=n threads=many").is_err());
        assert!(Request::decode("reach net=n threads=-2").is_err());
        assert!(Request::decode("reach net=n stream=maybe").is_err());
        assert!(Request::decode("cover net=n stream=true").is_err());
        assert!(Request::decode("verify env=e").is_err()); // no module=
        assert!(Request::decode("verify module=m").is_err()); // no env=
        assert!(Request::decode("batch deadline_ms=5\n").is_err()); // no n=
    }

    #[test]
    fn inconsistent_results_rejected() {
        assert!(
            Response::decode("result states=1 edges=0 complete=true stopped=deadline").is_err()
        );
        assert!(Response::decode("result states=1 edges=0 complete=false").is_err());
        assert!(Response::decode("verify-result states=1 edges=0").is_err());
        assert!(Response::decode("verify-result receptive=false states=1 edges=0").is_err());
        assert!(Response::decode("item 0 progress stage=explore").is_err());
        assert!(Response::decode("item 0 item 1 pong").is_err());
    }
}
