//! Transport abstraction: one API over TCP sockets and Unix domain
//! sockets, so the server, client, and chaos tests are written once.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a daemon listens (or a client connects).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `127.0.0.1:7878`.
    Tcp(String),
    /// A Unix domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp://{a}"),
            #[cfg(unix)]
            Endpoint::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// An accepted or dialed connection.
#[derive(Debug)]
pub enum Conn {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A Unix domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Dials the endpoint.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the dial fails.
    pub fn dial(ep: &Endpoint) -> io::Result<Conn> {
        match ep {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                // Frames are written as a small length prefix followed by
                // the payload; Nagle + delayed ACK would add ~40 ms per
                // direction to every request without this.
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
        }
    }

    /// Sets the read timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the socket option cannot be set.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Sets the write timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the socket option cannot be set.
    pub fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(t),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(t),
        }
    }

    /// Clones the connection handle (both halves share one socket) —
    /// the pipelined serving path reads frames on the connection thread
    /// while workers write responses through a clone.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the OS refuses to duplicate the descriptor.
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Shuts down both directions, unblocking any pending peer read.
    pub fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound, non-blocking listener.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix domain listener (removes the socket file on drop).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds the endpoint in non-blocking mode (the accept loop polls
    /// between accepts so it can observe the shutdown flag).
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the bind fails. An existing Unix socket file is
    /// removed first (the standard stale-socket convention).
    pub fn bind(ep: &Endpoint) -> io::Result<Listener> {
        match ep {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l, path.clone()))
            }
        }
    }

    /// The concrete local endpoint (resolves `:0` TCP ports).
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the local address cannot be read.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(l) => {
                let addr: SocketAddr = l.local_addr()?;
                Ok(Endpoint::Tcp(addr.to_string()))
            }
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
        }
    }

    /// One non-blocking accept attempt; `Ok(None)` when no connection
    /// is pending.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on a real accept failure (not `WouldBlock`).
    pub fn try_accept(&self) -> io::Result<Option<Conn>> {
        let conn = match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_nodelay(true)?;
                    Some(Conn::Tcp(s))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Some(Conn::Unix(s))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
        };
        Ok(conn)
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}
