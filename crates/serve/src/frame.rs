//! Length-prefixed framing and the version handshake.
//!
//! Every connection opens with an 8-byte handshake in each direction —
//! `b"CPNV"` magic, a big-endian `u16` protocol version, two reserved
//! zero bytes — and then carries frames: a big-endian `u32` payload
//! length followed by that many bytes. The length is validated against
//! a configurable cap *before* any allocation, so an adversarial
//! oversized prefix costs four bytes of reading, not gigabytes of
//! memory.
//!
//! ## Version negotiation
//!
//! The client sends its handshake first, advertising the highest
//! version it speaks; the server answers with
//! `min(client_version, PROTO_VERSION)`, which both sides then use for
//! the rest of the connection. A v1 client therefore keeps working
//! against a v2 server unchanged (it advertises 1, the server echoes
//! 1 and serves the v1 request/response loop), while two v2 peers get
//! batches, correlation ids, and streaming. A v2 client dialing an old
//! v1-only server fails the handshake (the old server rejects unknown
//! versions before replying); that direction is a deliberate
//! non-goal — servers upgrade first.

use std::fmt;
use std::io::{self, Read, Write};
use std::ops::RangeInclusive;
use std::time::Duration;

/// The 4-byte magic opening every connection.
pub const MAGIC: [u8; 4] = *b"CPNV";

/// The newest protocol version spoken by this build (v2: batches,
/// correlation ids, streaming partial results, server-side verify).
pub const PROTO_VERSION: u16 = 2;

/// The oldest protocol version this build still serves.
pub const MIN_PROTO_VERSION: u16 = 1;

/// Default cap on a single frame's payload (1 MiB).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// A framing-layer failure, kept separate from [`io::Error`] so callers
/// can distinguish protocol violations from transport faults.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes read timeouts).
    Io(io::Error),
    /// The peer's length prefix exceeded the negotiated cap.
    Oversized {
        /// The length the peer claimed.
        claimed: usize,
        /// The cap in force.
        max: usize,
    },
    /// The stream ended mid-frame (truncated payload).
    Truncated {
        /// Bytes actually received.
        got: usize,
        /// Bytes the prefix promised.
        want: usize,
    },
    /// The handshake magic did not match [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks an unsupported protocol version.
    BadVersion(u16),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Oversized { claimed, max } => {
                write!(f, "frame of {claimed} bytes exceeds the {max}-byte cap")
            }
            FrameError::Truncated { got, want } => {
                write!(f, "frame truncated: got {got} of {want} bytes")
            }
            FrameError::BadMagic(m) => write!(f, "bad handshake magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether this is a transport-level timeout (idle connection).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        )
    }

    /// Whether this is a clean end-of-stream before any frame byte.
    pub fn is_eof(&self) -> bool {
        matches!(self, FrameError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
    }
}

/// Writes the 8-byte handshake (magic, [`PROTO_VERSION`], reserved).
///
/// # Errors
///
/// [`io::Error`] from the transport.
pub fn write_handshake<W: Write>(w: &mut W) -> io::Result<()> {
    write_handshake_version(w, PROTO_VERSION)
}

/// Writes the 8-byte handshake advertising an explicit version — the
/// server uses this to echo the negotiated (possibly downgraded)
/// version back to the client.
///
/// # Errors
///
/// [`io::Error`] from the transport.
pub fn write_handshake_version<W: Write>(w: &mut W, version: u16) -> io::Result<()> {
    let mut hs = [0u8; 8];
    hs[..4].copy_from_slice(&MAGIC);
    hs[4..6].copy_from_slice(&version.to_be_bytes());
    w.write_all(&hs)?;
    w.flush()
}

/// Reads and validates the peer's 8-byte handshake, requiring exactly
/// [`PROTO_VERSION`].
///
/// # Errors
///
/// [`FrameError::BadMagic`] / [`FrameError::BadVersion`] on a
/// mismatched peer, [`FrameError::Io`] on transport failure.
pub fn read_handshake<R: Read>(r: &mut R) -> Result<u16, FrameError> {
    read_handshake_in(r, PROTO_VERSION..=PROTO_VERSION)
}

/// Reads the peer's handshake, accepting any version inside `accept`
/// and returning the one the peer advertised. The server accepts
/// [`MIN_PROTO_VERSION`]`..=`[`PROTO_VERSION`] and echoes
/// `min(peer, PROTO_VERSION)`; the client accepts the same range on
/// the server's reply (the server never echoes a version above the
/// client's own advertisement).
///
/// # Errors
///
/// [`FrameError::BadMagic`] / [`FrameError::BadVersion`] on a
/// mismatched peer, [`FrameError::Io`] on transport failure.
pub fn read_handshake_in<R: Read>(
    r: &mut R,
    accept: RangeInclusive<u16>,
) -> Result<u16, FrameError> {
    let mut hs = [0u8; 8];
    r.read_exact(&mut hs)?;
    let magic: [u8; 4] = [hs[0], hs[1], hs[2], hs[3]];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = u16::from_be_bytes([hs[4], hs[5]]);
    if !accept.contains(&version) {
        return Err(FrameError::BadVersion(version));
    }
    Ok(version)
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`FrameError::Oversized`] if the payload itself exceeds `max_frame`
/// (the local side refuses to send what the peer must refuse to read),
/// or [`FrameError::Io`] from the transport.
pub fn write_frame<W: Write>(
    w: &mut W,
    payload: &[u8],
    max_frame: usize,
) -> Result<(), FrameError> {
    if payload.len() > max_frame {
        return Err(FrameError::Oversized {
            claimed: payload.len(),
            max: max_frame,
        });
    }
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::Oversized {
        claimed: payload.len(),
        max: u32::MAX as usize,
    })?;
    // One buffer, one write: prefix + payload leave in a single syscall
    // (and, with TCP_NODELAY, a single packet) instead of two — the
    // difference is measurable at pipelined request rates.
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&len.to_be_bytes());
    wire.extend_from_slice(payload);
    w.write_all(&wire)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame, capping the claimed length before
/// any allocation.
///
/// # Errors
///
/// [`FrameError::Oversized`] on a hostile prefix,
/// [`FrameError::Truncated`] if the stream ends mid-payload,
/// [`FrameError::Io`] on transport failure (including timeouts).
pub fn read_frame<R: Read>(r: &mut R, max_frame: usize) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let claimed = u32::from_be_bytes(prefix) as usize;
    read_frame_payload(r, claimed, max_frame)
}

/// Reads the payload of a frame whose length prefix was already
/// consumed — the continuation used by the server's split idle/frame
/// read path.
///
/// # Errors
///
/// As [`read_frame`], minus the prefix read.
pub fn read_frame_payload<R: Read>(
    r: &mut R,
    claimed: usize,
    max_frame: usize,
) -> Result<Vec<u8>, FrameError> {
    if claimed > max_frame {
        return Err(FrameError::Oversized {
            claimed,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; claimed];
    let mut got = 0;
    while got < claimed {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Truncated { got, want: claimed }),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(payload)
}

/// Encodes a frame (prefix + payload) into a buffer — the byte-exact
/// wire form, for tests and fault injection.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// A suggested read timeout granting `deadline` plus a small margin.
pub fn reply_timeout(deadline: Duration) -> Duration {
    deadline + Duration::from_secs(5)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", 1024).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"hello");
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(b"junk");
        let mut r = Cursor::new(wire);
        match read_frame(&mut r, 1024) {
            Err(FrameError::Oversized { claimed, max }) => {
                assert_eq!(claimed, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_reported() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&10u32.to_be_bytes());
        wire.extend_from_slice(b"abc");
        let mut r = Cursor::new(wire);
        match read_frame(&mut r, 1024) {
            Err(FrameError::Truncated { got, want }) => {
                assert_eq!((got, want), (3, 10));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn handshake_round_trip_and_rejections() {
        let mut buf = Vec::new();
        write_handshake(&mut buf).unwrap();
        assert_eq!(
            read_handshake(&mut Cursor::new(buf)).unwrap(),
            PROTO_VERSION
        );

        let bad_magic = *b"NOPE\x00\x01\x00\x00";
        assert!(matches!(
            read_handshake(&mut Cursor::new(bad_magic.to_vec())),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad_ver = Vec::new();
        bad_ver.extend_from_slice(&MAGIC);
        bad_ver.extend_from_slice(&0xFFFFu16.to_be_bytes());
        bad_ver.extend_from_slice(&[0, 0]);
        assert!(matches!(
            read_handshake(&mut Cursor::new(bad_ver)),
            Err(FrameError::BadVersion(0xFFFF))
        ));
    }

    #[test]
    fn local_oversized_send_refused() {
        let mut buf = Vec::new();
        let big = vec![0u8; 100];
        assert!(matches!(
            write_frame(&mut buf, &big, 10),
            Err(FrameError::Oversized {
                claimed: 100,
                max: 10
            })
        ));
        assert!(buf.is_empty(), "nothing written on refusal");
    }
}
