//! Adversarial parser robustness: seeded corruption of well-formed
//! `.cpn` documents must always produce a typed `Err` or a valid
//! re-parse — never a panic, hang, or stack overflow.
//!
//! Replay a failing corpus with `CPN_TESTKIT_SEED=<seed>`.

use cpn_format::{parse, parse_with_limits, ParseErrorKind, ParseLimits};
use cpn_testkit::{DocMutator, MutationKind};
use std::panic::{catch_unwind, AssertUnwindSafe};

const CORPUS: &[&str] = &[
    r#"net cycle {
        places { p* q }
        transition "a" { pre: p; post: q }
        transition "b" { pre: q; post: p }
    }"#,
    r#"stg handshake {
        input req; output ack;
        places { p* q r }
        transition req+ { pre: p; post: q }
        transition ack+ { pre: q; post: r } guard { req=1 }
        dummy { pre: r; post: p }
    }"#,
    "net n { places { a*3 b c } }",
    "",
];

fn base_seed() -> u64 {
    std::env::var("CPN_TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00C0_FFEE_2026)
}

#[test]
fn mutated_documents_never_panic() {
    let seed = base_seed();
    for (i, doc) in CORPUS.iter().enumerate() {
        let mut mutator = DocMutator::new(*doc, seed ^ (i as u64).wrapping_mul(0x9E37));
        for case in 0..400 {
            let mutant = mutator.next_mutant();
            let outcome = catch_unwind(AssertUnwindSafe(|| parse(&mutant.text).map(drop)));
            assert!(
                outcome.is_ok(),
                "parser panicked on corpus doc {i}, case {case}, kind {:?}, \
                 seed {seed:#x}; mutant:\n{}",
                mutant.kind,
                mutant.text
            );
            // A brace flood either lands inside a quoted label (where
            // braces are plain string data and the document may still
            // parse) or must be rejected with a typed error — never
            // blown through as arbitrary structure.
            if mutant.kind == MutationKind::BraceFlood {
                if let Err(err) = parse(&mutant.text) {
                    assert!(
                        matches!(
                            err.kind,
                            ParseErrorKind::NestingTooDeep | ParseErrorKind::Syntax
                        ),
                        "unexpected kind {:?} (seed {seed:#x})",
                        err.kind
                    );
                }
            }
        }
    }
}

#[test]
fn tight_limits_shed_oversized_mutants_cheaply() {
    let limits = ParseLimits {
        max_input_bytes: 512,
        max_tokens: 256,
        max_depth: 8,
    };
    let mut mutator = DocMutator::new(CORPUS[0], base_seed());
    for _ in 0..200 {
        let mutant = mutator.next_mutant();
        match parse_with_limits(&mutant.text, &limits) {
            Ok(_) => {}
            Err(e) if mutant.text.len() > limits.max_input_bytes => {
                assert_eq!(e.kind, ParseErrorKind::InputTooLarge);
            }
            Err(_) => {}
        }
    }
}

#[test]
fn truncations_of_every_length_are_handled() {
    // Exhaustive prefix sweep of a well-formed document: each prefix
    // either parses or errors cleanly with a plausible line number.
    let doc = CORPUS[1];
    for cut in 0..doc.len() {
        if !doc.is_char_boundary(cut) {
            continue;
        }
        let prefix = &doc[..cut];
        if let Err(e) = parse(prefix) {
            assert!(e.line <= prefix.lines().count() + 1);
        }
    }
}
