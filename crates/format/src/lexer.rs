//! Tokenizer for the `.cpn` format.

use std::fmt;

/// A token with its line number (for error messages).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds of the `.cpn` grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (also used for keywords; the parser distinguishes).
    Ident(String),
    /// A quoted string literal (generic net labels).
    Str(String),
    /// A non-negative integer.
    Number(u32),
    /// A single punctuation character: `{ } ; : = & * + - ~ # ?`.
    Punct(char),
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::Punct(c) => write!(f, "`{c}`"),
        }
    }
}

/// A lexing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Whether a character may appear in an identifier. Dots are allowed so
/// generated place names (`tr.rec.s1`) survive round-trips.
fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.' | '\'' | '′' | '(' | ')' | ',')
}

/// Tokenizes the input.
///
/// `//` starts a comment running to end of line (`#` is the unstable
/// signal-edge suffix, so hash comments would be ambiguous).
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings or unexpected
/// characters.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() != Some(&'/') {
                    return Err(LexError {
                        message: "expected `//` comment".into(),
                        line,
                    });
                }
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(e) => s.push(e),
                            None => {
                                return Err(LexError {
                                    message: "unterminated string escape".into(),
                                    line,
                                })
                            }
                        },
                        Some('\n') => {
                            return Err(LexError {
                                message: "newline in string".into(),
                                line,
                            })
                        }
                        Some(c) => s.push(c),
                        None => {
                            return Err(LexError {
                                message: "unterminated string".into(),
                                line,
                            })
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n: u32 = 0;
                while let Some(&d) = chars.peek() {
                    // A digit followed by identifier characters is an
                    // identifier like `0ack` — disallowed; place names in
                    // this grammar never start with a digit.
                    if d.is_ascii_digit() {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(d as u32 - '0' as u32))
                            .ok_or_else(|| LexError {
                                message: "number too large".into(),
                                line,
                            })?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number(n),
                    line,
                });
            }
            c if is_ident_char(c) => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if is_ident_char(d) {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    line,
                });
            }
            '{' | '}' | ';' | ':' | '=' | '&' | '*' | '+' | '-' | '~' | '#' | '?' => {
                tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    line,
                });
                chars.next();
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("net x { }"),
            vec![
                TokenKind::Ident("net".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct('{'),
                TokenKind::Punct('}'),
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#""hello" "a\"b""#),
            vec![
                TokenKind::Str("hello".into()),
                TokenKind::Str("a\"b".into())
            ]
        );
    }

    #[test]
    fn numbers_and_stars() {
        assert_eq!(
            kinds("p0*2"),
            vec![
                TokenKind::Ident("p0".into()),
                TokenKind::Punct('*'),
                TokenKind::Number(2)
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a // comment\nb"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()),]
        );
        // line numbers advance past comments
        let toks = lex("a // c\nb").unwrap();
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn hash_is_a_suffix_not_a_comment() {
        assert_eq!(
            kinds("x#"),
            vec![TokenKind::Ident("x".into()), TokenKind::Punct('#')]
        );
    }

    #[test]
    fn signal_suffixes() {
        assert_eq!(
            kinds("req+ ack- x~"),
            vec![
                TokenKind::Ident("req".into()),
                TokenKind::Punct('+'),
                TokenKind::Ident("ack".into()),
                TokenKind::Punct('-'),
                TokenKind::Ident("x".into()),
                TokenKind::Punct('~'),
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let err = lex("\"abc").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn unexpected_character_errors() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'));
    }

    #[test]
    fn dots_in_identifiers() {
        assert_eq!(
            kinds("tr.rec.s1"),
            vec![TokenKind::Ident("tr.rec.s1".into())]
        );
    }
}
