//! Recursive-descent parser for the `.cpn` format.

use crate::lexer::{lex, LexError, Token, TokenKind};
use cpn_petri::{PetriNet, PlaceId};
use cpn_stg::{Edge, Guard, Signal, SignalDir, Stg};
use std::collections::BTreeMap;
use std::fmt;

/// A parsed `.cpn` document: named generic nets and named STGs, in
/// source order.
#[derive(Debug, Default)]
pub struct Document {
    /// `net NAME { … }` items (labels are free-form strings).
    pub nets: Vec<(String, PetriNet<String>)>,
    /// `stg NAME { … }` items.
    pub stgs: Vec<(String, Stg)>,
}

/// A named module of a `.cpnlib` document: a behaviour net plus its
/// interface alphabets. Plain data — interface validation and
/// instantiation live in `cpn-core`'s `ModuleLib`.
#[derive(Debug, Clone)]
pub struct LibModule {
    /// The module's library name.
    pub name: String,
    /// Input action labels.
    pub inputs: Vec<String>,
    /// Output action labels.
    pub outputs: Vec<String>,
    /// The behaviour net.
    pub net: PetriNet<String>,
}

/// An instantiation item of a `.cpnlib` document: stamp out `module`
/// under `rename`.
#[derive(Debug, Clone)]
pub struct LibInstance {
    /// The instance's name.
    pub name: String,
    /// The library module being instantiated.
    pub module: String,
    /// Injective label renaming `old → new` applied at instantiation.
    pub rename: BTreeMap<String, String>,
}

/// A parsed `.cpnlib` module-library document: named modules and their
/// instantiations, in source order.
#[derive(Debug, Default)]
pub struct LibDocument {
    /// `module NAME { … }` items.
    pub modules: Vec<LibModule>,
    /// `instance NAME of MODULE { … }` items.
    pub instances: Vec<LibInstance>,
}

/// The broad class of a [`ParseError`], so resource-limit rejections
/// (which a caller may want to answer differently from plain syntax
/// errors, e.g. a server shedding an adversarial document) are typed
/// rather than string-matched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// Malformed input (lexing or grammar).
    #[default]
    Syntax,
    /// Brace nesting exceeded [`ParseLimits::max_depth`].
    NestingTooDeep,
    /// The document exceeded a size cap ([`ParseLimits::max_input_bytes`]
    /// or [`ParseLimits::max_tokens`]).
    InputTooLarge,
}

/// Resource caps applied while parsing untrusted `.cpn` documents.
///
/// The grammar itself is non-recursive, so the depth cap is a guard
/// rail for future grammar growth and for adversarial brace floods; the
/// size caps bound memory spent on hostile inputs before any net is
/// built. [`parse`] uses `ParseLimits::default()`; callers facing the
/// network (the `cpn-serve` daemon) pass tighter ones via
/// [`parse_with_limits`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum input size in bytes (default 64 MiB).
    pub max_input_bytes: usize,
    /// Maximum number of lexed tokens (default 8M).
    pub max_tokens: usize,
    /// Maximum brace-nesting depth (default 64).
    pub max_depth: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_input_bytes: 64 << 20,
            max_tokens: 8_000_000,
            max_depth: 64,
        }
    }
}

/// A parse error with source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line (0 for end-of-input).
    pub line: usize,
    /// The broad error class (syntax vs. resource limits).
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            kind: ParseErrorKind::Syntax,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens.get(self.pos).map_or(0, |t| t.line)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line(),
            kind: ParseErrorKind::Syntax,
        }
    }

    /// Tracks brace depth on every consumed `{`/`}`; exceeding the cap
    /// is a typed [`ParseErrorKind::NestingTooDeep`] error rather than
    /// unbounded work (or, were the grammar ever to become recursive, a
    /// stack overflow).
    fn note_brace(&mut self, c: char) -> Result<(), ParseError> {
        match c {
            '{' => {
                self.depth += 1;
                if self.depth > self.max_depth {
                    return Err(ParseError {
                        message: format!("brace nesting exceeds depth limit {}", self.max_depth),
                        line: self.tokens.get(self.pos - 1).map_or(0, |t| t.line),
                        kind: ParseErrorKind::NestingTooDeep,
                    });
                }
            }
            '}' => self.depth = self.depth.saturating_sub(1),
            _ => {}
        }
        Ok(())
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(TokenKind::Punct(p)) if p == c => {
                self.note_brace(c)?;
                Ok(())
            }
            other => Err(ParseError {
                kind: ParseErrorKind::Syntax,
                message: format!(
                    "expected `{c}`, found {}",
                    other.map_or("end of input".to_owned(), |t| t.to_string())
                ),
                line: self.tokens.get(self.pos - 1).map_or(0, |t| t.line),
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(TokenKind::Ident(s)) => Ok(s),
            other => Err(ParseError {
                kind: ParseErrorKind::Syntax,
                message: format!(
                    "expected identifier, found {}",
                    other.map_or("end of input".to_owned(), |t| t.to_string())
                ),
                line: self.tokens.get(self.pos - 1).map_or(0, |t| t.line),
            }),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let line = self.line();
        let got = self.expect_ident()?;
        if got == kw {
            Ok(())
        } else {
            Err(ParseError {
                kind: ParseErrorKind::Syntax,
                message: format!("expected `{kw}`, found `{got}`"),
                line,
            })
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&TokenKind::Punct(c)) {
            self.pos += 1;
            // Depth cap violations surface on the next `expect_punct`;
            // `eat` sites only ever consume closing braces or one
            // opening brace per item, so only the counter matters here.
            if c == '{' {
                self.depth += 1;
            } else if c == '}' {
                self.depth = self.depth.saturating_sub(1);
            }
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(TokenKind::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `places { name (*N?)? ... }` — returns name→id and sets markings.
    fn parse_places<F>(&mut self, mut add: F) -> Result<BTreeMap<String, PlaceId>, ParseError>
    where
        F: FnMut(&str, u32) -> PlaceId,
    {
        self.expect_keyword("places")?;
        self.expect_punct('{')?;
        let mut map = BTreeMap::new();
        loop {
            if self.eat_punct('}') {
                break;
            }
            let line = self.line();
            let name = self.expect_ident()?;
            if map.contains_key(&name) {
                return Err(ParseError {
                    kind: ParseErrorKind::Syntax,
                    message: format!("duplicate place `{name}`"),
                    line,
                });
            }
            let mut tokens_count = 0u32;
            if self.eat_punct('*') {
                tokens_count = match self.peek() {
                    Some(TokenKind::Number(n)) => {
                        let n = *n;
                        self.pos += 1;
                        n
                    }
                    _ => 1,
                };
            }
            let id = add(&name, tokens_count);
            map.insert(name, id);
        }
        Ok(map)
    }

    /// `pre: a b; post: c d` inside braces (either list may be empty).
    fn parse_flows(
        &mut self,
        places: &BTreeMap<String, PlaceId>,
    ) -> Result<(Vec<PlaceId>, Vec<PlaceId>), ParseError> {
        self.expect_punct('{')?;
        self.expect_keyword("pre")?;
        self.expect_punct(':')?;
        let mut pre = Vec::new();
        while let Some(TokenKind::Ident(_)) = self.peek() {
            let line = self.line();
            let name = self.expect_ident()?;
            pre.push(*places.get(&name).ok_or(ParseError {
                kind: ParseErrorKind::Syntax,
                message: format!("unknown place `{name}`"),
                line,
            })?);
        }
        self.expect_punct(';')?;
        self.expect_keyword("post")?;
        self.expect_punct(':')?;
        let mut post = Vec::new();
        while let Some(TokenKind::Ident(_)) = self.peek() {
            let line = self.line();
            let name = self.expect_ident()?;
            post.push(*places.get(&name).ok_or(ParseError {
                kind: ParseErrorKind::Syntax,
                message: format!("unknown place `{name}`"),
                line,
            })?);
        }
        self.expect_punct('}')?;
        Ok((pre, post))
    }

    fn expect_str(&mut self) -> Result<String, ParseError> {
        let line = self.line();
        match self.bump() {
            Some(TokenKind::Str(s)) => Ok(s),
            other => Err(ParseError {
                kind: ParseErrorKind::Syntax,
                message: format!(
                    "expected quoted label, found {}",
                    other.map_or("end of input".to_owned(), |t| t.to_string())
                ),
                line,
            }),
        }
    }

    /// The body of a `net` item, after its opening `{`: a `places`
    /// section, an optional `symbols` alphabet section, then
    /// transitions until the closing `}`.
    fn parse_net_body(&mut self) -> Result<PetriNet<String>, ParseError> {
        let mut net: PetriNet<String> = PetriNet::new();
        let places = self.parse_places(|n, tok| {
            let id = net.add_place(n);
            net.set_initial(id, tok);
            id
        })?;
        // Optional explicit symbol table: quoted labels declared in the
        // alphabet whether or not any transition carries them (the
        // alphabet is part of the net per Definition 2.1, and parallel
        // composition synchronizes on it).
        if self.eat_keyword("symbols") {
            self.expect_punct('{')?;
            loop {
                if self.eat_punct('}') {
                    break;
                }
                let label = self.expect_str()?;
                net.declare_label(label);
            }
        }
        loop {
            if self.eat_punct('}') {
                break;
            }
            let line = self.line();
            self.expect_keyword("transition")?;
            let label = self.expect_str()?;
            let (pre, post) = self.parse_flows(&places)?;
            net.add_transition(pre, label, post)
                .map_err(|e| ParseError {
                    kind: ParseErrorKind::Syntax,
                    message: e.to_string(),
                    line,
                })?;
        }
        Ok(net)
    }

    fn parse_net(&mut self) -> Result<(String, PetriNet<String>), ParseError> {
        let name = self.expect_ident()?;
        self.expect_punct('{')?;
        let net = self.parse_net_body()?;
        Ok((name, net))
    }

    /// A quoted-label list section: `KEYWORD { "a" "b" … }`.
    fn parse_label_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect_punct('{')?;
        let mut out = Vec::new();
        loop {
            if self.eat_punct('}') {
                break;
            }
            out.push(self.expect_str()?);
        }
        Ok(out)
    }

    /// `module NAME { [inputs {…}] [outputs {…}] net { … } }`
    fn parse_module(&mut self) -> Result<LibModule, ParseError> {
        let name = self.expect_ident()?;
        self.expect_punct('{')?;
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        loop {
            if self.eat_keyword("inputs") {
                inputs = self.parse_label_list()?;
            } else if self.eat_keyword("outputs") {
                outputs = self.parse_label_list()?;
            } else {
                break;
            }
        }
        self.expect_keyword("net")?;
        self.expect_punct('{')?;
        let net = self.parse_net_body()?;
        self.expect_punct('}')?;
        Ok(LibModule {
            name,
            inputs,
            outputs,
            net,
        })
    }

    /// `instance NAME of MODULE { [rename { "old" = "new" … }] }`
    fn parse_instance(&mut self) -> Result<LibInstance, ParseError> {
        let name = self.expect_ident()?;
        self.expect_keyword("of")?;
        let module = self.expect_ident()?;
        self.expect_punct('{')?;
        let mut rename = BTreeMap::new();
        if self.eat_keyword("rename") {
            self.expect_punct('{')?;
            loop {
                if self.eat_punct('}') {
                    break;
                }
                let line = self.line();
                let from = self.expect_str()?;
                self.expect_punct('=')?;
                let to = self.expect_str()?;
                if rename.insert(from.clone(), to).is_some() {
                    return Err(ParseError {
                        kind: ParseErrorKind::Syntax,
                        message: format!("label {from:?} renamed twice"),
                        line,
                    });
                }
            }
        }
        self.expect_punct('}')?;
        Ok(LibInstance {
            name,
            module,
            rename,
        })
    }

    fn parse_edge_suffix(&mut self) -> Result<Edge, ParseError> {
        match self.bump() {
            Some(TokenKind::Punct(c)) => Edge::from_suffix(c).ok_or(ParseError {
                kind: ParseErrorKind::Syntax,
                message: format!("`{c}` is not a signal edge"),
                line: self.tokens.get(self.pos - 1).map_or(0, |t| t.line),
            }),
            // `=` is lexed as Punct('='), handled above; nothing else fits.
            other => Err(ParseError {
                kind: ParseErrorKind::Syntax,
                message: format!(
                    "expected signal edge suffix, found {}",
                    other.map_or("end of input".to_owned(), |t| t.to_string())
                ),
                line: self.tokens.get(self.pos - 1).map_or(0, |t| t.line),
            }),
        }
    }

    fn parse_guard(&mut self) -> Result<Guard, ParseError> {
        self.expect_punct('{')?;
        let mut guard = Guard::new();
        loop {
            let line = self.line();
            let name = self.expect_ident()?;
            self.expect_punct('=')?;
            let value = match self.bump() {
                Some(TokenKind::Number(0)) => false,
                Some(TokenKind::Number(1)) => true,
                other => {
                    return Err(ParseError {
                        kind: ParseErrorKind::Syntax,
                        message: format!(
                            "guard value must be 0 or 1, found {}",
                            other.map_or("end of input".to_owned(), |t| t.to_string())
                        ),
                        line,
                    })
                }
            };
            guard = guard.require(Signal::new(name), value);
            if !self.eat_punct('&') {
                break;
            }
        }
        self.expect_punct('}')?;
        Ok(guard)
    }

    fn parse_stg(&mut self) -> Result<(String, Stg), ParseError> {
        let name = self.expect_ident()?;
        self.expect_punct('{')?;
        let mut stg = Stg::new();

        // Signal declarations.
        loop {
            let dir = if self.eat_keyword("input") {
                SignalDir::Input
            } else if self.eat_keyword("output") {
                SignalDir::Output
            } else if self.eat_keyword("internal") {
                SignalDir::Internal
            } else {
                break;
            };
            loop {
                let line = self.line();
                let sig = self.expect_ident()?;
                stg.try_add_signal(&sig, dir).map_err(|e| ParseError {
                    kind: ParseErrorKind::Syntax,
                    message: e.to_string(),
                    line,
                })?;
                if self.eat_punct(';') {
                    break;
                }
            }
        }

        let places = self.parse_places(|n, tok| {
            let id = stg.add_place(n);
            stg.set_initial(id, tok);
            id
        })?;

        loop {
            if self.eat_punct('}') {
                break;
            }
            let line = self.line();
            let tid = if self.eat_keyword("dummy") {
                let (pre, post) = self.parse_flows(&places)?;
                stg.add_dummy(pre, post).map_err(|e| ParseError {
                    kind: ParseErrorKind::Syntax,
                    message: e.to_string(),
                    line,
                })?
            } else {
                self.expect_keyword("transition")?;
                let sig = self.expect_ident()?;
                let edge = self.parse_edge_suffix()?;
                let (pre, post) = self.parse_flows(&places)?;
                stg.add_signal_transition(pre, (Signal::new(sig), edge), post)
                    .map_err(|e| ParseError {
                        kind: ParseErrorKind::Syntax,
                        message: e.to_string(),
                        line,
                    })?
            };
            if self.eat_keyword("guard") {
                let guard = self.parse_guard()?;
                stg.set_guard(tid, guard);
            }
        }
        Ok((name, stg))
    }
}

/// Parses a `.cpn` document.
///
/// # Errors
///
/// [`ParseError`] with the offending line on malformed input.
///
/// # Example
///
/// ```
/// let doc = cpn_format::parse(
///     "net tick { places { p* q } transition \"t\" { pre: p; post: q } }",
/// )?;
/// assert_eq!(doc.nets.len(), 1);
/// assert_eq!(doc.nets[0].1.transition_count(), 1);
/// # Ok::<(), cpn_format::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Document, ParseError> {
    parse_with_limits(input, &ParseLimits::default())
}

/// Applies the resource caps and builds a [`Parser`] over the lexed
/// tokens — the shared front half of [`parse_with_limits`] and
/// [`parse_lib_with_limits`].
fn make_parser(input: &str, limits: &ParseLimits) -> Result<Parser, ParseError> {
    if input.len() > limits.max_input_bytes {
        return Err(ParseError {
            message: format!(
                "document is {} bytes; the limit is {}",
                input.len(),
                limits.max_input_bytes
            ),
            line: 0,
            kind: ParseErrorKind::InputTooLarge,
        });
    }
    let tokens = lex(input)?;
    if tokens.len() > limits.max_tokens {
        return Err(ParseError {
            message: format!(
                "document has {} tokens; the limit is {}",
                tokens.len(),
                limits.max_tokens
            ),
            line: 0,
            kind: ParseErrorKind::InputTooLarge,
        });
    }
    // Brace-depth pre-scan: the grammar is flat, so any brace run past
    // the cap is adversarial; rejecting here (rather than only inside
    // the descent, which bails on the grammar error first) guarantees
    // the typed error regardless of which production trips.
    let mut depth = 0usize;
    for t in &tokens {
        match t.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                if depth > limits.max_depth {
                    return Err(ParseError {
                        message: format!("brace nesting exceeds depth limit {}", limits.max_depth),
                        line: t.line,
                        kind: ParseErrorKind::NestingTooDeep,
                    });
                }
            }
            TokenKind::Punct('}') => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    Ok(Parser {
        tokens,
        pos: 0,
        depth: 0,
        max_depth: limits.max_depth,
    })
}

/// [`parse`] with explicit resource caps for untrusted input.
///
/// # Errors
///
/// [`ParseError`] with [`ParseErrorKind::InputTooLarge`] /
/// [`ParseErrorKind::NestingTooDeep`] when a cap trips, or
/// [`ParseErrorKind::Syntax`] on malformed input. Never panics and
/// never recurses on input data, whatever the bytes.
pub fn parse_with_limits(input: &str, limits: &ParseLimits) -> Result<Document, ParseError> {
    let mut p = make_parser(input, limits)?;
    let mut doc = Document::default();
    while p.peek().is_some() {
        if p.eat_keyword("net") {
            doc.nets.push(p.parse_net()?);
        } else if p.eat_keyword("stg") {
            doc.stgs.push(p.parse_stg()?);
        } else {
            return Err(p.err("expected `net` or `stg`"));
        }
    }
    Ok(doc)
}

/// Parses a `.cpnlib` module-library document.
///
/// # Errors
///
/// [`ParseError`] with the offending line on malformed input.
///
/// # Example
///
/// ```
/// let lib = cpn_format::parse_lib(
///     r#"module buf {
///          inputs { "req" } outputs { "ack" }
///          net { places { idle* busy }
///                transition "req" { pre: idle; post: busy }
///                transition "ack" { pre: busy; post: idle } }
///        }
///        instance buf0 of buf { rename { "req" = "r0" "ack" = "a0" } }"#,
/// )?;
/// assert_eq!(lib.modules.len(), 1);
/// assert_eq!(lib.instances[0].rename.len(), 2);
/// # Ok::<(), cpn_format::ParseError>(())
/// ```
pub fn parse_lib(input: &str) -> Result<LibDocument, ParseError> {
    parse_lib_with_limits(input, &ParseLimits::default())
}

/// [`parse_lib`] with explicit resource caps for untrusted input.
///
/// # Errors
///
/// As [`parse_with_limits`]: typed resource-limit errors or syntax
/// errors, never a panic.
pub fn parse_lib_with_limits(input: &str, limits: &ParseLimits) -> Result<LibDocument, ParseError> {
    let mut p = make_parser(input, limits)?;
    let mut doc = LibDocument::default();
    while p.peek().is_some() {
        if p.eat_keyword("module") {
            doc.modules.push(p.parse_module()?);
        } else if p.eat_keyword("instance") {
            doc.instances.push(p.parse_instance()?);
        } else {
            return Err(p.err("expected `module` or `instance`"));
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_net() {
        let doc = parse(
            r#"net cycle {
                places { p* q }
                transition "a" { pre: p; post: q }
                transition "b" { pre: q; post: p }
            }"#,
        )
        .unwrap();
        let (name, net) = &doc.nets[0];
        assert_eq!(name, "cycle");
        assert_eq!(net.place_count(), 2);
        assert_eq!(net.transition_count(), 2);
        assert_eq!(net.initial_marking().total(), 1);
    }

    #[test]
    fn parse_multi_token_marking() {
        let doc = parse("net n { places { p*3 } }").unwrap();
        assert_eq!(doc.nets[0].1.initial_marking().total(), 3);
    }

    #[test]
    fn parse_stg_with_guard_and_dummy() {
        let doc = parse(
            r#"stg t {
                input DATA; output x;
                places { p* q r }
                dummy { pre: p; post: q }
                transition x+ { pre: q; post: r } guard { DATA=1 }
            }"#,
        )
        .unwrap();
        let (_, stg) = &doc.stgs[0];
        assert_eq!(stg.signals().len(), 2);
        assert_eq!(stg.net().transition_count(), 2);
        let guarded = cpn_petri::TransitionId::from_index(1);
        assert!(!stg.guard(guarded).is_true());
    }

    #[test]
    fn parse_all_edge_suffixes() {
        let doc = parse(
            r#"stg t {
                output x;
                places { p* }
                transition x+ { pre: p; post: p }
                transition x- { pre: p; post: p }
                transition x~ { pre: p; post: p }
                transition x= { pre: p; post: p }
                transition x# { pre: p; post: p }
                transition x? { pre: p; post: p }
            }"#,
        )
        .unwrap();
        assert_eq!(doc.stgs[0].1.net().transition_count(), 6);
    }

    #[test]
    fn unknown_place_reported_with_line() {
        let err = parse("net n {\n places { p }\n transition \"a\" { pre: ghost; post: p }\n}")
            .unwrap_err();
        assert!(err.message.contains("ghost"));
        assert_eq!(err.line, 3);
    }

    #[test]
    fn duplicate_place_rejected() {
        let err = parse("net n { places { p p } }").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn undeclared_signal_rejected() {
        let err = parse("stg s { places { p* } transition x+ { pre: p; post: p } }").unwrap_err();
        assert!(err.message.contains("not declared"));
    }

    #[test]
    fn junk_toplevel_rejected() {
        let err = parse("widget w { }").unwrap_err();
        assert!(err.message.contains("expected `net` or `stg`"));
    }

    #[test]
    fn empty_input_is_empty_document() {
        let doc = parse("").unwrap();
        assert!(doc.nets.is_empty() && doc.stgs.is_empty());
    }

    #[test]
    fn signal_list_declaration() {
        let doc = parse("stg s { input a b c; places { p* } }").unwrap();
        assert_eq!(doc.stgs[0].1.signals().len(), 3);
    }

    #[test]
    fn input_byte_cap_reports_typed_error() {
        let limits = ParseLimits {
            max_input_bytes: 16,
            ..ParseLimits::default()
        };
        let err = parse_with_limits("net n { places { p } }", &limits).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::InputTooLarge);
        assert!(err.message.contains("bytes"));
    }

    #[test]
    fn token_cap_reports_typed_error() {
        let limits = ParseLimits {
            max_tokens: 4,
            ..ParseLimits::default()
        };
        let err = parse_with_limits("net n { places { p } }", &limits).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::InputTooLarge);
        assert!(err.message.contains("tokens"));
    }

    #[test]
    fn deep_brace_nesting_reports_typed_error_without_overflow() {
        // A pathological run of opening braces. The grammar is flat, so
        // legitimate documents never get near the cap; the parser must
        // reject the run with a typed error rather than recurse or loop.
        let doc = format!("net n {}", "{".repeat(100_000));
        let err = parse(&doc).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::NestingTooDeep);
    }

    #[test]
    fn well_formed_document_fits_default_depth() {
        // The deepest well-formed construct is 2 braces (net → section);
        // the default cap of 64 leaves a wide margin.
        let doc = parse(
            r#"net d {
                places { p* q }
                transition "a" { pre: p; post: q }
            }"#,
        )
        .unwrap();
        assert_eq!(doc.nets.len(), 1);
    }

    #[test]
    fn symbols_section_declares_alphabet() {
        let doc = parse(
            r#"net n {
                places { p* }
                symbols { "a" "quiet" }
                transition "a" { pre: p; post: p }
            }"#,
        )
        .unwrap();
        let net = &doc.nets[0].1;
        assert!(net.alphabet_contains(&"quiet".to_owned()));
        assert_eq!(net.alphabet_len(), 2);
        assert_eq!(net.transition_count(), 1);
    }

    #[test]
    fn lib_document_parses_modules_and_instances() {
        let lib = parse_lib(
            r#"module wire {
                inputs { "in" }
                outputs { "out" }
                net {
                    places { w }
                    transition "in" { pre: ; post: w }
                    transition "out" { pre: w; post: }
                }
            }
            instance w1 of wire { rename { "in" = "a" "out" = "b" } }
            instance w2 of wire { }"#,
        )
        .unwrap();
        assert_eq!(lib.modules.len(), 1);
        assert_eq!(lib.modules[0].name, "wire");
        assert_eq!(lib.modules[0].net.transition_count(), 2);
        assert_eq!(lib.instances.len(), 2);
        assert_eq!(lib.instances[0].rename.len(), 2);
        assert!(lib.instances[1].rename.is_empty());
    }

    #[test]
    fn lib_duplicate_rename_rejected() {
        let err = parse_lib(
            r#"module m { net { places { p* } } }
               instance i of m { rename { "a" = "b" "a" = "c" } }"#,
        )
        .unwrap_err();
        assert!(err.message.contains("renamed twice"));
    }

    #[test]
    fn lib_junk_toplevel_rejected() {
        let err = parse_lib("net n { places { p } }").unwrap_err();
        assert!(err.message.contains("expected `module` or `instance`"));
    }

    #[test]
    fn syntax_errors_keep_syntax_kind() {
        let err = parse("net n { places { p p } }").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Syntax);
        let err = parse("net n {").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Syntax);
    }
}
