//! A text format (`.cpn`) for labeled Petri nets and STGs.
//!
//! The paper's prototype was "a LISP implementation" (Section 6); an
//! interchange format is the modern equivalent of its s-expressions and
//! makes the repository's models inspectable and scriptable. The format
//! is line-oriented and astg-inspired:
//!
//! ```text
//! net counter {
//!   places { p0*2 p1 }
//!   transition "tick" { pre: p0; post: p1 }
//!   transition "tock" { pre: p1; post: p0 }
//! }
//!
//! stg handshake {
//!   input req;
//!   output ack;
//!   places { p0* p1 p2 p3 }
//!   transition req+ { pre: p0; post: p1 }
//!   transition ack+ { pre: p1; post: p2 }
//!   transition req- { pre: p2; post: p3 }
//!   transition ack- { pre: p3; post: p0 }
//! }
//! ```
//!
//! * `p*` marks one initial token, `p*N` marks `N`.
//! * Generic net labels are quoted strings; STG labels are
//!   `signal` + suffix (`+ - ~ = # ?`), `dummy` is ε.
//! * STG transitions may carry a guard:
//!   `transition x+ { pre: a; post: b } guard { DATA=1 & STROBE=0 }`.
//!
//! [`parse`] and the [`write_net`]/[`write_stg`] printers round-trip
//! (property-tested).

pub mod lexer;
pub mod parser;
pub mod writer;

pub use parser::{
    parse, parse_lib, parse_lib_with_limits, parse_with_limits, Document, LibDocument, LibInstance,
    LibModule, ParseError, ParseErrorKind, ParseLimits,
};
pub use writer::{
    write_document, write_lib, write_lib_instance, write_lib_module, write_net,
    write_net_canonical, write_stg,
};
