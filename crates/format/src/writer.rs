//! Pretty printers for the `.cpn` format.
//!
//! Place names are sanitized to the identifier alphabet on output (the
//! algebra generates product names like `(p0,q0)` which are legal
//! identifiers here, but e.g. spaces are not); sanitized names are made
//! unique by suffixing.

use crate::parser::{LibDocument, LibInstance, LibModule};
use cpn_petri::{canonical_order, Label, PetriNet, PlaceId};
use cpn_stg::{Stg, StgLabel};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a label for a quoted-string position.
fn escape_label(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || matches!(c, '_' | '.' | '\'' | '′' | '(' | ')' | ',') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("p_{cleaned}")
    } else {
        cleaned
    }
}

fn place_names<L: Label>(net: &PetriNet<L>) -> BTreeMap<PlaceId, String> {
    let mut used: BTreeMap<String, usize> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for (id, place) in net.places() {
        let base = sanitize(place.name());
        let count = used.entry(base.clone()).or_insert(0);
        let name = if *count == 0 {
            base.clone()
        } else {
            format!("{base}_{count}")
        };
        *count += 1;
        out.insert(id, name);
    }
    out
}

fn write_places<L: Label>(out: &mut String, net: &PetriNet<L>, names: &BTreeMap<PlaceId, String>) {
    out.push_str("  places {");
    let m0 = net.initial_marking();
    for (id, _) in net.places() {
        let tokens = m0.tokens(id);
        match tokens {
            0 => write!(out, " {}", names[&id]),
            1 => write!(out, " {}*", names[&id]),
            n => write!(out, " {}*{n}", names[&id]),
        }
        .expect("writing to string");
    }
    out.push_str(" }\n");
}

fn write_flows<L: Label>(
    out: &mut String,
    net: &PetriNet<L>,
    names: &BTreeMap<PlaceId, String>,
    t: cpn_petri::TransitionId,
) {
    let tr = net.transition(t);
    out.push_str("{ pre:");
    for p in tr.preset() {
        write!(out, " {}", names[p]).expect("writing to string");
    }
    out.push_str("; post:");
    for p in tr.postset() {
        write!(out, " {}", names[p]).expect("writing to string");
    }
    out.push_str(" }");
}

/// Renders a generic labeled net as a `net NAME { … }` item.
///
/// Labels are printed via `Display` into quoted strings, so any label
/// type round-trips into a `PetriNet<String>`.
///
/// # Example
///
/// ```
/// use cpn_petri::PetriNet;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// net.add_transition([p], "tick", [p])?;
/// net.set_initial(p, 1);
/// let text = cpn_format::write_net("clock", &net);
/// let doc = cpn_format::parse(&text)?;
/// assert_eq!(doc.nets[0].0, "clock");
/// # Ok(())
/// # }
/// ```
pub fn write_net<L: Label>(name: &str, net: &PetriNet<L>) -> String {
    let names = place_names(net);
    let mut out = String::new();
    writeln!(out, "net {} {{", sanitize(name)).expect("writing to string");
    write_net_body(&mut out, net, &names, "  ");
    out.push_str("}\n");
    out
}

/// The body of a `net` item: places, the symbol table in interning
/// order, then transitions in id order — shared by [`write_net`] and
/// [`write_lib`].
fn write_net_body<L: Label>(
    out: &mut String,
    net: &PetriNet<L>,
    names: &BTreeMap<PlaceId, String>,
    indent: &str,
) {
    write!(out, "{}", &indent[2..]).expect("writing to string");
    write_places(out, net, names);
    write_symbols_interned(out, net, indent);
    for (tid, _) in net.transitions() {
        let label = escape_label(&net.label_of(tid).to_string());
        write!(out, "{indent}transition \"{label}\" ").expect("writing to string");
        write_flows(out, net, names, tid);
        out.push('\n');
    }
}

/// Emits the explicit alphabet as a `symbols { … }` section in
/// **interning order**, so the declared alphabet survives the
/// round-trip — including labels with no transitions — and the parser
/// re-interns every symbol at its original index (`parse ∘ print`
/// preserves the symbol table, which the roundtrip suite asserts).
fn write_symbols_interned<L: Label>(out: &mut String, net: &PetriNet<L>, indent: &str) {
    if net.alphabet_len() == 0 {
        return;
    }
    let alpha = net.alphabet_syms();
    write!(out, "{indent}symbols {{").expect("writing to string");
    for (sym, label) in net.interner().iter() {
        if alpha.contains(sym) {
            write!(out, " \"{}\"", escape_label(&label.to_string())).expect("writing to string");
        }
    }
    out.push_str(" }\n");
}

/// Emits the explicit alphabet as a `symbols { … }` section, labels in
/// sorted (`Ord`) order — the canonical-form variant, whose bytes do
/// not depend on interner history.
fn write_symbols<L: Label>(out: &mut String, net: &PetriNet<L>, indent: &str) {
    if net.alphabet_len() == 0 {
        return;
    }
    write!(out, "{indent}symbols {{").expect("writing to string");
    for label in net.alphabet() {
        write!(out, " \"{}\"", escape_label(&label.to_string())).expect("writing to string");
    }
    out.push_str(" }\n");
}

/// Renders a net in **canonical form**: places, transitions, and the
/// symbol table all in the canonical order behind the net's
/// [`NetId`](cpn_petri::NetId), with canonical place names `s0…sN`.
///
/// Two nets with equal `NetId`s — however they were constructed,
/// interned, named, or formatted — serialize to byte-identical text
/// (given the same `name`). The `cpn-serve` cache and the golden tests
/// rely on this to compare nets as strings.
pub fn write_net_canonical<L: Label>(name: &str, net: &PetriNet<L>) -> String {
    let order = canonical_order(net);
    let names: BTreeMap<PlaceId, String> = order
        .places
        .iter()
        .enumerate()
        .map(|(pos, &p)| (p, format!("s{pos}")))
        .collect();
    let mut pos_of = vec![0usize; net.place_count()];
    for (pos, &p) in order.places.iter().enumerate() {
        pos_of[p.index()] = pos;
    }
    let mut out = String::new();
    writeln!(out, "net {} {{", sanitize(name)).expect("writing to string");
    let m0 = net.initial_marking();
    out.push_str("  places {");
    for &p in &order.places {
        match m0.tokens(p) {
            0 => write!(out, " {}", names[&p]),
            1 => write!(out, " {}*", names[&p]),
            n => write!(out, " {}*{n}", names[&p]),
        }
        .expect("writing to string");
    }
    out.push_str(" }\n");
    write_symbols(&mut out, net, "  ");
    for &tid in &order.transitions {
        let label = escape_label(&net.label_of(tid).to_string());
        write!(out, "  transition \"{label}\" {{ pre:").expect("writing to string");
        let tr = net.transition(tid);
        let mut pre: Vec<usize> = tr.preset().iter().map(|p| pos_of[p.index()]).collect();
        pre.sort_unstable();
        for pos in pre {
            write!(out, " s{pos}").expect("writing to string");
        }
        out.push_str("; post:");
        let mut post: Vec<usize> = tr.postset().iter().map(|p| pos_of[p.index()]).collect();
        post.sort_unstable();
        for pos in post {
            write!(out, " s{pos}").expect("writing to string");
        }
        out.push_str(" }\n");
    }
    out.push_str("}\n");
    out
}

/// Renders an STG as an `stg NAME { … }` item, including signal
/// declarations and guards.
pub fn write_stg(name: &str, stg: &Stg) -> String {
    let net = stg.net();
    let names = place_names(net);
    let mut out = String::new();
    writeln!(out, "stg {} {{", sanitize(name)).expect("writing to string");
    for dir in [
        cpn_stg::SignalDir::Input,
        cpn_stg::SignalDir::Output,
        cpn_stg::SignalDir::Internal,
    ] {
        let sigs = stg.signals_with_dir(dir);
        if !sigs.is_empty() {
            write!(out, "  {dir}").expect("writing to string");
            for s in sigs {
                write!(out, " {s}").expect("writing to string");
            }
            out.push_str(";\n");
        }
    }
    write_places(&mut out, net, &names);
    for (tid, _) in net.transitions() {
        match net.label_of(tid) {
            StgLabel::Dummy => {
                out.push_str("  dummy ");
            }
            StgLabel::Signal(s, e) => {
                write!(out, "  transition {s}{e} ").expect("writing to string");
            }
        }
        write_flows(&mut out, net, &names, tid);
        let guard = stg.guard(tid);
        if !guard.is_true() {
            out.push_str(" guard {");
            let mut first = true;
            for (s, v) in guard.literals() {
                if !first {
                    out.push_str(" &");
                }
                first = false;
                write!(out, " {s}={}", u8::from(v)).expect("writing to string");
            }
            out.push_str(" }");
        }
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

fn write_label_list(out: &mut String, keyword: &str, labels: &[String]) {
    if labels.is_empty() {
        return;
    }
    write!(out, "  {keyword} {{").expect("writing to string");
    for l in labels {
        write!(out, " \"{}\"", escape_label(l)).expect("writing to string");
    }
    out.push_str(" }\n");
}

/// Renders one `module NAME { … }` item of a `.cpnlib` document.
pub fn write_lib_module(module: &LibModule) -> String {
    let mut out = String::new();
    writeln!(out, "module {} {{", sanitize(&module.name)).expect("writing to string");
    write_label_list(&mut out, "inputs", &module.inputs);
    write_label_list(&mut out, "outputs", &module.outputs);
    out.push_str("  net {\n");
    let names = place_names(&module.net);
    write_net_body(&mut out, &module.net, &names, "    ");
    out.push_str("  }\n}\n");
    out
}

/// Renders one `instance NAME of MODULE { … }` item.
pub fn write_lib_instance(inst: &LibInstance) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "instance {} of {} {{",
        sanitize(&inst.name),
        sanitize(&inst.module)
    )
    .expect("writing to string");
    if !inst.rename.is_empty() {
        out.push_str("  rename {");
        for (from, to) in &inst.rename {
            write!(
                out,
                " \"{}\" = \"{}\"",
                escape_label(from),
                escape_label(to)
            )
            .expect("writing to string");
        }
        out.push_str(" }\n");
    }
    out.push_str("}\n");
    out
}

/// Renders a whole `.cpnlib` module-library document
/// (round-trips through [`crate::parse_lib`]).
pub fn write_lib(lib: &LibDocument) -> String {
    let mut out = String::new();
    for m in &lib.modules {
        out.push_str(&write_lib_module(m));
        out.push('\n');
    }
    for i in &lib.instances {
        out.push_str(&write_lib_instance(i));
        out.push('\n');
    }
    out
}

/// Renders a whole document.
pub fn write_document(doc: &crate::parser::Document) -> String {
    let mut out = String::new();
    for (name, net) in &doc.nets {
        out.push_str(&write_net(name, net));
        out.push('\n');
    }
    for (name, stg) in &doc.stgs {
        out.push_str(&write_stg(name, stg));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use cpn_stg::{Edge, Guard, SignalDir};

    #[test]
    fn net_roundtrip() {
        let mut net: PetriNet<String> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "go".to_owned(), [q]).unwrap();
        net.add_transition([q], "back".to_owned(), [p]).unwrap();
        net.set_initial(p, 2);

        let text = write_net("demo", &net);
        let doc = parse(&text).unwrap();
        let (name, parsed) = &doc.nets[0];
        assert_eq!(name, "demo");
        assert_eq!(parsed.place_count(), 2);
        assert_eq!(parsed.transition_count(), 2);
        assert_eq!(parsed.initial_marking().total(), 2);
        // Same language.
        let l1 = cpn_trace::Language::from_net(&net, 4, 10_000).unwrap();
        let l2 = cpn_trace::Language::from_net(parsed, 4, 10_000).unwrap();
        assert!(l1.eq_up_to(&l2, 4));
    }

    #[test]
    fn stg_roundtrip_with_guard() {
        let mut stg = Stg::new();
        let d = stg.add_signal("DATA", SignalDir::Input);
        let x = stg.add_signal("x", SignalDir::Output);
        let p = stg.add_place("p");
        let q = stg.add_place("q");
        let t = stg
            .add_signal_transition([p], (x, Edge::Rise), [q])
            .unwrap();
        stg.add_dummy([q], [p]).unwrap();
        stg.set_guard(t, Guard::new().require(d, true));
        stg.set_initial(p, 1);

        let text = write_stg("guarded", &stg);
        let doc = parse(&text).unwrap();
        let (_, parsed) = &doc.stgs[0];
        assert_eq!(parsed.signals().len(), 2);
        assert_eq!(parsed.net().transition_count(), 2);
        let parsed_t = cpn_petri::TransitionId::from_index(0);
        assert_eq!(parsed.guard(parsed_t).to_string(), "DATA=1");
    }

    #[test]
    fn duplicate_place_names_uniquified() {
        let mut net: PetriNet<String> = PetriNet::new();
        let a = net.add_place("x");
        let b = net.add_place("x");
        net.add_transition([a], "t".to_owned(), [b]).unwrap();
        let text = write_net("d", &net);
        let doc = parse(&text).unwrap();
        assert_eq!(doc.nets[0].1.place_count(), 2);
    }

    #[test]
    fn nasty_label_escaped() {
        let mut net: PetriNet<String> = PetriNet::new();
        let p = net.add_place("p");
        net.add_transition([p], "say \"hi\"".to_owned(), [p])
            .unwrap();
        net.set_initial(p, 1);
        let text = write_net("e", &net);
        let doc = parse(&text).unwrap();
        let tid = doc.nets[0].1.transitions().next().unwrap().0;
        let label = doc.nets[0].1.label_of(tid).clone();
        assert_eq!(label, "say \"hi\"");
    }

    #[test]
    fn paper_protocol_models_roundtrip() {
        for (name, stg) in [
            ("sender", cpn_stg::protocol::sender()),
            ("translator", cpn_stg::protocol::translator()),
            ("receiver", cpn_stg::protocol::receiver()),
        ] {
            let text = write_stg(name, &stg);
            let doc = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
            let (_, parsed) = &doc.stgs[0];
            assert_eq!(
                parsed.net().transition_count(),
                stg.net().transition_count(),
                "{name} transitions survive"
            );
            assert_eq!(
                parsed.net().place_count(),
                stg.net().place_count(),
                "{name} places survive"
            );
            assert_eq!(parsed.signals(), stg.signals(), "{name} signals survive");
        }
    }

    #[test]
    fn declared_alphabet_survives_roundtrip() {
        // A label with no transitions used to be silently dropped; the
        // symbols section keeps the alphabet faithful to Definition 2.1.
        let mut net: PetriNet<String> = PetriNet::new();
        let p = net.add_place("p");
        net.add_transition([p], "a".to_owned(), [p]).unwrap();
        net.declare_label("lonely".to_owned());
        net.set_initial(p, 1);
        let text = write_net("w", &net);
        let doc = parse(&text).unwrap();
        assert!(doc.nets[0].1.alphabet_contains(&"lonely".to_owned()));
        assert_eq!(doc.nets[0].1.alphabet_len(), 2);
    }

    #[test]
    fn canonical_writer_is_invariant_under_construction_order() {
        // The same net built in permuted place/transition/interner
        // order, with different place names.
        let mut a: PetriNet<String> = PetriNet::new();
        let p = a.add_place("idle");
        let q = a.add_place("busy");
        a.add_transition([p], "go".to_owned(), [q]).unwrap();
        a.add_transition([q], "back".to_owned(), [p]).unwrap();
        a.set_initial(p, 1);

        let mut b: PetriNet<String> = PetriNet::new();
        b.intern_label(&"back".to_owned());
        let y = b.add_place("two");
        let x = b.add_place("one");
        b.add_transition([y], "back".to_owned(), [x]).unwrap();
        b.add_transition([x], "go".to_owned(), [y]).unwrap();
        b.set_initial(x, 1);

        assert_eq!(a.net_id(), b.net_id());
        let ta = write_net_canonical("m", &a);
        let tb = write_net_canonical("m", &b);
        assert_eq!(ta, tb, "NetId-equal nets must serialize identically");
        // And the canonical text parses back to a NetId-equal net.
        let parsed = parse(&ta).unwrap();
        assert_eq!(parsed.nets[0].1.net_id(), a.net_id());
    }

    #[test]
    fn canonical_writer_distinguishes_different_nets() {
        let mut a: PetriNet<String> = PetriNet::new();
        let p = a.add_place("p");
        a.add_transition([p], "x".to_owned(), [p]).unwrap();
        a.set_initial(p, 1);
        let mut b = a.clone();
        b.set_initial(cpn_petri::PlaceId::from_index(0), 2);
        assert_ne!(write_net_canonical("m", &a), write_net_canonical("m", &b));
    }

    #[test]
    fn lib_roundtrip() {
        let mut net: PetriNet<String> = PetriNet::new();
        let p = net.add_place("idle");
        let q = net.add_place("busy");
        net.add_transition([p], "req".to_owned(), [q]).unwrap();
        net.add_transition([q], "ack".to_owned(), [p]).unwrap();
        net.set_initial(p, 1);
        let lib = LibDocument {
            modules: vec![LibModule {
                name: "buf".into(),
                inputs: vec!["req".into()],
                outputs: vec!["ack".into()],
                net: net.clone(),
            }],
            instances: vec![LibInstance {
                name: "buf0".into(),
                module: "buf".into(),
                rename: [("req", "r0"), ("ack", "a0")]
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                    .collect(),
            }],
        };
        let text = write_lib(&lib);
        let parsed = crate::parser::parse_lib(&text).unwrap();
        assert_eq!(parsed.modules.len(), 1);
        assert_eq!(parsed.modules[0].inputs, vec!["req".to_owned()]);
        assert_eq!(parsed.modules[0].net.net_id(), net.net_id());
        assert_eq!(parsed.instances[0].module, "buf");
        assert_eq!(parsed.instances[0].rename["req"], "r0");
        // Writing the parsed document again is byte-stable.
        assert_eq!(write_lib(&parsed), text);
    }

    #[test]
    fn document_roundtrip() {
        let mut net: PetriNet<String> = PetriNet::new();
        let p = net.add_place("p");
        net.add_transition([p], "t".to_owned(), [p]).unwrap();
        net.set_initial(p, 1);
        let doc = crate::parser::Document {
            nets: vec![("a".into(), net)],
            stgs: vec![("b".into(), cpn_stg::protocol::receiver())],
        };
        let text = write_document(&doc);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.nets.len(), 1);
        assert_eq!(parsed.stgs.len(), 1);
    }
}
