//! Pretty printers for the `.cpn` format.
//!
//! Place names are sanitized to the identifier alphabet on output (the
//! algebra generates product names like `(p0,q0)` which are legal
//! identifiers here, but e.g. spaces are not); sanitized names are made
//! unique by suffixing.

use cpn_petri::{Label, PetriNet, PlaceId};
use cpn_stg::{Stg, StgLabel};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || matches!(c, '_' | '.' | '\'' | '′' | '(' | ')' | ',') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("p_{cleaned}")
    } else {
        cleaned
    }
}

fn place_names<L: Label>(net: &PetriNet<L>) -> BTreeMap<PlaceId, String> {
    let mut used: BTreeMap<String, usize> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for (id, place) in net.places() {
        let base = sanitize(place.name());
        let count = used.entry(base.clone()).or_insert(0);
        let name = if *count == 0 {
            base.clone()
        } else {
            format!("{base}_{count}")
        };
        *count += 1;
        out.insert(id, name);
    }
    out
}

fn write_places<L: Label>(out: &mut String, net: &PetriNet<L>, names: &BTreeMap<PlaceId, String>) {
    out.push_str("  places {");
    let m0 = net.initial_marking();
    for (id, _) in net.places() {
        let tokens = m0.tokens(id);
        match tokens {
            0 => write!(out, " {}", names[&id]),
            1 => write!(out, " {}*", names[&id]),
            n => write!(out, " {}*{n}", names[&id]),
        }
        .expect("writing to string");
    }
    out.push_str(" }\n");
}

fn write_flows<L: Label>(
    out: &mut String,
    net: &PetriNet<L>,
    names: &BTreeMap<PlaceId, String>,
    t: cpn_petri::TransitionId,
) {
    let tr = net.transition(t);
    out.push_str("{ pre:");
    for p in tr.preset() {
        write!(out, " {}", names[p]).expect("writing to string");
    }
    out.push_str("; post:");
    for p in tr.postset() {
        write!(out, " {}", names[p]).expect("writing to string");
    }
    out.push_str(" }");
}

/// Renders a generic labeled net as a `net NAME { … }` item.
///
/// Labels are printed via `Display` into quoted strings, so any label
/// type round-trips into a `PetriNet<String>`.
///
/// # Example
///
/// ```
/// use cpn_petri::PetriNet;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// net.add_transition([p], "tick", [p])?;
/// net.set_initial(p, 1);
/// let text = cpn_format::write_net("clock", &net);
/// let doc = cpn_format::parse(&text)?;
/// assert_eq!(doc.nets[0].0, "clock");
/// # Ok(())
/// # }
/// ```
pub fn write_net<L: Label>(name: &str, net: &PetriNet<L>) -> String {
    let names = place_names(net);
    let mut out = String::new();
    writeln!(out, "net {} {{", sanitize(name)).expect("writing to string");
    write_places(&mut out, net, &names);
    for (tid, _) in net.transitions() {
        let label = net
            .label_of(tid)
            .to_string()
            .replace('\\', "\\\\")
            .replace('"', "\\\"");
        write!(out, "  transition \"{label}\" ").expect("writing to string");
        write_flows(&mut out, net, &names, tid);
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Renders an STG as an `stg NAME { … }` item, including signal
/// declarations and guards.
pub fn write_stg(name: &str, stg: &Stg) -> String {
    let net = stg.net();
    let names = place_names(net);
    let mut out = String::new();
    writeln!(out, "stg {} {{", sanitize(name)).expect("writing to string");
    for dir in [
        cpn_stg::SignalDir::Input,
        cpn_stg::SignalDir::Output,
        cpn_stg::SignalDir::Internal,
    ] {
        let sigs = stg.signals_with_dir(dir);
        if !sigs.is_empty() {
            write!(out, "  {dir}").expect("writing to string");
            for s in sigs {
                write!(out, " {s}").expect("writing to string");
            }
            out.push_str(";\n");
        }
    }
    write_places(&mut out, net, &names);
    for (tid, _) in net.transitions() {
        match net.label_of(tid) {
            StgLabel::Dummy => {
                out.push_str("  dummy ");
            }
            StgLabel::Signal(s, e) => {
                write!(out, "  transition {s}{e} ").expect("writing to string");
            }
        }
        write_flows(&mut out, net, &names, tid);
        let guard = stg.guard(tid);
        if !guard.is_true() {
            out.push_str(" guard {");
            let mut first = true;
            for (s, v) in guard.literals() {
                if !first {
                    out.push_str(" &");
                }
                first = false;
                write!(out, " {s}={}", u8::from(v)).expect("writing to string");
            }
            out.push_str(" }");
        }
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Renders a whole document.
pub fn write_document(doc: &crate::parser::Document) -> String {
    let mut out = String::new();
    for (name, net) in &doc.nets {
        out.push_str(&write_net(name, net));
        out.push('\n');
    }
    for (name, stg) in &doc.stgs {
        out.push_str(&write_stg(name, stg));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use cpn_stg::{Edge, Guard, SignalDir};

    #[test]
    fn net_roundtrip() {
        let mut net: PetriNet<String> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "go".to_owned(), [q]).unwrap();
        net.add_transition([q], "back".to_owned(), [p]).unwrap();
        net.set_initial(p, 2);

        let text = write_net("demo", &net);
        let doc = parse(&text).unwrap();
        let (name, parsed) = &doc.nets[0];
        assert_eq!(name, "demo");
        assert_eq!(parsed.place_count(), 2);
        assert_eq!(parsed.transition_count(), 2);
        assert_eq!(parsed.initial_marking().total(), 2);
        // Same language.
        let l1 = cpn_trace::Language::from_net(&net, 4, 10_000).unwrap();
        let l2 = cpn_trace::Language::from_net(parsed, 4, 10_000).unwrap();
        assert!(l1.eq_up_to(&l2, 4));
    }

    #[test]
    fn stg_roundtrip_with_guard() {
        let mut stg = Stg::new();
        let d = stg.add_signal("DATA", SignalDir::Input);
        let x = stg.add_signal("x", SignalDir::Output);
        let p = stg.add_place("p");
        let q = stg.add_place("q");
        let t = stg
            .add_signal_transition([p], (x, Edge::Rise), [q])
            .unwrap();
        stg.add_dummy([q], [p]).unwrap();
        stg.set_guard(t, Guard::new().require(d, true));
        stg.set_initial(p, 1);

        let text = write_stg("guarded", &stg);
        let doc = parse(&text).unwrap();
        let (_, parsed) = &doc.stgs[0];
        assert_eq!(parsed.signals().len(), 2);
        assert_eq!(parsed.net().transition_count(), 2);
        let parsed_t = cpn_petri::TransitionId::from_index(0);
        assert_eq!(parsed.guard(parsed_t).to_string(), "DATA=1");
    }

    #[test]
    fn duplicate_place_names_uniquified() {
        let mut net: PetriNet<String> = PetriNet::new();
        let a = net.add_place("x");
        let b = net.add_place("x");
        net.add_transition([a], "t".to_owned(), [b]).unwrap();
        let text = write_net("d", &net);
        let doc = parse(&text).unwrap();
        assert_eq!(doc.nets[0].1.place_count(), 2);
    }

    #[test]
    fn nasty_label_escaped() {
        let mut net: PetriNet<String> = PetriNet::new();
        let p = net.add_place("p");
        net.add_transition([p], "say \"hi\"".to_owned(), [p])
            .unwrap();
        net.set_initial(p, 1);
        let text = write_net("e", &net);
        let doc = parse(&text).unwrap();
        let tid = doc.nets[0].1.transitions().next().unwrap().0;
        let label = doc.nets[0].1.label_of(tid).clone();
        assert_eq!(label, "say \"hi\"");
    }

    #[test]
    fn paper_protocol_models_roundtrip() {
        for (name, stg) in [
            ("sender", cpn_stg::protocol::sender()),
            ("translator", cpn_stg::protocol::translator()),
            ("receiver", cpn_stg::protocol::receiver()),
        ] {
            let text = write_stg(name, &stg);
            let doc = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
            let (_, parsed) = &doc.stgs[0];
            assert_eq!(
                parsed.net().transition_count(),
                stg.net().transition_count(),
                "{name} transitions survive"
            );
            assert_eq!(
                parsed.net().place_count(),
                stg.net().place_count(),
                "{name} places survive"
            );
            assert_eq!(parsed.signals(), stg.signals(), "{name} signals survive");
        }
    }

    #[test]
    fn document_roundtrip() {
        let mut net: PetriNet<String> = PetriNet::new();
        let p = net.add_place("p");
        net.add_transition([p], "t".to_owned(), [p]).unwrap();
        net.set_initial(p, 1);
        let doc = crate::parser::Document {
            nets: vec![("a".into(), net)],
            stgs: vec![("b".into(), cpn_stg::protocol::receiver())],
        };
        let text = write_document(&doc);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.nets.len(), 1);
        assert_eq!(parsed.stgs.len(), 1);
    }
}
