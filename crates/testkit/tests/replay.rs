//! The harness's replay contract: a failing property prints its case
//! seed, and re-running with that seed (`CPN_TESTKIT_SEED`) regenerates
//! and re-shrinks the *identical* counterexample.

use cpn_testkit::{check_with, prop_assert, Config, NetStrategy};

/// A property that fails whenever the net has a transition consuming
/// and producing on the same place (frequent enough to fail fast,
/// structured enough to need real shrinking).
fn no_self_loop_prop(raw: &cpn_testkit::RawNet) -> cpn_testkit::PropResult {
    for t in &raw.transitions {
        let loops = t.pre.iter().any(|p| t.post.contains(p));
        prop_assert!(!loops, "self-looping transition");
    }
    Ok(())
}

fn failure_message(config: Config) -> String {
    let result = std::panic::catch_unwind(move || {
        check_with(
            "replay_contract",
            &config,
            &NetStrategy::new(4, 4, 3),
            no_self_loop_prop,
        );
    });
    let payload = result.expect_err("property must fail");
    *payload
        .downcast::<String>()
        .expect("panic carries a String")
}

fn extract(message: &str, key: &str) -> String {
    let at = message
        .find(key)
        .unwrap_or_else(|| panic!("report should contain {key:?}:\n{message}"));
    message[at + key.len()..]
        .split_whitespace()
        .next()
        .expect("value after key")
        .to_string()
}

fn counterexample_of(message: &str) -> &str {
    let start = message
        .find("counterexample")
        .expect("counterexample section");
    &message[start..]
}

#[test]
fn failing_property_reports_seed_and_replay_reproduces_counterexample() {
    let first = failure_message(Config::default());
    let seed: u64 = extract(&first, "CPN_TESTKIT_SEED=").parse().unwrap();

    // Replay through the config path (what from_env sets).
    let replayed = failure_message(Config {
        replay_seed: Some(seed),
        ..Config::default()
    });
    assert_eq!(
        counterexample_of(&first),
        counterexample_of(&replayed),
        "replayed shrink must reproduce the identical counterexample"
    );
}

#[test]
fn env_variable_drives_the_replay() {
    // First obtain a failing seed without touching the environment.
    let first = failure_message(Config::default());
    let seed = extract(&first, "CPN_TESTKIT_SEED=");

    std::env::set_var("CPN_TESTKIT_SEED", &seed);
    let config = Config::from_env();
    std::env::remove_var("CPN_TESTKIT_SEED");
    assert_eq!(config.replay_seed, Some(seed.parse().unwrap()));

    let replayed = failure_message(config);
    assert_eq!(counterexample_of(&first), counterexample_of(&replayed));
}

#[test]
fn deterministic_across_runs_without_seed() {
    // The base seed derives from the property name: two fresh runs of
    // the same failing property report the same seed and counterexample.
    let a = failure_message(Config::default());
    let b = failure_message(Config::default());
    assert_eq!(a, b);
}

#[test]
fn shrunk_counterexample_is_minimal_for_the_property() {
    let message = failure_message(Config::default());
    // Greedy shrinking over our candidate order always reaches a net
    // with a single transition.
    assert!(
        message.contains("transitions: ["),
        "counterexample shows the raw net:\n{message}"
    );
    let count = message.matches("RawTransition").count();
    assert_eq!(
        count, 1,
        "minimal counterexample has one transition:\n{message}"
    );
}
