//! Domain generators: bounded labeled Petri nets and marked-graph
//! rings, with structure-aware shrinking.
//!
//! The raw descriptions ([`RawNet`], [`RawRing`]) are plain index-based
//! data so shrinking stays simple and deterministic; `build_*` methods
//! turn them into [`PetriNet`]s. These mirror (and replace) the ad-hoc
//! `proptest` strategies the test suites grew independently.

use crate::gen::Strategy;
use crate::rng::TestRng;
use cpn_petri::{Label, PetriNet, PlaceId};
use std::collections::BTreeSet;

/// One raw transition: preset/postset as place indices plus a label
/// index (interpretation of the label index is up to the builder).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawTransition {
    /// Preset place indices (duplicates collapse in the built net).
    pub pre: Vec<usize>,
    /// Label index.
    pub label: usize,
    /// Postset place indices.
    pub post: Vec<usize>,
}

/// A raw net description the harness can shrink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawNet {
    /// Number of places.
    pub places: usize,
    /// Transitions over place indices `0..places`.
    pub transitions: Vec<RawTransition>,
    /// Initial tokens per place.
    pub marking: Vec<u32>,
}

impl RawNet {
    /// Builds the net, labeling transition `i` (with label index `l`)
    /// via `label(i, l)`.
    ///
    /// If no place is marked, place 0 receives one token so the net has
    /// a nonempty initial marking (matching the historical test
    /// builders).
    pub fn build_with<L: Label>(&self, label: impl Fn(usize, usize) -> L) -> PetriNet<L> {
        let mut net: PetriNet<L> = PetriNet::new();
        let ps: Vec<PlaceId> = (0..self.places)
            .map(|i| net.add_place(format!("p{i}")))
            .collect();
        for (i, t) in self.transitions.iter().enumerate() {
            let pre: BTreeSet<PlaceId> = t.pre.iter().map(|&x| ps[x]).collect();
            let post: BTreeSet<PlaceId> = t.post.iter().map(|&x| ps[x]).collect();
            net.add_transition(pre, label(i, t.label), post)
                .expect("generated transition is valid");
        }
        let mut any_marked = false;
        for (i, &m) in self.marking.iter().enumerate() {
            if m > 0 {
                net.set_initial(ps[i], m);
                any_marked = true;
            }
        }
        if !any_marked {
            net.set_initial(ps[0], 1);
        }
        net
    }

    /// Builds the net labeling transitions from a fixed alphabet by
    /// label index.
    pub fn build_labels(&self, labels: &[&'static str]) -> PetriNet<&'static str> {
        self.build_with(|_, l| labels[l % labels.len()])
    }

    /// Builds the net with a unique `String` label `t{i}` per
    /// transition.
    pub fn build_indexed(&self) -> PetriNet<String> {
        self.build_with(|i, _| format!("t{i}"))
    }
}

/// Generates [`RawNet`]s within the configured size bounds.
#[derive(Clone, Debug)]
pub struct NetStrategy {
    min_places: usize,
    max_places: usize,
    max_transitions: usize,
    labels: usize,
    max_tokens: u32,
}

impl NetStrategy {
    /// Nets with `2..=max_places` places and `1..=max_transitions`
    /// transitions over `labels` label indices, safe (0/1) initial
    /// markings.
    pub fn new(max_places: usize, max_transitions: usize, labels: usize) -> Self {
        assert!(max_places >= 2 && max_transitions >= 1 && labels >= 1);
        NetStrategy {
            min_places: 2,
            max_places,
            max_transitions,
            labels,
            max_tokens: 1,
        }
    }

    /// Allows up to `max` initial tokens per place (multiset markings —
    /// the non-safe regime).
    pub fn max_tokens(mut self, max: u32) -> Self {
        self.max_tokens = max;
        self
    }
}

impl Strategy for NetStrategy {
    type Value = RawNet;

    fn generate(&self, rng: &mut TestRng) -> RawNet {
        let places = rng.gen_range(self.min_places..self.max_places + 1);
        let n_transitions = rng.gen_range(1..self.max_transitions + 1);
        let arcs = |rng: &mut TestRng| -> Vec<usize> {
            let n = rng.gen_range(1..3);
            (0..n).map(|_| rng.below(places)).collect()
        };
        let transitions = (0..n_transitions)
            .map(|_| RawTransition {
                pre: arcs(rng),
                label: rng.below(self.labels),
                post: arcs(rng),
            })
            .collect();
        let marking = (0..places)
            .map(|_| rng.gen_range_u32(0..self.max_tokens + 1))
            .collect();
        RawNet {
            places,
            transitions,
            marking,
        }
    }

    fn shrink(&self, value: &RawNet) -> Vec<RawNet> {
        let mut out = Vec::new();
        // 1. Drop whole transitions.
        if value.transitions.len() > 1 {
            for i in 0..value.transitions.len() {
                let mut v = value.clone();
                v.transitions.remove(i);
                out.push(v);
            }
        }
        // 2. Empty, then decrement, marked places.
        for (i, &m) in value.marking.iter().enumerate() {
            if m > 0 {
                let mut v = value.clone();
                v.marking[i] = 0;
                out.push(v);
                if m > 1 {
                    let mut v = value.clone();
                    v.marking[i] = m - 1;
                    out.push(v);
                }
            }
        }
        // 3. Thin out two-place presets/postsets.
        for (i, t) in value.transitions.iter().enumerate() {
            if t.pre.len() > 1 {
                let mut v = value.clone();
                v.transitions[i].pre.pop();
                out.push(v);
            }
            if t.post.len() > 1 {
                let mut v = value.clone();
                v.transitions[i].post.pop();
                out.push(v);
            }
        }
        // 4. Drop a trailing place no arc or token references.
        if value.places > self.min_places {
            let last = value.places - 1;
            let referenced = value
                .transitions
                .iter()
                .any(|t| t.pre.contains(&last) || t.post.contains(&last))
                || value.marking[last] > 0;
            if !referenced {
                let mut v = value.clone();
                v.places -= 1;
                v.marking.truncate(v.places);
                out.push(v);
            }
        }
        out
    }
}

/// A raw marked-graph ring: `n` places `p0 → t0 → p1 → … → p0` with a
/// token count per place.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawRing {
    /// Ring length (places = transitions = `n`).
    pub n: usize,
    /// Tokens per place.
    pub marks: Vec<u32>,
}

impl RawRing {
    /// Builds the ring with `String` labels `t{i}`.
    pub fn build(&self) -> PetriNet<String> {
        self.build_with(|i| format!("t{i}"))
    }

    /// Builds the ring with custom labels.
    pub fn build_with<L: Label>(&self, label: impl Fn(usize) -> L) -> PetriNet<L> {
        let mut net: PetriNet<L> = PetriNet::new();
        let ps: Vec<PlaceId> = (0..self.n)
            .map(|i| net.add_place(format!("p{i}")))
            .collect();
        for i in 0..self.n {
            net.add_transition([ps[i]], label(i), [ps[(i + 1) % self.n]])
                .expect("ring transition");
        }
        for (i, &m) in self.marks.iter().enumerate() {
            net.set_initial(ps[i], m);
        }
        net
    }

    /// Total tokens on the ring.
    pub fn total_tokens(&self) -> u32 {
        self.marks.iter().sum()
    }
}

/// Generates marked-graph rings (every place has exactly one producer
/// and one consumer — the canonical strongly-connected marked graph).
#[derive(Clone, Debug)]
pub struct RingStrategy {
    min_n: usize,
    max_n: usize,
    max_tokens: u32,
    live_safe: bool,
}

impl RingStrategy {
    /// Rings of length `min_n..=max_n` with `0..=max_tokens` tokens per
    /// place.
    pub fn new(min_n: usize, max_n: usize, max_tokens: u32) -> Self {
        assert!(min_n >= 2 && min_n <= max_n);
        RingStrategy {
            min_n,
            max_n,
            max_tokens,
            live_safe: false,
        }
    }

    /// Restricts generation to live-safe rings: exactly one token
    /// somewhere on the cycle (live because the cycle is marked, safe
    /// because the token count is invariant at one).
    pub fn live_safe(mut self) -> Self {
        self.live_safe = true;
        self
    }
}

impl Strategy for RingStrategy {
    type Value = RawRing;

    fn generate(&self, rng: &mut TestRng) -> RawRing {
        let n = rng.gen_range(self.min_n..self.max_n + 1);
        let marks = if self.live_safe {
            let at = rng.below(n);
            (0..n).map(|i| u32::from(i == at)).collect()
        } else {
            (0..n)
                .map(|_| rng.gen_range_u32(0..self.max_tokens + 1))
                .collect()
        };
        RawRing { n, marks }
    }

    fn shrink(&self, value: &RawRing) -> Vec<RawRing> {
        let mut out = Vec::new();
        if self.live_safe {
            // Only the token position can move: toward place 0.
            if let Some(at) = value.marks.iter().position(|&m| m > 0) {
                if at > 0 {
                    let mut marks = vec![0; value.n];
                    marks[0] = 1;
                    out.push(RawRing { n: value.n, marks });
                }
            }
            if value.n > self.min_n {
                let mut marks = vec![0; value.n - 1];
                marks[0] = 1;
                out.push(RawRing {
                    n: value.n - 1,
                    marks,
                });
            }
            return out;
        }
        if value.n > self.min_n {
            let mut v = value.clone();
            v.n -= 1;
            v.marks.truncate(v.n);
            out.push(v);
        }
        for (i, &m) in value.marks.iter().enumerate() {
            if m > 0 {
                let mut v = value.clone();
                v.marks[i] = m - 1;
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpn_petri::ReachabilityOptions;

    #[test]
    fn generated_nets_build_and_validate() {
        let s = NetStrategy::new(4, 4, 4);
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..50 {
            let raw = s.generate(&mut rng);
            let net = raw.build_labels(&["a", "b", "c", "tau"]);
            assert_eq!(net.place_count(), raw.places);
            assert_eq!(net.transition_count(), raw.transitions.len());
            assert!(net.initial_marking().total() > 0);
        }
    }

    #[test]
    fn safe_strategy_keeps_markings_safe() {
        let s = NetStrategy::new(4, 4, 4);
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..50 {
            let raw = s.generate(&mut rng);
            assert!(raw.marking.iter().all(|&m| m <= 1));
        }
    }

    #[test]
    fn multiset_strategy_reaches_higher_counts() {
        let s = NetStrategy::new(4, 4, 4).max_tokens(3);
        let mut rng = TestRng::seed_from_u64(2);
        let saw_multi = (0..50)
            .map(|_| s.generate(&mut rng))
            .any(|raw| raw.marking.iter().any(|&m| m > 1));
        assert!(saw_multi);
    }

    #[test]
    fn shrink_candidates_stay_valid() {
        let s = NetStrategy::new(4, 4, 4);
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..20 {
            let raw = s.generate(&mut rng);
            for c in s.shrink(&raw) {
                assert!(c.places >= 2);
                assert!(!c.transitions.is_empty());
                assert_eq!(c.marking.len(), c.places);
                for t in &c.transitions {
                    assert!(!t.pre.is_empty() && !t.post.is_empty());
                    assert!(t.pre.iter().chain(&t.post).all(|&p| p < c.places));
                }
                // Shrinks must still build.
                c.build_indexed();
            }
        }
    }

    #[test]
    fn live_safe_rings_are_live_and_safe() {
        let s = RingStrategy::new(3, 7, 1).live_safe();
        let mut rng = TestRng::seed_from_u64(17);
        for _ in 0..30 {
            let raw = s.generate(&mut rng);
            assert_eq!(raw.total_tokens(), 1);
            let net = raw.build();
            assert!(net.structural().is_marked_graph);
            let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
            let analysis = net.analysis(&rg);
            assert!(analysis.live, "{net}");
            assert!(analysis.safe, "{net}");
        }
    }

    #[test]
    fn ring_shrink_moves_token_home() {
        let s = RingStrategy::new(3, 7, 1).live_safe();
        let raw = RawRing {
            n: 5,
            marks: vec![0, 0, 1, 0, 0],
        };
        let shrunk = s.shrink(&raw);
        assert!(shrunk.contains(&RawRing {
            n: 5,
            marks: vec![1, 0, 0, 0, 0]
        }));
    }
}
