//! # cpn-testkit — hermetic deterministic correctness tooling
//!
//! The workspace's replacement for `rand`, `proptest` and `criterion`:
//! everything here is implemented in-tree against `std` only, so
//! `cargo build --offline` resolves with zero external crates and every
//! test run is reproducible from a single seed.
//!
//! ## Pieces
//!
//! * [`rng`] — [`SplitMix64`] and the xoshiro256\*\*-based [`TestRng`],
//!   the seeded generators behind both the simulator and the property
//!   harness.
//! * [`gen`] — the [`Strategy`] trait (generation + integrated
//!   shrinking) and generic combinators (`usize_in`, `vec_of`, tuples).
//! * [`harness`] — [`check`]/[`check_with`] plus the [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assume!`] macros. Failures shrink
//!   greedily and panic with the minimized counterexample and a case
//!   seed; `CPN_TESTKIT_SEED=<seed>` replays that exact case.
//! * [`net_gen`] / [`stg_gen`] / [`cip_gen`] / [`fault_gen`] — domain generators for
//!   bounded Petri nets (safe or multiset-marked), strongly-connected
//!   marked-graph rings (optionally live-safe), STGs and CIP modules.
//! * [`workload`] — parametric large-scale exploration nets with
//!   closed-form state counts (`sync_pipeline_net`, `sync_mesh`,
//!   `cip_chain`), the inputs for the kernel benchmarks and the
//!   spill-tier acceptance runs.
//! * [`mutate`] — seeded corruption of text documents ([`DocMutator`]:
//!   truncation, byte flips, garbage splices, brace floods) for parser
//!   robustness tests.
//! * [`chaos`] — seeded transport fault injection ([`ChaosInjector`]:
//!   truncated frames, oversized length prefixes, garbage bytes,
//!   mid-request disconnects, stalled writes) for soak-testing framed
//!   network protocols.
//! * [`bench`](mod@bench) (feature `bench`) — a `std::time::Instant` micro-bench
//!   harness with a fast smoke mode for `cargo test` and a calibrated
//!   timing mode under `CPN_BENCH_FULL=1`.
//!
//! ## Example
//!
//! ```
//! use cpn_testkit::{check, prop_assert, NetStrategy};
//!
//! // Every generated net round-trips through its own arena indices.
//! check("places_match", &NetStrategy::new(4, 4, 3), |raw| {
//!     let net = raw.build_indexed();
//!     prop_assert!(net.place_count() == raw.places);
//!     Ok(())
//! });
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod fault_gen;
pub mod gen;
pub mod harness;
pub mod modules;
pub mod mutate;
pub mod net_gen;
pub mod rng;
pub mod stg_gen;

/// CIP module generation.
pub mod cip_gen;

pub mod workload;

#[cfg(feature = "bench")]
pub mod bench;

pub use chaos::{
    corrupt_exchange, corrupt_frame, BurstFault, ChaosInjector, TransportFault, WriteStep,
};
pub use fault_gen::{FaultStrategy, RawFault};
pub use gen::{any_bool, just, u32_in, usize_in, vec_of, Strategy};
pub use harness::{check, check_with, Config, PropFail, PropResult};
pub use modules::{ModuleScenario, PlanStep};
pub use mutate::{DocMutator, Mutant, MutationKind};
pub use net_gen::{NetStrategy, RawNet, RawRing, RawTransition, RingStrategy};
pub use rng::{mix_seed, SplitMix64, TestRng};
pub use stg_gen::{RawStg, StgStrategy};

pub use cip_gen::{CipStrategy, RawCip, RawStage};
pub use workload::{cip_chain, sync_mesh, sync_mesh_states, sync_pipeline_net};
