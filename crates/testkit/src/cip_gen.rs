//! Domain generator: CIP modules.
//!
//! Generates sequential CIP processes — a single-token ring of places
//! whose stages send or receive on abstract channels (Section 3 of the
//! paper). By construction the underlying net is a live-safe marked
//! graph, so generated modules are valid inputs for composition,
//! expansion and simulation.

use crate::gen::Strategy;
use crate::rng::TestRng;
use cpn_cip::Module;
use cpn_petri::PlaceId;

/// One stage of a raw CIP process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawStage {
    /// Channel index (`c{channel}`).
    pub channel: usize,
    /// `true` for a send (`c!v`), `false` for a receive (`c?`).
    pub send: bool,
    /// Optional data value: sent value, or selective-receive case.
    pub value: Option<usize>,
}

/// A raw CIP module description the harness can shrink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawCip {
    /// The cyclic sequence of channel operations.
    pub stages: Vec<RawStage>,
}

impl RawCip {
    /// Builds the module `name` as a one-token ring over the stages.
    pub fn build(&self, name: &str) -> Module {
        let mut module = Module::new(name);
        let n = self.stages.len();
        let ps: Vec<PlaceId> = (0..n).map(|i| module.add_place(format!("s{i}"))).collect();
        for (i, stage) in self.stages.iter().enumerate() {
            let (pre, post) = (ps[i], ps[(i + 1) % n]);
            let channel = format!("c{}", stage.channel);
            if stage.send {
                module
                    .add_send([pre], channel.as_str(), stage.value, [post])
                    .expect("ring stage is valid");
            } else {
                match stage.value {
                    Some(v) => module
                        .add_recv_case([pre], channel.as_str(), v, [post])
                        .expect("ring stage is valid"),
                    None => module
                        .add_recv([pre], channel.as_str(), [post])
                        .expect("ring stage is valid"),
                };
            }
        }
        module.set_initial(ps[0], 1);
        module
    }
}

/// Generates [`RawCip`] processes.
#[derive(Clone, Debug)]
pub struct CipStrategy {
    max_stages: usize,
    channels: usize,
    values: usize,
}

impl CipStrategy {
    /// Processes with `1..=max_stages` stages over `channels` channels
    /// and data values `0..values`.
    pub fn new(max_stages: usize, channels: usize, values: usize) -> Self {
        assert!(max_stages >= 1 && channels >= 1 && values >= 1);
        CipStrategy {
            max_stages,
            channels,
            values,
        }
    }
}

impl Strategy for CipStrategy {
    type Value = RawCip;

    fn generate(&self, rng: &mut TestRng) -> RawCip {
        let n = rng.gen_range(1..self.max_stages + 1);
        let stages = (0..n)
            .map(|_| RawStage {
                channel: rng.below(self.channels),
                send: rng.gen_bool(),
                value: if rng.gen_bool() {
                    Some(rng.below(self.values))
                } else {
                    None
                },
            })
            .collect();
        RawCip { stages }
    }

    fn shrink(&self, value: &RawCip) -> Vec<RawCip> {
        let mut out = Vec::new();
        if value.stages.len() > 1 {
            for i in 0..value.stages.len() {
                let mut v = value.clone();
                v.stages.remove(i);
                out.push(v);
            }
        }
        for (i, stage) in value.stages.iter().enumerate() {
            if stage.value.is_some() {
                let mut v = value.clone();
                v.stages[i].value = None;
                out.push(v);
            }
            if stage.channel > 0 {
                let mut v = value.clone();
                v.stages[i].channel = 0;
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpn_petri::ReachabilityOptions;

    #[test]
    fn generated_modules_are_live_safe_rings() {
        let s = CipStrategy::new(6, 3, 2);
        let mut rng = TestRng::seed_from_u64(41);
        for _ in 0..50 {
            let raw = s.generate(&mut rng);
            let module = raw.build("gen");
            let net = module.net();
            assert!(net.structural().is_marked_graph);
            let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
            let analysis = net.analysis(&rg);
            assert!(analysis.live && analysis.safe);
        }
    }

    #[test]
    fn channel_sets_match_stages() {
        let raw = RawCip {
            stages: vec![
                RawStage {
                    channel: 0,
                    send: true,
                    value: Some(1),
                },
                RawStage {
                    channel: 1,
                    send: false,
                    value: None,
                },
            ],
        };
        let module = raw.build("two");
        assert_eq!(module.sends().len(), 1);
        assert_eq!(module.receives().len(), 1);
    }

    #[test]
    fn shrinks_still_build() {
        let s = CipStrategy::new(6, 3, 2);
        let mut rng = TestRng::seed_from_u64(43);
        for _ in 0..20 {
            let raw = s.generate(&mut rng);
            for c in s.shrink(&raw) {
                assert!(!c.stages.is_empty());
                c.build("shrunk");
            }
        }
    }
}
