//! Large-scale exploration workloads with known state-space sizes.
//!
//! The exploration-kernel benchmarks need nets whose reachability graphs
//! are big enough that kernel overheads — index probes, work stealing,
//! spill traffic — dominate, and whose state counts are known in closed
//! form so a run can be validated exactly. Three parametric families:
//!
//! * [`sync_pipeline_net`] — the classic synchronized two-phase pipeline,
//!   built directly as one net (`2^k` states on `2k` places).
//! * [`sync_mesh`] — a torus of places with token-shift transitions; the
//!   state space is every distribution of the tokens over the mesh
//!   (`C(tokens + w·h − 1, w·h − 1)` states), which reaches 10⁷+ states
//!   with single-digit strides (e.g. `sync_mesh(3, 3, 24)` has
//!   10 518 300 states on 9 places).
//! * [`cip_chain`] — a deep CIP module chain expanded with two-phase
//!   handshakes and composed into one net, the Section 6 derivation
//!   shape at depth.

use cpn_petri::PetriNet;

/// The synchronized two-phase pipeline of `k` stages as a single net.
///
/// Stage `i` is a two-place cycle `p_i ↔ q_i`; adjacent stages share the
/// synchronizing label, so the composed transition `x_i` (for
/// `1 ≤ i ≤ k−1`) fires `[q_{i−1}, p_i] → [p_{i−1}, q_i]`, while `x_0`
/// injects (`[p_0] → [q_0]`) and `x_k` retires (`[q_{k−1}] → [p_{k−1}]`).
/// Every stage valuation is reachable: **`2^k` states** on `2k` places
/// with `k+1` transitions. Equals the `parallel`-composition of the
/// per-stage nets but built directly, so no composition machinery is
/// needed to generate benchmark inputs.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn sync_pipeline_net(k: usize) -> PetriNet<String> {
    assert!(k > 0, "pipeline needs at least one stage");
    let mut net: PetriNet<String> = PetriNet::new();
    let ps: Vec<_> = (0..k).map(|i| net.add_place(format!("s{i}.p"))).collect();
    let qs: Vec<_> = (0..k).map(|i| net.add_place(format!("s{i}.q"))).collect();
    net.add_transition([ps[0]], "x0".to_owned(), [qs[0]])
        .expect("inject");
    for i in 1..k {
        net.add_transition([qs[i - 1], ps[i]], format!("x{i}"), [ps[i - 1], qs[i]])
            .expect("shift");
    }
    net.add_transition([qs[k - 1]], format!("x{k}"), [ps[k - 1]])
        .expect("retire");
    for &p in &ps {
        net.set_initial(p, 1);
    }
    net
}

/// A `w × h` torus of places shifting `tokens` indistinguishable tokens.
///
/// Place `(x, y)` has a transition moving one token right (to
/// `((x+1) mod w, y)`) and one moving it down (to `(x, (y+1) mod h)`);
/// moves that would be self-loops (`w == 1` or `h == 1`) are skipped.
/// The move graph is strongly connected, so **every** distribution of
/// the tokens over the `w·h` places is reachable:
///
/// ```text
/// states = C(tokens + w·h − 1, w·h − 1)
/// ```
///
/// All tokens start at `(0, 0)`. Because the stride is just `w·h`, this
/// family reaches 10⁷+ states in a few hundred megabytes of markings —
/// the workload the spill tier and the thread sweep are measured on:
/// `sync_mesh(3, 3, 24)` → `C(32, 8)` = 10 518 300 states.
///
/// # Panics
///
/// Panics if the mesh is degenerate (`w·h < 2`) or `tokens == 0`.
pub fn sync_mesh(w: usize, h: usize, tokens: u32) -> PetriNet<String> {
    assert!(w * h >= 2, "mesh needs at least two places");
    assert!(tokens > 0, "mesh needs at least one token");
    let mut net: PetriNet<String> = PetriNet::new();
    let ps: Vec<Vec<_>> = (0..h)
        .map(|y| (0..w).map(|x| net.add_place(format!("m{x}_{y}"))).collect())
        .collect();
    for y in 0..h {
        for x in 0..w {
            if w > 1 {
                net.add_transition([ps[y][x]], format!("r{x}_{y}"), [ps[y][(x + 1) % w]])
                    .expect("right shift");
            }
            if h > 1 {
                net.add_transition([ps[y][x]], format!("d{x}_{y}"), [ps[(y + 1) % h][x]])
                    .expect("down shift");
            }
        }
    }
    net.set_initial(ps[0][0], tokens);
    net
}

/// The number of states of [`sync_mesh`]`(w, h, tokens)`:
/// `C(tokens + w·h − 1, w·h − 1)`.
///
/// # Panics
///
/// Panics if the count overflows `u64` (keep `w·h` and `tokens` in the
/// benchmark-realistic range).
pub fn sync_mesh_states(w: usize, h: usize, tokens: u32) -> u64 {
    let k = (w * h - 1) as u64;
    let n = u64::from(tokens) + k;
    // C(n, k) by the multiplicative formula, dividing early to stay exact.
    let mut acc: u64 = 1;
    for i in 1..=k {
        acc = acc
            .checked_mul(n - k + i)
            .map(|v| v / i)
            .unwrap_or_else(|| panic!("C({n}, {k}) overflows u64"));
    }
    acc
}

/// A CIP **pipeline chain** of `modules` modules connected by control
/// channels, expanded with two-phase handshake signalling and composed
/// into one net.
///
/// Module `i` receives on channel `c_{i−1}` and sends on `c_i` (the ends
/// do one of the two), so the chain is the Section 6 derivation shape at
/// depth: composition cost grows with `modules` while the state space
/// grows with the number of in-flight handshakes. Returns the composed
/// net; hide the `*_req` wires to reproduce the benchmark's hiding
/// workload.
///
/// # Panics
///
/// Panics if `modules < 2` or if expansion/composition fails (they
/// cannot for this well-formed chain).
pub fn cip_chain(modules: usize) -> PetriNet<cpn_stg::StgLabel> {
    use cpn_cip::{ChannelSpec, CipGraph, HandshakeProtocol, Module};
    assert!(modules >= 2, "a chain needs at least two modules");
    let mut graph = CipGraph::new();
    let mut ids = Vec::new();
    for i in 0..modules {
        let mut m = Module::new(format!("m{i}"));
        let p = m.add_place("idle");
        m.set_initial(p, 1);
        if i == 0 {
            m.add_send([p], "c0", None, [p]).expect("send");
        } else if i == modules - 1 {
            m.add_recv([p], format!("c{}", i - 1).as_str(), [p])
                .expect("recv");
        } else {
            let q = m.add_place("got");
            m.add_recv([p], format!("c{}", i - 1).as_str(), [q])
                .expect("recv");
            m.add_send([q], format!("c{i}").as_str(), None, [p])
                .expect("send");
        }
        ids.push(graph.add_module(m));
    }
    for i in 0..modules - 1 {
        graph
            .add_channel_edge(
                ids[i],
                ids[i + 1],
                ChannelSpec::control(format!("c{i}").as_str()),
            )
            .expect("channel");
    }
    graph
        .expand(HandshakeProtocol::TwoPhase)
        .expect("expansion")
        .compose_all()
        .expect("composition")
        .net()
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpn_petri::{Bounded, Budget};

    #[test]
    fn sync_pipeline_net_counts_are_exact_powers_of_two() {
        for k in 1..=6 {
            let net = sync_pipeline_net(k);
            assert_eq!(net.place_count(), 2 * k);
            assert_eq!(net.transition_count(), k + 1);
            let rg = match net.reachability_bounded(&Budget::states(1 << 10)) {
                Bounded::Complete(rg) => rg,
                Bounded::Exhausted { .. } => panic!("budget too small for k={k}"),
            };
            assert_eq!(rg.state_count(), 1 << k, "k={k}");
        }
    }

    #[test]
    fn sync_mesh_counts_match_the_closed_form() {
        for &(w, h, t) in &[(2, 1, 3), (2, 2, 3), (3, 2, 4), (3, 3, 3)] {
            let net = sync_mesh(w, h, t);
            let rg = match net.reachability_bounded(&Budget::states(1 << 16)) {
                Bounded::Complete(rg) => rg,
                Bounded::Exhausted { .. } => panic!("budget too small for {w}x{h}/{t}"),
            };
            let expected = sync_mesh_states(w, h, t);
            assert_eq!(rg.state_count() as u64, expected, "{w}x{h}/{t}");
        }
    }

    #[test]
    fn sync_mesh_states_reaches_benchmark_scale() {
        // The 10^7-state benchmark workload.
        assert_eq!(sync_mesh_states(3, 3, 24), 10_518_300);
    }

    #[test]
    fn cip_chain_composes_and_explores() {
        let net = cip_chain(4);
        assert!(net.place_count() > 0);
        let rg = match net.reachability_bounded(&Budget::states(1 << 16)) {
            Bounded::Complete(rg) => rg,
            Bounded::Exhausted { .. } => panic!("budget too small for chain of 4"),
        };
        assert!(rg.state_count() > 1);
    }
}
