//! A minimal wall-clock micro-benchmark harness (feature `bench`).
//!
//! Replaces `criterion` for the workspace's offline builds. Each bench
//! target is a plain `fn main()` (`harness = false`) that builds a
//! [`BenchGroup`] and registers closures. Two modes:
//!
//! * **quick** (default) — every closure runs a few times so `cargo
//!   test` smoke-checks the workloads (including their internal
//!   assertions) in milliseconds.
//! * **full** (`CPN_BENCH_FULL=1`) — closures are calibrated to ~10 ms
//!   batches and timed over 30 batches; min/median/mean ns per
//!   iteration are printed.

pub use std::hint::black_box;
use std::time::Instant;

/// Number of timed batches in full mode.
const BATCHES: usize = 30;
/// Target wall-clock duration of one batch in full mode.
const BATCH_TARGET_NANOS: u128 = 10_000_000;
/// Iterations per closure in quick mode.
const QUICK_ITERS: usize = 3;

/// A named collection of benchmarks sharing one report.
pub struct BenchGroup {
    name: String,
    full: bool,
}

impl BenchGroup {
    /// A group in quick or full mode per `CPN_BENCH_FULL`.
    pub fn new(name: impl Into<String>) -> Self {
        let full = std::env::var("CPN_BENCH_FULL").is_ok_and(|v| v == "1");
        let group = BenchGroup {
            name: name.into(),
            full,
        };
        println!(
            "bench group '{}' ({} mode)",
            group.name,
            if group.full { "full" } else { "quick" }
        );
        group
    }

    /// Runs and reports one benchmark. The closure's return value is
    /// black-boxed so the work is not optimized away.
    pub fn bench<R>(&mut self, id: impl std::fmt::Display, mut f: impl FnMut() -> R) {
        if !self.full {
            let start = Instant::now();
            for _ in 0..QUICK_ITERS {
                black_box(f());
            }
            let per_iter = start.elapsed().as_nanos() / QUICK_ITERS as u128;
            println!(
                "  {}/{id}: ~{} ns/iter (quick, {QUICK_ITERS} iters)",
                self.name,
                group_digits(per_iter)
            );
            return;
        }

        // Calibrate the batch size on a single timed call.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_nanos().max(1);
        let batch = usize::try_from((BATCH_TARGET_NANOS / once).clamp(1, 1_000_000))
            .expect("batch fits usize");

        let mut samples: Vec<u128> = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() / batch as u128);
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<u128>() / samples.len() as u128;
        println!(
            "  {}/{id}: min {} / median {} / mean {} ns/iter ({} batches x {} iters)",
            self.name,
            group_digits(min),
            group_digits(median),
            group_digits(mean),
            BATCHES,
            batch
        );
    }

    /// Ends the group (kept for symmetry with the criterion API).
    pub fn finish(self) {}
}

/// `1234567` → `"1_234_567"` for readable nanosecond counts.
fn group_digits(n: u128) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_the_closure() {
        let mut count = 0u32;
        let mut group = BenchGroup {
            name: "test".into(),
            full: false,
        };
        group.bench("counted", || {
            count += 1;
            count
        });
        group.finish();
        assert_eq!(count, QUICK_ITERS as u32);
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(7), "7");
        assert_eq!(group_digits(1234), "1_234");
        assert_eq!(group_digits(1234567), "1_234_567");
    }
}
