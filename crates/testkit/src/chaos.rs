//! Transport-level fault injection for chaos testing framed protocols.
//!
//! [`ChaosInjector`] decides, per connection, whether and how to
//! corrupt a well-formed wire exchange; [`corrupt_frame`] turns a
//! framed message (length prefix + payload) into the byte-level
//! [`WriteStep`] script realizing a chosen [`TransportFault`]. The
//! injector is seeded, so a soak test's exact fault schedule replays
//! from a single `u64`.
//!
//! The module is protocol-agnostic: it only assumes "a 4-byte length
//! prefix followed by that many payload bytes", which is the framing
//! `cpn-serve` speaks, and says nothing about the payload.

use crate::rng::TestRng;
use std::time::Duration;

/// A way to corrupt one framed message on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportFault {
    /// Send only a prefix of the frame, then close the connection.
    TruncatedFrame {
        /// How many bytes of the full wire form survive.
        keep: usize,
    },
    /// Overwrite the length prefix with a huge claimed length.
    OversizedPrefix {
        /// The hostile claimed length.
        claimed: u32,
    },
    /// Replace the frame with unstructured random bytes.
    GarbageBytes {
        /// How many garbage bytes to send.
        len: usize,
    },
    /// Send the frame, then disconnect before reading the response.
    MidRequestDisconnect,
    /// Send the frame in two halves with a pause in between (a slow
    /// or stalling writer).
    StalledWrite {
        /// The pause between the halves.
        pause: Duration,
    },
}

/// One step of a corrupted wire exchange.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteStep {
    /// Write these bytes.
    Bytes(Vec<u8>),
    /// Sleep this long (stalled writer).
    Pause(Duration),
    /// Close the connection without reading a response.
    CloseNow,
}

/// Seeded per-connection fault scheduler.
#[derive(Debug)]
pub struct ChaosInjector {
    rng: TestRng,
    fault_num: usize,
    fault_den: usize,
    connections: u64,
    faulted: u64,
}

impl ChaosInjector {
    /// An injector faulting 2 in 5 connections (seeded, replayable).
    pub fn new(seed: u64) -> Self {
        ChaosInjector {
            rng: TestRng::seed_from_u64(seed),
            fault_num: 2,
            fault_den: 5,
            connections: 0,
            faulted: 0,
        }
    }

    /// Overrides the fault ratio to `num / den` of connections.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn with_ratio(mut self, num: usize, den: usize) -> Self {
        assert!(den > 0, "fault ratio denominator must be positive");
        self.fault_num = num;
        self.fault_den = den;
        self
    }

    /// The fault plan for the next connection: `None` means the
    /// connection behaves correctly.
    pub fn next_connection(&mut self) -> Option<TransportFault> {
        self.connections += 1;
        if !self.rng.gen_ratio(self.fault_num, self.fault_den) {
            return None;
        }
        self.faulted += 1;
        Some(match self.rng.below(5) {
            0 => TransportFault::TruncatedFrame {
                keep: self.rng.below(64),
            },
            1 => TransportFault::OversizedPrefix {
                claimed: self.rng.gen_range_u32(1 << 24..u32::MAX),
            },
            2 => TransportFault::GarbageBytes {
                len: self.rng.gen_range(1..256),
            },
            3 => TransportFault::MidRequestDisconnect,
            _ => TransportFault::StalledWrite {
                pause: Duration::from_millis(self.rng.gen_range(10..120) as u64),
            },
        })
    }

    /// `(connections seen, connections faulted)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.connections, self.faulted)
    }

    /// Fresh random bytes from the injector's stream (for garbage).
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.rng.next_u64() as u8).collect()
    }
}

/// A way to corrupt a *burst* of framed messages written back-to-back
/// on one pipelined connection (protocol v2: batches, windowed
/// clients). Unlike [`TransportFault`], which mangles a single frame,
/// a burst fault decides where in a multi-frame sequence the
/// connection misbehaves — the interesting invariant is that frames
/// *before* the fault are well-formed and must each be answered
/// exactly once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BurstFault {
    /// Send the first `after` frames whole, then disconnect without
    /// reading any responses.
    MidBurstDisconnect {
        /// How many complete frames go out before the close.
        after: usize,
    },
    /// Send every frame whole except the last, which is truncated to
    /// `keep` bytes before the close (a crash mid-write).
    TruncatedTail {
        /// How many bytes of the final frame survive.
        keep: usize,
    },
    /// Send all frames, but pause between consecutive frames (a slow
    /// pipelining writer). Every frame is well-formed; all must be
    /// answered.
    StalledBurst {
        /// The pause between consecutive frames.
        pause: Duration,
    },
}

impl ChaosInjector {
    /// The fault plan for the next multi-frame burst of `frames`
    /// frames: `None` means the burst goes out clean. Draws from the
    /// same seeded stream as [`ChaosInjector::next_connection`], so a
    /// soak mixing single- and multi-frame connections still replays
    /// from one seed.
    pub fn next_burst(&mut self, frames: usize) -> Option<BurstFault> {
        self.connections += 1;
        if !self.rng.gen_ratio(self.fault_num, self.fault_den) {
            return None;
        }
        self.faulted += 1;
        Some(match self.rng.below(3) {
            0 => BurstFault::MidBurstDisconnect {
                after: self.rng.below(frames.max(1)),
            },
            1 => BurstFault::TruncatedTail {
                keep: self.rng.below(64),
            },
            _ => BurstFault::StalledBurst {
                pause: Duration::from_millis(self.rng.gen_range(5..40) as u64),
            },
        })
    }
}

/// Realizes a burst fault as a write script over the well-formed wire
/// bytes of the individual frames. Returns the script plus the number
/// of frames that went out *complete and uncorrupted* — the caller's
/// exactly-once accounting baseline.
pub fn corrupt_exchange(frames: &[Vec<u8>], fault: &BurstFault) -> (Vec<WriteStep>, usize) {
    match fault {
        BurstFault::MidBurstDisconnect { after } => {
            let after = (*after).min(frames.len());
            let mut steps: Vec<WriteStep> = frames[..after]
                .iter()
                .map(|f| WriteStep::Bytes(f.clone()))
                .collect();
            steps.push(WriteStep::CloseNow);
            (steps, after)
        }
        BurstFault::TruncatedTail { keep } => {
            let mut steps = Vec::new();
            let whole = frames.len().saturating_sub(1);
            for f in &frames[..whole] {
                steps.push(WriteStep::Bytes(f.clone()));
            }
            if let Some(last) = frames.last() {
                let keep = (*keep).min(last.len().saturating_sub(1));
                steps.push(WriteStep::Bytes(last[..keep].to_vec()));
            }
            steps.push(WriteStep::CloseNow);
            (steps, whole)
        }
        BurstFault::StalledBurst { pause } => {
            let mut steps = Vec::new();
            for (i, f) in frames.iter().enumerate() {
                if i > 0 {
                    steps.push(WriteStep::Pause(*pause));
                }
                steps.push(WriteStep::Bytes(f.clone()));
            }
            (steps, frames.len())
        }
    }
}

/// Realizes a fault as a write script over the well-formed wire bytes
/// of one frame (`prefix + payload`, as produced by the protocol's
/// encoder).
pub fn corrupt_frame(
    wire: &[u8],
    fault: &TransportFault,
    injector: &mut ChaosInjector,
) -> Vec<WriteStep> {
    match fault {
        TransportFault::TruncatedFrame { keep } => {
            let keep = (*keep).min(wire.len().saturating_sub(1));
            vec![WriteStep::Bytes(wire[..keep].to_vec()), WriteStep::CloseNow]
        }
        TransportFault::OversizedPrefix { claimed } => {
            let mut bytes = wire.to_vec();
            if bytes.len() >= 4 {
                bytes[..4].copy_from_slice(&claimed.to_be_bytes());
            }
            vec![WriteStep::Bytes(bytes)]
        }
        TransportFault::GarbageBytes { len } => vec![WriteStep::Bytes(injector.bytes(*len))],
        TransportFault::MidRequestDisconnect => {
            vec![WriteStep::Bytes(wire.to_vec()), WriteStep::CloseNow]
        }
        TransportFault::StalledWrite { pause } => {
            let mid = wire.len() / 2;
            vec![
                WriteStep::Bytes(wire[..mid].to_vec()),
                WriteStep::Pause(*pause),
                WriteStep::Bytes(wire[mid..].to_vec()),
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut wire = (payload.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(payload);
        wire
    }

    #[test]
    fn schedule_is_deterministic() {
        let mut a = ChaosInjector::new(77);
        let mut b = ChaosInjector::new(77);
        for _ in 0..100 {
            assert_eq!(a.next_connection(), b.next_connection());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn ratio_is_roughly_honored() {
        let mut inj = ChaosInjector::new(5).with_ratio(2, 5);
        for _ in 0..1000 {
            inj.next_connection();
        }
        let (seen, faulted) = inj.stats();
        assert_eq!(seen, 1000);
        let rate = faulted as f64 / seen as f64;
        assert!((0.3..0.5).contains(&rate), "fault rate {rate}");
    }

    #[test]
    fn truncation_never_sends_the_whole_frame() {
        let mut inj = ChaosInjector::new(9);
        let wire = frame(b"ping");
        let steps = corrupt_frame(
            &wire,
            &TransportFault::TruncatedFrame { keep: 1000 },
            &mut inj,
        );
        match &steps[0] {
            WriteStep::Bytes(b) => assert!(b.len() < wire.len()),
            other => panic!("expected Bytes, got {other:?}"),
        }
        assert_eq!(steps[1], WriteStep::CloseNow);
    }

    #[test]
    fn oversized_prefix_rewrites_only_the_length() {
        let mut inj = ChaosInjector::new(9);
        let wire = frame(b"ping");
        let steps = corrupt_frame(
            &wire,
            &TransportFault::OversizedPrefix { claimed: u32::MAX },
            &mut inj,
        );
        match &steps[0] {
            WriteStep::Bytes(b) => {
                assert_eq!(&b[..4], &u32::MAX.to_be_bytes());
                assert_eq!(&b[4..], b"ping");
            }
            other => panic!("expected Bytes, got {other:?}"),
        }
    }

    #[test]
    fn mid_burst_disconnect_sends_whole_frames_then_closes() {
        let frames: Vec<Vec<u8>> = (0..4).map(|i| frame(&[b'a' + i as u8; 8])).collect();
        let (steps, clean) =
            corrupt_exchange(&frames, &BurstFault::MidBurstDisconnect { after: 2 });
        assert_eq!(clean, 2);
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0], WriteStep::Bytes(frames[0].clone()));
        assert_eq!(steps[1], WriteStep::Bytes(frames[1].clone()));
        assert_eq!(steps[2], WriteStep::CloseNow);
    }

    #[test]
    fn truncated_tail_keeps_all_but_last_frame_intact() {
        let frames: Vec<Vec<u8>> = (0..3).map(|i| frame(&[b'x' + i as u8; 10])).collect();
        let (steps, clean) = corrupt_exchange(&frames, &BurstFault::TruncatedTail { keep: 5 });
        assert_eq!(clean, 2);
        assert_eq!(steps[0], WriteStep::Bytes(frames[0].clone()));
        assert_eq!(steps[1], WriteStep::Bytes(frames[1].clone()));
        match &steps[2] {
            WriteStep::Bytes(b) => {
                assert_eq!(b.len(), 5);
                assert_eq!(&b[..], &frames[2][..5]);
            }
            other => panic!("expected truncated Bytes, got {other:?}"),
        }
        assert_eq!(*steps.last().expect("close"), WriteStep::CloseNow);
    }

    #[test]
    fn stalled_burst_sends_everything_with_pauses() {
        let frames: Vec<Vec<u8>> = (0..3).map(|_| frame(b"req")).collect();
        let (steps, clean) = corrupt_exchange(
            &frames,
            &BurstFault::StalledBurst {
                pause: Duration::from_millis(5),
            },
        );
        assert_eq!(clean, 3);
        let sent: usize = steps
            .iter()
            .filter(|s| matches!(s, WriteStep::Bytes(_)))
            .count();
        let pauses = steps
            .iter()
            .filter(|s| matches!(s, WriteStep::Pause(_)))
            .count();
        assert_eq!(sent, 3);
        assert_eq!(pauses, 2);
    }

    #[test]
    fn burst_schedule_is_deterministic() {
        let mut a = ChaosInjector::new(42);
        let mut b = ChaosInjector::new(42);
        for _ in 0..50 {
            assert_eq!(a.next_burst(8), b.next_burst(8));
        }
    }

    #[test]
    fn stalled_write_splits_with_a_pause() {
        let mut inj = ChaosInjector::new(9);
        let wire = frame(b"ping");
        let steps = corrupt_frame(
            &wire,
            &TransportFault::StalledWrite {
                pause: Duration::from_millis(10),
            },
            &mut inj,
        );
        assert_eq!(steps.len(), 3);
        assert!(matches!(steps[1], WriteStep::Pause(_)));
        let rejoined: Vec<u8> = steps
            .iter()
            .filter_map(|s| match s {
                WriteStep::Bytes(b) => Some(b.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(rejoined, wire);
    }
}
